// Fig 10 — task management in a faulty setting (§6.1.5), extended into a
// fault-spectrum bench.
//
// The paper's protocol: 32 Surveyor workers run a continuous stream of
// short sequential tasks while one randomly selected pilot is terminated
// every 10 s; the figure plots "nodes available" and "running jobs" over
// time, with running jobs hugging the shrinking node count until the
// allocation is gone at ~320 s.
//
// This harness runs the same workload under four fault classes from the
// chaos engine (core/chaos.hh), one scenario per series:
//
//   kill   — the paper's original fault: pilot SIGKILL, service sees EOF.
//   hang   — pilots freeze with their sockets open; only the heartbeat /
//            liveness machinery can detect them, so "nodes available" here
//            counts *usable* workers (connected minus hung-but-undetected).
//            Hangs are permanent: the pool shrinks like the kill series,
//            but each drop lags the fault by the liveness deadline.
//   stall  — 30 s network stalls on random nodes: the service evicts the
//            silent worker (liveness), retries its job elsewhere, and
//            re-enlists the worker when its traffic drains — the pool dips
//            and recovers instead of shrinking.
//   launch — MPI gangs under permanent hangs with the launch-phase deadline
//            (Config::mpi_launch_timeout) armed: a pilot frozen before its
//            proxy dials back fails the gang fast with kLaunchTimeout (an
//            infra-class failure that, with retry.infra_exempt, does not
//            consume the app attempt budget) instead of wedging mpiexec.
//
// Each scenario's trailer prints the service's per-reason failure counters
// (FailureReason taxonomy) and the retry engine's delayed-requeue count.
//
// All scenarios drive faults and placement from fixed seeds; two runs of
// this binary produce byte-identical output.
// With JETS_RECOVER set in the environment, a fifth scenario runs the
// service-crash-and-recover fault class (checkpoint/restore, core/snapshot.hh)
// in three passes: an uninterrupted baseline taking periodic checkpoints, an
// identical replay (asserting byte-identical checkpoints and an identical
// final record digest — the determinism claim), and a crash pass that kills
// the service at 63 s and restores it from the 60 s checkpoint, reporting
// MTTR and jobs-rescued vs jobs-lost. The scenario is env-gated so the
// default output stays byte-identical to the committed golden manifest.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/chaos.hh"
#include "core/snapshot.hh"
#include "harness.hh"

using namespace jets;

namespace {

struct Scenario {
  const char* label;
  core::FaultKind kind;
  sim::Duration fault_duration;  // stall window; 0 = permanent fault
  bool heartbeats;               // enable worker pings + liveness eviction
  bool mpi = false;              // 2-proc MPI gangs instead of seq tasks
};

void run_scenario(const Scenario& sc) {
  constexpr std::size_t kNodes = 32;
  bench::Bed bed(os::Machine::surveyor(kNodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep", "mpi_sleep"};
  options.service.retry.max_attempts = 100;  // keep retrying onto survivors
  auto registry = std::make_shared<core::WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  if (sc.heartbeats) {
    options.worker.heartbeat_interval = sim::seconds(2);
    options.service.worker_liveness_timeout = sim::seconds(5);
  }
  if (sc.mpi) {
    // The launch series: gangs must finish wiring within 3 s, and launch
    // timeouts are charged to the infra budget, not the app budget.
    options.service.mpi_launch_timeout = sim::seconds(3);
    options.service.retry.infra_exempt = true;
  }
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kNodes));

  // More work than the allocation can finish: the run ends when the last
  // worker dies (kill/hang) or the 400 s observation window closes.
  std::vector<core::JobSpec> jobs(
      sc.mpi ? 5'000 : 20'000,
      sc.mpi ? bench::mpi_job(2, {"mpi_sleep", "1"})
             : bench::seq_job({"sleep", "1"}));

  core::ChaosEngine chaos(bed.machine, sim::Rng(2011).fork(sc.label));
  chaos.set_pilots(jets.worker_pids());
  chaos.set_hang_registry(registry);
  chaos.add_periodic(sc.kind, sim::seconds(10), sim::seconds(10), kNodes,
                     sc.fault_duration);

  bed.engine.spawn("driver", [](core::StandaloneJets& jets,
                                std::vector<core::JobSpec> jobs,
                                core::ChaosEngine& chaos) -> sim::Task<void> {
    co_await jets.wait_workers();
    jets.service().submit_batch(jobs);
    chaos.start();
  }(jets, std::move(jobs), chaos));

  // Sample both series once per second.
  sim::TimeSeries nodes_available;
  sim::TimeSeries running_jobs;
  for (int t = 1; t <= 400; ++t) {
    bed.engine.run_until(sim::seconds(t));
    nodes_available.add(bed.engine.now(),
                        static_cast<double>(jets.service().connected_workers()));
    running_jobs.add(bed.engine.now(),
                     static_cast<double>(jets.service().running_jobs()));
    if (t > 20 && jets.service().connected_workers() == 0) break;
  }

  std::printf("# scenario: %s\n", sc.label);
  std::printf("%-8s %-16s %s\n", "time_s", "nodes_available", "running_jobs");
  const auto& na = nodes_available.points();
  const auto& rj = running_jobs.points();
  for (std::size_t i = 0; i < na.size(); ++i) {
    std::printf("%-8.0f %-16.0f %.0f\n", sim::to_seconds(na[i].first),
                na[i].second, rj[i].second);
  }
  const auto& c = chaos.counters();
  std::printf(
      "# %s: killed=%zu hung=%zu stalled=%zu | evicted=%zu reenlisted=%zu "
      "heartbeats=%zu completed=%zu failed=%zu quarantined=%zu\n",
      sc.label, c.pilots_killed, c.workers_hung, c.nodes_stalled,
      jets.service().evicted_workers(), jets.service().reenlisted_workers(),
      jets.service().heartbeats_received(), jets.service().completed_jobs(),
      jets.service().failed_jobs(), jets.service().quarantined_jobs());
  std::printf("# %s failures:", sc.label);
  for (std::size_t i = 1; i < core::kFailureReasonCount; ++i) {
    const auto reason = static_cast<core::FailureReason>(i);
    const std::size_t n = jets.service().failures_by_reason(reason);
    // service-restart and walltime-drain only happen in env-gated
    // scenarios; print them only when nonzero so the legacy scenarios'
    // trailers stay byte-identical to the committed golden manifest.
    if ((reason == core::FailureReason::kServiceRestart ||
         reason == core::FailureReason::kWalltimeDrain) &&
        n == 0) {
      continue;
    }
    std::printf(" %s=%zu", core::to_string(reason), n);
  }
  std::printf(" | retries_scheduled=%zu\n", jets.service().retries_scheduled());
}

// --- Recover scenario (JETS_RECOVER) ----------------------------------------

struct RecoverRun {
  std::vector<std::vector<std::uint8_t>> snaps;  // at 15, 30, 45, 60 s
  std::uint64_t digest = 0;                      // folded record digests
  std::vector<core::JobRecord> records;
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t restores = 0;
  std::size_t reconciled = 0;
  std::size_t rescued = 0;
  std::size_t restarts = 0;
  std::size_t ghosts_dropped = 0;
  double mttr_s = -1.0;
  double makespan_s = 0.0;
  bool all_settled = false;
};

std::uint64_t fold_digest(std::uint64_t h, std::uint64_t d) {
  return (h ^ d) * 1099511628211ull;  // FNV-style fold, order-sensitive
}

RecoverRun run_recover_pass(bool crash) {
  constexpr std::size_t kNodes = 32;
  constexpr std::size_t kJobs = 3'000;
  const sim::Time crash_at = sim::seconds(63);
  bench::Bed bed(os::Machine::surveyor(kNodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {"sleep"};
  // Pilots survive the outage: they redial with linear backoff and
  // re-register carrying their outstanding-task inventory.
  options.worker.reconnect_backoff = sim::milliseconds(500);
  options.worker.reconnect_attempts = 20;
  options.service.retry.max_attempts = 100;
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kNodes));

  RecoverRun out;
  core::ChaosEngine chaos(bed.machine, sim::Rng(2011).fork("recover"));
  if (crash) {
    chaos.set_service_crash(
        [&] { jets.crash_service(); },
        // Restore from the *last periodic checkpoint* (60 s), not a
        // crash-instant snapshot: the 3 s of progress in between is what
        // reconciliation must win back (or requeue blamelessly).
        [&] { jets.restore_service(core::Snapshot::parse(out.snaps.back())); });
    core::Fault f;
    f.at = crash_at;
    f.kind = core::FaultKind::kServiceCrash;
    f.duration = sim::seconds(3);
    chaos.add(f);
  }

  // Mostly 1 s tasks plus a 9 s stripe: the long tasks outlive the crash
  // outage + redial, so the crash pass exercises in-place rescue (a pilot
  // returning mid-task) next to the lost-done/requeue path.
  std::vector<core::JobSpec> jobs(kJobs, bench::seq_job({"sleep", "1"}));
  for (std::size_t i = 0; i < kJobs; i += 6) {
    jobs[i] = bench::seq_job({"sleep", "9"});
  }
  bed.engine.spawn("driver", [](core::StandaloneJets& jets,
                                std::vector<core::JobSpec> jobs,
                                core::ChaosEngine& chaos) -> sim::Task<void> {
    co_await jets.wait_workers();
    jets.service().submit_batch(jobs);
    chaos.start();
  }(jets, std::move(jobs), chaos));

  // Checkpoint cadence: every 15 s up to 60 s. Identical in all passes, so
  // the baseline/replay byte-compare covers the codec end to end.
  bed.engine.spawn("checkpointer", [](core::StandaloneJets& jets,
                                      RecoverRun& out) -> sim::Task<void> {
    for (int k = 0; k < 4; ++k) {
      co_await sim::delay(sim::seconds(15));
      if (!jets.service_up()) co_return;
      out.snaps.push_back(jets.checkpoint().serialize());
    }
  }(jets, out));

  for (int t = 1; t <= 400; ++t) {
    bed.engine.run_until(sim::seconds(t));
    if (!jets.service_up()) continue;  // mid-outage sample
    if (crash && out.mttr_s < 0 && sim::seconds(t) > crash_at &&
        jets.service().connected_workers() == kNodes) {
      out.mttr_s = sim::to_seconds(sim::seconds(t) - crash_at);
    }
    if (jets.service().completed_jobs() + jets.service().failed_jobs() +
            jets.service().quarantined_jobs() >=
        kJobs) {
      break;
    }
  }

  out.makespan_s = sim::to_seconds(bed.engine.now());
  if (jets.service_up()) {
    core::Service& svc = jets.service();
    out.completed = svc.completed_jobs();
    out.failed = svc.failed_jobs() + svc.quarantined_jobs();
    out.restores = svc.restores();
    out.reconciled = svc.workers_reconciled();
    out.rescued = svc.jobs_rescued();
    out.restarts = svc.failures_by_reason(core::FailureReason::kServiceRestart);
    out.ghosts_dropped = svc.ghosts_dropped();
    out.all_settled = out.completed + out.failed >= kJobs;
    out.records = svc.records();
    for (const core::JobRecord& rec : out.records) {
      out.digest = fold_digest(out.digest, core::record_digest(rec));
    }
  }
  return out;
}

void run_recover() {
  const RecoverRun base = run_recover_pass(/*crash=*/false);
  const RecoverRun replay = run_recover_pass(/*crash=*/false);
  const RecoverRun crash = run_recover_pass(/*crash=*/true);

  std::printf("# scenario: recover\n");
  std::printf("# recover pass=baseline completed=%zu failed=%zu "
              "checkpoints=%zu makespan_s=%.1f digest=%016llx\n",
              base.completed, base.failed, base.snaps.size(), base.makespan_s,
              static_cast<unsigned long long>(base.digest));
  // Determinism: an identical same-seed run must reproduce the final
  // digest *and* every periodic checkpoint byte for byte (checkpointing is
  // pure, so it cannot perturb the run it observes).
  const bool digest_match =
      base.digest == replay.digest && base.all_settled && replay.all_settled;
  const bool snapshot_match = base.snaps == replay.snaps;
  std::printf("# recover pass=replay digest_match=%s snapshot_match=%s\n",
              digest_match ? "yes" : "NO", snapshot_match ? "yes" : "NO");
  // Restore fidelity: every job already settled in the 60 s checkpoint must
  // come out of the crash run with its record preserved verbatim.
  bool preserved_match = crash.all_settled && !crash.snaps.empty();
  if (preserved_match) {
    const core::Snapshot snap = core::Snapshot::parse(crash.snaps.back());
    std::size_t settled_before = 0;
    for (const core::JobSnap& js : snap.jobs) {
      if (!core::job_settled(js.rec.status)) continue;
      ++settled_before;
      if (js.rec.id > crash.records.size() ||
          !(crash.records[js.rec.id - 1] == js.rec)) {
        preserved_match = false;
        break;
      }
    }
    if (settled_before == 0) preserved_match = false;  // crash ran too early
  }
  std::printf(
      "# recover pass=crash completed=%zu failed=%zu restores=%zu "
      "reconciled=%zu rescued=%zu restarts=%zu ghosts_dropped=%zu "
      "preserved_match=%s mttr_s=%.1f makespan_s=%.1f\n",
      crash.completed, crash.failed, crash.restores, crash.reconciled,
      crash.rescued, crash.restarts, crash.ghosts_dropped,
      preserved_match ? "yes" : "NO", crash.mttr_s, crash.makespan_s);
}

}  // namespace

int main() {
  bench::figure_header(
      "fig10", "running jobs vs available nodes across the fault spectrum",
      "one fault every 10 s on 32 workers; kill and hang series shrink the "
      "pool (hang lagging by the liveness deadline), stall series dips and "
      "recovers via eviction + re-enlistment; launch series runs MPI gangs "
      "with a launch-phase deadline so hung pilots fail fast as "
      "launch-timeout instead of wedging mpiexec");

  run_scenario({"kill", core::FaultKind::kKillPilot, 0, false});
  run_scenario({"hang", core::FaultKind::kHangWorker, 0, true});
  run_scenario({"stall", core::FaultKind::kSocketStall, sim::seconds(30), true});
  run_scenario({"launch", core::FaultKind::kHangWorker, 0, true, /*mpi=*/true});
  // Env-gated so the four scenarios above stay byte-identical to the golden
  // manifest; check.sh's crash-recovery smoke and bench.sh set JETS_RECOVER.
  if (std::getenv("JETS_RECOVER") != nullptr) run_recover();
  return 0;
}
