// Fig 10 — task management in a faulty setting (§6.1.5).
//
// 32 Surveyor workers run a continuous stream of short sequential tasks; a
// fault injector terminates one randomly selected pilot every 10 s. The
// figure plots "nodes available" and "running jobs" over time: the paper
// shows early lockstep dips (dispatcher congestion when many workers free
// simultaneously) that fade as skew accumulates, with running jobs hugging
// the shrinking node count until everything is gone at ~320 s.
#include <cstdio>

#include "core/faults.hh"
#include "harness.hh"

using namespace jets;

int main() {
  bench::figure_header(
      "fig10", "running jobs vs available nodes under fault injection",
      "one pilot killed every 10 s from 32; running jobs track nodes "
      "available; early lockstep dips fade with skew");

  constexpr std::size_t kNodes = 32;
  bench::Bed bed(os::Machine::surveyor(kNodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep"};
  options.service.max_attempts = 100;  // keep retrying onto survivors
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kNodes));

  // More work than the allocation can finish: the run ends when the last
  // worker dies, not when the batch drains.
  std::vector<core::JobSpec> jobs(20'000, bench::seq_job({"sleep", "1"}));

  sim::TimeSeries nodes_available;
  sim::TimeSeries running_jobs;
  core::FaultInjector chaos(bed.machine, jets.worker_pids(), sim::seconds(10),
                            sim::Rng(2011));

  bed.engine.spawn("driver", [](bench::Bed& bed, core::StandaloneJets& jets,
                                std::vector<core::JobSpec> jobs,
                                core::FaultInjector& chaos) -> sim::Task<void> {
    co_await jets.wait_workers();
    jets.service().submit_batch(jobs);
    chaos.start();
  }(bed, jets, std::move(jobs), chaos));

  // Sample both series once per second until all workers are gone.
  for (int t = 1; t <= 400; ++t) {
    bed.engine.run_until(sim::seconds(t));
    nodes_available.add(bed.engine.now(),
                        static_cast<double>(jets.service().connected_workers()));
    running_jobs.add(bed.engine.now(),
                     static_cast<double>(jets.service().running_jobs()));
    if (t > 20 && jets.service().connected_workers() == 0) break;
  }

  std::printf("%-8s %-16s %s\n", "time_s", "nodes_available", "running_jobs");
  const auto& na = nodes_available.points();
  const auto& rj = running_jobs.points();
  for (std::size_t i = 0; i < na.size(); ++i) {
    std::printf("%-8.0f %-16.0f %.0f\n", sim::to_seconds(na[i].first),
                na[i].second, rj[i].second);
  }
  std::printf("# workers killed: %zu\n", chaos.killed());
  return 0;
}
