// Fig 10 — task management in a faulty setting (§6.1.5), extended into a
// fault-spectrum bench.
//
// The paper's protocol: 32 Surveyor workers run a continuous stream of
// short sequential tasks while one randomly selected pilot is terminated
// every 10 s; the figure plots "nodes available" and "running jobs" over
// time, with running jobs hugging the shrinking node count until the
// allocation is gone at ~320 s.
//
// This harness runs the same workload under four fault classes from the
// chaos engine (core/chaos.hh), one scenario per series:
//
//   kill   — the paper's original fault: pilot SIGKILL, service sees EOF.
//   hang   — pilots freeze with their sockets open; only the heartbeat /
//            liveness machinery can detect them, so "nodes available" here
//            counts *usable* workers (connected minus hung-but-undetected).
//            Hangs are permanent: the pool shrinks like the kill series,
//            but each drop lags the fault by the liveness deadline.
//   stall  — 30 s network stalls on random nodes: the service evicts the
//            silent worker (liveness), retries its job elsewhere, and
//            re-enlists the worker when its traffic drains — the pool dips
//            and recovers instead of shrinking.
//   launch — MPI gangs under permanent hangs with the launch-phase deadline
//            (Config::mpi_launch_timeout) armed: a pilot frozen before its
//            proxy dials back fails the gang fast with kLaunchTimeout (an
//            infra-class failure that, with retry.infra_exempt, does not
//            consume the app attempt budget) instead of wedging mpiexec.
//
// Each scenario's trailer prints the service's per-reason failure counters
// (FailureReason taxonomy) and the retry engine's delayed-requeue count.
//
// All scenarios drive faults and placement from fixed seeds; two runs of
// this binary produce byte-identical output.
#include <cstdio>
#include <memory>

#include "core/chaos.hh"
#include "harness.hh"

using namespace jets;

namespace {

struct Scenario {
  const char* label;
  core::FaultKind kind;
  sim::Duration fault_duration;  // stall window; 0 = permanent fault
  bool heartbeats;               // enable worker pings + liveness eviction
  bool mpi = false;              // 2-proc MPI gangs instead of seq tasks
};

void run_scenario(const Scenario& sc) {
  constexpr std::size_t kNodes = 32;
  bench::Bed bed(os::Machine::surveyor(kNodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep", "mpi_sleep"};
  options.service.retry.max_attempts = 100;  // keep retrying onto survivors
  auto registry = std::make_shared<core::WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  if (sc.heartbeats) {
    options.worker.heartbeat_interval = sim::seconds(2);
    options.service.worker_liveness_timeout = sim::seconds(5);
  }
  if (sc.mpi) {
    // The launch series: gangs must finish wiring within 3 s, and launch
    // timeouts are charged to the infra budget, not the app budget.
    options.service.mpi_launch_timeout = sim::seconds(3);
    options.service.retry.infra_exempt = true;
  }
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kNodes));

  // More work than the allocation can finish: the run ends when the last
  // worker dies (kill/hang) or the 400 s observation window closes.
  std::vector<core::JobSpec> jobs(
      sc.mpi ? 5'000 : 20'000,
      sc.mpi ? bench::mpi_job(2, {"mpi_sleep", "1"})
             : bench::seq_job({"sleep", "1"}));

  core::ChaosEngine chaos(bed.machine, sim::Rng(2011).fork(sc.label));
  chaos.set_pilots(jets.worker_pids());
  chaos.set_hang_registry(registry);
  chaos.add_periodic(sc.kind, sim::seconds(10), sim::seconds(10), kNodes,
                     sc.fault_duration);

  bed.engine.spawn("driver", [](core::StandaloneJets& jets,
                                std::vector<core::JobSpec> jobs,
                                core::ChaosEngine& chaos) -> sim::Task<void> {
    co_await jets.wait_workers();
    jets.service().submit_batch(jobs);
    chaos.start();
  }(jets, std::move(jobs), chaos));

  // Sample both series once per second.
  sim::TimeSeries nodes_available;
  sim::TimeSeries running_jobs;
  for (int t = 1; t <= 400; ++t) {
    bed.engine.run_until(sim::seconds(t));
    nodes_available.add(bed.engine.now(),
                        static_cast<double>(jets.service().connected_workers()));
    running_jobs.add(bed.engine.now(),
                     static_cast<double>(jets.service().running_jobs()));
    if (t > 20 && jets.service().connected_workers() == 0) break;
  }

  std::printf("# scenario: %s\n", sc.label);
  std::printf("%-8s %-16s %s\n", "time_s", "nodes_available", "running_jobs");
  const auto& na = nodes_available.points();
  const auto& rj = running_jobs.points();
  for (std::size_t i = 0; i < na.size(); ++i) {
    std::printf("%-8.0f %-16.0f %.0f\n", sim::to_seconds(na[i].first),
                na[i].second, rj[i].second);
  }
  const auto& c = chaos.counters();
  std::printf(
      "# %s: killed=%zu hung=%zu stalled=%zu | evicted=%zu reenlisted=%zu "
      "heartbeats=%zu completed=%zu failed=%zu quarantined=%zu\n",
      sc.label, c.pilots_killed, c.workers_hung, c.nodes_stalled,
      jets.service().evicted_workers(), jets.service().reenlisted_workers(),
      jets.service().heartbeats_received(), jets.service().completed_jobs(),
      jets.service().failed_jobs(), jets.service().quarantined_jobs());
  std::printf("# %s failures:", sc.label);
  for (std::size_t i = 1; i < core::kFailureReasonCount; ++i) {
    const auto reason = static_cast<core::FailureReason>(i);
    std::printf(" %s=%zu", core::to_string(reason),
                jets.service().failures_by_reason(reason));
  }
  std::printf(" | retries_scheduled=%zu\n", jets.service().retries_scheduled());
}

}  // namespace

int main() {
  bench::figure_header(
      "fig10", "running jobs vs available nodes across the fault spectrum",
      "one fault every 10 s on 32 workers; kill and hang series shrink the "
      "pool (hang lagging by the liveness deadline), stall series dips and "
      "recovers via eviction + re-enlistment; launch series runs MPI gangs "
      "with a launch-phase deadline so hung pilots fail fast as "
      "launch-timeout instead of wedging mpiexec");

  run_scenario({"kill", core::FaultKind::kKillPilot, 0, false});
  run_scenario({"hang", core::FaultKind::kHangWorker, 0, true});
  run_scenario({"stall", core::FaultKind::kSocketStall, sim::seconds(30), true});
  run_scenario({"launch", core::FaultKind::kHangWorker, 0, true, /*mpi=*/true});
  return 0;
}
