// Ablation — FCFS vs network-aware worker grouping (§7 future work).
//
// The default JETS behaviour "is to group nodes in first come, first
// served order" without regard for network position (§6.1.4). After the
// ready pool scrambles (variable-duration warm-up jobs), this bench
// measures the average intra-job torus span and pairwise hop distance for
// 8-proc jobs under both policies.
#include <cstdio>

#include "harness.hh"
#include "net/fabric.hh"

using namespace jets;

namespace {

struct Locality {
  double mean_span = 0;  // max - min node id within a job
  double mean_hops = 0;  // average pairwise torus hops
};

Locality run(bool network_aware) {
  constexpr std::size_t kNodes = 256;
  bench::Bed bed(os::Machine::surveyor(kNodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep", "sleep"};
  options.service.network_aware_grouping = network_aware;
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kNodes));

  // Phase 1: variable-duration sequential jobs scramble the ready pool's
  // FCFS order (workers re-enter the pool in completion order). Phase 2:
  // the measured 8-proc MPI jobs place from the full, scrambled pool.
  sim::Rng rng(7);
  std::vector<core::JobSpec> warmup;
  for (std::size_t i = 0; i < kNodes; ++i) {
    warmup.push_back(bench::seq_job(
        {"sleep", std::to_string(rng.uniform(0.5, 6.0))}));
  }
  std::vector<core::JobSpec> measured(128, bench::mpi_job(8, {"mpi_sleep", "2"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    (void)co_await jets.run_batch(warmup);
    report = co_await jets.run_batch(measured);
  });

  const net::TorusShape shape{8, 8, 16};
  Locality loc;
  std::size_t mpi_jobs = 0;
  for (const auto& rec : report.records) {
    if (rec.spec.kind != core::JobKind::kMpi || rec.nodes.empty()) continue;
    ++mpi_jobs;
    auto [mn, mx] = std::minmax_element(rec.nodes.begin(), rec.nodes.end());
    loc.mean_span += static_cast<double>(*mx - *mn);
    double hops = 0;
    int pairs = 0;
    for (std::size_t a = 0; a < rec.nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < rec.nodes.size(); ++b) {
        hops += shape.hops(rec.nodes[a], rec.nodes[b]);
        ++pairs;
      }
    }
    loc.mean_hops += hops / pairs;
  }
  loc.mean_span /= static_cast<double>(mpi_jobs);
  loc.mean_hops /= static_cast<double>(mpi_jobs);
  return loc;
}

}  // namespace

int main() {
  bench::figure_header("abl_grouping", "FCFS vs network-aware worker grouping",
                       "FCFS ignores topology; locality-aware grouping cuts "
                       "intra-job hop distance (§7)");
  std::printf("%-16s %-12s %s\n", "policy", "mean_span", "mean_pair_hops");
  const Locality fcfs = run(false);
  const Locality aware = run(true);
  std::printf("%-16s %-12.1f %.2f\n", "fcfs", fcfs.mean_span, fcfs.mean_hops);
  std::printf("%-16s %-12.1f %.2f\n", "network_aware", aware.mean_span,
              aware.mean_hops);
  return 0;
}
