// Fig 8 — MPI messaging performance on the BG/P (§6.1.3).
//
// Two-node ping-pong, blocking send/recv, timed with MPI_Wtime, in the two
// modes of the paper: "native" (vendor messaging on the torus) and
// "MPICH/sockets" (the MPICH2-over-ZeptoOS-TCP path JETS jobs use).
// Paper: much higher latency for small messages over sockets, and slightly
// lower bandwidth for large ones — "primarily due to the use of TCP".
#include <cstdio>
#include <memory>

#include "harness.hh"
#include "mpi/comm.hh"

using namespace jets;

namespace {

struct PingPongResult {
  double half_rtt_us = 0;   // one-way latency estimate
  double bandwidth_mbps = 0;
};

PingPongResult run_pingpong(bool native, std::size_t bytes, int iters) {
  os::MachineSpec spec = os::Machine::surveyor(64);
  const net::TorusShape shape{4, 4, 4};
  if (native) {
    spec.name = "surveyor-native";
    spec.fabric = std::make_shared<net::TorusNativeFabric>(shape);
  } else {
    spec.fabric = std::make_shared<net::TorusTcpFabric>(shape);
  }
  bench::Bed bed(std::move(spec));
  pmi::MpiexecSpec mspec;
  mspec.user_argv = {"pingpong", std::to_string(iters), std::to_string(bytes)};
  mspec.nprocs = 2;
  pmi::Mpiexec mpx(bed.machine, bed.apps, bed.machine.login_node(), mspec);
  mpx.start();
  auto cmds = mpx.proxy_commands();
  for (std::size_t k = 0; k < cmds.size(); ++k) {
    os::ExecOptions opts;
    opts.binary = pmi::kProxyBinary;
    // Adjacent torus nodes, as a careful benchmarker would pick.
    os::run_command(bed.machine, bed.apps, static_cast<os::NodeId>(k), cmds[k],
                    {}, std::move(opts));
  }
  bed.run([&]() -> sim::Task<void> { (void)co_await mpx.wait(); });

  PingPongResult r;
  if (bed.synthetic.pingpong_rtt.count() > 0) {
    const double rtt = bed.synthetic.pingpong_rtt.mean();
    r.half_rtt_us = rtt / 2.0 * 1e6;
    r.bandwidth_mbps = 2.0 * static_cast<double>(bytes) / rtt / 1e6;
  }
  return r;
}

}  // namespace

int main() {
  bench::figure_header(
      "fig08", "ping-pong latency/bandwidth: native vs MPICH/sockets (BG/P)",
      "sockets mode has order(s)-of-magnitude higher small-message latency "
      "and mildly lower large-message bandwidth than native");
  std::printf("%-10s %-14s %-14s %-14s %s\n", "bytes", "native_lat_us",
              "sockets_lat_us", "native_MB/s", "sockets_MB/s");
  for (std::size_t bytes = 1; bytes <= (4u << 20); bytes *= 4) {
    const auto native = run_pingpong(true, bytes, 20);
    const auto sockets = run_pingpong(false, bytes, 20);
    std::printf("%-10zu %-14.2f %-14.2f %-14.1f %.1f\n", bytes,
                native.half_rtt_us, sockets.half_rtt_us,
                native.bandwidth_mbps, sockets.bandwidth_mbps);
  }
  return 0;
}
