// Fig 18 — REM/Swift results on Eureka (§6.2.2).
//
// The full data-dependent replica-exchange workflow of Figs 16/17, run
// through Swift + Coasters + the MPICH/Coasters MPI path:
//
//  (a) single-process NAMD segments: replicas = 2 x nodes, 4 exchanges,
//      one segment per node. Paper: utilization decreases with allocation
//      size down to 85.4 % at 64 nodes (GPFS small-file contention from
//      many independent replicas).
//  (b) MPI NAMD segments: 8 replicas, 4 concurrent, all 8 cores per node
//      (segment size = alloc/4 nodes x 8 ranks), 6 exchanges. Paper:
//      92.7-95.6 % across 8-64 nodes — MPI use does not constrain
//      utilization, and beats the single-process case.
#include <cstdio>

#include "apps/rem.hh"
#include "harness.hh"
#include "swift/engine.hh"

using namespace jets;

namespace {

struct RemResult {
  double utilization = 0;
  double makespan_s = 0;
  std::size_t segments = 0;
};

RemResult run_rem(std::size_t alloc_nodes, bool mpi) {
  bench::Bed bed(os::Machine::eureka(alloc_nodes));
  swift::CoasterService::Config cfg;
  cfg.worker.task_overhead = bench::kX86WorkerOverhead;
  cfg.worker.stage_files = {pmi::kProxyBinary};  // first-time user: no staging
  cfg.workers_per_node = 1;
  cfg.service.mpi_job_overhead = sim::milliseconds(2);
  cfg.service.proxy_setup_cost = sim::milliseconds(1);
  swift::CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_on(bed.nodes(alloc_nodes));
  swift::SwiftEngine swiftEngine(bed.machine, coasters);

  apps::RemWorkflowConfig rem;
  rem.seed = 2011;
  if (!mpi) {
    // (a): twice as many replicas as nodes, single-process segments.
    rem.replicas = static_cast<int>(alloc_nodes) * 2;
    rem.exchanges = 4;
    rem.mpi = false;
  } else {
    // (b): 8 replicas, 4 concurrent, each segment spans alloc/4 nodes with
    // all 8 cores per node.
    rem.replicas = 8;
    rem.exchanges = 6;
    rem.mpi = true;
    rem.nprocs = static_cast<int>(alloc_nodes) / 4 * 8;
    rem.ppn = 8;
  }
  build_rem_workflow(swiftEngine, rem);

  const sim::Time t0 = bed.engine.now();
  bed.run([&]() -> sim::Task<void> {
    co_await swiftEngine.run_to_completion();
  });

  RemResult out;
  out.segments = swiftEngine.job_records().size();
  out.makespan_s = sim::to_seconds(bed.engine.now() - t0);
  // Utilization as the paper computes it: NAMD-reported wall time vs the
  // allocation's wall time (long-tail and exchange gaps charged against it).
  double busy = 0;
  for (const auto& rec : swiftEngine.job_records()) {
    const double slots = mpi ? static_cast<double>(rec.spec.workers_needed())
                             : 1.0;
    busy += rec.wall_seconds() * slots;
  }
  out.utilization =
      busy / (static_cast<double>(alloc_nodes) * out.makespan_s);
  return out;
}

}  // namespace

int main() {
  bench::figure_header(
      "fig18", "REM/Swift utilization (a: single-process, b: MPI)",
      "(a) decreasing with allocation size, to ~85 % at 64 nodes; "
      "(b) flat 92.7-95.6 % across 8-64 nodes");
  std::printf("# (a) single-process segments, replicas = 2x nodes\n");
  std::printf("%-8s %-10s %-12s %s\n", "nodes", "segments", "makespan_s",
              "utilization");
  for (std::size_t nodes : {4u, 8u, 16u, 32u, 64u}) {
    RemResult r = run_rem(nodes, /*mpi=*/false);
    std::printf("%-8zu %-10zu %-12.0f %.3f\n", nodes, r.segments,
                r.makespan_s, r.utilization);
  }
  std::printf("\n# (b) MPI segments, 8 replicas / 4 concurrent, 8 cores/node\n");
  std::printf("%-8s %-10s %-12s %s\n", "nodes", "segments", "makespan_s",
              "utilization");
  for (std::size_t nodes : {8u, 16u, 32u, 64u}) {
    RemResult r = run_rem(nodes, /*mpi=*/true);
    std::printf("%-8zu %-10zu %-12.0f %.3f\n", nodes, r.segments,
                r.makespan_s, r.utilization);
  }
  return 0;
}
