// Shared runner for the NAMD bag-of-tasks experiments of §6.1.6
// (Figs 11, 12, 13): a batch of 4-processor NAMD segments, sized at six
// executions per node on average, run through stand-alone JETS on Surveyor
// with one worker (MPI process) per node and binaries staged to the
// ramdisk. NAMD I/O goes to the shared parallel filesystem; stdout is
// routed app -> proxy -> mpiexec -> JETS.
#pragma once

#include "harness.hh"

namespace jets::bench {

struct NamdBatchResult {
  core::BatchReport report;
  /// Busy cores over time (1 core per MPI process), for Fig 13.
  sim::TimeSeries load;
  std::uint64_t stdout_bytes = 0;
  /// Staging counters (populated only by the stage_inputs variant).
  std::uint64_t stage_requests = 0;
  std::uint64_t stage_warm_hits = 0;
  std::uint64_t stage_bytes_pushed = 0;
};

inline NamdBatchResult run_namd_batch(std::size_t alloc_nodes, int nproc = 4,
                                      bool stage_inputs = false) {
  Bed bed(os::Machine::surveyor(alloc_nodes));
  auto options = surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "namd_segment"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));

  // Six executions per node on average -> nodes*6/nproc jobs (1,536
  // 4-proc jobs on the full rack, §6.1.6). Round-robin over 32 distinct
  // REM cases, as the paper did with its user-provided batch.
  const std::size_t njobs = alloc_nodes * 6 / static_cast<std::size_t>(nproc);
  // The stage_inputs variant (JETS_STAGING series): each REM case reads its
  // own ~12 MB structure/coordinate blob, staged per-job through the CAS.
  if (stage_inputs) {
    for (int c = 0; c < 32; ++c) {
      bed.machine.shared_fs().put("rem_case_" + std::to_string(c), 12'000'000);
    }
  }
  std::vector<core::JobSpec> jobs;
  jobs.reserve(njobs);
  apps::NamdModel model;  // defaults fit Fig 11
  for (std::size_t j = 0; j < njobs; ++j) {
    jobs.push_back(mpi_job(
        nproc, {"namd_segment", std::to_string(model.median_seconds),
                std::to_string(model.sigma), "case-" + std::to_string(j % 32) +
                    "-" + std::to_string(j / 32)}));
    if (stage_inputs) {
      jobs.back().stage_files = {"rem_case_" + std::to_string(j % 32)};
    }
  }

  NamdBatchResult out;
  sim::TimeWeightedGauge busy;
  jets.service().hooks().on_job_start = [&](const core::JobRecord& r) {
    busy.add(bed.engine.now(), r.spec.nprocs);
  };
  jets.service().hooks().on_job_finish = [&](const core::JobRecord& r) {
    busy.add(bed.engine.now(), -r.spec.nprocs);
  };
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    out.report = co_await jets.run_batch(jobs);
  });
  out.load = busy.series();
  out.stage_requests = jets.service().stage_requests();
  out.stage_warm_hits = jets.service().stage_warm_hits();
  out.stage_bytes_pushed = jets.service().stage_bytes_pushed();
  return out;
}

}  // namespace jets::bench
