// Ablation — FIFO vs priority+backfill scheduling (§7 future work).
//
// The paper keeps FIFO "because it is fast" and notes mixed-size workloads
// are rare in MPTC. This bench quantifies what backfill would buy on such
// a workload: a stream mixing wide (32-proc) and narrow (2-proc) jobs,
// where FIFO's head-of-line blocking idles workers whenever a wide job
// waits for stragglers.
#include <cstdio>

#include "harness.hh"

using namespace jets;

namespace {

struct Outcome {
  double makespan = 0;
  double mean_wait = 0;  // submit -> start, seconds
};

Outcome run(core::SchedPolicy policy, std::uint64_t seed) {
  constexpr std::size_t kNodes = 64;
  bench::Bed bed(os::Machine::breadboard(kNodes));
  auto options = bench::x86_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.policy = policy;
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kNodes));

  sim::Rng rng(seed);
  std::vector<core::JobSpec> jobs;
  for (int i = 0; i < 150; ++i) {
    const bool wide = rng.bernoulli(0.2);
    const double dur = rng.uniform(2.0, 8.0);
    jobs.push_back(bench::mpi_job(wide ? 32 : 2,
                                  {"mpi_sleep", std::to_string(dur)}));
  }
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  Outcome out;
  out.makespan = report.makespan_seconds();
  double wait = 0;
  for (const auto& rec : report.records) {
    wait += sim::to_seconds(rec.started_at - rec.submitted_at);
  }
  out.mean_wait = wait / static_cast<double>(report.records.size());
  return out;
}

}  // namespace

int main() {
  bench::figure_header("abl_scheduler", "FIFO vs priority+backfill, mixed sizes",
                       "backfill shortens makespan and queue waits on "
                       "mixed-size workloads (rare in MPTC, hence FIFO)");
  std::printf("%-12s %-12s %s\n", "policy", "makespan_s", "mean_wait_s");
  const Outcome fifo = run(core::SchedPolicy::kFifo, 42);
  const Outcome backfill = run(core::SchedPolicy::kPriorityBackfill, 42);
  std::printf("%-12s %-12.1f %.1f\n", "fifo", fifo.makespan, fifo.mean_wait);
  std::printf("%-12s %-12.1f %.1f\n", "backfill", backfill.makespan,
              backfill.mean_wait);
  return 0;
}
