// Fig 15 — Swift/Coasters synthetic MPI workloads on Eureka (§6.2.1).
//
// The Fig 14 Swift script: a loop of MPI tasks, each doing barrier / 10 s
// sleep / per-rank rank-file write / barrier, issued through Swift over a
// persistent Coasters allocation. Grid: allocation in {16,32,64} nodes x
// nodes-per-job in {1,2,4} x PPN in {1,2,4,8}.
//
// Paper shape: for a given allocation, utilization falls as task size
// (nodes-per-job) or PPN rises — larger placement fan-out per job, plus
// "increasing PPN exacerbates filesystem delays as the application program
// is read multiple times" (no staging: every rank loads the image from
// GPFS, exactly what this harness reproduces).
#include <cstdio>

#include "harness.hh"
#include "swift/engine.hh"

using namespace jets;

namespace {

double utilization(std::size_t alloc_nodes, int nodes_per_job, int ppn) {
  bench::Bed bed(os::Machine::eureka(alloc_nodes));
  swift::CoasterService::Config cfg;
  cfg.worker.task_overhead = bench::kX86WorkerOverhead;
  // First-time-user configuration (§6.2.1): no staging — programs and data
  // all go to GPFS.
  cfg.worker.stage_files = {pmi::kProxyBinary};
  cfg.workers_per_node = 1;
  cfg.service.dispatch_overhead = sim::microseconds(120);
  cfg.service.mpi_job_overhead = sim::milliseconds(2);
  cfg.service.proxy_setup_cost = sim::milliseconds(1);
  swift::CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_on(bed.nodes(alloc_nodes));
  swift::SwiftEngine swiftEngine(bed.machine, coasters);

  const int nprocs = nodes_per_job * ppn;
  const std::size_t jobs =
      alloc_nodes / static_cast<std::size_t>(nodes_per_job) * 6;
  for (std::size_t j = 0; j < jobs; ++j) {
    swift::AppCall call;
    call.argv = {"mpi_sleep_write", "10", "/gpfs/out" + std::to_string(j)};
    call.mpi = true;
    call.nprocs = nprocs;
    call.ppn = ppn;
    swiftEngine.app(std::move(call));
  }
  const sim::Time t0 = bed.engine.now();
  bed.run([&]() -> sim::Task<void> {
    co_await swiftEngine.run_to_completion();
  });
  // Eq. (1) with the configured 10 s duration, over the slots this
  // configuration can use: alloc_nodes workers x ppn rank slots each.
  const double busy =
      10.0 * static_cast<double>(swiftEngine.completed()) * nprocs;
  const double capacity = static_cast<double>(alloc_nodes) * ppn *
                          sim::to_seconds(bed.engine.now() - t0);
  return busy / capacity;
}

}  // namespace

int main() {
  bench::figure_header(
      "fig15", "Swift/Coasters synthetic MPI workloads (Eureka)",
      "utilization falls with task size and PPN at fixed allocation; "
      "16/32/64-node panels");
  std::printf("%-8s %-14s %-6s %s\n", "nodes", "nodes_per_job", "ppn",
              "utilization");
  for (std::size_t alloc : {16u, 32u, 64u}) {
    for (int npj : {1, 2, 4}) {
      for (int ppn : {1, 2, 4, 8}) {
        std::printf("%-8zu %-14d %-6d %.3f\n", alloc, npj, ppn,
                    utilization(alloc, npj, ppn));
      }
    }
    std::printf("\n");
  }
  return 0;
}
