// Fig 6 — JETS sequential-task launch rate on the Blue Gene/P (§6.1.1).
//
// No-op tasks ("only the cost of the process startup itself") are pushed
// through stand-alone JETS on Surveyor allocations of increasing size,
// with one worker per core (4/node). The paper reports >7,000 launches/s
// on the full rack (1,024 nodes / 4,096 cores) and near-linear scaling
// below that; the single-point "ideal" is one node launching processes
// locally with no communication on all four cores.
#include <cstdio>
#include <cstdlib>

#include "harness.hh"

using namespace jets;

namespace {

struct RatePoint {
  std::size_t workers = 0;
  std::size_t jobs = 0;
  double makespan_s = 0.0;
  double rate = 0.0;  // completed tasks per second of makespan
};

RatePoint jets_rate_point(std::size_t alloc_nodes, int tasks_per_slot,
                          bench::TraceSession& trace) {
  bench::Bed bed(os::Machine::surveyor(alloc_nodes));
  trace.attach(bed);
  auto options = bench::surveyor_options(/*workers_per_node=*/4);
  options.worker.stage_files = {pmi::kProxyBinary, "noop"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  const std::size_t slots = jets.total_slots();
  std::vector<core::JobSpec> jobs(slots * static_cast<std::size_t>(tasks_per_slot),
                                  bench::seq_job({"noop"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  trace.finish();
  RatePoint p;
  p.workers = slots;
  p.jobs = jobs.size();
  p.makespan_s = report.makespan_seconds();
  p.rate = static_cast<double>(report.completed) / p.makespan_s;
  return p;
}

double jets_rate(std::size_t alloc_nodes, int tasks_per_slot,
                 bench::TraceSession& trace) {
  return jets_rate_point(alloc_nodes, tasks_per_slot, trace).rate;
}

/// JETS_STAGING series: the same no-op sweep but with every task naming a
/// shared input blob in stage_files — the launch rate with per-job input
/// staging riding the warm CAS cache, plus the measured warm-hit rate.
void staging_series() {
  std::printf("# staging launch rate with per-job input staging (CAS warm cache)\n");
  for (std::size_t nodes : {32u, 128u, 512u}) {
    bench::Bed bed(os::Machine::surveyor(nodes));
    bed.machine.shared_fs().put("seq_input", 4'000'000);
    auto options = bench::surveyor_options(/*workers_per_node=*/4);
    options.worker.stage_files = {pmi::kProxyBinary, "noop"};
    core::StandaloneJets jets(bed.machine, bed.apps, options);
    jets.start(bed.nodes(nodes));
    core::JobSpec spec = bench::seq_job({"noop"});
    spec.stage_files = {"seq_input"};
    std::vector<core::JobSpec> jobs(jets.total_slots() * 5, spec);
    core::BatchReport report;
    bed.run([&]() -> sim::Task<void> {
      co_await jets.wait_workers();
      report = co_await jets.run_batch(jobs);
    });
    const auto requests = jets.service().stage_requests();
    const double warm_rate =
        requests > 0 ? static_cast<double>(jets.service().stage_warm_hits()) /
                           static_cast<double>(requests)
                     : 0.0;
    std::printf("# staging nodes=%zu cores=%zu jobs_per_s=%.0f warm_rate=%.3f "
                "pushed_mb=%.1f\n",
                nodes, nodes * 4,
                static_cast<double>(report.completed) /
                    report.makespan_seconds(),
                warm_rate,
                static_cast<double>(jets.service().stage_bytes_pushed()) / 1e6);
  }
}

/// The "ideal" point: a single node forking no-ops on its 4 cores with no
/// scheduler or network involved.
double ideal_single_node_rate() {
  bench::Bed bed(os::Machine::surveyor(1));
  constexpr int kPerCore = 50;
  bed.machine.node(0).local_fs().put("noop", 1'000'000);
  bed.run([&]() -> sim::Task<void> {
    for (int core = 0; core < 4; ++core) {
      bed.engine.spawn("forker", [](os::Machine& m) -> sim::Task<void> {
        for (int i = 0; i < kPerCore; ++i) {
          os::ExecOptions opts;
          opts.binary = "noop";
          auto pid = m.exec(0, "noop", []() -> sim::Task<void> { co_return; }(),
                            std::move(opts));
          co_await m.wait(pid);
        }
      }(bed.machine));
    }
    co_return;
  });
  return 4.0 * kPerCore / sim::to_seconds(bed.engine.now());
}

}  // namespace

int main() {
  bench::figure_header(
      "fig06", "sequential task launch rate vs allocation size (Surveyor BG/P)",
      ">7,000 launches/s at 1,024 nodes (4,096 cores); near-linear below; "
      "'ideal' = one node, 4 cores, no JETS");
  std::printf("# ideal_single_node_rate %.1f jobs/s\n", ideal_single_node_rate());
  std::printf("%-8s %-8s %s\n", "nodes", "cores", "jobs_per_s");
  bench::TraceSession trace;
  for (std::size_t nodes : {32u, 64u, 128u, 256u, 512u, 1024u}) {
    const int tasks_per_slot = nodes >= 512 ? 10 : 20;
    const double rate = jets_rate(nodes, tasks_per_slot, trace);
    std::printf("%-8zu %-8zu %.0f\n", nodes, nodes * 4, rate);
  }
  trace.report();
  // Large-N sweep (JETS_LARGE_N): the paper stops at one rack, but the
  // scale tests push the same hot path to 10^4..10^6 workers with ~2
  // no-op tasks each. Rows are '#'-prefixed key=value so bench.sh can
  // fold them into BENCH_sim.json; with the variable unset this block is
  // inert and the output above is byte-identical to the golden manifest.
  if (const int max_exp = bench::large_n_exponent(); max_exp > 0) {
    std::printf("# large-N launch-rate series (workers = 4/node, 2 tasks/slot)\n");
    bench::TraceSession large_trace;
    std::size_t workers = 10'000;
    for (int exp = 4; exp <= max_exp; ++exp, workers *= 10) {
      const auto p = jets_rate_point(workers / 4, /*tasks_per_slot=*/2,
                                     large_trace);
      std::printf("# largeN workers=%zu jobs=%zu tasks_per_s=%.0f "
                  "makespan_s=%.2f\n",
                  p.workers, p.jobs, p.rate, p.makespan_s);
    }
  }
  // Input-staging series (JETS_STAGING): inert when unset, keeping the
  // default output byte-identical to the golden manifest.
  if (std::getenv("JETS_STAGING") != nullptr) staging_series();
  return 0;
}
