// Micro-benchmarks (google-benchmark) for the substrate itself: these
// measure the *host-machine* cost of simulation primitives — event
// throughput, coroutine switches, channel and socket operations, the MD
// kernel — so regressions in the simulator are caught independently of the
// figure harnesses.
#include <benchmark/benchmark.h>

#include "core/staging.hh"
#include "core/standalone.hh"
#include "md/lj_system.hh"
#include "net/socket.hh"
#include "os/cas.hh"
#include "os/machine.hh"
#include "sim/sim.hh"

using namespace jets;

namespace {

void BM_EngineDelayEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const auto n = static_cast<int>(state.range(0));
    e.spawn("ticker", [](int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) co_await sim::delay(sim::microseconds(1));
    }(n));
    e.run();
    benchmark::DoNotOptimize(e.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineDelayEvents)->Arg(1000)->Arg(10000);

void BM_EngineManyActors(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const auto n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      e.spawn("w", [](int i) -> sim::Task<void> {
        co_await sim::delay(sim::microseconds(i % 101));
      }(i));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineManyActors)->Arg(1000)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::Channel<int> a(e), b(e);
    const auto rounds = static_cast<int>(state.range(0));
    e.spawn("ping", [](sim::Channel<int>& a, sim::Channel<int>& b,
                       int rounds) -> sim::Task<void> {
      for (int i = 0; i < rounds; ++i) {
        a.push(i);
        (void)co_await b.recv();
      }
    }(a, b, rounds));
    e.spawn("pong", [](sim::Channel<int>& a, sim::Channel<int>& b,
                       int rounds) -> sim::Task<void> {
      for (int i = 0; i < rounds; ++i) {
        (void)co_await a.recv();
        b.push(i);
      }
    }(a, b, rounds));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000);

void BM_SocketMessageRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    net::Network net(e, std::make_shared<net::EthernetFabric>());
    auto listener = net.listen({1, 9});
    const auto rounds = static_cast<int>(state.range(0));
    e.spawn("server", [](net::Listener& l, int rounds) -> sim::Task<void> {
      auto s = co_await l.accept();
      for (int i = 0; i < rounds; ++i) {
        auto m = co_await s->recv();
        if (!m) co_return;
        s->send(net::Message("pong"));
      }
    }(*listener, rounds));
    e.spawn("client", [](net::Network& net, int rounds) -> sim::Task<void> {
      auto s = co_await net.connect(0, {1, 9});
      for (int i = 0; i < rounds; ++i) {
        s->send(net::Message("ping"));
        (void)co_await s->recv();
      }
    }(net, rounds));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SocketMessageRoundTrip)->Arg(500);

void BM_LjStep(benchmark::State& state) {
  md::LjConfig config;
  config.particles = static_cast<std::size_t>(state.range(0));
  md::LjSystem sys(config);
  for (auto _ : state) {
    sys.step(1);
    benchmark::DoNotOptimize(sys.observe().kinetic);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LjStep)->Arg(108)->Arg(500);

void BM_EngineScheduleCancel(benchmark::State& state) {
  // The liveness/retry-timer pattern that dominates the fault benches: arm
  // a batch of far-future timers, cancel them all before they fire, repeat.
  // In a naive engine every cancelled timer bloats the heap (and keeps its
  // closure alive) until the dead event surfaces at the top.
  const auto rounds = static_cast<int>(state.range(0));
  constexpr int kBatch = 128;
  for (auto _ : state) {
    sim::Engine e;
    e.spawn("churn", [](sim::Engine& e, int rounds) -> sim::Task<void> {
      std::vector<sim::TimerHandle> handles;
      handles.reserve(kBatch);
      for (int r = 0; r < rounds; ++r) {
        for (int k = 0; k < kBatch; ++k) {
          handles.push_back(e.call_in(sim::seconds(1000),
                                      [p = &e, k] { benchmark::DoNotOptimize(p + k); }));
        }
        for (auto& h : handles) h.cancel();
        handles.clear();
        co_await sim::delay(sim::microseconds(1));
      }
    }(e, rounds));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * kBatch);
}
BENCHMARK(BM_EngineScheduleCancel)->Arg(100)->Arg(400);

void BM_EngineTimerDispatch(benchmark::State& state) {
  // Pure callback throughput: n timers at distinct times, all firing.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    std::uint64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      e.call_at(sim::microseconds(i), [&sum, i] { sum += static_cast<std::uint64_t>(i); });
    }
    e.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineTimerDispatch)->Arg(10000);

void BM_ServiceChooseJobBackfill(benchmark::State& state) {
  // Scheduler-pick cost under a deep mixed-priority backlog: q jobs drain
  // through 4 workers, so the service re-evaluates the queue on every
  // settle. A per-kick sort of the backlog makes this quadratic-ish in q.
  const auto q = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    os::Machine machine(engine, os::Machine::breadboard(4));
    os::AppRegistry apps;
    apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
    machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
    apps.install("noop", [](os::Env&) -> sim::Task<void> { co_return; });
    machine.shared_fs().put("noop", 16'384);
    core::StandaloneOptions options;
    options.worker.task_overhead = sim::milliseconds(1);
    options.service.policy = core::SchedPolicy::kPriorityBackfill;
    core::StandaloneJets jets(machine, apps, options);
    jets.start({0, 1, 2, 3});
    std::vector<core::JobSpec> jobs(q);
    for (std::size_t i = 0; i < q; ++i) {
      jobs[i].argv = {"noop"};
      jobs[i].priority = static_cast<int>((i * 2654435761u) % 8);
    }
    engine.spawn("driver", [](core::StandaloneJets& jets,
                              std::vector<core::JobSpec> jobs) -> sim::Task<void> {
      (void)co_await jets.run_batch(std::move(jobs));
    }(jets, std::move(jobs)));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ServiceChooseJobBackfill)->Arg(512);

void BM_ServiceClaimWorkersNetworkAware(benchmark::State& state) {
  // Network-aware grouping cost: every MPI placement scans the ready pool
  // for the minimum node-id span window. A per-claim copy+sort of the whole
  // pool makes each placement O(R log R).
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    os::Machine machine(engine, os::Machine::breadboard(nodes));
    os::AppRegistry apps;
    apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
    machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
    apps.install("mpi_sleep", [](os::Env& env) -> sim::Task<void> {
      co_await sim::delay(sim::milliseconds(1));
      (void)env;
    });
    machine.shared_fs().put("mpi_sleep", 25'000'000);
    core::StandaloneOptions options;
    options.worker.task_overhead = sim::milliseconds(1);
    options.service.network_aware_grouping = true;
    core::StandaloneJets jets(machine, apps, options);
    std::vector<os::NodeId> ids;
    for (std::size_t i = 0; i < nodes; ++i) ids.push_back(static_cast<os::NodeId>(i));
    jets.start(ids);
    std::vector<core::JobSpec> jobs;
    for (int i = 0; i < 64; ++i) {
      core::JobSpec s;
      s.kind = core::JobKind::kMpi;
      s.nprocs = 8;
      s.argv = {"mpi_sleep", "0.001"};
      jobs.push_back(std::move(s));
    }
    engine.spawn("driver", [](core::StandaloneJets& jets,
                              std::vector<core::JobSpec> jobs) -> sim::Task<void> {
      (void)co_await jets.run_batch(std::move(jobs));
    }(jets, std::move(jobs)));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ServiceClaimWorkersNetworkAware)->Arg(256);

void BM_CasStorePutGet(benchmark::State& state) {
  // Host cost of the per-node CAS: digest, insert (backing write + LRU
  // bookkeeping), and touch. Capacity is half the working set, so the put
  // stream continuously evicts — the steady state of a bounded node cache.
  const auto n = static_cast<int>(state.range(0));
  constexpr std::uint64_t kBlobBytes = 1'000'000;
  for (auto _ : state) {
    sim::Engine e;
    os::LocalFs fs(e, sim::microseconds(10), 1e9);
    os::CasStore cas(fs, kBlobBytes * static_cast<std::uint64_t>(n) / 2);
    e.spawn("cas", [](os::CasStore& cas, int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        const std::string path = "blob_" + std::to_string(i);
        const auto d = os::cas_digest(path, kBlobBytes);
        (void)co_await cas.put(d, path, kBlobBytes);
        benchmark::DoNotOptimize(cas.touch(d));
      }
    }(cas, n));
    e.run();
    benchmark::DoNotOptimize(cas.stats().evictions);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_CasStorePutGet)->Arg(1000)->Arg(10000);

void BM_StageFanoutDedup(benchmark::State& state) {
  // Service-side bookkeeping for one staging fan-out at scale: intern each
  // blob, drive the cold wave's per-node pending -> resident transitions,
  // then the warm wave's dedup queries (residency hit + the data-aware
  // window score) — the pure table cost behind stage_job_inputs and
  // claim_best, with no engine or wire traffic.
  const auto nodes = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlobs = 8;
  constexpr std::uint64_t kBlobBytes = 4'000'000;
  for (auto _ : state) {
    sim::Engine e;
    core::StageTable staging;
    core::ResidencyTable residency;
    std::vector<std::pair<core::StageDigest, std::uint64_t>> wanted;
    for (std::size_t b = 0; b < kBlobs; ++b) {
      const std::string path = "input_" + std::to_string(b);
      const auto d = os::cas_digest(path, kBlobBytes);
      (void)staging.intern(d, path, e);
      wanted.emplace_back(d, kBlobBytes);
    }
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto node = static_cast<net::NodeId>(i);
      for (const auto& w : wanted) {
        residency.mark_pending(node, w.first);
        residency.commit(node, w.first);
      }
    }
    std::uint64_t warm = 0, score = 0;
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto node = static_cast<net::NodeId>(i);
      for (const auto& w : wanted) {
        warm += residency.contains(node, w.first) ? 1 : 0;
      }
      score += residency.resident_bytes(node, wanted);
    }
    benchmark::DoNotOptimize(warm);
    benchmark::DoNotOptimize(score);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * kBlobs * 2);
}
BENCHMARK(BM_StageFanoutDedup)->Arg(1000)->Arg(100000);

void BM_JetsSequentialDispatch(benchmark::State& state) {
  // Host cost of simulating one full JETS task cycle (dispatch, exec,
  // done/ready) — the inner loop of the Fig 6/10 harnesses.
  for (auto _ : state) {
    sim::Engine engine;
    os::Machine machine(engine, os::Machine::breadboard(8));
    os::AppRegistry apps;
    apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
    machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
    apps.install("noop", [](os::Env&) -> sim::Task<void> { co_return; });
    machine.shared_fs().put("noop", 16'384);
    core::StandaloneOptions options;
    options.worker.task_overhead = sim::milliseconds(1);
    core::StandaloneJets jets(machine, apps, options);
    jets.start({0, 1, 2, 3, 4, 5, 6, 7});
    std::vector<core::JobSpec> jobs(static_cast<std::size_t>(state.range(0)));
    for (auto& j : jobs) j.argv = {"noop"};
    engine.spawn("driver", [](core::StandaloneJets& jets,
                              std::vector<core::JobSpec> jobs) -> sim::Task<void> {
      (void)co_await jets.run_batch(std::move(jobs));
    }(jets, std::move(jobs)));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JetsSequentialDispatch)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
