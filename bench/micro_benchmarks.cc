// Micro-benchmarks (google-benchmark) for the substrate itself: these
// measure the *host-machine* cost of simulation primitives — event
// throughput, coroutine switches, channel and socket operations, the MD
// kernel — so regressions in the simulator are caught independently of the
// figure harnesses.
#include <benchmark/benchmark.h>

#include "core/standalone.hh"
#include "md/lj_system.hh"
#include "net/socket.hh"
#include "os/machine.hh"
#include "sim/sim.hh"

using namespace jets;

namespace {

void BM_EngineDelayEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const auto n = static_cast<int>(state.range(0));
    e.spawn("ticker", [](int n) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) co_await sim::delay(sim::microseconds(1));
    }(n));
    e.run();
    benchmark::DoNotOptimize(e.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineDelayEvents)->Arg(1000)->Arg(10000);

void BM_EngineManyActors(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    const auto n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      e.spawn("w", [](int i) -> sim::Task<void> {
        co_await sim::delay(sim::microseconds(i % 101));
      }(i));
    }
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineManyActors)->Arg(1000)->Arg(10000);

void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    sim::Channel<int> a(e), b(e);
    const auto rounds = static_cast<int>(state.range(0));
    e.spawn("ping", [](sim::Channel<int>& a, sim::Channel<int>& b,
                       int rounds) -> sim::Task<void> {
      for (int i = 0; i < rounds; ++i) {
        a.push(i);
        (void)co_await b.recv();
      }
    }(a, b, rounds));
    e.spawn("pong", [](sim::Channel<int>& a, sim::Channel<int>& b,
                       int rounds) -> sim::Task<void> {
      for (int i = 0; i < rounds; ++i) {
        (void)co_await a.recv();
        b.push(i);
      }
    }(a, b, rounds));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_ChannelPingPong)->Arg(1000);

void BM_SocketMessageRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    net::Network net(e, std::make_shared<net::EthernetFabric>());
    auto listener = net.listen({1, 9});
    const auto rounds = static_cast<int>(state.range(0));
    e.spawn("server", [](net::Listener& l, int rounds) -> sim::Task<void> {
      auto s = co_await l.accept();
      for (int i = 0; i < rounds; ++i) {
        auto m = co_await s->recv();
        if (!m) co_return;
        s->send(net::Message("pong"));
      }
    }(*listener, rounds));
    e.spawn("client", [](net::Network& net, int rounds) -> sim::Task<void> {
      auto s = co_await net.connect(0, {1, 9});
      for (int i = 0; i < rounds; ++i) {
        s->send(net::Message("ping"));
        (void)co_await s->recv();
      }
    }(net, rounds));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SocketMessageRoundTrip)->Arg(500);

void BM_LjStep(benchmark::State& state) {
  md::LjConfig config;
  config.particles = static_cast<std::size_t>(state.range(0));
  md::LjSystem sys(config);
  for (auto _ : state) {
    sys.step(1);
    benchmark::DoNotOptimize(sys.observe().kinetic);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LjStep)->Arg(108)->Arg(500);

void BM_JetsSequentialDispatch(benchmark::State& state) {
  // Host cost of simulating one full JETS task cycle (dispatch, exec,
  // done/ready) — the inner loop of the Fig 6/10 harnesses.
  for (auto _ : state) {
    sim::Engine engine;
    os::Machine machine(engine, os::Machine::breadboard(8));
    os::AppRegistry apps;
    apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
    machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
    apps.install("noop", [](os::Env&) -> sim::Task<void> { co_return; });
    machine.shared_fs().put("noop", 16'384);
    core::StandaloneOptions options;
    options.worker.task_overhead = sim::milliseconds(1);
    core::StandaloneJets jets(machine, apps, options);
    jets.start({0, 1, 2, 3, 4, 5, 6, 7});
    std::vector<core::JobSpec> jobs(static_cast<std::size_t>(state.range(0)));
    for (auto& j : jobs) j.argv = {"noop"};
    engine.spawn("driver", [](core::StandaloneJets& jets,
                              std::vector<core::JobSpec> jobs) -> sim::Task<void> {
      (void)co_await jets.run_batch(std::move(jobs));
    }(jets, std::move(jobs)));
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JetsSequentialDispatch)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
