// Fig 11 — NAMD wall-time distribution (§6.1.6).
//
// The full-rack (1,024-node) batch of 1,536 4-processor NAMD jobs; the
// paper's histogram has most tasks between 100 and 120 s with a tail
// running up to ~160 s.
#include <cstdio>

#include "namd_batch.hh"

using namespace jets;

int main() {
  bench::figure_header("fig11", "NAMD wall time distribution, full rack",
                       "mode 100-120 s, long tail to ~160 s; 1,536 4-proc jobs");
  auto result = bench::run_namd_batch(1024);
  sim::Summary walls = result.report.wall_times();
  std::printf("# jobs=%zu mean=%.1fs median=%.1fs p95=%.1fs max=%.1fs\n",
              walls.count(), walls.mean(), walls.quantile(0.5),
              walls.quantile(0.95), walls.max());
  sim::Histogram hist(80.0, 180.0, 20);  // 5 s bins
  for (double w : walls.samples()) hist.add(w);
  std::printf("%-10s %-10s %s\n", "bin_lo_s", "bin_hi_s", "count");
  for (std::size_t b = 0; b < hist.bins(); ++b) {
    std::printf("%-10.0f %-10.0f %zu\n", hist.bin_lo(b), hist.bin_hi(b),
                hist.count(b));
  }
  return 0;
}
