// Ablation — node-local staging of binaries (§5 feature 2, §6.1.4).
//
// The same NAMD-like MPI batch run twice on Surveyor: once with the Hydra
// proxy + application image staged to the ZeptoOS ramdisk by the worker
// start-up script, once loading everything from GPFS on every exec. The
// paper claims staging "boosts startup performance and thus utilization
// for ensembles of short jobs"; the effect grows with allocation size as
// concurrent GPFS image reads contend.
//
// With JETS_STAGING set, a second sweep runs the per-job input-staging
// ablation (CAS dedup + warm cache vs naive re-push) and appends
// '# staging '-prefixed rows; unset, the output is byte-identical to the
// golden manifest.
#include <cstdio>
#include <cstdlib>

#include "harness.hh"

using namespace jets;

namespace {

core::BatchReport run(std::size_t alloc_nodes, bool staged) {
  bench::Bed bed(os::Machine::surveyor(alloc_nodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files =
      staged ? std::vector<std::string>{pmi::kProxyBinary, "namd_segment"}
             : std::vector<std::string>{};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  // Short segments make startup overhead visible.
  std::vector<core::JobSpec> jobs(
      alloc_nodes, bench::mpi_job(4, {"namd_segment", "10", "0.3", "short"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  return report;
}

/// Input-staging ablation counters from one ensemble run.
struct StagingPoint {
  double pushed_mb = 0;   // bytes that crossed service->node
  double warm_rate = 0;   // warm hits / (node, blob) requests
  double makespan = 0;
};

/// An ensemble of short width-4 MPI jobs that all read the same two input
/// blobs — the many-parallel-task shape where per-job staging either
/// re-pushes every input for every job (cold baseline, staging_cache off)
/// or stages each distinct blob to a node once and rides warm cache.
StagingPoint run_staging(std::size_t alloc_nodes, bool cache) {
  bench::Bed bed(os::Machine::surveyor(alloc_nodes));
  bed.machine.shared_fs().put("ens_input_a", 8'000'000);
  bed.machine.shared_fs().put("ens_input_b", 2'000'000);
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.service.staging_cache = cache;
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  core::JobSpec spec =
      bench::mpi_job(4, {"namd_segment", "10", "0.3", "short"});
  spec.stage_files = {"ens_input_a", "ens_input_b"};
  // 16 waves over the allocation: every job wants both blobs on each of
  // its 4 nodes, so the naive baseline moves 16x the bytes the cache does.
  std::vector<core::JobSpec> jobs(16 * (alloc_nodes / 4), spec);
  StagingPoint p;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    const core::BatchReport report = co_await jets.run_batch(jobs);
    p.makespan = report.makespan_seconds();
  });
  p.pushed_mb =
      static_cast<double>(jets.service().stage_bytes_pushed()) / 1e6;
  const auto requests = jets.service().stage_requests();
  if (requests > 0) {
    p.warm_rate = static_cast<double>(jets.service().stage_warm_hits()) /
                  static_cast<double>(requests);
  }
  return p;
}

void staging_sweep() {
  std::printf("# staging cold-vs-warm input staging (CAS dedup; JETS_STAGING)\n");
  std::printf("# staging %-8s %-10s %-10s %-10s %-10s %-10s %s\n", "nodes",
              "cold_mb", "warm_mb", "warm_rate", "cold_mksp", "warm_mksp",
              "dedup_x");
  for (std::size_t nodes : {64u, 128u, 256u}) {
    const StagingPoint cold = run_staging(nodes, false);
    const StagingPoint warm = run_staging(nodes, true);
    std::printf("# staging %-8zu %-10.1f %-10.1f %-10.3f %-10.1f %-10.1f %.1f\n",
                nodes, cold.pushed_mb, warm.pushed_mb, warm.warm_rate,
                cold.makespan, warm.makespan,
                warm.pushed_mb > 0 ? cold.pushed_mb / warm.pushed_mb : 0.0);
  }
}

}  // namespace

int main() {
  bench::figure_header("abl_staging",
                       "binary staging to node-local storage vs GPFS loads",
                       "staging boosts startup performance; gap widens with "
                       "allocation size (§6.1.4)");
  std::printf("%-8s %-14s %-14s %s\n", "nodes", "gpfs_makespan",
              "staged_makespan", "speedup");
  for (std::size_t nodes : {64u, 128u, 256u}) {
    const double unstaged = run(nodes, false).makespan_seconds();
    const double staged = run(nodes, true).makespan_seconds();
    std::printf("%-8zu %-14.1f %-14.1f %.2fx\n", nodes, unstaged, staged,
                unstaged / staged);
  }
  // Opt-in extension: golden output above is frozen, so the per-job
  // input-staging ablation only prints when asked for.
  if (std::getenv("JETS_STAGING") != nullptr) staging_sweep();
  return 0;
}
