// Ablation — node-local staging of binaries (§5 feature 2, §6.1.4).
//
// The same NAMD-like MPI batch run twice on Surveyor: once with the Hydra
// proxy + application image staged to the ZeptoOS ramdisk by the worker
// start-up script, once loading everything from GPFS on every exec. The
// paper claims staging "boosts startup performance and thus utilization
// for ensembles of short jobs"; the effect grows with allocation size as
// concurrent GPFS image reads contend.
#include <cstdio>

#include "harness.hh"

using namespace jets;

namespace {

core::BatchReport run(std::size_t alloc_nodes, bool staged) {
  bench::Bed bed(os::Machine::surveyor(alloc_nodes));
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files =
      staged ? std::vector<std::string>{pmi::kProxyBinary, "namd_segment"}
             : std::vector<std::string>{};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  // Short segments make startup overhead visible.
  std::vector<core::JobSpec> jobs(
      alloc_nodes, bench::mpi_job(4, {"namd_segment", "10", "0.3", "short"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  return report;
}

}  // namespace

int main() {
  bench::figure_header("abl_staging",
                       "binary staging to node-local storage vs GPFS loads",
                       "staging boosts startup performance; gap widens with "
                       "allocation size (§6.1.4)");
  std::printf("%-8s %-14s %-14s %s\n", "nodes", "gpfs_makespan",
              "staged_makespan", "speedup");
  for (std::size_t nodes : {64u, 128u, 256u}) {
    const double unstaged = run(nodes, false).makespan_seconds();
    const double staged = run(nodes, true).makespan_seconds();
    std::printf("%-8zu %-14.1f %-14.1f %.2fx\n", nodes, unstaged, staged,
                unstaged / staged);
  }
  return 0;
}
