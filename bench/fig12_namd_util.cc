// Fig 12 — NAMD/JETS utilization vs allocation size (§6.1.6).
//
// Paper: utilization near 90 % across 256-1,024 nodes; losses come from
// ramp-up and the long-tail effect, which amortize in longer runs.
#include <cstdio>

#include "namd_batch.hh"

using namespace jets;

int main() {
  bench::figure_header("fig12", "NAMD/JETS utilization vs allocation size",
                       "~90 % utilization from 256 to 1,024 nodes");
  std::printf("%-8s %-8s %-12s %s\n", "nodes", "jobs", "makespan_s",
              "utilization");
  for (std::size_t nodes : {256u, 512u, 1024u}) {
    auto result = bench::run_namd_batch(nodes);
    std::printf("%-8zu %-8zu %-12.0f %.3f\n", nodes,
                result.report.records.size(),
                result.report.makespan_seconds(),
                result.report.utilization());
  }
  return 0;
}
