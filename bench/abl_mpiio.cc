// Ablation — MPI-IO aggregation vs uncoordinated MTC filesystem access
// (§1.2): "given N MTC processes, the filesystem would be accessed by N
// clients; however, for 16-process MPTC tasks using MPI-IO, the number of
// clients would be N/16."
//
// Two workloads with identical aggregate output (64 ranks x 512 KB of
// small-file writes): the MTC form runs 64 single-process tasks, each its
// own GPFS client; the MPTC form runs four 16-proc MPI jobs whose ranks
// aggregate to one writer via Comm::write_all. We time the I/O phase
// inside the application (so job startup is excluded) and sample the peak
// concurrent GPFS client count during it.
#include <cstdio>

#include "harness.hh"
#include "mpi/comm.hh"

using namespace jets;

namespace {

constexpr std::size_t kRanks = 64;
constexpr std::size_t kBytesPerRank = 512'000;
constexpr unsigned kFilesPerRank = 4;  // small files: metadata-dominated

struct IoResult {
  double mean_io_s = 0;
  std::size_t peak_clients = 0;
};

IoResult run(bool aggregated) {
  bench::Bed bed(os::Machine::eureka(kRanks));
  sim::Summary io_times;

  bed.apps.install("writer_mtc", [&io_times](os::Env& env) -> sim::Task<void> {
    const double t0 = sim::to_seconds(env.machine->engine().now());
    for (unsigned f = 0; f < kFilesPerRank; ++f) {
      co_await env.machine->shared_fs().write(
          "/gpfs/" + env.var("JOB") + "." + std::to_string(f),
          kBytesPerRank / kFilesPerRank);
    }
    io_times.add(sim::to_seconds(env.machine->engine().now()) - t0);
  });
  bed.apps.install("writer_mpiio", [&io_times](os::Env& env) -> sim::Task<void> {
    auto comm = co_await mpi::Comm::init(env);
    co_await comm->barrier();
    const double t0 = comm->wtime();
    for (unsigned f = 0; f < kFilesPerRank; ++f) {
      co_await comm->write_all("/gpfs/agg" + std::to_string(f),
                               kBytesPerRank / kFilesPerRank);
    }
    if (comm->rank() == 0) io_times.add(comm->wtime() - t0);
    co_await comm->finalize();
  });
  bed.machine.shared_fs().put("writer_mtc", 16'384);
  bed.machine.shared_fs().put("writer_mpiio", 1'500'000);

  auto options = bench::x86_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "writer_mtc",
                                "writer_mpiio"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(kRanks));

  std::vector<core::JobSpec> jobs;
  if (aggregated) {
    for (std::size_t j = 0; j < kRanks / 16; ++j) {
      jobs.push_back(bench::mpi_job(16, {"writer_mpiio"}));
    }
  } else {
    for (std::size_t j = 0; j < kRanks; ++j) {
      core::JobSpec s = bench::seq_job({"writer_mtc"});
      s.vars["JOB"] = "out" + std::to_string(j);
      jobs.push_back(std::move(s));
    }
  }

  IoResult out;
  core::BatchReport report;
  // FS-client sampler with shared state: it outlives the driver coroutine
  // (one tick can fire after the batch settles).
  struct Sampler {
    bool running = false;
    std::size_t peak = 0;
  };
  auto sampler = std::make_shared<Sampler>();
  std::function<void()> tick;  // self-rescheduling; alive through the run
  tick = [sampler, machine = &bed.machine, engine = &bed.engine,
          self = &tick]() mutable {
    if (!sampler->running) return;
    sampler->peak =
        std::max(sampler->peak, machine->shared_fs().active_clients());
    engine->call_in(sim::milliseconds(10), *self);
  };
  bed.engine.spawn("driver", [](core::StandaloneJets& jets,
                                std::vector<core::JobSpec> jobs,
                                std::shared_ptr<Sampler> sampler,
                                std::function<void()>* tick,
                                sim::Engine* engine,
                                core::BatchReport& rep) -> sim::Task<void> {
    co_await jets.wait_workers();
    sampler->running = true;  // sample only during the batch, not staging
    engine->call_in(sim::milliseconds(10), *tick);
    rep = co_await jets.run_batch(std::move(jobs));
    sampler->running = false;
  }(jets, std::move(jobs), sampler, &tick, &bed.engine, report));
  bed.engine.run_until(sim::seconds(600));
  out.mean_io_s = io_times.mean();
  out.peak_clients = sampler->peak;
  return out;
}

}  // namespace

int main() {
  bench::figure_header("abl_mpiio",
                       "uncoordinated MTC writes vs MPI-IO aggregation",
                       "N clients vs N/16 clients for the same bytes (§1.2)");
  std::printf("%-12s %-14s %s\n", "mode", "mean_io_s", "peak_fs_clients");
  const IoResult mtc = run(false);
  const IoResult mpiio = run(true);
  std::printf("%-12s %-14.3f %zu\n", "mtc", mtc.mean_io_s, mtc.peak_clients);
  std::printf("%-12s %-14.3f %zu\n", "mpiio", mpiio.mean_io_s,
              mpiio.peak_clients);
  return 0;
}
