// Fig 13 — NAMD/JETS load level over time, full rack (§6.1.6).
//
// Busy cores (one per MPI process) sampled over the 1,536-job batch: a
// fast ramp to ~4,096... in the paper the plot rises to the allocation
// width, stays flat for most of the ~11-minute run, and decays through the
// long tail.
#include <cstdio>

#include "namd_batch.hh"

using namespace jets;

int main() {
  bench::figure_header("fig13", "NAMD/JETS load level (busy cores) over time",
                       "fast ramp, flat plateau near allocation width, "
                       "long-tail decay");
  auto result = bench::run_namd_batch(1024);
  sim::TimeSeries ds = result.load.downsample(120);
  std::printf("%-10s %s\n", "time_s", "busy_cores");
  for (const auto& [t, v] : ds.points()) {
    std::printf("%-10.1f %.0f\n", sim::to_seconds(t), v);
  }
  std::printf("# makespan %.0f s, utilization %.3f\n",
              result.report.makespan_seconds(), result.report.utilization());
  return 0;
}
