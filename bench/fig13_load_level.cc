// Fig 13 — NAMD/JETS load level over time, full rack (§6.1.6).
//
// Busy cores (one per MPI process) sampled over the 1,536-job batch: a
// fast ramp to ~4,096... in the paper the plot rises to the allocation
// width, stays flat for most of the ~11-minute run, and decays through the
// long tail.
#include <cstdio>
#include <cstdlib>

#include "namd_batch.hh"

using namespace jets;

int main() {
  bench::figure_header("fig13", "NAMD/JETS load level (busy cores) over time",
                       "fast ramp, flat plateau near allocation width, "
                       "long-tail decay");
  auto result = bench::run_namd_batch(1024);
  sim::TimeSeries ds = result.load.downsample(120);
  std::printf("%-10s %s\n", "time_s", "busy_cores");
  for (const auto& [t, v] : ds.points()) {
    std::printf("%-10.1f %.0f\n", sim::to_seconds(t), v);
  }
  std::printf("# makespan %.0f s, utilization %.3f\n",
              result.report.makespan_seconds(), result.report.utilization());
  // Large-N sweep (JETS_LARGE_N): same NAMD bag-of-tasks shape at
  // 10^4..10^5 workers (one MPI-process worker per node, 1.5 jobs per
  // worker) — the gang-formation path at scale, complementing fig06's
  // sequential sweep. Capped at 10^5: each job is a 4-proc gang, an order
  // of magnitude more simulation work per task than a no-op launch.
  // Inert with the variable unset, keeping the default output golden.
  if (const int max_exp = bench::large_n_exponent(/*max_exp=*/5); max_exp > 0) {
    std::printf("# large-N load-level series (1 worker/node, 4-proc gangs)\n");
    std::size_t nodes = 10'000;
    for (int exp = 4; exp <= max_exp; ++exp, nodes *= 10) {
      auto big = bench::run_namd_batch(nodes);
      const double makespan = big.report.makespan_seconds();
      std::printf("# largeN workers=%zu jobs=%zu tasks_per_s=%.1f "
                  "makespan_s=%.0f utilization=%.3f\n",
                  nodes, static_cast<std::size_t>(big.report.completed),
                  big.report.completed / makespan, makespan,
                  big.report.utilization());
    }
  }
  // Input-staging series (JETS_STAGING): the same NAMD batch with each REM
  // case's input blob staged per-job through the CAS — reports the warm-hit
  // rate and bytes actually pushed. Inert when unset (golden output).
  if (std::getenv("JETS_STAGING") != nullptr) {
    std::printf("# staging NAMD batch with per-job input staging (32 REM cases)\n");
    for (std::size_t nodes : {256u, 1024u}) {
      auto r = bench::run_namd_batch(nodes, /*nproc=*/4,
                                     /*stage_inputs=*/true);
      const double warm_rate =
          r.stage_requests > 0
              ? static_cast<double>(r.stage_warm_hits) /
                    static_cast<double>(r.stage_requests)
              : 0.0;
      std::printf("# staging nodes=%zu jobs=%zu makespan_s=%.0f "
                  "utilization=%.3f warm_rate=%.3f pushed_mb=%.1f\n",
                  nodes, static_cast<std::size_t>(r.report.completed),
                  r.report.makespan_seconds(), r.report.utilization(),
                  warm_rate,
                  static_cast<double>(r.stage_bytes_pushed) / 1e6);
    }
  }
  return 0;
}
