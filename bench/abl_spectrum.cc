// Ablation — Coasters "multiple-job-size spectrum" allocator (§7).
//
// Provisioning n pilot nodes as one batch request waits long in the system
// queue (queue wait grows with request size); the spectrum allocator
// requests n/2, n/4, ..., 1 concurrently so workers trickle in early. This
// bench measures time-to-first-worker, time-to-half, time-to-all, and the
// makespan of a batch submitted at t=0.
#include <cstdio>

#include "harness.hh"
#include "swift/coasters.hh"

using namespace jets;

namespace {

struct RampResult {
  double first_worker_s = -1;
  double half_workers_s = -1;
  double all_workers_s = -1;
  double batch_done_s = -1;
};

RampResult run(bool spectrum) {
  constexpr std::size_t kTarget = 64;
  bench::Bed bed(os::Machine::eureka(96));
  os::BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(90);
  policy.base_queue_wait = sim::seconds(30);
  policy.wait_per_node = sim::seconds(4);  // big blocks queue long
  os::BatchScheduler sched(bed.machine, policy, sim::Rng(11));

  swift::CoasterService::Config cfg;
  cfg.worker.task_overhead = bench::kX86WorkerOverhead;
  cfg.worker.stage_files = {pmi::kProxyBinary};
  swift::CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_with_blocks(sched, kTarget, sim::seconds(7200), spectrum);

  // Work waiting from t=0: 4x the target node count of 30 s tasks.
  for (std::size_t i = 0; i < kTarget * 4; ++i) {
    coasters.service().submit(bench::seq_job({"sleep", "30"}));
  }

  RampResult r;
  for (int t = 1; t <= 7200; ++t) {
    bed.engine.run_until(sim::seconds(t));
    const auto connected = coasters.service().connected_workers();
    const double now = sim::to_seconds(bed.engine.now());
    if (r.first_worker_s < 0 && connected >= 1) r.first_worker_s = now;
    if (r.half_workers_s < 0 && connected >= kTarget / 2) r.half_workers_s = now;
    if (r.all_workers_s < 0 && connected >= kTarget) r.all_workers_s = now;
    if (coasters.service().completed_jobs() >= kTarget * 4) {
      r.batch_done_s = now;
      break;
    }
  }
  return r;
}

}  // namespace

int main() {
  bench::figure_header("abl_spectrum",
                       "single-block vs spectrum pilot allocation",
                       "spectrum blocks clear the queue early: faster ramp "
                       "and earlier batch completion (§7)");
  std::printf("%-10s %-10s %-10s %-10s %s\n", "mode", "first_s", "half_s",
              "all_s", "batch_done_s");
  const RampResult single = run(false);
  const RampResult spectrum = run(true);
  std::printf("%-10s %-10.0f %-10.0f %-10.0f %.0f\n", "single",
              single.first_worker_s, single.half_workers_s,
              single.all_workers_s, single.batch_done_s);
  std::printf("%-10s %-10.0f %-10.0f %-10.0f %.0f\n", "spectrum",
              spectrum.first_worker_s, spectrum.half_workers_s,
              spectrum.all_workers_s, spectrum.batch_done_s);
  return 0;
}
