// Fig 9 — MPI task launch utilization, BG/P setting (§6.1.4).
//
// Surveyor; barrier / 10 s wait / barrier tasks; one MPI process per node
// (one worker per node, other cores idle); binaries staged to the ZeptoOS
// ramdisk; nodes grouped first-come-first-served. Task sizes 4, 8, and 64
// processes on allocations of 256, 512, and 1,024 nodes, 20 tasks per node.
//
// Paper shape: 4-proc tasks degrade past 512 nodes (central scheduler
// load); 8-proc tasks hold; 64-proc tasks start slow (per-proxy bootstrap
// serialization) so they trail in small allocations, with the penalty
// shrinking as the task becomes a smaller fraction of the allocation.
#include <cstdio>

#include "harness.hh"

using namespace jets;

namespace {

double utilization(std::size_t alloc_nodes, int nproc,
                   bench::TraceSession& trace) {
  bench::Bed bed(os::Machine::surveyor(alloc_nodes));
  trace.attach(bed);
  auto options = bench::surveyor_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  const std::size_t njobs =
      alloc_nodes * 20 / static_cast<std::size_t>(nproc);
  std::vector<core::JobSpec> jobs(njobs,
                                  bench::mpi_job(nproc, {"mpi_sleep", "10"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  trace.finish();
  // Eq. (1) with the configured 10 s duration.
  return 10.0 * static_cast<double>(report.completed) * nproc /
         (static_cast<double>(alloc_nodes) * report.makespan_seconds());
}

}  // namespace

int main() {
  bench::figure_header(
      "fig09", "utilization vs allocation size, 10 s MPI tasks (Surveyor)",
      "4-proc degrades past 512 nodes; 8-proc holds; 64-proc pays a "
      "startup penalty that shrinks with allocation size");
  std::printf("%-8s %-10s %-10s %s\n", "nodes", "4proc", "8proc", "64proc");
  bench::TraceSession trace;
  for (std::size_t nodes : {256u, 512u, 1024u}) {
    // Evaluation order of the three calls must stay fixed (printf argument
    // order is unspecified) so the trace accumulates deterministically.
    const double u4 = utilization(nodes, 4, trace);
    const double u8 = utilization(nodes, 8, trace);
    const double u64 = utilization(nodes, 64, trace);
    std::printf("%-8zu %-10.3f %-10.3f %.3f\n", nodes, u4, u8, u64);
  }
  trace.report();
  return 0;
}
