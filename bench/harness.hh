// Shared infrastructure for the figure-reproduction harnesses.
//
// Each bench binary regenerates one figure of the paper's evaluation (§6):
// it builds the right machine, installs the right apps, runs the workload,
// and prints the figure's series as whitespace-separated rows prefixed by
// '#'-comments describing axes and the paper's reported shape.
//
// Calibration (see DESIGN.md §5): the simulator is tuned to the paper's
// *reported magnitudes*, not to unknown hardware counters. The key knobs:
//
//   kBgpWorkerOverhead   per-task cost of the pilot worker script on an
//                        850 MHz BG/P core, set so a full Surveyor rack
//                        (4,096 worker slots) saturates the central
//                        dispatcher right around the paper's ~7,000
//                        sequential launches/s (Fig 6);
//   dispatch_overhead    central JETS scheduler cost per task message;
//   mpi_job_overhead     per-MPI-job mpiexec spawn on the login node;
//   proxy_setup_cost     serialized Hydra bootstrap per proxy, which makes
//                        wide (64-proc) jobs individually slow to start
//                        (Fig 9);
//   kSshCost             per-host ssh setup paid by the mpiexec/shell-
//                        script baseline (Fig 7).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/namd.hh"
#include "apps/synthetic.hh"
#include "core/service.hh"
#include "core/standalone.hh"
#include "obs/chrome_trace.hh"
#include "obs/phase_table.hh"
#include "obs/tracer.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "pmi/hydra.hh"
#include "sim/sim.hh"

namespace jets::bench {

// --- Calibration constants ---------------------------------------------------

/// Pilot-script per-task cost on a BG/P compute node (Perl/shell on a
/// single 850 MHz PPC450 core).
inline constexpr sim::Duration kBgpWorkerOverhead = sim::milliseconds(450);
/// Same on modern x86 (Breadboard/Eureka).
inline constexpr sim::Duration kX86WorkerOverhead = sim::milliseconds(8);
/// ssh connection + auth per host for the launcher=ssh baseline.
inline constexpr sim::Duration kSshCost = sim::milliseconds(300);
/// Hydra bootstrap serialization on the BG/P login node.
inline constexpr sim::Duration kBgpProxySetup = sim::milliseconds(40);
/// mpiexec fork/wire-up per MPI job on the (shared, busy) BG/P login node.
/// At 48 ms the full-rack 4-proc workload of Fig 9 pushes the dispatcher to
/// saturation — the "load on the central JETS scheduler becoming
/// excessive" that the paper reports past 512 nodes.
inline constexpr sim::Duration kBgpMpiJobOverhead = sim::milliseconds(48);

// --- Test-bed ------------------------------------------------------------------

/// Machine + app registry + binaries, ready to run JETS workloads.
struct Bed {
  sim::Engine engine;
  os::Machine machine;
  os::AppRegistry apps;
  apps::SyntheticResults synthetic;

  explicit Bed(os::MachineSpec spec) : machine(engine, std::move(spec)) {
    apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
    machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
    apps::install_synthetic_apps(apps, &synthetic);
    apps::install_namd_app(apps);
    // Realistic image sizes: the synthetic apps are trivial binaries; the
    // MPI ones carry the MPICH library.
    machine.shared_fs().put("noop", 16'384);
    machine.shared_fs().put("sleep", 16'384);
    // MPI app images carry MPICH + the app (~25 MB); re-read from GPFS by
    // every rank unless staged — the PPN-sensitive cost of Fig 15.
    machine.shared_fs().put("mpi_sleep", 25'000'000);
    machine.shared_fs().put("mpi_sleep_write", 25'000'000);
    machine.shared_fs().put("pingpong", 25'000'000);
    machine.shared_fs().put("namd_segment", 60'000'000);  // NAMD-sized image
  }

  std::vector<os::NodeId> nodes(std::size_t n) const {
    std::vector<os::NodeId> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<os::NodeId>(i));
    return v;
  }

  /// Runs `body` as an actor and drives the engine to quiescence.
  template <typename F>
  void run(F&& body) {
    engine.spawn("bench-driver", std::forward<F>(body)());
    engine.run();
  }
};

// --- Tracing -----------------------------------------------------------------

/// Env-gated span tracing for figure benches. With JETS_TRACE unset this is
/// inert — no tracer is attached and the bench's output is byte-identical
/// to an untraced run. With JETS_TRACE set, attach() wires a fresh
/// obs::Tracer into each data point's Bed; finish() folds its closed spans
/// into one cross-point PhaseTable, which report() prints after the series
/// as '# obs '-prefixed lines (so series parsers that skip comments are
/// unaffected). JETS_TRACE_JSON=<path> additionally writes a Chrome
/// trace-event file for the first traced data point.
struct TraceSession {
  bool enabled = std::getenv("JETS_TRACE") != nullptr;
  const char* json_path = std::getenv("JETS_TRACE_JSON");
  obs::PhaseTable table;
  std::unique_ptr<obs::Tracer> tracer;
  bool json_written = false;

  /// Attaches a fresh tracer to the bed's machine (no-op when disabled).
  void attach(Bed& bed) {
    if (!enabled) return;
    tracer = std::make_unique<obs::Tracer>(bed.engine);
    bed.machine.set_tracer(tracer.get());
  }

  /// Absorbs the current tracer's spans and drops it. Call after the data
  /// point's run completes, before the Bed is destroyed.
  void finish() {
    if (!tracer) return;
    table.absorb(*tracer);
    if (json_path != nullptr && !json_written) {
      json_written = obs::write_chrome_trace(*tracer, json_path);
    }
    tracer.reset();
  }

  /// Prints the accumulated per-phase latency table ('# obs ' lines).
  void report() const {
    if (enabled) std::fputs(table.render().c_str(), stdout);
  }
};

/// Stand-alone JETS options calibrated for Surveyor experiments.
inline core::StandaloneOptions surveyor_options(int workers_per_node) {
  core::StandaloneOptions o;
  o.workers_per_node = workers_per_node;
  o.worker.task_overhead = kBgpWorkerOverhead;
  // The paper's scripts stage the proxy and application binaries to the
  // ZeptoOS ramdisk (§6.1.4); benches extend this list per workload.
  o.worker.stage_files = {pmi::kProxyBinary};
  o.service.dispatch_overhead = sim::microseconds(120);
  o.service.mpi_job_overhead = kBgpMpiJobOverhead;
  o.service.proxy_setup_cost = kBgpProxySetup;
  return o;
}

/// Stand-alone JETS options calibrated for x86 clusters.
inline core::StandaloneOptions x86_options(int workers_per_node) {
  core::StandaloneOptions o;
  o.workers_per_node = workers_per_node;
  o.worker.task_overhead = kX86WorkerOverhead;
  o.worker.stage_files = {pmi::kProxyBinary};
  o.service.dispatch_overhead = sim::microseconds(120);
  o.service.mpi_job_overhead = sim::milliseconds(2);
  o.service.proxy_setup_cost = sim::milliseconds(1);
  return o;
}

inline core::JobSpec mpi_job(int nprocs, std::vector<std::string> argv,
                             int ppn = 1) {
  core::JobSpec s;
  s.kind = core::JobKind::kMpi;
  s.nprocs = nprocs;
  s.ppn = ppn;
  s.argv = std::move(argv);
  return s;
}

inline core::JobSpec seq_job(std::vector<std::string> argv) {
  core::JobSpec s;
  s.argv = std::move(argv);
  return s;
}

inline void figure_header(const char* id, const char* title,
                          const char* paper_shape) {
  std::printf("# %s — %s\n", id, title);
  std::printf("# paper: %s\n", paper_shape);
}

/// JETS_LARGE_N: opt-in scale sweep far past the paper's rack. Returns the
/// largest worker-count exponent to run (10^4 .. 10^e), clamped to
/// [4, `max_exp`]; 0 when the variable is unset, so the default output —
/// and the golden manifest hashes — stay byte-identical. A bare or
/// non-numeric value means "the standard sweep", 10^5.
inline int large_n_exponent(int max_exp = 6) {
  const char* env = std::getenv("JETS_LARGE_N");
  if (env == nullptr) return 0;
  int e = std::atoi(env);
  if (e < 4) e = 5;
  return e < max_exp ? e : max_exp;
}

}  // namespace jets::bench
