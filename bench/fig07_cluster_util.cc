// Fig 7 — MPI task launch utilization, cluster setting (§6.1.2).
//
// Breadboard x86 cluster; the app performs barrier / 1 s wait / barrier.
// JETS runs 4-proc and 8-proc jobs (one process per node) against the
// "shell script" baseline, which repeatedly invokes mpiexec over the whole
// allocation with ssh bootstrap. Paper: JETS ~90 % utilization for these
// single-second tasks, vastly above the shell-script mode.
#include <cstdio>

#include "harness.hh"
#include "pmi/hydra.hh"

using namespace jets;

namespace {

constexpr int kJobsPerWave = 20;  // waves of work per measurement point

double jets_utilization(std::size_t alloc_nodes, int nproc) {
  bench::Bed bed(os::Machine::breadboard(alloc_nodes));
  auto options = bench::x86_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  const std::size_t njobs =
      alloc_nodes / static_cast<std::size_t>(nproc) * kJobsPerWave;
  std::vector<core::JobSpec> jobs(njobs,
                                  bench::mpi_job(nproc, {"mpi_sleep", "1"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  // Eq. (1) with the *configured* 1 s task duration: overheads (startup,
  // barriers, dispatch) count against utilization.
  return 1.0 * static_cast<double>(report.completed) * nproc /
         (static_cast<double>(alloc_nodes) * report.makespan_seconds());
}

/// Baseline: a shell script that calls `mpiexec -n <alloc>` repeatedly —
/// each invocation bootstraps its proxies over ssh, serially.
double shell_script_utilization(std::size_t alloc_nodes) {
  bench::Bed bed(os::Machine::breadboard(alloc_nodes));
  const int waves = kJobsPerWave;
  double busy_seconds = 0;
  bed.run([&]() -> sim::Task<void> {
    for (int w = 0; w < waves; ++w) {
      pmi::MpiexecSpec spec;
      spec.user_argv = {"mpi_sleep", "1"};
      spec.nprocs = static_cast<int>(alloc_nodes);
      pmi::Mpiexec mpx(bed.machine, bed.apps, bed.machine.login_node(), spec);
      mpx.start();
      mpx.launch_via_ssh(bed.nodes(alloc_nodes), bench::kSshCost);
      (void)co_await mpx.wait();
      busy_seconds += 1.0 * static_cast<double>(alloc_nodes);
    }
  });
  const double capacity =
      static_cast<double>(alloc_nodes) * sim::to_seconds(bed.engine.now());
  return busy_seconds / capacity;
}

}  // namespace

int main() {
  bench::figure_header(
      "fig07", "utilization vs allocation size, 1 s MPI tasks (Breadboard)",
      "JETS ~90 % for 4-proc/8-proc single-second tasks; mpiexec shell "
      "script far below and degrading with allocation size");
  std::printf("%-8s %-12s %-12s %s\n", "nodes", "jets_4proc", "jets_8proc",
              "shell_script");
  for (std::size_t nodes : {8u, 16u, 32u, 64u}) {
    std::printf("%-8zu %-12.3f %-12.3f %.3f\n", nodes,
                jets_utilization(nodes, 4), jets_utilization(nodes, 8),
                shell_script_utilization(nodes));
  }
  return 0;
}
