// Fig 7 — MPI task launch utilization, cluster setting (§6.1.2).
//
// Breadboard x86 cluster; the app performs barrier / 1 s wait / barrier.
// JETS runs 4-proc and 8-proc jobs (one process per node) against the
// "shell script" baseline, which repeatedly invokes mpiexec over the whole
// allocation with ssh bootstrap. Paper: JETS ~90 % utilization for these
// single-second tasks, vastly above the shell-script mode.
#include <cstdio>
#include <cstdlib>

#include "core/chaos.hh"
#include "harness.hh"
#include "pmi/hydra.hh"
#include "swift/allocator.hh"

using namespace jets;

namespace {

constexpr int kJobsPerWave = 20;  // waves of work per measurement point

double jets_utilization(std::size_t alloc_nodes, int nproc) {
  bench::Bed bed(os::Machine::breadboard(alloc_nodes));
  auto options = bench::x86_options(/*workers_per_node=*/1);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(bed.nodes(alloc_nodes));
  const std::size_t njobs =
      alloc_nodes / static_cast<std::size_t>(nproc) * kJobsPerWave;
  std::vector<core::JobSpec> jobs(njobs,
                                  bench::mpi_job(nproc, {"mpi_sleep", "1"}));
  core::BatchReport report;
  bed.run([&]() -> sim::Task<void> {
    co_await jets.wait_workers();
    report = co_await jets.run_batch(jobs);
  });
  // Eq. (1) with the *configured* 1 s task duration: overheads (startup,
  // barriers, dispatch) count against utilization.
  return 1.0 * static_cast<double>(report.completed) * nproc /
         (static_cast<double>(alloc_nodes) * report.makespan_seconds());
}

/// Baseline: a shell script that calls `mpiexec -n <alloc>` repeatedly —
/// each invocation bootstraps its proxies over ssh, serially.
double shell_script_utilization(std::size_t alloc_nodes) {
  bench::Bed bed(os::Machine::breadboard(alloc_nodes));
  const int waves = kJobsPerWave;
  double busy_seconds = 0;
  bed.run([&]() -> sim::Task<void> {
    for (int w = 0; w < waves; ++w) {
      pmi::MpiexecSpec spec;
      spec.user_argv = {"mpi_sleep", "1"};
      spec.nprocs = static_cast<int>(alloc_nodes);
      pmi::Mpiexec mpx(bed.machine, bed.apps, bed.machine.login_node(), spec);
      mpx.start();
      mpx.launch_via_ssh(bed.nodes(alloc_nodes), bench::kSshCost);
      (void)co_await mpx.wait();
      busy_seconds += 1.0 * static_cast<double>(alloc_nodes);
    }
  });
  const double capacity =
      static_cast<double>(alloc_nodes) * sim::to_seconds(bed.engine.now());
  return busy_seconds / capacity;
}

// JETS_ELASTIC scenario: the same cluster driven through an elastic
// BlockAllocator instead of a fixed allocation. Two bursts of sequential
// work separated by an idle window, under allocation-denial and preemption
// chaos, with a walltime short enough that blocks expire (and drain) mid
// burst. Emits "# elastic key=value" rows for scripts/bench.sh; the run is
// seeded end to end, so two invocations are byte-identical.
void elastic_scenario() {
  bench::Bed bed(os::Machine::breadboard(32));
  auto options = bench::x86_options(/*workers_per_node=*/1);
  options.worker.stage_files = {"sleep"};
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start({});  // service only; the allocator provisions the pool

  os::BatchScheduler::Policy bp;
  bp.boot_time = sim::seconds(2);
  bp.base_queue_wait = sim::seconds(2);
  bp.wait_per_node = sim::milliseconds(100);
  bp.min_nodes = 1;
  bp.submit_timeout = sim::seconds(30);
  os::BatchScheduler sched(bed.machine, bp, sim::Rng(2011).fork("batch"));

  swift::ElasticPolicy ep;
  ep.min_nodes = 0;
  ep.max_nodes = 16;
  ep.block_size = 4;
  ep.backlog_high = 2;
  ep.poll_interval = sim::seconds(1);
  ep.idle_before_shrink = sim::seconds(6);
  ep.walltime = sim::seconds(45);
  ep.drain_lead = sim::seconds(15);
  ep.drain_grace = sim::seconds(5);
  ep.retry_backoff = sim::seconds(2);
  swift::BlockAllocator alloc(bed.machine, bed.apps, jets.service(), sched,
                              options.worker, ep);

  core::ChaosEngine chaos(bed.machine, sim::Rng(2011).fork("chaos"));
  chaos.set_batch_scheduler(&sched);
  chaos.add({.at = sim::seconds(3), .kind = core::FaultKind::kAllocationDeny});
  chaos.add({.at = sim::seconds(4), .kind = core::FaultKind::kAllocationDeny});
  chaos.add({.at = sim::seconds(40), .kind = core::FaultKind::kPreemption});
  chaos.add({.at = sim::seconds(55), .kind = core::FaultKind::kPreemption});

  const auto burst = [](std::size_t n, int seconds) {
    core::JobSpec spec = bench::seq_job({"sleep", std::to_string(seconds)});
    spec.expected_runtime = sim::seconds(seconds);
    return std::vector<core::JobSpec>(n, spec);
  };

  core::BatchReport r1, r2;
  bed.run([&]() -> sim::Task<void> {
    alloc.start();
    chaos.start();
    r1 = co_await jets.run_batch(burst(60, 1));
    co_await sim::delay(sim::seconds(20));  // idle window: scale-in fires
    r2 = co_await jets.run_batch(burst(240, 2));
    alloc.stop();
  });

  std::size_t lost = 0;
  for (const auto* report : {&r1, &r2}) {
    for (const auto& rec : report->records) {
      if (rec.status != core::JobStatus::kDone &&
          rec.last_reason == core::FailureReason::kWalltimeDrain) {
        ++lost;
      }
    }
  }
  const auto& ec = alloc.counters();
  std::printf("# elastic ramp_s=%.3f\n", sim::to_seconds(alloc.first_grant_at()));
  std::printf("# elastic peak_nodes=%zu\n", alloc.peak_pool_nodes());
  std::printf("# elastic scale_outs=%zu\n", ec.scale_outs);
  std::printf("# elastic scale_ins=%zu\n", ec.scale_ins);
  std::printf("# elastic expiry_drains=%zu\n", ec.expiry_drains);
  std::printf("# elastic preempt_drains=%zu\n", ec.preempt_drains);
  std::printf("# elastic denied=%zu\n", ec.submits_denied);
  std::printf("# elastic submit_retries=%zu\n", ec.submit_retries);
  std::printf("# elastic drain_requeues=%zu\n",
              jets.service().drain_requeues());
  std::printf("# elastic gate_refusals=%zu\n", jets.service().gate_refusals());
  std::printf("# elastic completed=%zu\n", r1.completed + r2.completed);
  std::printf("# elastic failed=%zu\n", r1.failed + r2.failed);
  std::printf("# elastic jobs_lost_to_walltime=%zu\n", lost);
}

}  // namespace

int main() {
  bench::figure_header(
      "fig07", "utilization vs allocation size, 1 s MPI tasks (Breadboard)",
      "JETS ~90 % for 4-proc/8-proc single-second tasks; mpiexec shell "
      "script far below and degrading with allocation size");
  std::printf("%-8s %-12s %-12s %s\n", "nodes", "jets_4proc", "jets_8proc",
              "shell_script");
  for (std::size_t nodes : {8u, 16u, 32u, 64u}) {
    std::printf("%-8zu %-12.3f %-12.3f %.3f\n", nodes,
                jets_utilization(nodes, 4), jets_utilization(nodes, 8),
                shell_script_utilization(nodes));
  }
  // Env-gated so the default table above stays byte-identical to the
  // committed golden manifest.
  if (std::getenv("JETS_ELASTIC") != nullptr) elastic_scenario();
  return 0;
}
