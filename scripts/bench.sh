#!/usr/bin/env bash
# Perf-trajectory harness for the simulation substrate.
#
#   scripts/bench.sh              # append one entry to BENCH_sim.json
#   scripts/bench.sh --check      # run benches, print entry, do not append
#
# Runs the google-benchmark micro suite (engine schedule/cancel/dispatch,
# scheduler choose_job/claim_workers, CAS put/get, stage fan-out dedup)
# plus wall-clock timings of the two headline figure benches (fig06,
# fig09), the abl_staging cold-vs-warm sweep, and the fig07 elastic
# scenario, and appends one JSON entry to
# BENCH_sim.json keyed by commit. The file is an append-only trajectory:
# one entry per measurement, never rewritten, so regressions are visible
# as a time series across PRs. Numbers are host-dependent — compare
# entries only within one machine (the `host` field).
set -euo pipefail
cd "$(dirname "$0")/.."

append=1
[[ "${1:-}" == "--check" ]] && append=0

BUILD="${BUILD:-build}"
OUT="BENCH_sim.json"

if [[ ! -x "$BUILD/bench/micro_benchmarks" ]]; then
  echo "bench.sh: $BUILD/bench/micro_benchmarks not built (run scripts/check.sh first)" >&2
  exit 1
fi

micro_json="$(mktemp)"
trap 'rm -rf "$micro_json"' EXIT

echo "== micro suite (google-benchmark) =="
"$BUILD/bench/micro_benchmarks" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 > "$micro_json"

wall_ns() {  # wall-clock of one figure bench at default scale, output discarded
  local t0 t1
  t0=$(date +%s%N)
  env -u JETS_LARGE_N -u JETS_STAGING -u JETS_ELASTIC "$1" > /dev/null
  t1=$(date +%s%N)
  echo $((t1 - t0))
}

echo "== tracing byte-identity: fig06 with and without JETS_TRACE =="
trace_dir="$(mktemp -d)"
trap 'rm -rf "$micro_json" "$trace_dir"' EXIT
"$BUILD/bench/fig06_seq_rate" > "$trace_dir/plain.txt"
JETS_TRACE=1 "$BUILD/bench/fig06_seq_rate" > "$trace_dir/traced.txt"
if ! cmp -s "$trace_dir/plain.txt" \
            <(grep -v '^# obs' "$trace_dir/traced.txt"); then
  echo "bench.sh: tracing perturbed fig06_seq_rate output" >&2
  diff "$trace_dir/plain.txt" <(grep -v '^# obs' "$trace_dir/traced.txt") >&2 || true
  exit 1
fi
echo "tracing byte-identity: OK"

echo "== figure benches (wall clock) =="
fig06_ns=$(wall_ns "$BUILD/bench/fig06_seq_rate")
fig09_ns=$(wall_ns "$BUILD/bench/fig09_bgp_util")

# Large-N launch-rate series (the tentpole metric): run fig06 through 10^5
# workers and fig13 at 10^4 by default — '# largeN key=value' rows are the
# machine-readable series. JETS_BENCH_LARGE_N=6 cranks fig06 to the
# million-worker point (~80 s extra on a fast host).
large_exp="${JETS_BENCH_LARGE_N:-5}"
echo "== large-N launch-rate series (JETS_LARGE_N=$large_exp) =="
large_n_txt="$trace_dir/large_n.txt"
JETS_LARGE_N="$large_exp" "$BUILD/bench/fig06_seq_rate" \
  | sed -n 's/^# largeN /fig06 /p' > "$large_n_txt"
JETS_LARGE_N=4 "$BUILD/bench/fig13_load_level" \
  | sed -n 's/^# largeN /fig13 /p' >> "$large_n_txt"
cat "$large_n_txt"

# Crash-recovery trajectory: the fig10 recover scenario's MTTR and
# rescued/restarted counters, so recovery-path regressions show up in the
# same time series as the launch-rate numbers.
echo "== crash-recovery scenario (fig10 recover) =="
recover_txt="$trace_dir/recover.txt"
JETS_RECOVER=1 "$BUILD/bench/fig10_faulty" \
  | sed -n 's/^# recover //p' > "$recover_txt"
cat "$recover_txt"

# Input-staging trajectory: the abl_staging cold-vs-warm sweep's pushed
# bytes, warm-hit rate, and dedup factor (JETS_STAGING), so CAS and
# replication-planner regressions show in the same time series.
echo "== input-staging sweep (abl_staging, JETS_STAGING=1) =="
staging_txt="$trace_dir/staging.txt"
JETS_STAGING=1 "$BUILD/bench/abl_staging" \
  | sed -n 's/^# staging \([0-9]\)/\1/p' > "$staging_txt"
cat "$staging_txt"

# Elastic-allocation trajectory: the fig07 elastic scenario's ramp time,
# pool peak, scale-out/in and drain counts (JETS_ELASTIC), so controller
# regressions show in the same time series.
echo "== elastic scenario (fig07, JETS_ELASTIC=1) =="
elastic_txt="$trace_dir/elastic.txt"
JETS_ELASTIC=1 "$BUILD/bench/fig07_cluster_util" \
  | sed -n 's/^# elastic //p' > "$elastic_txt"
cat "$elastic_txt"

commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
date_iso=$(date -u +%Y-%m-%dT%H:%M:%SZ)

entry=$(python3 - "$micro_json" "$commit" "$date_iso" "$fig06_ns" "$fig09_ns" \
        "$large_n_txt" "$recover_txt" "$staging_txt" "$elastic_txt" <<'PY'
import json, platform, sys

(micro_path, commit, date_iso, fig06_ns, fig09_ns, large_n_path,
 recover_path, staging_path, elastic_path) = sys.argv[1:10]
with open(micro_path) as f:
    micro = json.load(f)

# Rows: "pass=<name> k=v ..." from the fig10 recover trailer; numbers are
# kept numeric, yes/NO flags become booleans.
recovery = {}
with open(recover_path) as f:
    for line in f:
        toks = line.split()
        if not toks or not toks[0].startswith("pass="):
            continue
        point = {}
        for kv in toks[1:]:
            k, _, v = kv.partition("=")
            if v in ("yes", "NO"):
                point[k] = v == "yes"
            else:
                try:
                    point[k] = float(v) if "." in v else int(v, 0)
                except ValueError:
                    point[k] = v
        recovery[toks[0].partition("=")[2]] = point

# Rows: "<nodes> <cold_mb> <warm_mb> <warm_rate> <cold_mksp> <warm_mksp>
# <dedup_x>" from the abl_staging cold-vs-warm sweep.
staging = []
with open(staging_path) as f:
    for line in f:
        toks = line.split()
        if len(toks) != 7:
            continue
        staging.append({
            "nodes": int(toks[0]),
            "cold_pushed_mb": float(toks[1]),
            "warm_pushed_mb": float(toks[2]),
            "warm_hit_rate": float(toks[3]),
            "cold_makespan_s": float(toks[4]),
            "warm_makespan_s": float(toks[5]),
            "dedup_x": float(toks[6]),
        })

# Rows: "key=value", one per line, from the fig07 elastic scenario.
elastic = {}
with open(elastic_path) as f:
    for line in f:
        k, sep, v = line.strip().partition("=")
        if not sep:
            continue
        try:
            elastic[k] = float(v) if "." in v else int(v)
        except ValueError:
            elastic[k] = v

# Rows: "<bench> workers=N jobs=N tasks_per_s=R makespan_s=S [utilization=U]"
large_n = []
with open(large_n_path) as f:
    for line in f:
        toks = line.split()
        if not toks:
            continue
        point = {"bench": toks[0]}
        for kv in toks[1:]:
            k, _, v = kv.partition("=")
            point[k] = int(v) if k in ("workers", "jobs") else float(v)
        large_n.append(point)

benches = {}
for b in micro.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    # google-benchmark reports in the unit it chose; normalise to ns.
    scale = {"ns": 1, "us": 1e3, "ms": 1e6, "s": 1e9}[b.get("time_unit", "ns")]
    benches[b["name"]] = {
        "real_time_ns": round(b["real_time"] * scale),
        "cpu_time_ns": round(b["cpu_time"] * scale),
        "iterations": b["iterations"],
    }

entry = {
    "commit": commit,
    "date": date_iso,
    "host": platform.node(),
    "figures_wall_ns": {
        "fig06_seq_rate": int(fig06_ns),
        "fig09_bgp_util": int(fig09_ns),
    },
    "large_n": large_n,
    "recovery": recovery,
    "staging": staging,
    "elastic": elastic,
    "micro": benches,
}
print(json.dumps(entry, indent=2))
PY
)

echo "$entry"

if [[ "$append" == 1 ]]; then
  python3 - "$OUT" <<PY
import json, sys

out = sys.argv[1]
entry = json.loads('''$entry''')
try:
    with open(out) as f:
        trajectory = json.load(f)
except FileNotFoundError:
    trajectory = []
trajectory.append(entry)
with open(out, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
print(f"bench.sh: appended entry for {entry['commit']} to {out} "
      f"({len(trajectory)} entries)")
PY
fi
