#!/usr/bin/env bash
# Byte-identity regression gate for the scheduler and simulator hot path.
#
# Runs all 15 figure benches at their default (committed) scales and
# compares each one's stdout hash against bench/golden_manifest.txt. Any
# refactor of the Service tables, the net layer (including the typed
# rpc::Channel request/response layer the service, worker, and PMI paths
# now ride), or the engine must leave every figure byte-identical; the
# first differing figure fails the run and is named, with a diff-friendly
# copy of its output left in $WORKDIR.
#
# Usage: scheduler_equiv.sh [build-dir]        (default: build)
# Env:   JETS_EQUIV_WORKDIR  where to put fresh outputs
#                            (default: a mktemp -d under /tmp)
#
# To regenerate the manifest after an *intentional* output change:
#   scripts/scheduler_equiv.sh && echo unreachable   # inspect the failure,
#   cp "$WORKDIR"/<figure>.txt output, review, then:
#   (cd "$WORKDIR" && sha256sum * | sed 's/\.txt$//') > bench/golden_manifest.txt
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
MANIFEST="$ROOT/bench/golden_manifest.txt"
WORKDIR="${JETS_EQUIV_WORKDIR:-$(mktemp -d /tmp/jets_equiv.XXXXXX)}"
mkdir -p "$WORKDIR"

if [[ ! -f "$MANIFEST" ]]; then
  echo "scheduler_equiv: missing manifest $MANIFEST" >&2
  exit 2
fi

fail=0
while read -r want name; do
  [[ -z "$name" ]] && continue
  bin="$BUILD/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "scheduler_equiv: FAIL $name (binary not built: $bin)" >&2
    fail=1
    break
  fi
  out="$WORKDIR/$name.txt"
  # Large-N / trace / recovery / staging / elastic env knobs must not leak
  # in: the manifest covers the default scales and scenarios only.
  if ! env -u JETS_LARGE_N -u JETS_TRACE -u JETS_RECOVER -u JETS_STAGING \
      -u JETS_ELASTIC "$bin" > "$out" 2>&1; then
    echo "scheduler_equiv: FAIL $name (bench exited nonzero)" >&2
    fail=1
    break
  fi
  got=$(sha256sum "$out" | cut -d' ' -f1)
  if [[ "$got" != "$want" ]]; then
    echo "scheduler_equiv: FAIL $name (output diverged from golden manifest)" >&2
    echo "  expected sha256 $want" >&2
    echo "  got      sha256 $got" >&2
    echo "  fresh output kept at $out" >&2
    fail=1
    break
  fi
  echo "scheduler_equiv: ok $name"
done < "$MANIFEST"

if [[ "$fail" -ne 0 ]]; then
  exit 1
fi
echo "scheduler_equiv: all 15 figures byte-identical to golden manifest"
