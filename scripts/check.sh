#!/usr/bin/env bash
# Tier-1 verification plus the fault/retry suites under sanitizers.
#
#   scripts/check.sh            # default preset: full suite (tier-1 verify)
#   scripts/check.sh --asan     # also build asan-ubsan and run chaos+retry
#   scripts/check.sh --all      # both of the above
#
# The default preset run is the ROADMAP tier-1 gate: every ctest entry
# (labels unit, property, chaos, retry, obs, scale, recovery, staging,
# elastic, rpc) must pass, and the
# determinism smoke re-runs fig06_seq_rate twice and byte-diffs the
# output — the engine's event order must be a pure function of the
# inputs — then re-runs it with JETS_TRACE=1 and checks that, with the
# '# obs' report lines stripped, the traced output is byte-identical to
# the untraced run (tracing must not perturb the simulation). On top of
# that, scheduler_equiv.sh replays all 15 figure benches against the
# committed golden manifest (hot-path refactors must not move a byte),
# and the scale suite re-runs at 10^5 workers — release build only,
# under a wall-clock budget. The default preset also runs a crash-recovery
# smoke: the fig10 recover scenario (JETS_RECOVER=1) must report replay
# digest/snapshot byte-equality and verbatim preservation of pre-crash
# settled records, and a staging smoke: the JETS_STAGING=1 abl_staging
# sweep must be byte-identical across two runs (warm-cache determinism)
# and its cold/warm dedup factor at least 10x, and an elastic smoke: the
# JETS_ELASTIC=1 fig07 scenario must be byte-identical across two runs and
# lose zero jobs to walltime expiry under allocation chaos. The sanitizer
# pass re-runs the fault-heavy
# suites (-L chaos and -L retry), the recovery suite (-L recovery, whose
# codec tests fuzz the snapshot reader's bounds checks), the staging
# suite (-L staging), plus the
# property suites (including the
# SoA-table churn differentials), the scale suite at its small default N,
# the observability suite (-L obs), the RPC conformance + fuzz battery
# (-L rpc, whose malformed-frame corpus is the decoders' memory-safety
# oracle), and the engine/sync tests, which
# exercise the slab allocators' recycling paths hardest. The sanitizer
# pass also replays scheduler_equiv.sh against the asan build: the typed
# RPC layer must keep all 15 figures byte-identical under instrumentation
# too (same simulation, same bytes).
set -euo pipefail
cd "$(dirname "$0")/.."

run_default=1
run_asan=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_default=0; run_asan=1 ;;
    --all) run_default=1; run_asan=1 ;;
    *) echo "usage: $0 [--asan|--all]" >&2; exit 2 ;;
  esac
done

if [[ "$run_default" == 1 ]]; then
  echo "== tier-1 verify (default preset) =="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"

  echo "== determinism smoke: fig06_seq_rate twice, byte-identical =="
  tmpdir="$(mktemp -d)"
  trap 'rm -rf "$tmpdir"' EXIT
  ./build/bench/fig06_seq_rate > "$tmpdir/fig06_a.txt"
  ./build/bench/fig06_seq_rate > "$tmpdir/fig06_b.txt"
  if ! cmp -s "$tmpdir/fig06_a.txt" "$tmpdir/fig06_b.txt"; then
    echo "determinism smoke FAILED: fig06_seq_rate output differs between runs" >&2
    diff "$tmpdir/fig06_a.txt" "$tmpdir/fig06_b.txt" >&2 || true
    exit 1
  fi
  echo "determinism smoke: OK"

  echo "== tracing smoke: JETS_TRACE=1 fig06 minus '# obs' lines, byte-identical =="
  JETS_TRACE=1 ./build/bench/fig06_seq_rate > "$tmpdir/fig06_traced.txt"
  grep -v '^# obs' "$tmpdir/fig06_traced.txt" > "$tmpdir/fig06_traced_stripped.txt"
  if ! cmp -s "$tmpdir/fig06_a.txt" "$tmpdir/fig06_traced_stripped.txt"; then
    echo "tracing smoke FAILED: tracing perturbed fig06_seq_rate output" >&2
    diff "$tmpdir/fig06_a.txt" "$tmpdir/fig06_traced_stripped.txt" >&2 || true
    exit 1
  fi
  if ! grep -q '^# obs phase' "$tmpdir/fig06_traced.txt"; then
    echo "tracing smoke FAILED: no '# obs' phase table in traced output" >&2
    exit 1
  fi
  echo "tracing smoke: OK"

  echo "== crash-recovery smoke: fig10 recover scenario (checkpoint/restore) =="
  JETS_RECOVER=1 ./build/bench/fig10_faulty > "$tmpdir/fig10_recover.txt"
  for want in 'digest_match=yes' 'snapshot_match=yes' 'preserved_match=yes'; do
    if ! grep -q "$want" "$tmpdir/fig10_recover.txt"; then
      echo "crash-recovery smoke FAILED: missing '$want'" >&2
      grep '^# ' "$tmpdir/fig10_recover.txt" >&2 || true
      exit 1
    fi
  done
  echo "crash-recovery smoke: OK"

  echo "== staging lane: ctest -L staging (release) =="
  ctest --preset default --no-tests=error -L staging -j "$(nproc)"

  echo "== staging smoke: JETS_STAGING=1 abl_staging twice, byte-identical, dedup >= 10x =="
  JETS_STAGING=1 ./build/bench/abl_staging > "$tmpdir/staging_a.txt"
  JETS_STAGING=1 ./build/bench/abl_staging > "$tmpdir/staging_b.txt"
  if ! cmp -s "$tmpdir/staging_a.txt" "$tmpdir/staging_b.txt"; then
    echo "staging smoke FAILED: warm-cache run not deterministic across reruns" >&2
    diff "$tmpdir/staging_a.txt" "$tmpdir/staging_b.txt" >&2 || true
    exit 1
  fi
  # Every '# staging <nodes> ...' data row's last column is the cold/warm
  # dedup factor; the CAS + replication planner must buy at least 10x.
  if ! awk '/^# staging [0-9]/ { rows++; if ($NF + 0 < 10) bad = 1 } \
            END { exit (bad || rows == 0) }' "$tmpdir/staging_a.txt"; then
    echo "staging smoke FAILED: dedup factor below 10x (or no sweep rows)" >&2
    grep '^# staging' "$tmpdir/staging_a.txt" >&2 || true
    exit 1
  fi
  echo "staging smoke: OK"

  echo "== elastic lane: ctest -L elastic (release) =="
  ctest --preset default --no-tests=error -L elastic -j "$(nproc)"

  echo "== rpc lane: ctest -L rpc (release) =="
  ctest --preset default --no-tests=error -L rpc -j "$(nproc)"

  echo "== elastic smoke: JETS_ELASTIC=1 fig07 twice, byte-identical, zero jobs lost =="
  JETS_ELASTIC=1 ./build/bench/fig07_cluster_util > "$tmpdir/elastic_a.txt"
  JETS_ELASTIC=1 ./build/bench/fig07_cluster_util > "$tmpdir/elastic_b.txt"
  if ! cmp -s "$tmpdir/elastic_a.txt" "$tmpdir/elastic_b.txt"; then
    echo "elastic smoke FAILED: elastic run not deterministic across reruns" >&2
    diff "$tmpdir/elastic_a.txt" "$tmpdir/elastic_b.txt" >&2 || true
    exit 1
  fi
  if ! grep -q '^# elastic jobs_lost_to_walltime=0$' "$tmpdir/elastic_a.txt"; then
    echo "elastic smoke FAILED: jobs lost to walltime expiry (or no elastic rows)" >&2
    grep '^# elastic' "$tmpdir/elastic_a.txt" >&2 || true
    exit 1
  fi
  if ! grep -q '^# elastic failed=0$' "$tmpdir/elastic_a.txt"; then
    echo "elastic smoke FAILED: jobs failed under elastic chaos" >&2
    grep '^# elastic' "$tmpdir/elastic_a.txt" >&2 || true
    exit 1
  fi
  echo "elastic smoke: OK"

  echo "== scheduler equivalence: 15 figures vs golden manifest =="
  ./scripts/scheduler_equiv.sh build

  echo "== scale suite at 10^5 workers (release build, 10 min budget) =="
  JETS_SCALE_N=100000 timeout 600 ./build/tests/scale_test
  echo "large-N scale suite: OK"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== chaos + retry + property + engine under ASan/UBSan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L chaos -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L retry -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L property -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L scale -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L obs -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L recovery -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L staging -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L elastic -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -L rpc -j "$(nproc)"
  ctest --preset asan-ubsan --no-tests=error -j "$(nproc)" \
    -R '^(Engine|Channel|Semaphore|Gate|Time|Rng)\.'

  echo "== scheduler equivalence vs golden manifest (asan build) =="
  ./scripts/scheduler_equiv.sh build-asan
fi

echo "check.sh: OK"
