#!/usr/bin/env bash
# Tier-1 verification plus the fault/retry suites under sanitizers.
#
#   scripts/check.sh            # default preset: full suite (tier-1 verify)
#   scripts/check.sh --asan     # also build asan-ubsan and run chaos+retry
#   scripts/check.sh --all      # both of the above
#
# The default preset run is the ROADMAP tier-1 gate: every ctest entry
# (labels unit, property, chaos, retry) must pass. The sanitizer pass
# re-runs only the fault-heavy suites (-L chaos and -L retry), which are
# the ones most likely to surface lifetime bugs in the retry engine's
# timer plumbing.
set -euo pipefail
cd "$(dirname "$0")/.."

run_default=1
run_asan=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_default=0; run_asan=1 ;;
    --all) run_default=1; run_asan=1 ;;
    *) echo "usage: $0 [--asan|--all]" >&2; exit 2 ;;
  esac
done

if [[ "$run_default" == 1 ]]; then
  echo "== tier-1 verify (default preset) =="
  cmake --preset default
  cmake --build --preset default -j "$(nproc)"
  ctest --preset default -j "$(nproc)"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== chaos + retry under ASan/UBSan =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$(nproc)"
  ctest --preset asan-ubsan -L chaos -j "$(nproc)"
  ctest --preset asan-ubsan -L retry -j "$(nproc)"
fi

echo "check.sh: OK"
