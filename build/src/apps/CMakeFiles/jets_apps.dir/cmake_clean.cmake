file(REMOVE_RECURSE
  "CMakeFiles/jets_apps.dir/namd.cc.o"
  "CMakeFiles/jets_apps.dir/namd.cc.o.d"
  "CMakeFiles/jets_apps.dir/rem.cc.o"
  "CMakeFiles/jets_apps.dir/rem.cc.o.d"
  "CMakeFiles/jets_apps.dir/synthetic.cc.o"
  "CMakeFiles/jets_apps.dir/synthetic.cc.o.d"
  "libjets_apps.a"
  "libjets_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
