# Empty dependencies file for jets_apps.
# This may be replaced when dependencies are built.
