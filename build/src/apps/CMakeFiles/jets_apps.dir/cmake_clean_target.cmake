file(REMOVE_RECURSE
  "libjets_apps.a"
)
