file(REMOVE_RECURSE
  "CMakeFiles/jets_net.dir/fabric.cc.o"
  "CMakeFiles/jets_net.dir/fabric.cc.o.d"
  "CMakeFiles/jets_net.dir/socket.cc.o"
  "CMakeFiles/jets_net.dir/socket.cc.o.d"
  "libjets_net.a"
  "libjets_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
