file(REMOVE_RECURSE
  "libjets_net.a"
)
