# Empty compiler generated dependencies file for jets_net.
# This may be replaced when dependencies are built.
