# Empty dependencies file for jets_md.
# This may be replaced when dependencies are built.
