
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/md/analysis.cc" "src/md/CMakeFiles/jets_md.dir/analysis.cc.o" "gcc" "src/md/CMakeFiles/jets_md.dir/analysis.cc.o.d"
  "/root/repo/src/md/lj_system.cc" "src/md/CMakeFiles/jets_md.dir/lj_system.cc.o" "gcc" "src/md/CMakeFiles/jets_md.dir/lj_system.cc.o.d"
  "/root/repo/src/md/replica_exchange.cc" "src/md/CMakeFiles/jets_md.dir/replica_exchange.cc.o" "gcc" "src/md/CMakeFiles/jets_md.dir/replica_exchange.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
