file(REMOVE_RECURSE
  "libjets_md.a"
)
