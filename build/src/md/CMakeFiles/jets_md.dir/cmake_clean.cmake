file(REMOVE_RECURSE
  "CMakeFiles/jets_md.dir/analysis.cc.o"
  "CMakeFiles/jets_md.dir/analysis.cc.o.d"
  "CMakeFiles/jets_md.dir/lj_system.cc.o"
  "CMakeFiles/jets_md.dir/lj_system.cc.o.d"
  "CMakeFiles/jets_md.dir/replica_exchange.cc.o"
  "CMakeFiles/jets_md.dir/replica_exchange.cc.o.d"
  "libjets_md.a"
  "libjets_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
