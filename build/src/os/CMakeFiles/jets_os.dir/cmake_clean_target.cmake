file(REMOVE_RECURSE
  "libjets_os.a"
)
