
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/fairshare.cc" "src/os/CMakeFiles/jets_os.dir/fairshare.cc.o" "gcc" "src/os/CMakeFiles/jets_os.dir/fairshare.cc.o.d"
  "/root/repo/src/os/filesystem.cc" "src/os/CMakeFiles/jets_os.dir/filesystem.cc.o" "gcc" "src/os/CMakeFiles/jets_os.dir/filesystem.cc.o.d"
  "/root/repo/src/os/machine.cc" "src/os/CMakeFiles/jets_os.dir/machine.cc.o" "gcc" "src/os/CMakeFiles/jets_os.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/jets_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jets_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
