# Empty dependencies file for jets_os.
# This may be replaced when dependencies are built.
