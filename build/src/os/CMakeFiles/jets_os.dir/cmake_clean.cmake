file(REMOVE_RECURSE
  "CMakeFiles/jets_os.dir/fairshare.cc.o"
  "CMakeFiles/jets_os.dir/fairshare.cc.o.d"
  "CMakeFiles/jets_os.dir/filesystem.cc.o"
  "CMakeFiles/jets_os.dir/filesystem.cc.o.d"
  "CMakeFiles/jets_os.dir/machine.cc.o"
  "CMakeFiles/jets_os.dir/machine.cc.o.d"
  "libjets_os.a"
  "libjets_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
