file(REMOVE_RECURSE
  "CMakeFiles/jets_sim.dir/engine.cc.o"
  "CMakeFiles/jets_sim.dir/engine.cc.o.d"
  "CMakeFiles/jets_sim.dir/stats.cc.o"
  "CMakeFiles/jets_sim.dir/stats.cc.o.d"
  "libjets_sim.a"
  "libjets_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
