# Empty compiler generated dependencies file for jets_sim.
# This may be replaced when dependencies are built.
