file(REMOVE_RECURSE
  "libjets_sim.a"
)
