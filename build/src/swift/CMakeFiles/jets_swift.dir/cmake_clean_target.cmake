file(REMOVE_RECURSE
  "libjets_swift.a"
)
