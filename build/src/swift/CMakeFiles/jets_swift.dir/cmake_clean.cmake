file(REMOVE_RECURSE
  "CMakeFiles/jets_swift.dir/coasters.cc.o"
  "CMakeFiles/jets_swift.dir/coasters.cc.o.d"
  "CMakeFiles/jets_swift.dir/engine.cc.o"
  "CMakeFiles/jets_swift.dir/engine.cc.o.d"
  "CMakeFiles/jets_swift.dir/script.cc.o"
  "CMakeFiles/jets_swift.dir/script.cc.o.d"
  "libjets_swift.a"
  "libjets_swift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_swift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
