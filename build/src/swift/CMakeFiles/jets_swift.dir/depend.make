# Empty dependencies file for jets_swift.
# This may be replaced when dependencies are built.
