# Empty dependencies file for jets_core.
# This may be replaced when dependencies are built.
