file(REMOVE_RECURSE
  "CMakeFiles/jets_core.dir/job.cc.o"
  "CMakeFiles/jets_core.dir/job.cc.o.d"
  "CMakeFiles/jets_core.dir/service.cc.o"
  "CMakeFiles/jets_core.dir/service.cc.o.d"
  "CMakeFiles/jets_core.dir/standalone.cc.o"
  "CMakeFiles/jets_core.dir/standalone.cc.o.d"
  "CMakeFiles/jets_core.dir/worker.cc.o"
  "CMakeFiles/jets_core.dir/worker.cc.o.d"
  "libjets_core.a"
  "libjets_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
