file(REMOVE_RECURSE
  "libjets_core.a"
)
