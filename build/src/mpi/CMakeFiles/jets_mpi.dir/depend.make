# Empty dependencies file for jets_mpi.
# This may be replaced when dependencies are built.
