file(REMOVE_RECURSE
  "libjets_mpi.a"
)
