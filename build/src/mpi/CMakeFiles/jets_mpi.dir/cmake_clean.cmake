file(REMOVE_RECURSE
  "CMakeFiles/jets_mpi.dir/comm.cc.o"
  "CMakeFiles/jets_mpi.dir/comm.cc.o.d"
  "libjets_mpi.a"
  "libjets_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
