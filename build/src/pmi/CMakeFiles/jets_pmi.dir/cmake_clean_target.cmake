file(REMOVE_RECURSE
  "libjets_pmi.a"
)
