file(REMOVE_RECURSE
  "CMakeFiles/jets_pmi.dir/client.cc.o"
  "CMakeFiles/jets_pmi.dir/client.cc.o.d"
  "CMakeFiles/jets_pmi.dir/hydra.cc.o"
  "CMakeFiles/jets_pmi.dir/hydra.cc.o.d"
  "libjets_pmi.a"
  "libjets_pmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jets_pmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
