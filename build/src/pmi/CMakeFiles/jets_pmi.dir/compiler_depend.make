# Empty compiler generated dependencies file for jets_pmi.
# This may be replaced when dependencies are built.
