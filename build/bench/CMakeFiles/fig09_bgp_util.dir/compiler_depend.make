# Empty compiler generated dependencies file for fig09_bgp_util.
# This may be replaced when dependencies are built.
