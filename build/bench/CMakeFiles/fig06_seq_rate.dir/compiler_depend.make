# Empty compiler generated dependencies file for fig06_seq_rate.
# This may be replaced when dependencies are built.
