# Empty dependencies file for abl_spectrum.
# This may be replaced when dependencies are built.
