file(REMOVE_RECURSE
  "CMakeFiles/abl_spectrum.dir/abl_spectrum.cc.o"
  "CMakeFiles/abl_spectrum.dir/abl_spectrum.cc.o.d"
  "abl_spectrum"
  "abl_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
