file(REMOVE_RECURSE
  "CMakeFiles/fig10_faulty.dir/fig10_faulty.cc.o"
  "CMakeFiles/fig10_faulty.dir/fig10_faulty.cc.o.d"
  "fig10_faulty"
  "fig10_faulty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_faulty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
