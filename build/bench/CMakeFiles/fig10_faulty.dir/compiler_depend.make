# Empty compiler generated dependencies file for fig10_faulty.
# This may be replaced when dependencies are built.
