
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_faulty.cc" "bench/CMakeFiles/fig10_faulty.dir/fig10_faulty.cc.o" "gcc" "bench/CMakeFiles/fig10_faulty.dir/fig10_faulty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jets_core.dir/DependInfo.cmake"
  "/root/repo/build/src/swift/CMakeFiles/jets_swift.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/jets_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/md/CMakeFiles/jets_md.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/jets_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/pmi/CMakeFiles/jets_pmi.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/jets_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jets_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jets_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
