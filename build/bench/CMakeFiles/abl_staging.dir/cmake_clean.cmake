file(REMOVE_RECURSE
  "CMakeFiles/abl_staging.dir/abl_staging.cc.o"
  "CMakeFiles/abl_staging.dir/abl_staging.cc.o.d"
  "abl_staging"
  "abl_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
