file(REMOVE_RECURSE
  "CMakeFiles/abl_grouping.dir/abl_grouping.cc.o"
  "CMakeFiles/abl_grouping.dir/abl_grouping.cc.o.d"
  "abl_grouping"
  "abl_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
