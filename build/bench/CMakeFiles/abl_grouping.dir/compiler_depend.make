# Empty compiler generated dependencies file for abl_grouping.
# This may be replaced when dependencies are built.
