file(REMOVE_RECURSE
  "CMakeFiles/fig18_rem.dir/fig18_rem.cc.o"
  "CMakeFiles/fig18_rem.dir/fig18_rem.cc.o.d"
  "fig18_rem"
  "fig18_rem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_rem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
