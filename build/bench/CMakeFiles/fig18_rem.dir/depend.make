# Empty dependencies file for fig18_rem.
# This may be replaced when dependencies are built.
