file(REMOVE_RECURSE
  "CMakeFiles/fig07_cluster_util.dir/fig07_cluster_util.cc.o"
  "CMakeFiles/fig07_cluster_util.dir/fig07_cluster_util.cc.o.d"
  "fig07_cluster_util"
  "fig07_cluster_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_cluster_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
