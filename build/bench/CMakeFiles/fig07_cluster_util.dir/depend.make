# Empty dependencies file for fig07_cluster_util.
# This may be replaced when dependencies are built.
