# Empty compiler generated dependencies file for fig15_swift_synth.
# This may be replaced when dependencies are built.
