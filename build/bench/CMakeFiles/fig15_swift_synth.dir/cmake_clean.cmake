file(REMOVE_RECURSE
  "CMakeFiles/fig15_swift_synth.dir/fig15_swift_synth.cc.o"
  "CMakeFiles/fig15_swift_synth.dir/fig15_swift_synth.cc.o.d"
  "fig15_swift_synth"
  "fig15_swift_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_swift_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
