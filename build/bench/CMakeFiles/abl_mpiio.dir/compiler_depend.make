# Empty compiler generated dependencies file for abl_mpiio.
# This may be replaced when dependencies are built.
