file(REMOVE_RECURSE
  "CMakeFiles/abl_mpiio.dir/abl_mpiio.cc.o"
  "CMakeFiles/abl_mpiio.dir/abl_mpiio.cc.o.d"
  "abl_mpiio"
  "abl_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
