file(REMOVE_RECURSE
  "CMakeFiles/fig11_namd_dist.dir/fig11_namd_dist.cc.o"
  "CMakeFiles/fig11_namd_dist.dir/fig11_namd_dist.cc.o.d"
  "fig11_namd_dist"
  "fig11_namd_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_namd_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
