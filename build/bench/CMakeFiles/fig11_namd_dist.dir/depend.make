# Empty dependencies file for fig11_namd_dist.
# This may be replaced when dependencies are built.
