# Empty dependencies file for fig12_namd_util.
# This may be replaced when dependencies are built.
