file(REMOVE_RECURSE
  "CMakeFiles/fig12_namd_util.dir/fig12_namd_util.cc.o"
  "CMakeFiles/fig12_namd_util.dir/fig12_namd_util.cc.o.d"
  "fig12_namd_util"
  "fig12_namd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_namd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
