# Empty dependencies file for fig08_pingpong.
# This may be replaced when dependencies are built.
