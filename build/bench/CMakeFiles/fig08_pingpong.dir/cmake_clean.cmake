file(REMOVE_RECURSE
  "CMakeFiles/fig08_pingpong.dir/fig08_pingpong.cc.o"
  "CMakeFiles/fig08_pingpong.dir/fig08_pingpong.cc.o.d"
  "fig08_pingpong"
  "fig08_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
