file(REMOVE_RECURSE
  "CMakeFiles/fig13_load_level.dir/fig13_load_level.cc.o"
  "CMakeFiles/fig13_load_level.dir/fig13_load_level.cc.o.d"
  "fig13_load_level"
  "fig13_load_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_load_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
