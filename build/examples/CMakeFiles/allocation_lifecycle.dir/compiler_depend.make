# Empty compiler generated dependencies file for allocation_lifecycle.
# This may be replaced when dependencies are built.
