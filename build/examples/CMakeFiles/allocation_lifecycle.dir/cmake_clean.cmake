file(REMOVE_RECURSE
  "CMakeFiles/allocation_lifecycle.dir/allocation_lifecycle.cpp.o"
  "CMakeFiles/allocation_lifecycle.dir/allocation_lifecycle.cpp.o.d"
  "allocation_lifecycle"
  "allocation_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocation_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
