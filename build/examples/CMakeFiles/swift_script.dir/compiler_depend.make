# Empty compiler generated dependencies file for swift_script.
# This may be replaced when dependencies are built.
