file(REMOVE_RECURSE
  "CMakeFiles/swift_script.dir/swift_script.cpp.o"
  "CMakeFiles/swift_script.dir/swift_script.cpp.o.d"
  "swift_script"
  "swift_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
