file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_sweep.dir/fault_tolerant_sweep.cpp.o"
  "CMakeFiles/fault_tolerant_sweep.dir/fault_tolerant_sweep.cpp.o.d"
  "fault_tolerant_sweep"
  "fault_tolerant_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
