# Empty dependencies file for fault_tolerant_sweep.
# This may be replaced when dependencies are built.
