file(REMOVE_RECURSE
  "CMakeFiles/rem_workflow.dir/rem_workflow.cpp.o"
  "CMakeFiles/rem_workflow.dir/rem_workflow.cpp.o.d"
  "rem_workflow"
  "rem_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rem_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
