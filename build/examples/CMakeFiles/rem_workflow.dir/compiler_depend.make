# Empty compiler generated dependencies file for rem_workflow.
# This may be replaced when dependencies are built.
