file(REMOVE_RECURSE
  "CMakeFiles/md_quickstart.dir/md_quickstart.cpp.o"
  "CMakeFiles/md_quickstart.dir/md_quickstart.cpp.o.d"
  "md_quickstart"
  "md_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
