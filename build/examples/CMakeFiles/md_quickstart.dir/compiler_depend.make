# Empty compiler generated dependencies file for md_quickstart.
# This may be replaced when dependencies are built.
