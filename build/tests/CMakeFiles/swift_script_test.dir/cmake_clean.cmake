file(REMOVE_RECURSE
  "CMakeFiles/swift_script_test.dir/swift_script_test.cc.o"
  "CMakeFiles/swift_script_test.dir/swift_script_test.cc.o.d"
  "swift_script_test"
  "swift_script_test.pdb"
  "swift_script_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_script_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
