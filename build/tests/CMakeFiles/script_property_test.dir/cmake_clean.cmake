file(REMOVE_RECURSE
  "CMakeFiles/script_property_test.dir/script_property_test.cc.o"
  "CMakeFiles/script_property_test.dir/script_property_test.cc.o.d"
  "script_property_test"
  "script_property_test.pdb"
  "script_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
