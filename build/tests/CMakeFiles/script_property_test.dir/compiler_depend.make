# Empty compiler generated dependencies file for script_property_test.
# This may be replaced when dependencies are built.
