file(REMOVE_RECURSE
  "CMakeFiles/md_test.dir/md_test.cc.o"
  "CMakeFiles/md_test.dir/md_test.cc.o.d"
  "md_test"
  "md_test.pdb"
  "md_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
