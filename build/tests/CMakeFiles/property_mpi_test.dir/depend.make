# Empty dependencies file for property_mpi_test.
# This may be replaced when dependencies are built.
