file(REMOVE_RECURSE
  "CMakeFiles/property_mpi_test.dir/property_mpi_test.cc.o"
  "CMakeFiles/property_mpi_test.dir/property_mpi_test.cc.o.d"
  "property_mpi_test"
  "property_mpi_test.pdb"
  "property_mpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
