# Empty compiler generated dependencies file for mpi_io_test.
# This may be replaced when dependencies are built.
