file(REMOVE_RECURSE
  "CMakeFiles/property_jets_test.dir/property_jets_test.cc.o"
  "CMakeFiles/property_jets_test.dir/property_jets_test.cc.o.d"
  "property_jets_test"
  "property_jets_test.pdb"
  "property_jets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_jets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
