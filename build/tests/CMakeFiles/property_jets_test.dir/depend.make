# Empty dependencies file for property_jets_test.
# This may be replaced when dependencies are built.
