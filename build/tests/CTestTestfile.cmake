# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_sync_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/pmi_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/core_job_test[1]_include.cmake")
include("/root/repo/build/tests/core_service_test[1]_include.cmake")
include("/root/repo/build/tests/md_test[1]_include.cmake")
include("/root/repo/build/tests/swift_test[1]_include.cmake")
include("/root/repo/build/tests/swift_script_test[1]_include.cmake")
include("/root/repo/build/tests/property_sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_net_test[1]_include.cmake")
include("/root/repo/build/tests/property_mpi_test[1]_include.cmake")
include("/root/repo/build/tests/property_jets_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_io_test[1]_include.cmake")
include("/root/repo/build/tests/core_worker_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/script_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
