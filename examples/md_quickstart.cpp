// The molecular dynamics kernel on its own: a real Lennard-Jones NVE run
// with energy accounting, then a replica-exchange study showing how the
// exchange acceptance rate depends on the temperature-ladder span — the
// physics knob the paper's REM users tune (§3).
//
// Everything here is genuine computation (no simulated time involved);
// this is the code that calibrates the NAMD task-duration model used by
// the figure harnesses (apps::calibrate_from_kernel).
//
// Build & run:  ./build/examples/md_quickstart
#include <cstdio>

#include "apps/namd.hh"
#include "md/lj_system.hh"
#include "md/analysis.hh"
#include "md/replica_exchange.hh"

using namespace jets;

int main() {
  // --- NVE trajectory with energy conservation ---------------------------
  md::LjConfig config;
  config.particles = 256;
  config.density = 0.8;
  config.temperature = 1.1;
  md::LjSystem sys(config);
  std::printf("LJ system: %zu particles, box %.2f, T0 %.2f\n", sys.size(),
              sys.box(), sys.observe().temperature);
  std::printf("%-8s %-12s %-12s %-12s %s\n", "step", "kinetic", "potential",
              "total", "T_inst");
  for (int block = 0; block <= 10; ++block) {
    const auto o = sys.observe();
    std::printf("%-8d %-12.3f %-12.3f %-12.3f %.3f\n", block * 50, o.kinetic,
                o.potential, o.total(), o.temperature);
    if (block < 10) sys.step(50);
  }

  // --- Exchange acceptance vs ladder span --------------------------------
  std::printf("\nreplica exchange: acceptance vs temperature span "
              "(8 replicas, 30 rounds)\n");
  std::printf("%-12s %s\n", "t_max/t_min", "acceptance");
  for (double span : {1.2, 1.5, 2.0, 3.0}) {
    md::ReplicaExchange::Config rc;
    rc.system = config;
    rc.system.particles = 108;
    rc.replicas = 8;
    rc.t_min = 0.8;
    rc.t_max = 0.8 * span;
    rc.steps_per_segment = 25;
    md::ReplicaExchange rem(rc);
    for (int i = 0; i < 30; ++i) rem.run_round();
    std::printf("%-12.1f %.2f\n", span, rem.acceptance_rate());
  }

  // --- Structure & transport analysis -------------------------------------
  std::printf("\nradial distribution g(r) after equilibration:\n");
  auto g = md::radial_distribution(sys, 3.0, 12);
  for (std::size_t b = 0; b < g.size(); ++b) {
    std::printf("  r=%.2f  g=%.2f %s\n", (b + 0.5) * 0.25, g[b],
                std::string(static_cast<std::size_t>(g[b] * 20), '#').c_str());
  }
  md::MsdTracker msd(sys);
  for (int i = 0; i < 20; ++i) {
    sys.step(25);
    msd.sample(sys);
  }
  std::printf("MSD over 500 steps: %.3f sigma^2, D ~ %.4f\n", msd.msd(),
              msd.diffusion(500 * config.dt));

  // --- Calibration hook used by the harnesses ----------------------------
  const double bgp_segment_s = apps::calibrate_from_kernel(
      /*atoms=*/44'992, /*steps=*/10, /*machine_slowdown=*/1.0);
  std::printf("\nkernel-extrapolated 44,992-atom 10-step segment on this "
              "host: %.2f s\n", bgp_segment_s);
  std::printf("(the paper's BG/P measured ~100 s on 4x 850 MHz cores)\n");
  return 0;
}
