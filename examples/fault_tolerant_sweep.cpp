// Parameter sweep surviving worker faults — the "faulty setting" of §6.1.5
// as a user would actually hit it: a sweep of MPI jobs over a parameter
// grid on the BG/P, with infrastructure misbehaving underneath. The chaos
// plan mixes fault classes: pilots die outright (hardware faults,
// allocation borders), one pilot wedges with its socket open, a node's
// network stalls, and a node silently runs slow. JETS disregards broken
// workers — via EOF for kills, via the heartbeat/liveness deadline for the
// hang and the stall — retries their jobs on survivors, and the sweep
// completes with an accounting of retries.
//
// Build & run:  ./build/examples/fault_tolerant_sweep
#include <cstdio>
#include <memory>

#include "apps/synthetic.hh"
#include "core/chaos.hh"
#include "core/standalone.hh"
#include "os/machine.hh"
#include "pmi/hydra.hh"

using namespace jets;

int main() {
  constexpr std::size_t kNodes = 32;
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::surveyor(kNodes));
  os::AppRegistry apps;
  apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
  machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  apps::install_synthetic_apps(apps);
  machine.shared_fs().put("mpi_sleep", 25'000'000);

  core::StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(450);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.retry.max_attempts = 5;  // faults cost retries, not results
  // Liveness: workers ping every 2 s while busy; 8 s of silence from a
  // busy worker and the service disregards it and retries its job.
  options.worker.heartbeat_interval = sim::seconds(2);
  options.service.worker_liveness_timeout = sim::seconds(8);
  auto registry = std::make_shared<core::WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  core::StandaloneJets jets(machine, apps, options);
  std::vector<os::NodeId> allocation;
  for (std::size_t i = 0; i < kNodes; ++i) {
    allocation.push_back(static_cast<os::NodeId>(i));
  }
  jets.start(allocation);

  // The sweep: 2-D grid over (size, duration) -> 48 MPI jobs.
  std::vector<core::JobSpec> sweep;
  for (int nprocs : {2, 4, 8}) {
    for (int dur = 1; dur <= 16; ++dur) {
      core::JobSpec s;
      s.kind = core::JobKind::kMpi;
      s.nprocs = nprocs;
      s.argv = {"mpi_sleep", std::to_string(dur)};
      sweep.push_back(std::move(s));
    }
  }

  // The chaos plan: six random pilot kills 15 s apart, plus one permanent
  // hang, one 20 s network stall, and one 4x slow node.
  core::ChaosEngine chaos(machine, sim::Rng(5));
  chaos.set_pilots(jets.worker_pids());
  chaos.set_hang_registry(registry);
  chaos.add_periodic(core::FaultKind::kKillPilot, sim::seconds(15),
                     sim::seconds(15), 6);
  chaos.add({.at = sim::seconds(20), .kind = core::FaultKind::kHangWorker});
  chaos.add({.at = sim::seconds(35),
             .kind = core::FaultKind::kSocketStall,
             .duration = sim::seconds(20)});
  chaos.add({.at = sim::seconds(10),
             .kind = core::FaultKind::kSlowNode,
             .exec_scale = 4.0,
             .compute_scale = 4.0});

  core::BatchReport report;
  engine.spawn("main", [](core::StandaloneJets& jets, core::ChaosEngine& chaos,
                          std::vector<core::JobSpec> sweep,
                          core::BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(sweep));
  }(jets, chaos, std::move(sweep), report));
  engine.run();

  int retried = 0, total_attempts = 0;
  for (const auto& rec : report.records) {
    total_attempts += rec.attempts;
    if (rec.attempts > 1) ++retried;
  }
  const auto& c = chaos.counters();
  std::printf("sweep: %zu jobs, %zu completed, %zu failed\n",
              report.records.size(), report.completed, report.failed);
  std::printf(
      "faults injected: %zu pilots killed, %zu hung, %zu nodes stalled, "
      "%zu degraded\n",
      c.pilots_killed, c.workers_hung, c.nodes_stalled, c.nodes_degraded);
  std::printf("service response: %zu workers evicted, %zu re-enlisted "
              "(%zu heartbeats)\n",
              jets.service().evicted_workers(),
              jets.service().reenlisted_workers(),
              jets.service().heartbeats_received());
  std::printf("jobs retried after faults: %d (total attempts %d, "
              "%zu delayed requeues)\n",
              retried, total_attempts, jets.service().retries_scheduled());
  std::printf("failure taxonomy:");
  for (std::size_t i = 1; i < core::kFailureReasonCount; ++i) {
    const auto reason = static_cast<core::FailureReason>(i);
    if (const auto n = jets.service().failures_by_reason(reason); n > 0) {
      std::printf(" %s=%zu", core::to_string(reason), n);
    }
  }
  std::printf("\n");
  std::printf("makespan %.0f s on a degraded allocation (%zu slots, "
              "%zu killed/hung)\n",
              report.makespan_seconds(), report.total_slots,
              c.pilots_killed + c.workers_hung);
  return report.failed == 0 ? 0 : 1;
}
