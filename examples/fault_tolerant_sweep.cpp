// Parameter sweep surviving worker faults — the "faulty setting" of §6.1.5
// as a user would actually hit it: a sweep of MPI jobs over a parameter
// grid on the BG/P, with pilot jobs dying underneath (hardware faults,
// allocation borders). JETS disregards broken workers and retries their
// jobs on survivors; the sweep completes with an accounting of retries.
//
// Build & run:  ./build/examples/fault_tolerant_sweep
#include <cstdio>

#include "apps/synthetic.hh"
#include "core/faults.hh"
#include "core/standalone.hh"
#include "os/machine.hh"
#include "pmi/hydra.hh"

using namespace jets;

int main() {
  constexpr std::size_t kNodes = 32;
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::surveyor(kNodes));
  os::AppRegistry apps;
  apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
  machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  apps::install_synthetic_apps(apps);
  machine.shared_fs().put("mpi_sleep", 25'000'000);

  core::StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(450);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.max_attempts = 5;  // faults cost retries, not results
  core::StandaloneJets jets(machine, apps, options);
  std::vector<os::NodeId> allocation;
  for (std::size_t i = 0; i < kNodes; ++i) {
    allocation.push_back(static_cast<os::NodeId>(i));
  }
  jets.start(allocation);

  // The sweep: 2-D grid over (size, duration) -> 48 MPI jobs.
  std::vector<core::JobSpec> sweep;
  for (int nprocs : {2, 4, 8}) {
    for (int dur = 1; dur <= 16; ++dur) {
      core::JobSpec s;
      s.kind = core::JobKind::kMpi;
      s.nprocs = nprocs;
      s.argv = {"mpi_sleep", std::to_string(dur)};
      sweep.push_back(std::move(s));
    }
  }

  // Chaos: kill a third of the pilots, one every 15 s.
  std::vector<os::Machine::Pid> victims(jets.worker_pids().begin(),
                                        jets.worker_pids().begin() + 10);
  core::FaultInjector chaos(machine, victims, sim::seconds(15), sim::Rng(5));

  core::BatchReport report;
  engine.spawn("main", [](core::StandaloneJets& jets, core::FaultInjector& chaos,
                          std::vector<core::JobSpec> sweep,
                          core::BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(sweep));
  }(jets, chaos, std::move(sweep), report));
  engine.run();

  int retried = 0, total_attempts = 0;
  for (const auto& rec : report.records) {
    total_attempts += rec.attempts;
    if (rec.attempts > 1) ++retried;
  }
  std::printf("sweep: %zu jobs, %zu completed, %zu failed\n",
              report.records.size(), report.completed, report.failed);
  std::printf("faults injected: %zu pilots killed\n", chaos.killed());
  std::printf("jobs retried after faults: %d (total attempts %d)\n", retried,
              total_attempts);
  std::printf("makespan %.0f s on a shrinking allocation (%zu -> %zu workers)\n",
              report.makespan_seconds(), report.total_slots,
              report.total_slots - chaos.killed());
  return report.failed == 0 ? 0 : 1;
}
