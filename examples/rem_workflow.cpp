// Replica-exchange molecular dynamics through Swift + Coasters + JETS —
// the paper's driving use case (§3, §6.2.2), end to end:
//
//   * the REM dataflow of Figs 16/17 is built on the Swift engine
//     (segments depend on their predecessors' files and on exchange
//     tokens; everything else runs concurrently);
//   * each NAMD segment executes as an MPI job through the
//     MPICH/Coasters path (launcher=manual mpiexec + Hydra proxies);
//   * exchanges run as filesystem-bound scripts on the login node;
//   * the *physics* of the exchanges is computed for real by the
//     Lennard-Jones replica-exchange kernel, whose acceptance statistics
//     are reported alongside the workflow metrics.
//
// Build & run:  ./build/examples/rem_workflow
#include <cstdio>

#include "apps/namd.hh"
#include "apps/rem.hh"
#include "md/replica_exchange.hh"
#include "os/machine.hh"
#include "pmi/hydra.hh"
#include "swift/coasters.hh"
#include "swift/engine.hh"

using namespace jets;

int main() {
  // --- The real MD side: run replica exchange for real ------------------
  md::ReplicaExchange::Config md_config;
  md_config.replicas = 8;
  md_config.steps_per_segment = 40;
  md_config.system.particles = 108;
  md::ReplicaExchange rem_md(md_config);
  for (int round = 0; round < 6; ++round) rem_md.run_round();
  std::printf("MD kernel: %zu replicas, %zu rounds, exchange acceptance %.0f %%\n",
              md_config.replicas, rem_md.rounds_completed(),
              100.0 * rem_md.acceptance_rate());
  std::printf("ladder: ");
  for (double t : rem_md.temperatures()) std::printf("%.2f ", t);
  std::printf("\n\n");

  // --- The distributed side: the same pattern as a Swift workflow -------
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::eureka(16));
  os::AppRegistry apps;
  apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
  machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  apps::NamdModel model;
  model.median_seconds = 30.0;  // short segments keep the demo tight
  apps::install_namd_app(apps, model);
  machine.shared_fs().put("namd_segment", 60'000'000);

  swift::CoasterService::Config cfg;
  cfg.worker.stage_files = {pmi::kProxyBinary, "namd_segment"};
  cfg.workers_per_node = 1;
  swift::CoasterService coasters(machine, apps, cfg);
  coasters.start_on({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  swift::SwiftEngine swiftEngine(machine, coasters);

  apps::RemWorkflowConfig workflow;
  workflow.replicas = 8;
  workflow.exchanges = 4;
  workflow.mpi = true;
  workflow.nprocs = 16;  // 2 nodes x 8 ranks per segment
  workflow.ppn = 8;
  workflow.namd = model;
  build_rem_workflow(swiftEngine, workflow);

  engine.spawn("main", [](swift::SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swiftEngine));
  engine.run();

  std::printf("workflow: %zu statements, %zu completed, %zu failed\n",
              swiftEngine.registered(), swiftEngine.completed(),
              swiftEngine.failed());
  std::printf("NAMD segments run as MPI jobs: %zu\n",
              swiftEngine.job_records().size());
  double busy = 0;
  for (const auto& rec : swiftEngine.job_records()) {
    busy += rec.wall_seconds() * rec.spec.workers_needed();
  }
  const double makespan = sim::to_seconds(engine.now());
  std::printf("allocation time %.0f s, utilization %.1f %%\n", makespan,
              100.0 * busy / (16.0 * makespan));
  return 0;
}
