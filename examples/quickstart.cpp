// Quickstart: run a batch of MPI tasks through stand-alone JETS.
//
// This is the paper's §5.1 usage in miniature: write a task list in the
// JETS input format, point the tool at an allocation, and let it aggregate
// pilot workers into MPI jobs. Here the "machine" is the simulated
// Breadboard cluster and the "application" is the barrier/sleep/barrier
// synthetic, but the code path — workers, dispatcher, launcher=manual
// mpiexec, Hydra proxies, PMI, sockets — is the full JETS stack.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/synthetic.hh"
#include "core/standalone.hh"
#include "os/machine.hh"
#include "pmi/hydra.hh"
#include "sim/sim.hh"

using namespace jets;

int main() {
  // 1. A machine: 16 x86 nodes plus a login node.
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::breadboard(16));

  // 2. An application registry: the simulated $PATH. Install the Hydra
  //    proxy (JETS ships it to workers) and the demo apps, and register
  //    their binary images on the shared filesystem.
  os::AppRegistry apps;
  apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
  machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  apps::install_synthetic_apps(apps);
  machine.shared_fs().put("mpi_sleep", 25'000'000);
  machine.shared_fs().put("sleep", 16'384);

  // 3. Stand-alone JETS: one pilot worker per node; stage the proxy and
  //    app binaries to node-local storage for fast task startup.
  core::StandaloneOptions options;
  options.workers_per_node = 1;
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  core::StandaloneJets jets(machine, apps, options);
  jets.start({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});

  // 4. The §5.1 input file: MPI jobs of varying size plus a sequential
  //    task; node assignment is decided by JETS at run time.
  const char* input =
      "MPI: 4 mpi_sleep 2\n"
      "MPI: 8 mpi_sleep 2\n"
      "MPI: 6 mpi_sleep 2\n"
      "MPI: 16 mpi_sleep 2\n"
      "sleep 1\n";

  core::BatchReport report;
  engine.spawn("main", [](core::StandaloneJets& jets, const char* input,
                          core::BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    out = co_await jets.run_input(input);
  }(jets, input, report));
  engine.run();

  std::printf("batch of %zu jobs: %zu completed, %zu failed\n",
              report.records.size(), report.completed, report.failed);
  std::printf("%-6s %-8s %-8s %-10s %-10s %s\n", "job", "kind", "nprocs",
              "start_s", "wall_s", "nodes_used");
  for (const auto& rec : report.records) {
    std::printf("%-6llu %-8s %-8d %-10.2f %-10.2f %zu\n",
                static_cast<unsigned long long>(rec.id),
                rec.spec.kind == core::JobKind::kMpi ? "MPI" : "seq",
                rec.spec.nprocs, sim::to_seconds(rec.started_at),
                rec.wall_seconds(), rec.nodes.size());
  }
  std::printf("makespan %.2f s, utilization %.1f %%\n",
              report.makespan_seconds(), 100.0 * report.utilization());
  return 0;
}
