// The full allocation lifecycle of the paper's Fig 1 model, end to end:
//
//   (1) request pilot blocks from the system batch scheduler (Cobalt-like
//       queue waits + boot times), using the §7 spectrum allocator so
//       workers trickle in early;
//   (2) feed a dynamic stream of MPI job definitions to the Coasters/JETS
//       service while blocks are still arriving;
//   (3) enforce the blocks' walltimes — pilots are killed at expiry, JETS
//       disregards them, and whatever was running there is retried.
//
// Build & run:  ./build/examples/allocation_lifecycle
#include <cstdio>

#include "apps/synthetic.hh"
#include "os/machine.hh"
#include "pmi/hydra.hh"
#include "swift/coasters.hh"

using namespace jets;

int main() {
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::eureka(96));
  os::AppRegistry apps;
  apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
  machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  apps::install_synthetic_apps(apps);
  machine.shared_fs().put("mpi_sleep", 25'000'000);

  // (1) The system batch scheduler: queue wait grows with request size.
  os::BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(90);
  policy.base_queue_wait = sim::seconds(30);
  policy.wait_per_node = sim::seconds(2);
  os::BatchScheduler cobalt(machine, policy, sim::Rng(7));

  swift::CoasterService::Config cfg;
  cfg.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  cfg.service.retry.max_attempts = 5;
  swift::CoasterService coasters(machine, apps, cfg);
  coasters.start_with_blocks(cobalt, /*target_nodes=*/64,
                             /*walltime=*/sim::seconds(1200),
                             /*spectrum=*/true);

  // (2) A dynamic stream: 120 MPI jobs submitted one per second from t=0,
  // long before the first block boots. JETS queues them and drains the
  // backlog as capacity arrives.
  for (int i = 0; i < 120; ++i) {
    engine.call_at(sim::seconds(i), [&coasters, i] {
      core::JobSpec job;
      job.kind = core::JobKind::kMpi;
      job.nprocs = (i % 3 + 1) * 4;  // 4/8/12-proc jobs
      job.argv = {"mpi_sleep", "15"};
      coasters.service().submit(job);
    });
  }

  // (3) Walltime: retire ALL pilots at t=1200 s regardless of progress.
  engine.call_at(sim::seconds(600), [&] {
    std::printf("t=600s: %zu workers connected, %zu jobs done, %zu queued\n",
                coasters.service().connected_workers(),
                coasters.service().completed_jobs(),
                coasters.service().pending_jobs());
  });

  bool finished = false;
  engine.spawn("main", [](swift::CoasterService& c, bool& fin) -> sim::Task<void> {
    co_await c.service().wait_all();
    fin = true;
  }(coasters, finished));
  engine.run_until(sim::seconds(3600));

  std::printf("\nfinal: %zu/%d jobs completed (%zu failed) in %.0f s\n",
              coasters.service().completed_jobs(), 120,
              coasters.service().failed_jobs(),
              sim::to_seconds(engine.now()));
  std::printf("workers provisioned through the spectrum allocator: %zu\n",
              coasters.worker_count());
  return finished ? 0 : 1;
}
