// The REM core loop of the paper's Fig 17 as an *actual script*, parsed
// and interpreted by the Swift-like language layer, then executed through
// Coasters + JETS on a simulated Eureka cluster.
//
// Compare with Fig 17: rows are replica trajectories (i), columns are
// exchange epochs (j); namd() consumes the previous segment's files and
// the exchange token; exchange() pairs neighbours with the %% parity flip
// and runs on the login node. All statements execute concurrently,
// limited only by dataflow.
//
// Build & run:  ./build/examples/swift_script
#include <cstdio>

#include "apps/namd.hh"
#include "os/machine.hh"
#include "pmi/hydra.hh"
#include "swift/coasters.hh"
#include "swift/engine.hh"
#include "swift/script.hh"

using namespace jets;

namespace {

// 4 replicas, 3 segment columns, 2 exchange sweeps — the Fig 17 structure
// in miniature. COLS = exchanges + 1 = 4 segment slots per replica.
constexpr const char* kRemScript = R"swift(
# --- REM dataflow (paper Fig 17) ------------------------------------
file c[]; file v[]; file s[]; file o[]; file x[];

# initial conditions: column 0 exists
foreach i in 0..3 {
  set c[i*4]; set v[i*4]; set s[i*4]; set x[i*4];
}

# segments: namd(i,j) reads column j-1 plus the exchange token
foreach i in 0..3 {
  foreach j in 1..3 {
    app (c[i*4+j], v[i*4+j], s[i*4+j], o[i*4+j]) =
        namd_segment(20, 0.4, c[i*4+j-1], v[i*4+j-1], s[i*4+j-1], x[i*4+j-1])
        mpi nprocs=8 ppn=8;
  }
}

# exchanges after columns 1 and 2, pairing by alternating parity
foreach j in 1..2 {
  if (j %% 2 == 1) {
    app (x[0*4+j], x[1*4+j]) = rem_exchange(o[0*4+j], o[1*4+j]) login cost=0.4;
    app (x[2*4+j], x[3*4+j]) = rem_exchange(o[2*4+j], o[3*4+j]) login cost=0.4;
  } else {
    app (x[1*4+j], x[2*4+j]) = rem_exchange(o[1*4+j], o[2*4+j]) login cost=0.4;
    app (x[0*4+j]) = rem_pass(o[0*4+j]) login;
    app (x[3*4+j]) = rem_pass(o[3*4+j]) login;
  }
}
)swift";

}  // namespace

int main() {
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::eureka(8));
  os::AppRegistry apps;
  apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
  machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  apps::NamdModel model;
  model.median_seconds = 20.0;
  apps::install_namd_app(apps, model);
  machine.shared_fs().put("namd_segment", 60'000'000);

  swift::CoasterService::Config cfg;
  cfg.worker.stage_files = {pmi::kProxyBinary, "namd_segment"};
  swift::CoasterService coasters(machine, apps, cfg);
  coasters.start_on({0, 1, 2, 3, 4, 5, 6, 7});

  swift::SwiftEngine swiftEngine(machine, coasters);
  swift::ScriptRunner runner(swiftEngine);
  runner.run(kRemScript);
  std::printf("script registered %zu app statements\n",
              runner.statements_registered());

  engine.spawn("main", [](swift::SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swiftEngine));
  engine.run();

  std::printf("completed %zu, failed %zu; NAMD segments as MPI jobs: %zu\n",
              swiftEngine.completed(), swiftEngine.failed(),
              swiftEngine.job_records().size());
  std::printf("workflow wall time %.0f s (segments ~20 s each, 3 columns "
              "+ exchanges)\n", sim::to_seconds(engine.now()));
  return swiftEngine.failed() == 0 ? 0 : 1;
}
