#include "pmi/hydra.hh"

#include <algorithm>
#include <stdexcept>

#include "obs/tracer.hh"
#include "pmi/client.hh"

namespace jets::pmi {

namespace {

/// Shared between a proxy and its local rank bodies.
struct ProxyShared {
  int exit_code = 0;
};

sim::Task<void> rank_body(os::Machine* machine, const os::AppRegistry* apps,
                          os::NodeId node, std::vector<std::string> argv,
                          std::map<std::string, std::string> vars,
                          net::Address control, int rank, int size,
                          std::shared_ptr<ProxyShared> shared) {
  os::Env env;
  env.machine = machine;
  env.node = node;
  env.argv = std::move(argv);
  env.vars = std::move(vars);
  env.vars["PMI_RANK"] = std::to_string(rank);
  env.vars["PMI_SIZE"] = std::to_string(size);
  try {
    auto client = co_await PmiClient::connect(*machine, node, control, rank, size);
    env.pmi = client.get();
    env.stdout_sink = client->socket();
    const os::Program& program = apps->lookup(env.argv.at(0));
    co_await program(env);
    client->finalize();
  } catch (...) {
    shared->exit_code = 1;
  }
}

}  // namespace

// --- Proxy program -----------------------------------------------------------

os::Program Mpiexec::proxy_program(const os::AppRegistry& apps) {
  return [&apps](os::Env& env) -> sim::Task<void> {
    // argv: hydra_pmi_proxy --control-addr <node> <port> --proxy-id <k>
    net::Address control{};
    int proxy_id = -1;
    for (std::size_t i = 1; i + 1 < env.argv.size(); ++i) {
      if (env.argv[i] == "--control-addr" && i + 2 < env.argv.size()) {
        control.node = static_cast<os::NodeId>(std::stoul(env.argv[i + 1]));
        control.port = static_cast<net::Port>(std::stoul(env.argv[i + 2]));
      } else if (env.argv[i] == "--proxy-id") {
        proxy_id = std::stoi(env.argv[i + 1]);
      }
    }
    if (proxy_id < 0) throw std::invalid_argument("hydra_pmi_proxy: bad argv");

    net::SocketPtr sock =
        co_await env.machine->network().connect(env.node, control);
    sock->send(net::Message("proxy.hello", {std::to_string(proxy_id)}));
    auto reply = co_await sock->recv();
    if (!reply || reply->tag != "proxy.exec") co_return;  // mpiexec gone

    // Decode: nprocs ppn base user_binary nargv argv... k=v...
    std::size_t i = 0;
    const int nprocs = std::stoi(reply->args.at(i++));
    const int ppn = std::stoi(reply->args.at(i++));
    const int base = std::stoi(reply->args.at(i++));
    const std::string user_binary = reply->args.at(i++);
    const int nargv = std::stoi(reply->args.at(i++));
    std::vector<std::string> uargv;
    for (int k = 0; k < nargv; ++k) uargv.push_back(reply->args.at(i++));
    std::map<std::string, std::string> uvars;
    for (; i < reply->args.size(); ++i) {
      const std::string& kv = reply->args[i];
      const auto eq = kv.find('=');
      if (eq != std::string::npos) uvars[kv.substr(0, eq)] = kv.substr(eq + 1);
    }

    const int local = std::min(ppn, nprocs - base);
    auto shared = std::make_shared<ProxyShared>();
    std::vector<os::Machine::Pid> pids;
    pids.reserve(static_cast<std::size_t>(std::max(local, 0)));
    for (int r = 0; r < local; ++r) {
      os::ExecOptions opts;
      opts.binary = user_binary;
      pids.push_back(env.machine->exec(
          env.node, uargv.at(0) + ":" + std::to_string(base + r),
          rank_body(env.machine, &apps, env.node, uargv, uvars, control,
                    base + r, nprocs, shared),
          std::move(opts)));
    }
    for (auto pid : pids) co_await env.machine->wait(pid);
    sock->send(net::Message(
        "proxy.exit",
        {std::to_string(proxy_id), std::to_string(shared->exit_code)}));
    // Destructor closes the socket; mpiexec sees exit then EOF.
  };
}

// --- Mpiexec -------------------------------------------------------------------

Mpiexec::Mpiexec(os::Machine& machine, const os::AppRegistry& apps,
                 os::NodeId host, MpiexecSpec spec)
    : machine_(&machine), apps_(&apps), host_(host), spec_(std::move(spec)),
      kvs_(machine.engine()) {
  if (spec_.nprocs < 1 || spec_.ranks_per_proxy < 1) {
    throw std::invalid_argument("mpiexec: nprocs and ppn must be >= 1");
  }
  if (spec_.user_argv.empty()) {
    throw std::invalid_argument("mpiexec: empty user command");
  }
  if (spec_.user_binary.empty()) spec_.user_binary = spec_.user_argv.front();
  rank_socks_.resize(static_cast<std::size_t>(spec_.nprocs));
  done_gate_ = std::make_unique<sim::Gate>(machine.engine());
  setup_sem_ = std::make_unique<sim::Semaphore>(machine.engine(), 1);
}

Mpiexec::~Mpiexec() {
  close_spans();  // a torn-down mpiexec must not leave spans dangling open
  launch_timer_.cancel();  // callback captures `this`
  if (control_actor_ != 0) machine_->engine().kill(control_actor_);
  for (sim::ActorId id : handler_actors_) machine_->engine().kill(id);
}

int Mpiexec::proxy_count() const {
  return (spec_.nprocs + spec_.ranks_per_proxy - 1) / spec_.ranks_per_proxy;
}

void Mpiexec::start() {
  if (started_) return;
  started_ = true;
  control_addr_ = net::Address{host_, machine_->allocate_port()};
  listener_ = machine_->network().listen(control_addr_);
  control_actor_ = machine_->engine().spawn("mpiexec", control_service());
  if (obs::Tracer* tr = machine_->tracer()) {
    span_mpx_ = tr->begin("mpiexec", spec_.trace_track, spec_.trace_parent);
    tr->attr(span_mpx_, "nprocs", static_cast<std::int64_t>(spec_.nprocs));
    tr->attr(span_mpx_, "proxies", static_cast<std::int64_t>(proxy_count()));
    span_launch_ = tr->begin("mpiexec.launch", spec_.trace_track, span_mpx_);
  }
  if (spec_.launch_timeout > 0) {
    launch_timer_ = machine_->engine().call_in(spec_.launch_timeout, [this] {
      if (launched_ || done()) return;
      fail(MpiexecFailKind::kLaunchTimeout,
           "gang not wired up within launch deadline (" +
               std::to_string(proxies_wired_) + "/" +
               std::to_string(proxy_count()) + " proxies, " +
               std::to_string(ranks_inited_) + "/" +
               std::to_string(spec_.nprocs) + " ranks)");
    });
  }
}

std::vector<std::vector<std::string>> Mpiexec::proxy_commands() const {
  if (!started_) throw std::logic_error("mpiexec: start() before proxy_commands()");
  std::vector<std::vector<std::string>> cmds;
  cmds.reserve(static_cast<std::size_t>(proxy_count()));
  for (int k = 0; k < proxy_count(); ++k) {
    cmds.push_back({kProxyBinary, "--control-addr",
                    std::to_string(control_addr_.node),
                    std::to_string(control_addr_.port), "--proxy-id",
                    std::to_string(k)});
  }
  return cmds;
}

void Mpiexec::launch_via_ssh(const std::vector<os::NodeId>& hosts,
                             sim::Duration ssh_cost) {
  if (!started_) throw std::logic_error("mpiexec: start() before launch");
  if (hosts.size() < static_cast<std::size_t>(proxy_count())) {
    throw std::invalid_argument("mpiexec: not enough hosts for proxies");
  }
  auto cmds = proxy_commands();
  machine_->engine().spawn(
      "mpiexec-ssh-launcher",
      [](os::Machine* m, const os::AppRegistry* apps,
         std::vector<os::NodeId> hosts, sim::Duration cost,
         std::vector<std::vector<std::string>> cmds) -> sim::Task<void> {
        for (std::size_t k = 0; k < cmds.size(); ++k) {
          // ssh connection setup + auth is paid per host, sequentially —
          // the bottleneck JETS's persistent workers eliminate.
          co_await sim::delay(cost);
          os::ExecOptions opts;
          opts.binary = kProxyBinary;
          os::run_command(*m, *apps, hosts[k], cmds[k], {}, std::move(opts));
        }
      }(machine_, apps_, hosts, ssh_cost, std::move(cmds)));
}

sim::Task<int> Mpiexec::wait() {
  co_await done_gate_->wait();
  co_return failures_ == 0 ? 0 : 1;
}

void Mpiexec::note_proxy_done(int code) {
  ++proxies_done_;
  if (code != 0) {
    ++failures_;
    if (fail_kind_ == MpiexecFailKind::kNone) {
      fail_kind_ = MpiexecFailKind::kExit;
      failure_reason_ = "proxy reported nonzero rank exit";
    }
  }
  if (proxies_done_ >= proxy_count()) {
    launch_timer_.cancel();
    close_spans();
    done_gate_->open();
  }
}

void Mpiexec::note_launch_progress() {
  if (launched_) return;
  if (proxies_wired_ >= proxy_count() && ranks_inited_ >= spec_.nprocs) {
    launched_ = true;
    launch_timer_.cancel();
    if (obs::Tracer* tr = machine_->tracer()) {
      tr->end_and_clear(span_launch_);
      span_run_ = tr->begin("mpiexec.run", spec_.trace_track, span_mpx_);
    }
  }
}

void Mpiexec::abort(const std::string& why) {
  if (!done()) fail(MpiexecFailKind::kAborted, why);
}

void Mpiexec::fail(MpiexecFailKind kind, const std::string& why) {
  ++failures_;
  if (fail_kind_ == MpiexecFailKind::kNone) {
    fail_kind_ = kind;
    failure_reason_ = why;
  }
  launch_timer_.cancel();
  close_spans();
  done_gate_->open();  // surface the failure immediately; JETS cleans up
}

void Mpiexec::close_spans() {
  obs::Tracer* tr = machine_->tracer();
  if (!tr) return;
  tr->end_and_clear(span_run_);
  tr->end_and_clear(span_launch_);
  tr->end_and_clear(span_mpx_);
}

sim::Task<void> Mpiexec::control_service() {
  for (;;) {
    net::SocketPtr sock = co_await listener_->accept();
    if (!sock) co_return;  // listener closed
    handler_actors_.push_back(machine_->engine().spawn(
        "mpiexec-conn", handle_connection(std::move(sock))));
  }
}

sim::Task<void> Mpiexec::handle_connection(net::SocketPtr sock) {
  bool is_proxy = false;
  bool proxy_reported = false;
  bool rank_finalized = false;
  int rank = -1;
  for (;;) {
    auto m = co_await sock->recv();
    if (!m) break;  // EOF
    if (m->tag == "proxy.hello") {
      is_proxy = true;
      const int proxy_id = std::stoi(m->args.at(0));
      // Bootstrap handling is serialized within one mpiexec and charges
      // the per-proxy setup cost (see MpiexecSpec::proxy_setup_cost).
      {
        obs::ScopedSpan setup(machine_->tracer(), "mpiexec.proxy_setup",
                              spec_.trace_track, span_mpx_);
        setup.attr("proxy", static_cast<std::int64_t>(proxy_id));
        sim::Permit permit = co_await sim::Permit::acquire(*setup_sem_);
        co_await sim::delay(spec_.proxy_setup_cost);
      }
      const int base = proxy_id * spec_.ranks_per_proxy;
      std::vector<std::string> args{
          std::to_string(spec_.nprocs), std::to_string(spec_.ranks_per_proxy),
          std::to_string(base), spec_.user_binary,
          std::to_string(spec_.user_argv.size())};
      for (const auto& a : spec_.user_argv) args.push_back(a);
      for (const auto& [k, v] : spec_.user_vars) args.push_back(k + "=" + v);
      sock->send(net::Message("proxy.exec", std::move(args)));
      ++proxies_wired_;
      note_launch_progress();
    } else if (m->tag == "proxy.exit") {
      proxy_reported = true;
      note_proxy_done(std::stoi(m->args.at(1)));
    } else if (m->tag == "pmi.init") {
      rank = std::stoi(m->args.at(0));
      rank_socks_.at(static_cast<std::size_t>(rank)) = sock;
      ++ranks_inited_;
      note_launch_progress();
    } else if (m->tag == "pmi.put") {
      kvs_.put(m->args.at(0), m->args.at(1));
    } else if (m->tag == "pmi.get") {
      std::string value = co_await kvs_.get(m->args.at(0));
      sock->send(net::Message("pmi.value", {m->args.at(0), std::move(value)}));
    } else if (m->tag == "pmi.barrier_in") {
      if (++barrier_waiting_ >= spec_.nprocs) {
        barrier_waiting_ = 0;
        for (auto& rs : rank_socks_) {
          if (rs) rs->send(net::Message("pmi.barrier_out"));
        }
      }
    } else if (m->tag == "pmi.finalize") {
      rank_finalized = true;
    } else if (m->tag == "stdout") {
      stdout_bytes_ += m->payload_bytes;
    }
  }
  // Connection gone: decide whether that was orderly.
  if (is_proxy && !proxy_reported) {
    fail(MpiexecFailKind::kDisconnect, "proxy disconnected before exit report");
  } else if (rank >= 0 && !rank_finalized && !done()) {
    fail(MpiexecFailKind::kDisconnect,
         "rank " + std::to_string(rank) + " disconnected before finalize");
  }
  if (rank >= 0) rank_socks_.at(static_cast<std::size_t>(rank)).reset();
}

}  // namespace jets::pmi
