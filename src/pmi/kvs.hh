// The PMI key-value space held by the process manager (mpiexec).
//
// MPI ranks publish their connection "business cards" here during
// MPI_Init and fetch their peers' cards after a fence. Gets block until
// the key is published (the simulator's equivalent of MPICH's
// fence-then-get discipline), which keeps client code simple and
// deadlock-free for the init pattern used here.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::pmi {

class KeyValueSpace {
 public:
  explicit KeyValueSpace(sim::Engine& engine) : engine_(&engine) {}

  void put(const std::string& key, std::string value) {
    values_[key] = std::move(value);
    auto it = gates_.find(key);
    if (it != gates_.end()) it->second->open();
  }

  bool contains(const std::string& key) const { return values_.contains(key); }

  /// Blocks until `key` is published, then returns its value.
  sim::Task<std::string> get(const std::string& key) {
    if (!values_.contains(key)) {
      auto& gate = gates_[key];
      if (!gate) gate = std::make_unique<sim::Gate>(*engine_);
      co_await gate->wait();
    }
    co_return values_.at(key);
  }

  std::size_t size() const { return values_.size(); }

 private:
  sim::Engine* engine_;
  std::map<std::string, std::string> values_;
  std::map<std::string, std::unique_ptr<sim::Gate>> gates_;
};

}  // namespace jets::pmi
