#include "pmi/client.hh"

#include <stdexcept>

#include "obs/tracer.hh"

namespace jets::pmi {

sim::Task<std::unique_ptr<PmiClient>> PmiClient::connect(os::Machine& machine,
                                                         os::NodeId node,
                                                         net::Address control,
                                                         int rank, int size) {
  obs::Tracer* tr = machine.tracer();
  const std::uint64_t track = obs::track_node(node);
  obs::ScopedSpan span(tr, "pmi.connect", track);
  span.attr("rank", static_cast<std::int64_t>(rank));
  net::SocketPtr sock = co_await machine.network().connect(node, control);
  sock->send(net::Message("pmi.init", {std::to_string(rank)}));
  auto client = std::unique_ptr<PmiClient>(
      new PmiClient(std::move(sock), rank, size));
  client->tracer_ = tr;
  client->track_ = track;
  co_return client;
}

void PmiClient::put(const std::string& key, const std::string& value) {
  sock_->send(net::Message("pmi.put", {key, value}));
}

sim::Task<std::string> PmiClient::get(const std::string& key) {
  sock_->send(net::Message("pmi.get", {key}));
  for (;;) {
    auto reply = co_await sock_->recv();
    if (!reply) throw std::runtime_error("PMI: lost connection to mpiexec");
    if (reply->tag == "pmi.value" && reply->args.at(0) == key) {
      co_return reply->args.at(1);
    }
    // Interleaved barrier_out or stale replies are not possible with the
    // strictly sequential client usage, but be defensive:
    if (reply->tag == "pmi.barrier_out") continue;
  }
}

sim::Task<void> PmiClient::barrier() {
  obs::ScopedSpan span(tracer_, "pmi.barrier", track_);
  span.attr("rank", static_cast<std::int64_t>(rank_));
  sock_->send(net::Message("pmi.barrier_in", {std::to_string(rank_)}));
  for (;;) {
    auto reply = co_await sock_->recv();
    if (!reply) throw std::runtime_error("PMI: lost connection to mpiexec");
    if (reply->tag == "pmi.barrier_out") co_return;
  }
}

void PmiClient::finalize() {
  sock_->send(net::Message("pmi.finalize", {std::to_string(rank_)}));
}

}  // namespace jets::pmi
