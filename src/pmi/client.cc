#include "pmi/client.hh"

#include <stdexcept>
#include <utility>

#include "obs/tracer.hh"

namespace jets::pmi {

sim::Task<std::unique_ptr<PmiClient>> PmiClient::connect(os::Machine& machine,
                                                         os::NodeId node,
                                                         net::Address control,
                                                         int rank, int size) {
  obs::Tracer* tr = machine.tracer();
  const std::uint64_t track = obs::track_node(node);
  obs::ScopedSpan span(tr, "pmi.connect", track);
  span.attr("rank", static_cast<std::int64_t>(rank));
  net::SocketPtr sock = co_await machine.network().connect(node, control);
  net::rpc::post(*sock, net::rpc::PmiInit{rank});
  auto client = std::unique_ptr<PmiClient>(
      new PmiClient(std::move(sock), rank, size));
  client->chan_ =
      std::make_unique<net::rpc::Channel>(machine.engine(), client->sock_);
  client->tracer_ = tr;
  client->track_ = track;
  co_return client;
}

void PmiClient::put(const std::string& key, const std::string& value) {
  net::rpc::post(*sock_, net::rpc::PmiPut{key, value});
}

sim::Task<std::string> PmiClient::get(const std::string& key) {
  // Interleaved barrier_out or stale value replies route through the
  // channel's correlation index and drop as orphans — the defensive
  // skips the hand-written receive loop used to make.
  auto r = co_await chan_->call(net::rpc::PmiGet{key});
  if (!r.ok()) throw std::runtime_error("PMI: lost connection to mpiexec");
  co_return std::move(r.value().value);
}

sim::Task<void> PmiClient::barrier() {
  obs::ScopedSpan span(tracer_, "pmi.barrier", track_);
  span.attr("rank", static_cast<std::int64_t>(rank_));
  auto r = co_await chan_->call(net::rpc::PmiBarrier{rank_});
  if (!r.ok()) throw std::runtime_error("PMI: lost connection to mpiexec");
}

void PmiClient::finalize() {
  net::rpc::post(*sock_, net::rpc::PmiFinalize{rank_});
}

}  // namespace jets::pmi
