// Rank-side PMI client.
//
// Each MPI process talks PMI to the mpiexec control service: it announces
// itself, publishes/fetches KVS entries, and participates in PMI barriers.
// (In MPICH's Hydra the proxy multiplexes these messages for its local
// ranks; here each rank opens its own control connection — an explicitly
// documented simplification that preserves message counts and latency
// characteristics, since proxy and rank share a node.)
#pragma once

#include <memory>
#include <string>

#include "net/rpc.hh"
#include "net/socket.hh"
#include "obs/span.hh"
#include "os/machine.hh"
#include "sim/task.hh"

namespace jets::obs {
class Tracer;
}

namespace jets::pmi {

class PmiClient {
 public:
  /// Connects to the mpiexec control service and registers rank `rank`.
  static sim::Task<std::unique_ptr<PmiClient>> connect(os::Machine& machine,
                                                       os::NodeId node,
                                                       net::Address control,
                                                       int rank, int size);

  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Publishes a key into the job's KVS (asynchronous, FIFO-ordered).
  void put(const std::string& key, const std::string& value);

  /// Fetches a key, blocking until some rank publishes it.
  sim::Task<std::string> get(const std::string& key);

  /// PMI barrier across all ranks of the job.
  sim::Task<void> barrier();

  /// Reports clean completion of this rank to the process manager.
  void finalize();

  /// True if the control connection has failed (mpiexec died).
  bool disconnected() const { return sock_ == nullptr || sock_->eof(); }

  /// The control connection itself; ranks also route their stdout over it
  /// (app -> proxy -> mpiexec, §6.1.6).
  const net::SocketPtr& socket() const { return sock_; }

 private:
  PmiClient(net::SocketPtr sock, int rank, int size)
      : sock_(std::move(sock)), rank_(rank), size_(size) {}

  net::SocketPtr sock_;
  /// Typed call layer over sock_, in pump mode (no serve loop: the client
  /// is strictly sequential, so each call() drains the socket itself).
  /// One-way sends stay rpc::post() on the bare socket — they must
  /// schedule their flush event even after mpiexec dies, as the raw
  /// send always did.
  std::unique_ptr<net::rpc::Channel> chan_;
  int rank_;
  int size_;
  /// Captured at connect() (barrier() has no machine in scope): the
  /// machine's tracer, or nullptr, plus the per-node track PMI-phase spans
  /// ("pmi.connect", "pmi.barrier") are recorded on.
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t track_ = 0;
};

}  // namespace jets::pmi
