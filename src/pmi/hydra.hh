// Hydra: the MPICH2 process manager, as modified for JETS.
//
// The real flow this reproduces (paper §4.2, §5):
//
//   1. `mpiexec` starts on the submit/login node, binds a control port, and
//      — with the JETS-contributed `launcher=manual` bootstrap — *reports*
//      the Hydra proxy command lines instead of exec'ing them. Any external
//      agent (the JETS worker) can then start those proxies.
//   2. Each proxy starts on a compute node, dials the control port,
//      receives the user executable spec, and forks the local MPI ranks
//      with PMI_RANK/PMI_SIZE in their environment.
//   3. Ranks speak PMI through the control connection: publish their
//      connection cards in the KVS, fence, fetch peers, then talk MPI
//      directly over sockets.
//   4. Proxies report rank exit statuses; mpiexec completes, and its
//      caller (JETS) checks the output for errors.
//
// The classic `launcher=ssh` bootstrap is also provided as the baseline
// used by the paper's "shell script" comparison (Fig 7).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hh"
#include "obs/span.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "pmi/kvs.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::pmi {

/// Name under which the proxy executable is installed/staged; JETS stages
/// this binary to node-local storage for fast startup (§5, feature 2).
inline constexpr const char* kProxyBinary = "hydra_pmi_proxy";

struct MpiexecSpec {
  /// User command, resolved via the AppRegistry at rank start.
  std::vector<std::string> user_argv;
  int nprocs = 1;
  /// Ranks per proxy ("PPN" in §6.2.1): one proxy per node, ppn ranks each.
  int ranks_per_proxy = 1;
  /// Extra environment for the user processes.
  std::map<std::string, std::string> user_vars;
  /// Binary whose load cost is charged when a rank starts (defaults to
  /// user_argv[0]).
  std::string user_binary;
  /// Serialized per-proxy bootstrap handling cost inside this mpiexec
  /// (command construction, host bookkeeping, environment marshalling).
  /// This is why wide jobs are "individually slower to start" (Fig 9):
  /// a 64-proxy job pays 64x this, one after another.
  sim::Duration proxy_setup_cost = sim::microseconds(500);
  /// Launch-phase deadline: every proxy must dial back AND every rank must
  /// reach pmi.init within this long of start(), or the job fails fast with
  /// MpiexecFailKind::kLaunchTimeout. 0 disables the deadline. This covers
  /// the window a job-level timeout (which defaults to off) would not: a
  /// proxy hung or killed *before wiring completed* otherwise blocks wait()
  /// forever.
  sim::Duration launch_timeout = 0;
  /// Observability: when a tracer is attached to the machine, this
  /// mpiexec's spans ("mpiexec", "mpiexec.launch", "mpiexec.run",
  /// "mpiexec.proxy_setup") are recorded on `trace_track` under
  /// `trace_parent` — JETS passes its job track and "job.attempt" span so
  /// launcher time nests inside the job timeline. 0/0 = root spans on
  /// track 0.
  std::uint64_t trace_track = 0;
  obs::SpanId trace_parent = 0;
};

/// Coarse classification of why an mpiexec run failed, for the scheduler's
/// failure taxonomy. kNone until the first failure; the *first* failure wins
/// (a launch timeout that later also sees proxy EOFs stays kLaunchTimeout).
enum class MpiexecFailKind {
  kNone = 0,       // no failure (yet)
  kExit,           // a proxy reported a nonzero rank exit status
  kDisconnect,     // a proxy or rank connection died before its exit report
  kLaunchTimeout,  // the gang never finished wiring within launch_timeout
  kAborted,        // abort() was called (scheduler timeout / preemption)
};

/// One mpiexec instance == one MPI job. JETS runs many of these
/// concurrently in the background of the submit site (§5: "Hundreds of
/// mpiexec processes do not place a noticeable load on the submit site").
class Mpiexec {
 public:
  Mpiexec(os::Machine& machine, const os::AppRegistry& apps, os::NodeId host,
          MpiexecSpec spec);
  ~Mpiexec();
  Mpiexec(const Mpiexec&) = delete;
  Mpiexec& operator=(const Mpiexec&) = delete;

  /// Binds the control port and starts the control service.
  void start();

  net::Address control_address() const { return control_addr_; }
  int proxy_count() const;
  const MpiexecSpec& spec() const { return spec_; }

  /// launcher=manual: the proxy command lines an external scheduler must
  /// execute, one per proxy (JETS ships these to its workers).
  std::vector<std::vector<std::string>> proxy_commands() const;

  /// launcher=ssh baseline: mpiexec itself starts the proxies on the given
  /// hosts, paying `ssh_cost` per host *sequentially* (connection setup,
  /// auth — why ssh launching is slow at scale).
  void launch_via_ssh(const std::vector<os::NodeId>& hosts,
                      sim::Duration ssh_cost);

  /// Completes when the job has finished; 0 = all ranks/proxies clean,
  /// nonzero = a proxy or rank failed or disconnected early.
  sim::Task<int> wait();

  /// True once every proxy reported (or failed); wait() would not block.
  bool done() const { return done_gate_ && done_gate_->is_open(); }

  /// Marks the job failed and releases wait()ers immediately — used by the
  /// scheduler for timeouts / preemption. Idempotent; no-op once done.
  void abort(const std::string& why = "aborted");

  /// Why the job failed (kNone if it has not failed). First failure wins.
  MpiexecFailKind fail_kind() const { return fail_kind_; }
  const std::string& failure_reason() const { return failure_reason_; }

  /// True once every proxy dialed back and every rank reached pmi.init —
  /// the window the launch-phase deadline covers is over.
  bool launch_complete() const { return launched_; }

  /// Total application stdout bytes routed app->proxy->mpiexec (§6.1.6).
  std::uint64_t stdout_bytes() const { return stdout_bytes_; }

  /// Builds the proxy Program body. Installed once per AppRegistry:
  ///   registry.install(kProxyBinary, Mpiexec::proxy_program(registry));
  /// The registry reference must outlive all launched proxies.
  static os::Program proxy_program(const os::AppRegistry& apps);

 private:
  sim::Task<void> control_service();
  sim::Task<void> handle_connection(net::SocketPtr sock);
  void note_proxy_done(int code);
  void note_launch_progress();
  void fail(MpiexecFailKind kind, const std::string& why);
  /// Closes whatever lifecycle spans are still open (done/fail/teardown).
  void close_spans();

  os::Machine* machine_;
  const os::AppRegistry* apps_;
  os::NodeId host_;
  MpiexecSpec spec_;
  net::Address control_addr_{};
  std::unique_ptr<net::Listener> listener_;
  sim::ActorId control_actor_ = 0;
  std::vector<sim::ActorId> handler_actors_;
  bool started_ = false;

  KeyValueSpace kvs_;
  std::unique_ptr<sim::Semaphore> setup_sem_;  // serializes proxy bootstrap
  int barrier_waiting_ = 0;
  std::vector<net::SocketPtr> rank_socks_;  // indexed by rank
  int proxies_done_ = 0;
  int failures_ = 0;
  int proxies_wired_ = 0;  // sent proxy.hello and received proxy.exec
  int ranks_inited_ = 0;   // sent pmi.init
  bool launched_ = false;
  sim::TimerHandle launch_timer_;
  MpiexecFailKind fail_kind_ = MpiexecFailKind::kNone;
  std::uint64_t stdout_bytes_ = 0;
  std::unique_ptr<sim::Gate> done_gate_;
  std::string failure_reason_;
  /// Lifecycle spans (0 = not traced / not open): "mpiexec" covers
  /// start->done, "mpiexec.launch" start->launch_complete, "mpiexec.run"
  /// launch_complete->done.
  obs::SpanId span_mpx_ = 0;
  obs::SpanId span_launch_ = 0;
  obs::SpanId span_run_ = 0;
};

}  // namespace jets::pmi
