// Replica-exchange molecular dynamics (REM), the paper's driving use case
// (§3): K replicas of the same system run at different temperatures;
// periodically, neighbouring replicas attempt a Metropolis temperature swap
// based on their instantaneous potential energies. Swaps let trajectories
// traverse energy barriers, improving sampling statistics.
//
// This module provides the physics: the temperature ladder, the exchange
// criterion, and an in-process driver (used by examples and tests). The
// *distributed* REM — segments as MPI jobs dispatched through JETS/Swift —
// lives in apps/rem and reuses the same criterion.
#pragma once

#include <cstddef>
#include <vector>

#include "md/lj_system.hh"
#include "sim/random.hh"

namespace jets::md {

/// Geometric temperature ladder from t_min to t_max (the standard REM
/// spacing: constant ratio between neighbours).
std::vector<double> temperature_ladder(double t_min, double t_max,
                                       std::size_t replicas);

/// Metropolis criterion for exchanging configurations between replicas at
/// (inverse) temperatures 1/ti, 1/tj with potential energies ei, ej:
///   accept with probability min(1, exp((1/ti - 1/tj) (ei - ej))).
double exchange_probability(double ei, double ej, double ti, double tj);

/// Samples the criterion.
bool exchange_accept(double ei, double ej, double ti, double tj, sim::Rng& rng);

/// In-process REM driver: runs `replicas` LjSystems, `steps_per_segment`
/// MD steps per segment, and an exchange sweep between segments with
/// alternating parity (0-1,2-3,... then 1-2,3-4,...), like the Swift
/// script of Fig 17.
class ReplicaExchange {
 public:
  struct Config {
    LjConfig system;
    std::size_t replicas = 8;
    double t_min = 0.7;
    double t_max = 1.4;
    std::size_t steps_per_segment = 50;
    std::uint64_t seed = 42;
  };

  explicit ReplicaExchange(const Config& config);

  /// Runs one segment (MD) + one exchange sweep. Returns the number of
  /// accepted exchanges in the sweep.
  std::size_t run_round();

  std::size_t rounds_completed() const { return rounds_; }
  std::size_t attempted() const { return attempted_; }
  std::size_t accepted() const { return accepted_; }
  double acceptance_rate() const {
    return attempted_ == 0 ? 0.0
                           : static_cast<double>(accepted_) /
                                 static_cast<double>(attempted_);
  }

  const std::vector<double>& temperatures() const { return ladder_; }
  /// Which original replica currently holds ladder slot `i` (a permutation
  /// that records the random walk of trajectories through temperatures).
  const std::vector<std::size_t>& slot_to_replica() const { return slot_; }

  Observables observe(std::size_t slot) const {
    return systems_.at(slot).observe();
  }

 private:
  Config config_;
  std::vector<double> ladder_;
  std::vector<LjSystem> systems_;  // indexed by ladder slot
  std::vector<std::size_t> slot_;
  sim::Rng rng_;
  std::size_t rounds_ = 0;
  std::size_t attempted_ = 0;
  std::size_t accepted_ = 0;
};

}  // namespace jets::md
