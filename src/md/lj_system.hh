// A real (non-mocked) molecular dynamics kernel: Lennard-Jones particles in
// a periodic box integrated with velocity Verlet.
//
// This is the computational stand-in for NAMD (the paper's application,
// §1.3/§6.1.6): it produces genuine trajectories, energies, and replica-
// exchange statistics. The examples run it for real; the benchmark
// harnesses use its measured per-step cost distribution to parameterize
// the simulated NAMD task durations (Fig 11's 100-160 s wall times).
//
// Reduced LJ units throughout (sigma = epsilon = mass = kB = 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/random.hh"

namespace jets::md {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(double s, Vec3 v) {
    v.x *= s;
    v.y *= s;
    v.z *= s;
    return v;
  }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
};

struct LjConfig {
  std::size_t particles = 108;   // cubic-lattice friendly
  double density = 0.8;          // reduced number density
  double temperature = 1.0;      // initial/velocity-rescale temperature
  double dt = 0.004;             // integration step
  double cutoff = 2.5;           // LJ cutoff radius
  std::uint64_t seed = 12345;
};

/// Snapshot of a trajectory's thermodynamic state.
struct Observables {
  double kinetic = 0;
  double potential = 0;
  double temperature = 0;  // instantaneous, 2K/(3N)
  double total() const { return kinetic + potential; }
};

class LjSystem {
 public:
  explicit LjSystem(const LjConfig& config);

  std::size_t size() const { return pos_.size(); }
  double box() const { return box_; }
  const LjConfig& config() const { return config_; }

  /// Advances `n` velocity-Verlet steps (NVE).
  void step(std::size_t n = 1);

  /// Velocity-rescale thermostat pulse toward `temperature` (used between
  /// NVE stretches and after replica exchanges).
  void rescale_to(double temperature);

  Observables observe() const;

  /// Checkpoint/restart — the MD analogue of NAMD's coordinate/velocity
  /// files that the REM workflow shuttles between segments.
  struct Checkpoint {
    std::vector<Vec3> positions;
    std::vector<Vec3> velocities;
    double temperature = 0;
  };
  Checkpoint checkpoint() const;
  void restore(const Checkpoint& c);

  const std::vector<Vec3>& positions() const { return pos_; }
  const std::vector<Vec3>& velocities() const { return vel_; }

 private:
  void init_lattice();
  void init_velocities(double temperature);
  void compute_forces();
  Vec3 minimum_image(Vec3 d) const;

  LjConfig config_;
  double box_;
  std::vector<Vec3> pos_, vel_, force_;
  double potential_ = 0;
  sim::Rng rng_;
};

}  // namespace jets::md
