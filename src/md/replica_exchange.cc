#include "md/replica_exchange.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jets::md {

std::vector<double> temperature_ladder(double t_min, double t_max,
                                       std::size_t replicas) {
  if (replicas == 0 || t_min <= 0 || t_max < t_min) {
    throw std::invalid_argument("bad temperature ladder parameters");
  }
  std::vector<double> ladder(replicas);
  if (replicas == 1) {
    ladder[0] = t_min;
    return ladder;
  }
  const double ratio = std::pow(t_max / t_min,
                                1.0 / static_cast<double>(replicas - 1));
  double t = t_min;
  for (std::size_t i = 0; i < replicas; ++i) {
    ladder[i] = t;
    t *= ratio;
  }
  return ladder;
}

double exchange_probability(double ei, double ej, double ti, double tj) {
  const double delta = (1.0 / ti - 1.0 / tj) * (ei - ej);
  return delta >= 0 ? 1.0 : std::exp(delta);
}

bool exchange_accept(double ei, double ej, double ti, double tj, sim::Rng& rng) {
  return rng.uniform() < exchange_probability(ei, ej, ti, tj);
}

ReplicaExchange::ReplicaExchange(const Config& config)
    : config_(config),
      ladder_(temperature_ladder(config.t_min, config.t_max, config.replicas)),
      rng_(config.seed) {
  systems_.reserve(config.replicas);
  slot_.resize(config.replicas);
  for (std::size_t i = 0; i < config.replicas; ++i) {
    LjConfig c = config.system;
    c.temperature = ladder_[i];
    c.seed = config.seed * 1000003 + i;
    systems_.emplace_back(c);
    slot_[i] = i;
  }
}

std::size_t ReplicaExchange::run_round() {
  for (std::size_t i = 0; i < systems_.size(); ++i) {
    systems_[i].step(config_.steps_per_segment);
  }
  // Alternating-parity neighbour sweep (Fig 17's %% 2 logic).
  const std::size_t start = rounds_ % 2;
  std::size_t swept = 0;
  for (std::size_t i = start; i + 1 < systems_.size(); i += 2) {
    const double ei = systems_[i].observe().potential;
    const double ej = systems_[i + 1].observe().potential;
    ++attempted_;
    if (exchange_accept(ei, ej, ladder_[i], ladder_[i + 1], rng_)) {
      // Exchange configurations (swap checkpoints), keep temperatures with
      // the slots, and rescale velocities to the new temperature — the
      // file-shuffling the paper's exchange script performs.
      auto ci = systems_[i].checkpoint();
      auto cj = systems_[i + 1].checkpoint();
      systems_[i].restore(cj);
      systems_[i + 1].restore(ci);
      systems_[i].rescale_to(ladder_[i]);
      systems_[i + 1].rescale_to(ladder_[i + 1]);
      std::swap(slot_[i], slot_[i + 1]);
      ++accepted_;
      ++swept;
    }
  }
  ++rounds_;
  return swept;
}

}  // namespace jets::md
