#include "md/analysis.hh"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace jets::md {

namespace {

Vec3 minimum_image(Vec3 d, double box) {
  d.x -= box * std::nearbyint(d.x / box);
  d.y -= box * std::nearbyint(d.y / box);
  d.z -= box * std::nearbyint(d.z / box);
  return d;
}

}  // namespace

std::vector<double> radial_distribution(const LjSystem& system, double r_max,
                                        std::size_t bins) {
  if (bins == 0 || r_max <= 0) {
    throw std::invalid_argument("radial_distribution: bad bins/r_max");
  }
  const auto& pos = system.positions();
  const double box = system.box();
  const double dr = r_max / static_cast<double>(bins);
  std::vector<std::size_t> counts(bins, 0);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      const Vec3 d = minimum_image(pos[i] - pos[j], box);
      const double r = std::sqrt(d.dot(d));
      if (r >= r_max) continue;
      ++counts[static_cast<std::size_t>(r / dr)];
    }
  }
  // Normalize by the ideal-gas shell population.
  const double n = static_cast<double>(pos.size());
  const double density = n / (box * box * box);
  std::vector<double> g(bins, 0.0);
  for (std::size_t b = 0; b < bins; ++b) {
    const double r_lo = dr * static_cast<double>(b);
    const double r_hi = r_lo + dr;
    const double shell = 4.0 / 3.0 * std::numbers::pi *
                         (r_hi * r_hi * r_hi - r_lo * r_lo * r_lo);
    const double ideal_pairs = 0.5 * n * density * shell;
    if (ideal_pairs > 0) {
      g[b] = static_cast<double>(counts[b]) / ideal_pairs;
    }
  }
  return g;
}

MsdTracker::MsdTracker(const LjSystem& system)
    : origin_(system.positions()), previous_(system.positions()),
      unwrapped_(system.positions()), box_(system.box()) {}

void MsdTracker::sample(const LjSystem& system) {
  const auto& pos = system.positions();
  if (pos.size() != previous_.size()) {
    throw std::invalid_argument("MsdTracker: particle count changed");
  }
  for (std::size_t i = 0; i < pos.size(); ++i) {
    // Accumulate the minimum-image displacement since the last sample; as
    // long as sampling is frequent relative to particle speed this
    // unwraps the periodic trajectory correctly.
    unwrapped_[i] += minimum_image(pos[i] - previous_[i], box_);
    previous_[i] = pos[i];
  }
  ++samples_;
}

double MsdTracker::msd() const {
  double acc = 0;
  for (std::size_t i = 0; i < origin_.size(); ++i) {
    const Vec3 d = unwrapped_[i] - origin_[i];
    acc += d.dot(d);
  }
  return acc / static_cast<double>(origin_.size());
}

double MsdTracker::diffusion(double elapsed_time) const {
  if (elapsed_time <= 0) return 0;
  return msd() / (6.0 * elapsed_time);
}

std::vector<std::size_t> velocity_histogram(const LjSystem& system,
                                            double v_max, std::size_t bins) {
  if (bins == 0 || v_max <= 0) {
    throw std::invalid_argument("velocity_histogram: bad bins/v_max");
  }
  std::vector<std::size_t> h(bins, 0);
  const double dv = 2.0 * v_max / static_cast<double>(bins);
  for (const Vec3& v : system.velocities()) {
    for (double c : {v.x, v.y, v.z}) {
      const double clamped = std::clamp(c, -v_max, v_max - 1e-12);
      ++h[static_cast<std::size_t>((clamped + v_max) / dv)];
    }
  }
  return h;
}

double velocity_variance(const LjSystem& system) {
  double sum = 0, sum2 = 0;
  std::size_t n = 0;
  for (const Vec3& v : system.velocities()) {
    for (double c : {v.x, v.y, v.z}) {
      sum += c;
      sum2 += c * c;
      ++n;
    }
  }
  const double mean = sum / static_cast<double>(n);
  return sum2 / static_cast<double>(n) - mean * mean;
}

}  // namespace jets::md
