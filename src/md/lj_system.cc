#include "md/lj_system.hh"

#include <cmath>
#include <stdexcept>

namespace jets::md {

LjSystem::LjSystem(const LjConfig& config)
    : config_(config),
      box_(std::cbrt(static_cast<double>(config.particles) / config.density)),
      pos_(config.particles), vel_(config.particles), force_(config.particles),
      rng_(config.seed) {
  if (config.particles == 0) throw std::invalid_argument("empty LJ system");
  if (config.cutoff * 2.0 > box_) {
    throw std::invalid_argument("LJ cutoff exceeds half the box; raise N");
  }
  init_lattice();
  init_velocities(config.temperature);
  compute_forces();
}

void LjSystem::init_lattice() {
  // Simple cubic lattice with small random jitter to break symmetry.
  const auto per_side = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(pos_.size()))));
  const double a = box_ / static_cast<double>(per_side);
  std::size_t i = 0;
  for (std::size_t x = 0; x < per_side && i < pos_.size(); ++x) {
    for (std::size_t y = 0; y < per_side && i < pos_.size(); ++y) {
      for (std::size_t z = 0; z < per_side && i < pos_.size(); ++z, ++i) {
        pos_[i] = Vec3{(static_cast<double>(x) + 0.5) * a,
                       (static_cast<double>(y) + 0.5) * a,
                       (static_cast<double>(z) + 0.5) * a};
        pos_[i] += Vec3{rng_.uniform(-0.01, 0.01) * a,
                        rng_.uniform(-0.01, 0.01) * a,
                        rng_.uniform(-0.01, 0.01) * a};
      }
    }
  }
}

void LjSystem::init_velocities(double temperature) {
  Vec3 total{};
  const double s = std::sqrt(temperature);
  for (Vec3& v : vel_) {
    v = Vec3{rng_.normal(0, s), rng_.normal(0, s), rng_.normal(0, s)};
    total += v;
  }
  // Remove center-of-mass drift, then rescale to the exact temperature.
  const double inv_n = 1.0 / static_cast<double>(vel_.size());
  for (Vec3& v : vel_) v -= inv_n * total;
  rescale_to(temperature);
}

Vec3 LjSystem::minimum_image(Vec3 d) const {
  d.x -= box_ * std::nearbyint(d.x / box_);
  d.y -= box_ * std::nearbyint(d.y / box_);
  d.z -= box_ * std::nearbyint(d.z / box_);
  return d;
}

void LjSystem::compute_forces() {
  const double rc2 = config_.cutoff * config_.cutoff;
  // Shift the potential so it is continuous at the cutoff.
  const double inv_rc6 = 1.0 / (rc2 * rc2 * rc2);
  const double shift = 4.0 * inv_rc6 * (inv_rc6 - 1.0);
  potential_ = 0;
  for (Vec3& f : force_) f = Vec3{};
  const std::size_t n = pos_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      Vec3 d = minimum_image(pos_[i] - pos_[j]);
      const double r2 = d.dot(d);
      if (r2 >= rc2) continue;
      const double inv_r2 = 1.0 / r2;
      const double inv_r6 = inv_r2 * inv_r2 * inv_r2;
      // F = 24 eps (2 r^-12 - r^-6) / r^2 * d
      const double fmag = 24.0 * inv_r2 * inv_r6 * (2.0 * inv_r6 - 1.0);
      force_[i] += fmag * d;
      force_[j] -= fmag * d;
      potential_ += 4.0 * inv_r6 * (inv_r6 - 1.0) - shift;
    }
  }
}

void LjSystem::step(std::size_t n) {
  const double dt = config_.dt;
  const double half = 0.5 * dt;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      vel_[i] += half * force_[i];
      pos_[i] += dt * vel_[i];
      // Wrap into the box.
      pos_[i].x -= box_ * std::floor(pos_[i].x / box_);
      pos_[i].y -= box_ * std::floor(pos_[i].y / box_);
      pos_[i].z -= box_ * std::floor(pos_[i].z / box_);
    }
    compute_forces();
    for (std::size_t i = 0; i < pos_.size(); ++i) {
      vel_[i] += half * force_[i];
    }
  }
}

void LjSystem::rescale_to(double temperature) {
  double k = 0;
  for (const Vec3& v : vel_) k += 0.5 * v.dot(v);
  const double t_now =
      2.0 * k / (3.0 * static_cast<double>(vel_.size()));
  if (t_now <= 0) return;
  const double s = std::sqrt(temperature / t_now);
  for (Vec3& v : vel_) v = s * v;
}

Observables LjSystem::observe() const {
  Observables o;
  for (const Vec3& v : vel_) o.kinetic += 0.5 * v.dot(v);
  o.potential = potential_;
  o.temperature = 2.0 * o.kinetic / (3.0 * static_cast<double>(vel_.size()));
  return o;
}

LjSystem::Checkpoint LjSystem::checkpoint() const {
  return Checkpoint{pos_, vel_, observe().temperature};
}

void LjSystem::restore(const Checkpoint& c) {
  if (c.positions.size() != pos_.size()) {
    throw std::invalid_argument("checkpoint size mismatch");
  }
  pos_ = c.positions;
  vel_ = c.velocities;
  compute_forces();
}

}  // namespace jets::md
