// Trajectory analysis for the MD kernel: the standard observables a REM
// user computes from the segment outputs the workflow shuttles around —
// radial distribution function (liquid structure), mean-squared
// displacement (diffusion), and a velocity histogram (Maxwell-Boltzmann
// check). All real computation; used by examples and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "md/lj_system.hh"

namespace jets::md {

/// Radial distribution function g(r) from a configuration: the ratio of
/// observed pair density at distance r to the ideal-gas expectation. A
/// Lennard-Jones liquid shows the classic first peak near r = 1.1 sigma.
std::vector<double> radial_distribution(const LjSystem& system, double r_max,
                                        std::size_t bins);

/// Tracks mean-squared displacement across checkpoints of the same system
/// (positions must be *unwrapped* by the caller's sampling cadence being
/// short enough that no particle crosses half the box between samples).
class MsdTracker {
 public:
  explicit MsdTracker(const LjSystem& system);

  /// Records the system's current positions; call between step() batches.
  void sample(const LjSystem& system);

  /// MSD of the latest sample relative to the initial one.
  double msd() const;

  /// Diffusion coefficient estimate from the Einstein relation,
  /// D = MSD / (6 t), with t = samples x dt_per_sample.
  double diffusion(double elapsed_time) const;

  std::size_t samples() const { return samples_; }

 private:
  std::vector<Vec3> origin_;
  std::vector<Vec3> previous_;   // last wrapped positions
  std::vector<Vec3> unwrapped_;  // accumulated unwrapped positions
  double box_;
  std::size_t samples_ = 0;
};

/// Histogram of one velocity component across particles; for a thermal
/// system it approaches a Gaussian with variance T (reduced units).
std::vector<std::size_t> velocity_histogram(const LjSystem& system,
                                            double v_max, std::size_t bins);

/// Sample variance of all velocity components (= temperature in reduced
/// units for an equilibrated system).
double velocity_variance(const LjSystem& system);

}  // namespace jets::md
