#include "obs/phase_table.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/span.hh"
#include "obs/tracer.hh"

namespace jets::obs {

void PhaseStats::add(sim::Duration d) {
  if (d < 0) d = 0;
  if (count == 0 || d < min) min = d;
  if (count == 0 || d > max) max = d;
  ++count;
  total += d;
}

void PhaseStats::merge(const PhaseStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  total += other.total;
}

PhaseTable::PhaseTable() {
  static constexpr struct {
    const char* phase;
    const char* span;
  } kPhases[] = {
      {"queue", "job.queued"},     {"group", "job.group"},
      {"launch", "mpiexec.launch"}, {"pmi", "pmi.barrier"},
      {"run", "job.run"},
  };
  for (const auto& p : kPhases) {
    PhaseStats s;
    s.phase = p.phase;
    s.span_name = p.span;
    rows_.push_back(std::move(s));
  }
}

void PhaseTable::absorb(const Tracer& tracer) {
  for (const Span& s : tracer.spans()) {
    if (!s.closed()) continue;
    for (PhaseStats& row : rows_) {
      if (row.span_name == s.name) {
        row.add(s.duration());
        break;
      }
    }
  }
}

void PhaseTable::merge(const PhaseTable& other) {
  for (PhaseStats& row : rows_) {
    for (const PhaseStats& orow : other.rows_) {
      if (orow.span_name == row.span_name) {
        row.merge(orow);
        break;
      }
    }
  }
}

namespace {

std::string us3(sim::Duration ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  return buf;
}

std::string us3(double ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ns / 1000.0);
  return buf;
}

}  // namespace

std::string PhaseTable::render() const {
  std::string out =
      "# obs phase      count     mean_us      min_us      max_us    total_us\n";
  char line[200];
  for (const PhaseStats& row : rows_) {
    std::snprintf(line, sizeof line, "# obs %-8s %8" PRIu64 " %11s %11s %11s %11s\n",
                  row.phase.c_str(), row.count, us3(row.mean_ns()).c_str(),
                  us3(row.min).c_str(), us3(row.max).c_str(),
                  us3(row.total).c_str());
    out += line;
  }
  return out;
}

std::vector<PhaseStats> aggregate_by_name(const Tracer& tracer) {
  std::map<std::string, PhaseStats> by_name;
  for (const Span& s : tracer.spans()) {
    if (!s.closed()) continue;
    PhaseStats& row = by_name[s.name];
    if (row.count == 0) {
      row.phase = s.name;
      row.span_name = s.name;
    }
    row.add(s.duration());
  }
  std::vector<PhaseStats> rows;
  rows.reserve(by_name.size());
  for (auto& [name, row] : by_name) {
    (void)name;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace jets::obs
