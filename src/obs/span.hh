// Span model for the observability layer.
//
// A Span is one named, timed phase of the pilot-job pipeline (queue wait,
// worker grouping, mpiexec launch, PMI exchange, application run, ...).
// Spans carry integer-nanosecond *simulated* timestamps, nest through
// parent ids, and attach structured attributes — the decomposition the
// paper uses to argue where pilot-launch time goes (§5, Figs 6/9), made
// first-class so every future perf PR can be measured against it.
//
// Determinism: a span records only (a) the engine clock at the call site
// and (b) values the caller already computed. Recording never schedules
// events, draws randomness, or otherwise feeds back into the simulation,
// so same-seed runs produce identical span streams and a run with tracing
// attached executes the exact same event sequence as one without.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace jets::obs {

/// Identifier of a span within one Tracer; ids are handed out densely in
/// begin() order, so id order == begin order. 0 = "no span" (also used as
/// "no parent").
using SpanId = std::uint64_t;

/// One structured attribute. Values are stored as strings; Tracer::attr has
/// an integer overload that formats for you.
struct Attr {
  std::string key;
  std::string value;

  friend bool operator==(const Attr&, const Attr&) = default;
};

/// Track ids group spans into Chrome-trace processes ("pid" rows). Two
/// namespaces are in use: per-job tracks (job-lifecycle spans, keyed by
/// JobId) and per-node tracks (worker / PMI-client spans, keyed by NodeId).
/// The offset keeps them from colliding on small integers.
inline constexpr std::uint64_t kNodeTrackBase = 1'000'000'000ull;
constexpr std::uint64_t track_job(std::uint64_t job_id) { return job_id; }
constexpr std::uint64_t track_node(std::uint64_t node_id) {
  return kNodeTrackBase + node_id;
}

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string name;   // dotted phase name, e.g. "job.queued"
  std::uint64_t track = 0;
  sim::Time begin = 0;
  sim::Time end = -1;  // -1 while open
  std::vector<Attr> attrs;

  bool closed() const { return end >= 0; }
  sim::Duration duration() const { return closed() ? end - begin : 0; }

  friend bool operator==(const Span&, const Span&) = default;
};

}  // namespace jets::obs
