// Span tracer: records named, nested phases with simulated timestamps.
//
// Attachment model: components read the tracer pointer from the shared
// os::Machine (Machine::tracer(), nullptr by default) and guard every
// instrumentation site on it, so an untraced run pays one pointer load per
// site and allocates nothing — "zero-cost when no sink is attached".
// Attach a tracer *before* starting the workload and leave it attached for
// the machine's lifetime; spans are recorded in event-execution order,
// which the engine guarantees is a pure function of the inputs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hh"
#include "sim/engine.hh"
#include "sim/time.hh"

namespace jets::obs {

class Tracer {
 public:
  /// The engine supplies timestamps; it must outlive the tracer.
  explicit Tracer(sim::Engine& engine) : engine_(&engine) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span at the current simulated time. `parent` = 0 for roots.
  SpanId begin(std::string_view name, std::uint64_t track = 0,
               SpanId parent = 0) {
    Span s;
    s.id = spans_.size() + 1;
    s.parent = parent;
    s.name = std::string(name);
    s.track = track;
    s.begin = engine_->now();
    spans_.push_back(std::move(s));
    ++open_;
    return spans_.back().id;
  }

  /// Closes a span at the current simulated time. Ending an already-closed
  /// or unknown span is a no-op (id 0 included), so settle paths can close
  /// unconditionally.
  void end(SpanId id) {
    Span* s = find(id);
    if (!s || s->closed()) return;
    s->end = engine_->now();
    --open_;
  }

  /// end() + reset to 0, for "close if open" sites that keep the id in a
  /// long-lived struct across attempts.
  void end_and_clear(SpanId& id) {
    end(id);
    id = 0;
  }

  void attr(SpanId id, std::string_view key, std::string_view value) {
    if (Span* s = find(id)) {
      s->attrs.push_back(Attr{std::string(key), std::string(value)});
    }
  }
  void attr(SpanId id, std::string_view key, std::int64_t value) {
    attr(id, key, std::to_string(value));
  }

  /// Appends a journal exported from another tracer (a pre-crash run whose
  /// spans were checkpointed). Ids are renumbered to stay dense — every
  /// imported id and nonzero parent is offset by the current span count, so
  /// nesting is preserved and ids handed out afterwards don't collide.
  /// Returns the offset applied (add it to an old id to get the new one).
  SpanId import_spans(const std::vector<Span>& journal) {
    const SpanId offset = spans_.size();
    spans_.reserve(spans_.size() + journal.size());
    for (const Span& old : journal) {
      Span s = old;
      s.id += offset;
      if (s.parent != 0) s.parent += offset;
      if (!s.closed()) ++open_;
      spans_.push_back(std::move(s));
    }
    return offset;
  }

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  std::size_t open_spans() const { return open_; }
  sim::Engine& engine() const { return *engine_; }

  /// Canonical text form of the whole span stream, one line per span in id
  /// (begin) order:
  ///   <id> <parent> <track> <begin> <end> <name> [k=v ...]
  /// Two same-seed runs must serialize identically — the regression suite's
  /// equality and golden checks compare exactly this.
  std::string serialize() const;

 private:
  Span* find(SpanId id) {
    if (id == 0 || id > spans_.size()) return nullptr;
    return &spans_[id - 1];
  }

  sim::Engine* engine_;
  std::vector<Span> spans_;
  std::size_t open_ = 0;
};

/// RAII span for phases that open and close in one scope — including a
/// coroutine frame: if the actor is killed mid-phase, frame teardown runs
/// the destructor and the span closes at the kill time. Null tracer = no-op.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, std::string_view name, std::uint64_t track = 0,
             SpanId parent = 0)
      : tracer_(tracer) {
    if (tracer_) id_ = tracer_->begin(name, track, parent);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  ~ScopedSpan() {
    if (tracer_) tracer_->end(id_);
  }

  SpanId id() const { return id_; }
  void attr(std::string_view key, std::string_view value) {
    if (tracer_) tracer_->attr(id_, key, value);
  }
  void attr(std::string_view key, std::int64_t value) {
    if (tracer_) tracer_->attr(id_, key, value);
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
};

}  // namespace jets::obs
