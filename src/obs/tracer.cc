#include "obs/tracer.hh"

namespace jets::obs {

std::string Tracer::serialize() const {
  std::string out;
  out.reserve(spans_.size() * 64);
  for (const Span& s : spans_) {
    out += std::to_string(s.id);
    out += ' ';
    out += std::to_string(s.parent);
    out += ' ';
    out += std::to_string(s.track);
    out += ' ';
    out += std::to_string(s.begin);
    out += ' ';
    out += std::to_string(s.end);
    out += ' ';
    out += s.name;
    for (const Attr& a : s.attrs) {
      out += ' ';
      out += a.key;
      out += '=';
      out += a.value;
    }
    out += '\n';
  }
  return out;
}

}  // namespace jets::obs
