// Chrome trace-event exporter.
//
// Renders a Tracer's closed spans as a catapult / chrome://tracing /
// Perfetto-compatible JSON document of duration events: every span becomes
// a "B" (begin) and matching "E" (end) event. Chrome's format requires the
// events of each (pid, tid) pair to form a well-nested stack with
// nondecreasing timestamps, but JETS spans on one track can overlap
// without nesting (e.g. a retry backoff tail vs. the next queued phase),
// so the exporter assigns overlapping siblings to separate tid "lanes":
// each lane holds a containment forest and is emitted as a DFS of B/E
// pairs. pid = span track (job id, or node id + offset), tid = lane.
//
// Timestamps are emitted in microseconds with fractional nanoseconds
// (ts = sim ns / 1000, three decimals) as the format prescribes. Open
// spans are skipped — export after the workload settles.
#pragma once

#include <string>

namespace jets::obs {

class Tracer;

/// Full document: {"traceEvents":[ ... ]}. One event object per line so
/// tests (and grep) can parse it without a JSON library. Deterministic:
/// same span stream -> byte-identical output.
std::string chrome_trace_json(const Tracer& tracer);

/// Convenience: write chrome_trace_json() to `path`. Returns false if the
/// file could not be opened.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace jets::obs
