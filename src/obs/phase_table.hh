// Per-phase latency table: aggregates a span stream into the pipeline
// phases the paper's launch-time decomposition argues about.
//
// The canonical mapping pins the report rows to stable span names:
//   queue  <- job.queued        (submit -> placed on workers)
//   group  <- job.group         (worker grouping + dispatch fan-out)
//   launch <- mpiexec.launch    (mpiexec start -> all proxies dialed back)
//   pmi    <- pmi.barrier       (KVS exchange barrier at rank startup)
//   run    <- job.run           (application execution)
// Benches print this table under a "# obs " prefix after their series, so
// plain series output stays grep-able (grep -v '^# obs').
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"

namespace jets::obs {

class Tracer;

struct PhaseStats {
  std::string phase;       // report row label
  std::string span_name;   // span name it aggregates
  std::uint64_t count = 0;
  sim::Duration total = 0;
  sim::Duration min = 0;
  sim::Duration max = 0;

  double mean_ns() const {
    return count ? static_cast<double>(total) / static_cast<double>(count)
                 : 0.0;
  }
  void add(sim::Duration d);
  void merge(const PhaseStats& other);
};

/// Accumulates closed-span durations phase by phase. One accumulator can
/// absorb many tracers (benches run a fresh testbed per data point and
/// merge), and rows keep the canonical order above.
class PhaseTable {
 public:
  /// Rows for the canonical queue/group/launch/pmi/run phases, in order.
  PhaseTable();

  /// Folds every *closed* span whose name has a canonical row into the
  /// table. Spans outside the mapping are ignored.
  void absorb(const Tracer& tracer);

  const std::vector<PhaseStats>& rows() const { return rows_; }
  void merge(const PhaseTable& other);

  /// Fixed-width text table, one "# obs " prefixed line per row plus a
  /// header line. Durations in microseconds with 3 decimals; deterministic.
  std::string render() const;

 private:
  std::vector<PhaseStats> rows_;
};

/// Generic per-name aggregation of a whole span stream (every distinct span
/// name gets a row, sorted by name). Used by tests and ad-hoc inspection.
std::vector<PhaseStats> aggregate_by_name(const Tracer& tracer);

}  // namespace jets::obs
