#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>
#include <vector>

#include "obs/span.hh"
#include "obs/tracer.hh"

namespace jets::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_ts(sim::Time ns) {
  // Chrome wants microseconds; keep full ns resolution as three decimals.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  return buf;
}

std::string_view category_of(std::string_view name) {
  auto dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

struct Event {
  sim::Time ts;
  const Span* span;
  std::size_t lane;
  bool is_begin;
};

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  const std::vector<Span>& spans = tracer.spans();

  // Lane assignment. Chrome requires each (pid, tid)'s events to form a
  // well-nested stack, but spans on one track may overlap without nesting;
  // give each such span its own tid "lane". A lane's open spans form a
  // stack; a new span fits a lane iff, after popping spans that ended at or
  // before its begin, the lane is empty or its innermost open span fully
  // contains it. Processing in id order == begin order makes this greedy
  // assignment deterministic.
  struct Lane {
    std::vector<const Span*> stack;  // open spans, innermost last
    std::vector<const Span*> roots;  // containment-forest roots, begin order
  };
  std::map<std::uint64_t, std::vector<Lane>> tracks;
  // Children in the per-lane containment forest (indexed by span id).
  std::vector<std::vector<const Span*>> children(spans.size() + 1);
  std::vector<std::size_t> lane_of(spans.size() + 1, 0);

  for (const Span& s : spans) {
    if (!s.closed()) continue;  // export after settle; open spans skipped
    std::vector<Lane>& lanes = tracks[s.track];
    std::size_t chosen = lanes.size();
    for (std::size_t li = 0; li < lanes.size(); ++li) {
      std::vector<const Span*>& st = lanes[li].stack;
      while (!st.empty() && st.back()->end <= s.begin) st.pop_back();
      if (st.empty() || st.back()->end >= s.end) {
        chosen = li;
        break;
      }
    }
    if (chosen == lanes.size()) lanes.emplace_back();
    Lane& lane = lanes[chosen];
    if (lane.stack.empty()) {
      lane.roots.push_back(&s);
    } else {
      children[lane.stack.back()->id].push_back(&s);
    }
    lane.stack.push_back(&s);
    lane_of[s.id] = chosen;
  }

  // Emit each lane's forest as a DFS of B/E pairs: per-lane timestamps are
  // nondecreasing (siblings in a lane never overlap), so a stable global
  // sort by timestamp keeps every lane's sequence stack-valid while making
  // the whole document monotonic.
  std::vector<Event> events;
  events.reserve(spans.size() * 2);
  auto emit = [&](const Span* s, std::size_t lane, auto&& self) -> void {
    events.push_back(Event{s->begin, s, lane, true});
    for (const Span* c : children[s->id]) self(c, lane, self);
    events.push_back(Event{s->end, s, lane, false});
  };
  for (const auto& [track, lanes] : tracks) {
    (void)track;
    for (std::size_t li = 0; li < lanes.size(); ++li) {
      for (const Span* root : lanes[li].roots) emit(root, li, emit);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    const Span& s = *e.span;
    out += "{\"name\":\"";
    out += json_escape(s.name);
    out += "\",\"cat\":\"";
    out += json_escape(category_of(s.name));
    out += "\",\"ph\":\"";
    out += e.is_begin ? 'B' : 'E';
    out += "\",\"pid\":";
    out += std::to_string(s.track);
    out += ",\"tid\":";
    out += std::to_string(e.lane);
    out += ",\"ts\":";
    out += format_ts(e.ts);
    if (e.is_begin && !s.attrs.empty()) {
      out += ",\"args\":{";
      for (std::size_t ai = 0; ai < s.attrs.size(); ++ai) {
        if (ai) out += ',';
        out += '"';
        out += json_escape(s.attrs[ai].key);
        out += "\":\"";
        out += json_escape(s.attrs[ai].value);
        out += '"';
      }
      out += '}';
    }
    out += '}';
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << chrome_trace_json(tracer);
  return static_cast<bool>(f);
}

}  // namespace jets::obs
