#include "obs/metrics.hh"

namespace jets::obs {

std::int64_t Histogram::quantile_upper_bound(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target && cum > 0) {
      // Upper edge of bucket i; bucket 0 holds exact zeros.
      return i == 0 ? 0 : (std::int64_t{1} << i) - 1;
    }
  }
  return max_;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value;
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::snapshot() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "counter " + name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "gauge " + name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram " + name + " count=" + std::to_string(h.count()) +
           " sum=" + std::to_string(h.sum()) +
           " min=" + std::to_string(h.min()) +
           " max=" + std::to_string(h.max()) + "\n";
  }
  return out;
}

}  // namespace jets::obs
