// Central metrics registry: counters, gauges, and histograms behind stable
// dotted names.
//
// This absorbs the ad-hoc counter members that used to live on
// core::Service (liveness, failure taxonomy, retry/quarantine) and the
// chaos layer: components get-or-create an instrument once, cache the
// returned pointer, and bump it on the hot path — one pointer-indirect
// add, no name lookup per increment. Instrument addresses are stable for
// the registry's lifetime (node-based map storage), and snapshot() renders
// every instrument sorted by name, so two same-seed runs snapshot
// identically.
//
// Naming scheme (see DESIGN.md §8): dotted, lowercase, unit-suffixed for
// histograms — e.g. "jets.service.jobs.completed",
// "jets.service.failures.app-exit", "jets.service.queue_wait_ns".
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace jets::obs {

/// Monotonic event count.
struct Counter {
  std::uint64_t value = 0;
  void inc(std::uint64_t d = 1) { value += d; }
};

/// Point-in-time level (can go down: connected workers, running jobs).
struct Gauge {
  std::int64_t value = 0;
  void set(std::int64_t v) { value = v; }
  void add(std::int64_t d) { value += d; }
};

/// Power-of-two-bucketed distribution of non-negative int64 samples
/// (durations in ns, sizes in bytes). Bucket i counts samples in
/// [2^(i-1), 2^i) with bucket 0 counting zeros; exact count/sum/min/max
/// ride along for mean and range reporting.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::int64_t v) {
    if (v < 0) v = 0;
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

  /// Upper-bound estimate of the q-quantile (q in [0,1]): the upper edge of
  /// the bucket where the cumulative count crosses q. Deterministic and
  /// monotone in q; resolution is one power of two.
  std::int64_t quantile_upper_bound(double q) const;

 private:
  static std::size_t bucket_of(std::int64_t v) {
    std::size_t b = 0;
    while (v > 0 && b < kBuckets - 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  Gauge& gauge(std::string_view name) { return gauges_[std::string(name)]; }
  Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }

  /// Read-only lookups: value of the named instrument, or 0/null when it
  /// was never created (reads never create).
  std::uint64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Text snapshot, one instrument per line, each section sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> min=<m> max=<M>
  /// Benches append this under '#'-comment prefixes; tests diff it.
  std::string snapshot() const;

 private:
  // std::map: node-based (stable addresses for cached pointers) and
  // name-sorted (deterministic snapshots). Registration is cold path.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace jets::obs
