// Elastic block allocator: the Coasters-style controller that grows and
// shrinks the pilot pool under Service queue pressure (ROADMAP item 5's
// elasticity half; "A Comprehensive Perspective on Pilot-Job Systems"
// surveys this as the signature pilot-system capability).
//
// The controller polls the service on a fixed cadence and keeps three
// invariants:
//
//   scale-out   — backlog above the watermark submits another block of
//                 `block_size` nodes through os::BatchScheduler, with a
//                 seeded-jitter retry/backoff loop over the typed
//                 AllocationError taxonomy (denied / out-of-nodes /
//                 queue-starvation), up to `max_nodes`.
//   scale-in    — a pool idle for `idle_before_shrink` gracefully drains
//                 its newest block (stop placing, nothing in flight to
//                 wait for, kill pilots, release) down to `min_nodes`.
//   drain-ahead — a block within `drain_lead` of its walltime horizon is
//                 drained *before* Cobalt's killer fires: the service
//                 stops placing onto it (walltime-aware claim gate),
//                 running jobs get `drain_grace` to finish, anything left
//                 is requeued with the infra-exempt kWalltimeDrain, and
//                 only then are the pilots killed and the nodes released.
//                 Preemption (the batch system revoking a granted block
//                 early) rides the same machinery, just with a synchronous
//                 drain — so no job is ever lost to an allocation
//                 boundary.
//
// Every decision draws from one seeded rng and all timers live on the
// simulation clock, so an elastic run is byte-reproducible: same seed +
// same workload => identical execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "core/service.hh"
#include "core/standalone.hh"
#include "os/machine.hh"
#include "sim/random.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::swift {

struct ElasticPolicy {
  /// Pool floor: blocks are never drained below this many nodes, and
  /// start() provisions this many up front (0 = start empty).
  std::size_t min_nodes = 0;
  /// Pool ceiling across all live blocks plus in-flight submits.
  std::size_t max_nodes = 64;
  /// Nodes per scale-out block (clamped to the remaining headroom).
  std::size_t block_size = 8;
  /// Scale out when pending jobs exceed this watermark.
  std::size_t backlog_high = 4;
  sim::Duration poll_interval = sim::seconds(5);
  /// Pool must be fully idle (no pending, no running) this long before a
  /// block is drained for scale-in.
  sim::Duration idle_before_shrink = sim::seconds(30);
  /// Walltime requested for every block.
  sim::Duration walltime = sim::seconds(1800);
  /// Begin draining a block this far before its expires_at.
  sim::Duration drain_lead = sim::seconds(30);
  /// Once a drain begins, running jobs get this long to finish naturally
  /// before the forced kWalltimeDrain requeue. Must leave
  /// drain_lead - drain_grace of slack to kill and release before expiry.
  sim::Duration drain_grace = sim::seconds(10);
  /// Retry/backoff over AllocationError: total attempts = 1 + retries.
  int submit_retries = 4;
  sim::Duration retry_backoff = sim::seconds(5);
  /// Backoff multiplier drawn uniformly from [1, 1 + jitter).
  double retry_jitter = 0.5;
  std::uint64_t seed = 2011;
  int workers_per_node = 1;
};

struct ElasticCounters {
  std::size_t scale_outs = 0;      // blocks granted
  std::size_t scale_ins = 0;       // idle blocks drained + released
  std::size_t expiry_drains = 0;   // blocks drained ahead of walltime
  std::size_t preempt_drains = 0;  // blocks revoked by the batch system
  std::size_t submits_denied = 0;
  std::size_t submits_out_of_nodes = 0;
  std::size_t submits_starved = 0;
  std::size_t submit_retries = 0;
};

class BlockAllocator {
 public:
  BlockAllocator(os::Machine& machine, const os::AppRegistry& apps,
                 core::Service& service, os::BatchScheduler& sched,
                 core::WorkerConfig worker, ElasticPolicy policy);
  ~BlockAllocator();

  BlockAllocator(const BlockAllocator&) = delete;
  BlockAllocator& operator=(const BlockAllocator&) = delete;

  /// Registers the preempt handler, floors the service's capacity at the
  /// pool ceiling, provisions `min_nodes`, and starts polling.
  void start();
  /// Stops polling and tears the whole pool down (kill, release, clear).
  /// Harnesses call this once the workload settles so the engine can
  /// reach quiescence instead of idling until every walltime expires.
  void stop();

  const ElasticCounters& counters() const { return counters_; }
  /// Nodes currently held across live blocks.
  std::size_t pool_nodes() const;
  std::size_t peak_pool_nodes() const { return peak_pool_; }
  std::size_t live_blocks() const { return blocks_.size(); }
  /// Time the first block was granted (-1 = never): the ramp metric.
  sim::Time first_grant_at() const { return first_grant_at_; }

 private:
  struct Block {
    os::BatchScheduler::Allocation alloc;
    std::vector<os::Machine::Pid> pilots;
    bool draining = false;
  };

  void poll();
  sim::Task<void> submit_block(std::size_t nodes);
  sim::Task<void> drain_block(std::uint64_t id, sim::Time requeue_at);
  /// Kills the block's pilots, releases the allocation (idempotent by id,
  /// disarming the walltime backstop), and clears the service's elastic
  /// state for its nodes.
  void finish_block(std::uint64_t id);
  void on_preempt(const os::BatchScheduler::Allocation& alloc);

  os::Machine* machine_;
  const os::AppRegistry* apps_;
  core::Service* service_;
  os::BatchScheduler* sched_;
  core::WorkerConfig worker_;
  ElasticPolicy policy_;
  sim::Rng rng_;
  /// Ordered by allocation id (= grant order) so every sweep and the
  /// scale-in pick are deterministic.
  std::map<std::uint64_t, Block> blocks_;
  std::size_t pending_submit_nodes_ = 0;
  sim::Time idle_since_ = -1;
  bool running_ = false;
  sim::TimerHandle poll_timer_;
  ElasticCounters counters_;
  std::size_t peak_pool_ = 0;
  sim::Time first_grant_at_ = -1;
};

}  // namespace jets::swift
