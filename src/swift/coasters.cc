#include "swift/coasters.hh"

#include "obs/tracer.hh"

namespace jets::swift {

CoasterService::CoasterService(os::Machine& machine,
                               const os::AppRegistry& apps, Config config)
    : machine_(&machine), apps_(&apps), config_(std::move(config)) {}

void CoasterService::start_service() {
  if (service_) return;
  service_ = std::make_unique<core::Service>(
      *machine_, *apps_, machine_->login_node(), config_.service);
  service_->start();
}

void CoasterService::add_workers(const std::vector<os::NodeId>& nodes) {
  core::WorkerConfig wc = config_.worker;
  wc.service = service_->address();
  for (os::NodeId node : nodes) {
    for (int s = 0; s < config_.workers_per_node; ++s) {
      worker_pids_.push_back(core::start_worker(*machine_, *apps_, node, wc));
    }
  }
}

void CoasterService::start_on(const std::vector<os::NodeId>& nodes) {
  start_service();
  add_workers(nodes);
}

void CoasterService::start_with_blocks(os::BatchScheduler& sched,
                                       std::size_t target_nodes,
                                       sim::Duration walltime, bool spectrum) {
  start_service();
  std::vector<std::size_t> block_sizes;
  if (!spectrum) {
    block_sizes.push_back(target_nodes);
  } else {
    // Spectrum: halving sizes until everything is covered; small blocks
    // clear the queue quickly and start feeding workers early.
    std::size_t remaining = target_nodes;
    std::size_t piece = std::max<std::size_t>(1, target_nodes / 2);
    while (remaining > 0) {
      const std::size_t take = std::min(piece, remaining);
      block_sizes.push_back(take);
      remaining -= take;
      if (piece > 1) piece = std::max<std::size_t>(1, piece / 2);
    }
  }
  for (std::size_t size : block_sizes) {
    machine_->engine().spawn(
        "coasters-block",
        [](CoasterService* self, os::BatchScheduler* sched, std::size_t size,
           sim::Duration walltime) -> sim::Task<void> {
          try {
            auto alloc = co_await sched->submit(size, walltime);
            self->add_workers(alloc.nodes);
            // Pilot blocks run until their walltime; returning nodes to the
            // scheduler at expiry is the harness's concern (short harnesses
            // finish well inside the walltime).
          } catch (const os::AllocationError&) {
            // One failed block must not take down the whole spectrum: the
            // service keeps running degraded on whatever blocks do arrive.
            ++self->blocks_failed_;
          }
        }(this, &sched, size, walltime));
  }
}

sim::Task<core::JobRecord> CoasterService::run_job(core::JobSpec spec) {
  const core::JobId id = service_->submit(std::move(spec));
  // Bridge-level view of the same job: submit->settle as seen by the
  // Swift/Coasters caller, on the job's own track.
  obs::ScopedSpan span(machine_->tracer(), "coasters.job",
                       obs::track_job(id));
  co_await service_->wait_job(id);
  co_return service_->record(id);
}

}  // namespace jets::swift
