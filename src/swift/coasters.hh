// Coasters: the pilot-job execution provider used by Swift (paper §4.1).
//
// The CoasterService provisions worker "blocks" (pilot-job allocations
// obtained from the system batch scheduler), schedules user tasks onto
// them over persistent sockets, and — with the MPICH/Coasters integration
// of §5.2 — runs MPI jobs by waiting for enough free workers and driving
// the same launcher=manual mpiexec machinery as stand-alone JETS. We
// therefore implement the CoasterService *on top of* the JETS Service,
// which is exactly the integration the paper describes (the JETS
// functionality was merged into Coasters).
//
// Block allocation supports the plain single-block mode and the §7
// "multiple-job-size spectrum" mode: instead of one big block that waits
// long in the system queue, request a spectrum of sizes (n/2, n/4, ...)
// that trickle in quickly — the ablation bench measures the ramp-up win.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/service.hh"
#include "core/standalone.hh"
#include "os/machine.hh"
#include "sim/task.hh"

namespace jets::swift {

class CoasterService {
 public:
  struct Config {
    core::Service::Config service;
    core::WorkerConfig worker;
    int workers_per_node = 1;
  };

  CoasterService(os::Machine& machine, const os::AppRegistry& apps,
                 Config config);

  /// Starts the service and places workers on an already-held allocation
  /// (the paper's Eureka runs reuse a persistent allocation, §6.2.1).
  void start_on(const std::vector<os::NodeId>& nodes);

  /// Starts the service and provisions `target_nodes` of pilot blocks
  /// through the batch scheduler. With `spectrum`, requests sizes
  /// n/2, n/4, ..., 1 concurrently instead of one block of n.
  void start_with_blocks(os::BatchScheduler& sched, std::size_t target_nodes,
                         sim::Duration walltime, bool spectrum);

  core::Service& service() { return *service_; }
  std::size_t worker_count() const { return worker_pids_.size(); }
  /// Blocks whose submit failed with AllocationError (denied, out of
  /// nodes, starved). The service proceeds degraded on the rest.
  std::size_t blocks_failed() const { return blocks_failed_; }
  const std::vector<os::Machine::Pid>& worker_pids() const {
    return worker_pids_;
  }

  /// Submits one job and completes when it settles; returns its record.
  sim::Task<core::JobRecord> run_job(core::JobSpec spec);

 private:
  void start_service();
  void add_workers(const std::vector<os::NodeId>& nodes);

  os::Machine* machine_;
  const os::AppRegistry* apps_;
  Config config_;
  std::unique_ptr<core::Service> service_;
  std::vector<os::Machine::Pid> worker_pids_;
  std::size_t blocks_failed_ = 0;
};

}  // namespace jets::swift
