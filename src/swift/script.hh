// A textual Swift-like scripting language for JETS workflows.
//
// The paper's "language support" is Swift (§4.1): implicitly concurrent
// statements ordered only by dataflow through file-mapped variables. This
// module implements a compact subset sufficient to write the paper's two
// scripts — the Fig 14 synthetic loop and the Fig 17 REM core loop —
// as *actual scripts* interpreted onto the SwiftEngine:
//
//   # comment
//   file out[];                    # array of file futures
//   file token;                    # scalar file future
//   set token;                     # initial data: the file exists
//   foreach i in 0..63 {
//     app (out[i]) = mpi_sleep_write(10) mpi nprocs=8 ppn=8;
//   }
//   if (j %% 2 == 0) { ... } else { ... }
//   app (x[i]) = exchange(o[i], o[i+1]) login cost=0.4;
//
// Semantics match Swift's: every `app` statement is registered
// immediately (loops unroll at interpretation time) and *fires* when its
// input files are all set; `%%` is Swift's modulus operator (Fig 17).
// File arguments are both dataflow inputs and argv entries (their mapped
// paths); integer/string expressions become plain argv entries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "swift/engine.hh"

namespace jets::swift {

/// Syntax or semantic error, with 1-based line information.
class ScriptError : public std::runtime_error {
 public:
  ScriptError(std::size_t line, const std::string& what)
      : std::runtime_error("script line " + std::to_string(line) + ": " + what),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Interprets scripts onto a SwiftEngine. Variables persist across run()
/// calls, so a driver can feed a script in pieces.
class ScriptRunner {
 public:
  explicit ScriptRunner(SwiftEngine& engine) : engine_(&engine) {}

  /// Parses and interprets `source`; app statements register with the
  /// engine (start engine.run_to_completion() afterwards to execute).
  void run(const std::string& source);

  /// Looks up a declared file variable (scalar: index 0).
  DataPtr variable(const std::string& name, std::int64_t index = 0) const;

  std::size_t statements_registered() const { return statements_; }

 private:
  friend class ScriptInterp;
  DataPtr get_or_create(const std::string& name, std::int64_t index);

  SwiftEngine* engine_;
  /// name -> declared?; arrays and scalars share the map (scalar = [0]).
  std::map<std::string, std::map<std::int64_t, DataPtr>> vars_;
  std::size_t statements_ = 0;
};

}  // namespace jets::swift
