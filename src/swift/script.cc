#include "swift/script.hh"

#include <cctype>
#include <optional>
#include <vector>

namespace jets::swift {

namespace {

// --- Lexer -------------------------------------------------------------------

enum class Tok {
  kEnd, kIdent, kInt, kFloat, kString,
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kSemicolon, kComma, kAssign, kPlus, kMinus, kStar, kModMod,
  kDotDot, kEq, kNe, kLt, kGt, kLe, kGe,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0;
  std::size_t line = 1;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& peek() const { return current_; }
  Token take() {
    Token t = current_;
    advance();
    return t;
  }
  std::size_t line() const { return current_.line; }

 private:
  void advance() {
    skip_ws_and_comments();
    current_ = Token{};
    current_.line = line_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = src_.substr(start, pos_ - start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      // A lone '.' followed by a digit is a float; ".." is a range.
      if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
          std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
        ++pos_;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
        current_.kind = Tok::kFloat;
        current_.text = src_.substr(start, pos_ - start);
        current_.float_value = std::stod(current_.text);
        return;
      }
      current_.kind = Tok::kInt;
      current_.text = src_.substr(start, pos_ - start);
      current_.int_value = std::stoll(current_.text);
      return;
    }
    if (c == '"') {
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') ++pos_;
      if (pos_ >= src_.size()) throw ScriptError(line_, "unterminated string");
      current_.kind = Tok::kString;
      current_.text = src_.substr(start, pos_ - start);
      ++pos_;
      return;
    }
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b;
    };
    if (two('%', '%')) { pos_ += 2; current_.kind = Tok::kModMod; return; }
    if (two('.', '.')) { pos_ += 2; current_.kind = Tok::kDotDot; return; }
    if (two('=', '=')) { pos_ += 2; current_.kind = Tok::kEq; return; }
    if (two('!', '=')) { pos_ += 2; current_.kind = Tok::kNe; return; }
    if (two('<', '=')) { pos_ += 2; current_.kind = Tok::kLe; return; }
    if (two('>', '=')) { pos_ += 2; current_.kind = Tok::kGe; return; }
    ++pos_;
    switch (c) {
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '[': current_.kind = Tok::kLBracket; return;
      case ']': current_.kind = Tok::kRBracket; return;
      case '{': current_.kind = Tok::kLBrace; return;
      case '}': current_.kind = Tok::kRBrace; return;
      case ';': current_.kind = Tok::kSemicolon; return;
      case ',': current_.kind = Tok::kComma; return;
      case '=': current_.kind = Tok::kAssign; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      case '*': current_.kind = Tok::kStar; return;
      case '<': current_.kind = Tok::kLt; return;
      case '>': current_.kind = Tok::kGt; return;
      default:
        throw ScriptError(line_, std::string("unexpected character '") + c + "'");
    }
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        if (src_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < src_.size() && src_[pos_] == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  Token current_;
};

// --- AST ---------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kInt, kVar, kBinary } kind = Kind::kInt;
  std::int64_t value = 0;       // kInt
  std::string name;             // kVar (loop variable)
  Tok op = Tok::kPlus;          // kBinary
  ExprPtr lhs, rhs;
};

struct FileRef {
  std::string name;
  std::optional<ExprPtr> index;  // nullopt = scalar
  std::size_t line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Arguments to an app: either a file reference or a literal.
struct Arg {
  enum class Kind { kFile, kExpr, kString, kFloat } kind = Kind::kExpr;
  FileRef file;
  ExprPtr expr;
  std::string text;
  double number = 0;
};

struct Stmt {
  enum class Kind { kFileDecl, kSet, kApp, kForeach, kIf } kind;
  std::size_t line = 0;

  // kFileDecl
  std::string decl_name;
  bool is_array = false;

  // kSet
  FileRef target;

  // kApp
  std::vector<FileRef> outputs;
  std::string app_name;
  std::vector<Arg> args;
  bool mpi = false;
  ExprPtr nprocs, ppn;
  bool login = false;
  double login_cost_s = 0;

  // kForeach
  std::string loop_var;
  ExprPtr range_lo, range_hi;
  std::vector<StmtPtr> body;

  // kIf
  ExprPtr cond_lhs, cond_rhs;
  Tok cond_op = Tok::kEq;
  std::vector<StmtPtr> then_body, else_body;
};

// --- Parser ------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  std::vector<StmtPtr> parse_program() {
    std::vector<StmtPtr> out;
    while (lex_.peek().kind != Tok::kEnd) out.push_back(parse_stmt());
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw ScriptError(lex_.line(), what);
  }

  Token expect(Tok kind, const char* what) {
    if (lex_.peek().kind != kind) fail(std::string("expected ") + what);
    return lex_.take();
  }

  bool accept(Tok kind) {
    if (lex_.peek().kind == kind) {
      lex_.take();
      return true;
    }
    return false;
  }

  bool at_keyword(const char* kw) {
    return lex_.peek().kind == Tok::kIdent && lex_.peek().text == kw;
  }

  StmtPtr parse_stmt() {
    if (at_keyword("file")) return parse_file_decl();
    if (at_keyword("set")) return parse_set();
    if (at_keyword("app")) return parse_app();
    if (at_keyword("foreach")) return parse_foreach();
    if (at_keyword("if")) return parse_if();
    fail("expected statement (file/set/app/foreach/if)");
  }

  StmtPtr parse_file_decl() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kFileDecl;
    s->line = lex_.line();
    lex_.take();  // 'file'
    s->decl_name = expect(Tok::kIdent, "variable name").text;
    if (accept(Tok::kLBracket)) {
      expect(Tok::kRBracket, "]");
      s->is_array = true;
    }
    expect(Tok::kSemicolon, ";");
    return s;
  }

  StmtPtr parse_set() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kSet;
    s->line = lex_.line();
    lex_.take();  // 'set'
    s->target = parse_file_ref();
    expect(Tok::kSemicolon, ";");
    return s;
  }

  FileRef parse_file_ref() {
    FileRef f;
    f.line = lex_.line();
    f.name = expect(Tok::kIdent, "file variable").text;
    if (accept(Tok::kLBracket)) {
      f.index = parse_expr();
      expect(Tok::kRBracket, "]");
    }
    return f;
  }

  StmtPtr parse_app() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kApp;
    s->line = lex_.line();
    lex_.take();  // 'app'
    expect(Tok::kLParen, "(");
    if (lex_.peek().kind != Tok::kRParen) {
      s->outputs.push_back(parse_file_ref());
      while (accept(Tok::kComma)) s->outputs.push_back(parse_file_ref());
    }
    expect(Tok::kRParen, ")");
    expect(Tok::kAssign, "=");
    s->app_name = expect(Tok::kIdent, "application name").text;
    expect(Tok::kLParen, "(");
    if (lex_.peek().kind != Tok::kRParen) {
      s->args.push_back(parse_arg());
      while (accept(Tok::kComma)) s->args.push_back(parse_arg());
    }
    expect(Tok::kRParen, ")");
    // Options: mpi [nprocs=E] [ppn=E] | login [cost=F]
    while (lex_.peek().kind == Tok::kIdent) {
      if (at_keyword("mpi")) {
        lex_.take();
        s->mpi = true;
      } else if (at_keyword("nprocs")) {
        lex_.take();
        expect(Tok::kAssign, "=");
        s->nprocs = parse_expr();
      } else if (at_keyword("ppn")) {
        lex_.take();
        expect(Tok::kAssign, "=");
        s->ppn = parse_expr();
      } else if (at_keyword("login")) {
        lex_.take();
        s->login = true;
      } else if (at_keyword("cost")) {
        lex_.take();
        expect(Tok::kAssign, "=");
        const Token t = lex_.take();
        if (t.kind == Tok::kFloat) {
          s->login_cost_s = t.float_value;
        } else if (t.kind == Tok::kInt) {
          s->login_cost_s = static_cast<double>(t.int_value);
        } else {
          fail("expected numeric cost");
        }
      } else {
        fail("unknown app option '" + lex_.peek().text + "'");
      }
    }
    expect(Tok::kSemicolon, ";");
    return s;
  }

  /// An argument is a string literal, a float literal, a numeric
  /// expression, or a file reference. An identifier that names a loop
  /// variable is resolved at interpretation time — the parser stores both
  /// interpretations (kFile with a var fallback handled by the interp).
  Arg parse_arg() {
    Arg a;
    const Token& t = lex_.peek();
    if (t.kind == Tok::kString) {
      a.kind = Arg::Kind::kString;
      a.text = lex_.take().text;
      return a;
    }
    if (t.kind == Tok::kFloat) {
      a.kind = Arg::Kind::kFloat;
      a.number = lex_.take().float_value;
      return a;
    }
    if (t.kind == Tok::kInt || t.kind == Tok::kLParen || t.kind == Tok::kMinus) {
      a.kind = Arg::Kind::kExpr;
      a.expr = parse_expr();
      return a;
    }
    if (t.kind == Tok::kIdent) {
      a.kind = Arg::Kind::kFile;
      a.file = parse_file_ref();
      return a;
    }
    fail("expected argument");
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    while (lex_.peek().kind == Tok::kPlus || lex_.peek().kind == Tok::kMinus) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = lex_.take().kind;
      e->lhs = std::move(lhs);
      e->rhs = parse_term();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    while (lex_.peek().kind == Tok::kStar || lex_.peek().kind == Tok::kModMod) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = lex_.take().kind;
      e->lhs = std::move(lhs);
      e->rhs = parse_factor();
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    const Token& t = lex_.peek();
    if (t.kind == Tok::kInt) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInt;
      e->value = lex_.take().int_value;
      return e;
    }
    if (t.kind == Tok::kMinus) {
      lex_.take();
      auto zero = std::make_unique<Expr>();
      zero->kind = Expr::Kind::kInt;
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = Tok::kMinus;
      e->lhs = std::move(zero);
      e->rhs = parse_factor();
      return e;
    }
    if (t.kind == Tok::kIdent) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVar;
      e->name = lex_.take().text;
      return e;
    }
    if (t.kind == Tok::kLParen) {
      lex_.take();
      ExprPtr e = parse_expr();
      expect(Tok::kRParen, ")");
      return e;
    }
    fail("expected expression");
  }

  StmtPtr parse_foreach() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kForeach;
    s->line = lex_.line();
    lex_.take();  // 'foreach'
    s->loop_var = expect(Tok::kIdent, "loop variable").text;
    if (!at_keyword("in")) fail("expected 'in'");
    lex_.take();
    s->range_lo = parse_expr();
    expect(Tok::kDotDot, "..");
    s->range_hi = parse_expr();
    s->body = parse_block();
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kIf;
    s->line = lex_.line();
    lex_.take();  // 'if'
    expect(Tok::kLParen, "(");
    s->cond_lhs = parse_expr();
    const Tok op = lex_.peek().kind;
    if (op != Tok::kEq && op != Tok::kNe && op != Tok::kLt && op != Tok::kGt &&
        op != Tok::kLe && op != Tok::kGe) {
      fail("expected comparison operator");
    }
    s->cond_op = lex_.take().kind;
    s->cond_rhs = parse_expr();
    expect(Tok::kRParen, ")");
    s->then_body = parse_block();
    if (at_keyword("else")) {
      lex_.take();
      s->else_body = parse_block();
    }
    return s;
  }

  std::vector<StmtPtr> parse_block() {
    expect(Tok::kLBrace, "{");
    std::vector<StmtPtr> body;
    while (lex_.peek().kind != Tok::kRBrace) body.push_back(parse_stmt());
    expect(Tok::kRBrace, "}");
    return body;
  }

  Lexer lex_;
};

}  // namespace

// --- Interpreter ---------------------------------------------------------------

class ScriptInterp {
 public:
  ScriptInterp(ScriptRunner& runner, SwiftEngine& engine)
      : runner_(&runner), engine_(&engine) {}

  void exec_all(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) exec(*s);
  }

 private:
  std::int64_t eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kInt:
        return e.value;
      case Expr::Kind::kVar: {
        auto it = env_.find(e.name);
        if (it == env_.end()) {
          throw ScriptError(0, "unknown loop variable '" + e.name + "'");
        }
        return it->second;
      }
      case Expr::Kind::kBinary: {
        const std::int64_t a = eval(*e.lhs);
        const std::int64_t b = eval(*e.rhs);
        switch (e.op) {
          case Tok::kPlus: return a + b;
          case Tok::kMinus: return a - b;
          case Tok::kStar: return a * b;
          case Tok::kModMod:
            if (b == 0) throw ScriptError(0, "modulus by zero");
            return ((a % b) + b) % b;
          default: throw ScriptError(0, "bad operator");
        }
      }
    }
    throw ScriptError(0, "bad expression");
  }

  DataPtr resolve(const FileRef& f) {
    if (!declared_or_known(f.name)) {
      throw ScriptError(f.line, "undeclared file variable '" + f.name + "'");
    }
    const std::int64_t idx = f.index ? eval(**f.index) : 0;
    return runner_->get_or_create(f.name, idx);
  }

  bool declared_or_known(const std::string& name) const {
    return runner_->vars_.contains(name);
  }

  void exec(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kFileDecl:
        runner_->vars_[s.decl_name];  // declare (possibly empty) slot map
        return;
      case Stmt::Kind::kSet:
        resolve(s.target)->set();
        return;
      case Stmt::Kind::kApp: {
        AppCall call;
        call.argv.push_back(s.app_name);
        for (const Arg& a : s.args) {
          switch (a.kind) {
            case Arg::Kind::kString:
              call.argv.push_back(a.text);
              break;
            case Arg::Kind::kFloat:
              call.argv.push_back(std::to_string(a.number));
              break;
            case Arg::Kind::kExpr:
              call.argv.push_back(std::to_string(eval(*a.expr)));
              break;
            case Arg::Kind::kFile: {
              // An identifier naming a loop variable is a numeric argv
              // entry; otherwise it is a dataflow input.
              if (!a.file.index && env_.contains(a.file.name)) {
                call.argv.push_back(std::to_string(env_.at(a.file.name)));
              } else {
                DataPtr in = resolve(a.file);
                call.argv.push_back(in->path());
                call.inputs.push_back(std::move(in));
              }
              break;
            }
          }
        }
        for (const FileRef& out : s.outputs) {
          call.outputs.push_back(resolve(out));
        }
        call.mpi = s.mpi;
        if (s.nprocs) call.nprocs = static_cast<int>(eval(*s.nprocs));
        if (s.ppn) call.ppn = static_cast<int>(eval(*s.ppn));
        call.run_on_login = s.login;
        call.login_cost = sim::from_seconds(s.login_cost_s);
        engine_->app(std::move(call));
        ++runner_->statements_;
        return;
      }
      case Stmt::Kind::kForeach: {
        const std::int64_t lo = eval(*s.range_lo);
        const std::int64_t hi = eval(*s.range_hi);
        for (std::int64_t i = lo; i <= hi; ++i) {
          env_[s.loop_var] = i;
          for (const auto& inner : s.body) exec(*inner);
        }
        env_.erase(s.loop_var);
        return;
      }
      case Stmt::Kind::kIf: {
        const std::int64_t a = eval(*s.cond_lhs);
        const std::int64_t b = eval(*s.cond_rhs);
        bool taken = false;
        switch (s.cond_op) {
          case Tok::kEq: taken = a == b; break;
          case Tok::kNe: taken = a != b; break;
          case Tok::kLt: taken = a < b; break;
          case Tok::kGt: taken = a > b; break;
          case Tok::kLe: taken = a <= b; break;
          case Tok::kGe: taken = a >= b; break;
          default: break;
        }
        const auto& body = taken ? s.then_body : s.else_body;
        for (const auto& inner : body) exec(*inner);
        return;
      }
    }
  }

  ScriptRunner* runner_;
  SwiftEngine* engine_;
  std::map<std::string, std::int64_t> env_;
};

void ScriptRunner::run(const std::string& source) {
  Parser parser(source);
  std::vector<StmtPtr> program = parser.parse_program();
  ScriptInterp interp(*this, *engine_);
  interp.exec_all(program);
}

DataPtr ScriptRunner::get_or_create(const std::string& name, std::int64_t index) {
  auto& slots = vars_[name];
  auto it = slots.find(index);
  if (it != slots.end()) return it->second;
  DataPtr var = engine_->file("/gpfs/swift/" + name + "." + std::to_string(index));
  slots.emplace(index, var);
  return var;
}

DataPtr ScriptRunner::variable(const std::string& name, std::int64_t index) const {
  auto v = vars_.find(name);
  if (v == vars_.end()) return nullptr;
  auto it = v->second.find(index);
  return it == v->second.end() ? nullptr : it->second;
}

}  // namespace jets::swift
