#include "swift/engine.hh"

#include <sstream>

namespace jets::swift {

SwiftEngine::SwiftEngine(os::Machine& machine, CoasterService& coasters,
                         Config config)
    : machine_(&machine), coasters_(&coasters), config_(config),
      all_done_(std::make_unique<sim::Gate>(machine.engine())) {}

SwiftEngine::SwiftEngine(os::Machine& machine, CoasterService& coasters)
    : SwiftEngine(machine, coasters, Config{}) {}

void SwiftEngine::app(AppCall call) {
  ++registered_;
  all_done_->close();
  DotRecord rec;
  rec.label = call.argv.empty() ? "app" : call.argv.front();
  for (const DataPtr& in : call.inputs) rec.inputs.push_back(in->path());
  for (const DataPtr& out : call.outputs) rec.outputs.push_back(out->path());
  dot_records_.push_back(std::move(rec));
  machine_->engine().spawn("swift-stmt", statement_actor(std::move(call)));
}

std::string SwiftEngine::to_dot() const {
  std::ostringstream os;
  os << "digraph workflow {\n  rankdir=LR;\n"
     << "  node [fontsize=10];\n";
  std::size_t n = 0;
  for (const DotRecord& rec : dot_records_) {
    const std::string id = "app" + std::to_string(n++);
    os << "  " << id << " [shape=box, label=\"" << rec.label << "\"];\n";
    for (const std::string& in : rec.inputs) {
      os << "  \"" << in << "\" [shape=ellipse];\n";
      os << "  \"" << in << "\" -> " << id << ";\n";
    }
    for (const std::string& out : rec.outputs) {
      os << "  \"" << out << "\" [shape=ellipse];\n";
      os << "  " << id << " -> \"" << out << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void SwiftEngine::note_settled() {
  if (failed_ > 0 || completed_ + failed_ == registered_) {
    all_done_->open();
  }
}

sim::Task<void> SwiftEngine::statement_actor(AppCall call) {
  // Dataflow: block until every input variable has been assigned.
  for (const DataPtr& in : call.inputs) {
    co_await in->wait();
  }
  co_await sim::delay(config_.submit_overhead);

  bool ok = true;
  if (call.run_on_login) {
    // Filesystem-bound helper executed directly on the login node; it
    // touches the mapped files on the shared filesystem.
    co_await sim::delay(call.login_cost);
    for (const DataPtr& out : call.outputs) {
      co_await machine_->shared_fs().write(out->path(), out->bytes());
    }
  } else {
    core::JobSpec spec;
    spec.argv = call.argv;
    if (call.mpi) {
      spec.kind = core::JobKind::kMpi;
      spec.nprocs = call.nprocs;
      spec.ppn = call.ppn;
    }
    core::JobRecord rec = co_await coasters_->run_job(std::move(spec));
    records_.push_back(rec);
    ok = rec.status == core::JobStatus::kDone;
  }

  if (ok) {
    for (const DataPtr& out : call.outputs) out->set();
    ++completed_;
  } else {
    ++failed_;
  }
  note_settled();
}

sim::Task<void> SwiftEngine::run_to_completion() {
  note_settled();
  co_await all_done_->wait();
}

}  // namespace jets::swift
