#include "swift/allocator.hh"

#include <algorithm>
#include <utility>

#include "sim/engine.hh"

namespace jets::swift {

BlockAllocator::BlockAllocator(os::Machine& machine,
                               const os::AppRegistry& apps,
                               core::Service& service,
                               os::BatchScheduler& sched,
                               core::WorkerConfig worker, ElasticPolicy policy)
    : machine_(&machine),
      apps_(&apps),
      service_(&service),
      sched_(&sched),
      worker_(std::move(worker)),
      policy_(policy),
      rng_(sim::Rng(policy.seed).fork("elastic")) {}

BlockAllocator::~BlockAllocator() { poll_timer_.cancel(); }

void BlockAllocator::start() {
  if (running_) return;
  running_ = true;
  worker_.service = service_->address();
  // Capacity floor: jobs wider than the *current* pool are not
  // unsatisfiable — the pool can grow to meet them.
  service_->set_elastic_capacity(
      policy_.max_nodes * static_cast<std::size_t>(policy_.workers_per_node));
  sched_->set_preempt_handler(
      [this](const os::BatchScheduler::Allocation& alloc) {
        on_preempt(alloc);
      });
  if (policy_.min_nodes > 0) {
    const std::size_t want = std::min(policy_.min_nodes, policy_.max_nodes);
    pending_submit_nodes_ += want;
    machine_->engine().spawn("elastic/bootstrap", submit_block(want));
  }
  poll_timer_ =
      machine_->engine().call_in(policy_.poll_interval, [this] { poll(); });
}

void BlockAllocator::stop() {
  if (!running_) return;
  running_ = false;
  poll_timer_.cancel();
  // Tear the whole pool down so the engine can quiesce: kill pilots,
  // release every allocation (disarming walltime timers), forget the
  // nodes' elastic state.
  std::vector<std::uint64_t> ids;
  ids.reserve(blocks_.size());
  for (const auto& [id, block] : blocks_) ids.push_back(id);
  for (std::uint64_t id : ids) finish_block(id);
}

std::size_t BlockAllocator::pool_nodes() const {
  std::size_t n = 0;
  for (const auto& [id, block] : blocks_) n += block.alloc.nodes.size();
  return n;
}

void BlockAllocator::poll() {
  if (!running_) return;
  const sim::Time now = machine_->engine().now();

  // 1. Drain-ahead: any block within drain_lead of its walltime horizon
  // stops taking work now; still-running jobs get drain_grace to finish,
  // then are requeued (kWalltimeDrain) and the block is torn down — all
  // strictly before the batch system's killer would have fired.
  for (auto& [id, block] : blocks_) {
    if (block.draining) continue;
    if (now < block.alloc.expires_at - policy_.drain_lead) continue;
    block.draining = true;
    ++counters_.expiry_drains;
    sim::Time requeue_at = now + policy_.drain_grace;
    if (requeue_at >= block.alloc.expires_at) {
      requeue_at = block.alloc.expires_at - 1;
    }
    if (requeue_at < now) requeue_at = now;
    // Order matters: the service's drain timer is armed first, so at
    // requeue_at the forced requeue fires *before* drain_block kills the
    // pilots — jobs come back as kWalltimeDrain, never kWorkerLost.
    service_->drain_nodes(block.alloc.nodes, requeue_at);
    machine_->engine().spawn("elastic/drain", drain_block(id, requeue_at));
  }

  // 2. Scale-in: after a sustained fully-idle window, retire the newest
  // non-draining block, keeping the pool at or above min_nodes.
  if (service_->pending_jobs() == 0 && service_->running_jobs() == 0) {
    if (idle_since_ < 0) idle_since_ = now;
    if (now - idle_since_ >= policy_.idle_before_shrink) {
      for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
        if (it->second.draining) continue;
        const std::size_t size = it->second.alloc.nodes.size();
        if (pool_nodes() - size < policy_.min_nodes) continue;
        ++counters_.scale_ins;
        // The pool is idle, so the drain is a pure formality (no jobs to
        // requeue) — done synchronously so the release below is clean.
        service_->drain_nodes(it->second.alloc.nodes, now);
        finish_block(it->first);
        idle_since_ = now;  // one block per idle window
        break;
      }
    }
  } else {
    idle_since_ = -1;
  }

  // 3. Scale-out: backlog above the watermark grows the pool by one block,
  // counting in-flight submits against the ceiling so concurrent polls
  // never over-provision.
  if (service_->pending_jobs() > policy_.backlog_high) {
    const std::size_t held = pool_nodes() + pending_submit_nodes_;
    if (held < policy_.max_nodes) {
      const std::size_t want =
          std::min(policy_.block_size, policy_.max_nodes - held);
      pending_submit_nodes_ += want;
      machine_->engine().spawn("elastic/submit", submit_block(want));
    }
  }

  poll_timer_ =
      machine_->engine().call_in(policy_.poll_interval, [this] { poll(); });
}

sim::Task<void> BlockAllocator::submit_block(std::size_t nodes) {
  for (int attempt = 0;; ++attempt) {
    bool retry = false;
    try {
      os::BatchScheduler::Allocation alloc =
          co_await sched_->submit(nodes, policy_.walltime);
      pending_submit_nodes_ -= std::min(nodes, pending_submit_nodes_);
      if (!running_) {
        // stop() raced the grant: hand the block straight back.
        sched_->release(alloc);
        co_return;
      }
      ++counters_.scale_outs;
      if (first_grant_at_ < 0) first_grant_at_ = machine_->engine().now();
      Block block;
      block.alloc = alloc;
      for (os::NodeId node : alloc.nodes) {
        service_->set_node_expiry(node, alloc.expires_at);
        for (int w = 0; w < policy_.workers_per_node; ++w) {
          block.pilots.push_back(
              core::start_worker(*machine_, *apps_, node, worker_));
        }
      }
      // Backstop only: the drain-ahead sweep retires the block before this
      // fires, and release() in finish_block disarms it.
      sched_->enforce_walltime(alloc, block.pilots);
      blocks_.emplace(alloc.id, std::move(block));
      peak_pool_ = std::max(peak_pool_, pool_nodes());
      co_return;
    } catch (const os::AllocationError& e) {
      switch (e.kind()) {
        case os::AllocationError::Kind::kDenied:
          ++counters_.submits_denied;
          break;
        case os::AllocationError::Kind::kOutOfNodes:
          ++counters_.submits_out_of_nodes;
          break;
        case os::AllocationError::Kind::kQueueStarvation:
          ++counters_.submits_starved;
          break;
      }
      retry = running_ && attempt < policy_.submit_retries;
    }
    if (!retry) {
      pending_submit_nodes_ -= std::min(nodes, pending_submit_nodes_);
      co_return;
    }
    // Seeded-jitter backoff: deterministic for a given seed, but staggered
    // so concurrent retries do not resubmit in lockstep.
    ++counters_.submit_retries;
    const double scale = 1.0 + rng_.uniform(0.0, policy_.retry_jitter);
    co_await sim::delay(static_cast<sim::Duration>(
        static_cast<double>(policy_.retry_backoff) * scale));
  }
}

sim::Task<void> BlockAllocator::drain_block(std::uint64_t id,
                                            sim::Time requeue_at) {
  const sim::Time now = machine_->engine().now();
  if (requeue_at > now) co_await sim::delay(requeue_at - now);
  finish_block(id);
}

void BlockAllocator::finish_block(std::uint64_t id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  for (os::Machine::Pid pid : it->second.pilots) machine_->kill(pid);
  sched_->release(it->second.alloc);
  service_->clear_node_elastic(it->second.alloc.nodes);
  blocks_.erase(it);
}

void BlockAllocator::on_preempt(const os::BatchScheduler::Allocation& alloc) {
  auto it = blocks_.find(alloc.id);
  if (it == blocks_.end()) return;
  ++counters_.preempt_drains;
  // Revocation is immediate: requeue every running job on the block
  // synchronously (kWalltimeDrain, uncharged) before the scheduler kills
  // the pilots. The scheduler frees the nodes itself after this returns.
  service_->drain_nodes(alloc.nodes, machine_->engine().now());
  service_->clear_node_elastic(alloc.nodes);
  blocks_.erase(it);
}

}  // namespace jets::swift
