// The Swift dataflow engine (paper §4.1, §5.2).
//
// Swift programs are sets of app() statements that "are all executed
// concurrently, limited by data dependencies" (§6.2.2). We reproduce that
// semantics as an embedded C++ DSL: each app() call registers a statement;
// a per-statement actor waits for the statement's input DataVars, submits
// the command through the CoasterService (which handles MPI aggregation
// via the JETS machinery), and closes the output DataVars on completion —
// releasing whatever statements consume them.
//
// Fig 17's REM core loop maps 1:1 onto this API (see apps/rem.cc); Fig 14's
// synthetic loop is the Fig 15 bench.
#pragma once

#include <cstddef>
#include <vector>

#include "core/job.hh"
#include "os/machine.hh"
#include "swift/coasters.hh"
#include "swift/dataflow.hh"

namespace jets::swift {

/// One Swift app() statement.
struct AppCall {
  std::vector<std::string> argv;
  std::vector<DataPtr> inputs;
  std::vector<DataPtr> outputs;

  /// MPI settings packed with the job specification (§5.2 step 1).
  bool mpi = false;
  int nprocs = 1;
  int ppn = 1;

  /// Run on the login node instead of a compute slot — how the paper's
  /// filesystem-bound exchange() avoids delaying ready NAMD segments
  /// (§6.2.2). `login_cost` models the script's (filesystem-dominated)
  /// run time there.
  bool run_on_login = false;
  sim::Duration login_cost = 0;
};

class SwiftEngine {
 public:
  struct Config {
    /// Swift/Karajan dataflow processing + wrapper-script cost per app.
    sim::Duration submit_overhead = sim::milliseconds(20);
  };

  SwiftEngine(os::Machine& machine, CoasterService& coasters, Config config);
  SwiftEngine(os::Machine& machine, CoasterService& coasters);

  /// Registers a statement; it fires when all inputs are set.
  void app(AppCall call);

  /// Convenience for building file futures.
  DataPtr file(std::string path, std::uint64_t bytes = 0) {
    return make_data(machine_->engine(), std::move(path), bytes);
  }

  /// Completes when every registered statement has finished, or as soon as
  /// any statement fails (Swift aborts the script on app errors).
  sim::Task<void> run_to_completion();

  /// Renders the registered dataflow as Graphviz DOT (the Fig 16 picture):
  /// app nodes as boxes, file variables as ellipses, edges by direction.
  std::string to_dot() const;

  std::size_t registered() const { return registered_; }
  std::size_t completed() const { return completed_; }
  std::size_t failed() const { return failed_; }
  const std::vector<core::JobRecord>& job_records() const { return records_; }

 private:
  sim::Task<void> statement_actor(AppCall call);
  void note_settled();

  os::Machine* machine_;
  CoasterService* coasters_;
  Config config_;
  std::unique_ptr<sim::Gate> all_done_;
  struct DotRecord {
    std::string label;
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
  };
  std::vector<DotRecord> dot_records_;
  std::size_t registered_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::vector<core::JobRecord> records_;
};

}  // namespace jets::swift
