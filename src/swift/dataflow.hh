// Swift-style dataflow values.
//
// Swift (paper §4.1) is a dataflow language: every statement runs as soon
// as — and only when — its input data become available. Variables are
// single-assignment futures mapped to files. This header provides that
// future type; swift/engine.hh provides the statement semantics.
//
// The REM script of Fig 17 is expressed directly over these: `c[current]`,
// `v[current]`, `x[neighbor]`... each is a DataVar; namd() closes its
// output vars when the task completes, which releases the next segment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::swift {

/// Single-assignment, file-mapped dataflow variable.
class DataVar {
 public:
  DataVar(sim::Engine& engine, std::string path, std::uint64_t bytes = 0)
      : gate_(engine), path_(std::move(path)), bytes_(bytes) {}
  DataVar(const DataVar&) = delete;
  DataVar& operator=(const DataVar&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t bytes() const { return bytes_; }
  bool is_set() const { return gate_.is_open(); }

  /// Closes the variable (the mapped file now exists); idempotence is an
  /// error in Swift — enforce single assignment.
  void set() {
    if (gate_.is_open()) {
      throw std::logic_error("double assignment of dataflow variable " + path_);
    }
    gate_.open();
  }

  /// Awaits availability.
  auto wait() { return gate_.wait(); }

 private:
  sim::Gate gate_;
  std::string path_;
  std::uint64_t bytes_;
};

using DataPtr = std::shared_ptr<DataVar>;

inline DataPtr make_data(sim::Engine& engine, std::string path,
                         std::uint64_t bytes = 0) {
  return std::make_shared<DataVar>(engine, std::move(path), bytes);
}

}  // namespace jets::swift
