// Fault injection (§6.1.5): terminates randomly selected pilot jobs, one at
// a time, at regular intervals — the exact protocol of the paper's faulty-
// setting experiment. Because a worker's tasks are its process children,
// killing the pilot takes the running task down with it, and the service
// notices through the broken socket.
#pragma once

#include <cstddef>
#include <vector>

#include "os/machine.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace jets::core {

class FaultInjector {
 public:
  FaultInjector(os::Machine& machine, std::vector<os::Machine::Pid> victims,
                sim::Duration interval, sim::Rng rng)
      : machine_(&machine), victims_(std::move(victims)), interval_(interval),
        rng_(rng) {}

  /// Schedules kills: one victim per interval until the pool is empty.
  void start() { arm_next(); }

  std::size_t killed() const { return killed_; }
  std::size_t remaining() const { return victims_.size(); }

 private:
  void arm_next() {
    if (victims_.empty()) return;
    machine_->engine().call_in(interval_, [this] {
      if (victims_.empty()) return;
      const auto idx = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(victims_.size()) - 1));
      machine_->kill(victims_[idx]);
      victims_.erase(victims_.begin() + static_cast<std::ptrdiff_t>(idx));
      ++killed_;
      arm_next();
    });
  }

  os::Machine* machine_;
  std::vector<os::Machine::Pid> victims_;
  sim::Duration interval_;
  sim::Rng rng_;
  std::size_t killed_ = 0;
};

}  // namespace jets::core
