// Fault injection (§6.1.5): terminates randomly selected pilot jobs, one at
// a time, at regular intervals — the exact protocol of the paper's faulty-
// setting experiment. Because a worker's tasks are its process children,
// killing the pilot takes the running task down with it, and the service
// notices through the broken socket.
//
// This is a thin compatibility wrapper over the general ChaosEngine (see
// core/chaos.hh), which adds socket, hang, and slow-node fault classes.
#pragma once

#include <cstddef>
#include <vector>

#include "core/chaos.hh"
#include "os/machine.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace jets::core {

class FaultInjector {
 public:
  FaultInjector(os::Machine& machine, std::vector<os::Machine::Pid> victims,
                sim::Duration interval, sim::Rng rng)
      : chaos_(machine, rng), machine_(&machine), interval_(interval),
        total_(victims.size()) {
    chaos_.set_pilots(std::move(victims));
  }

  /// Schedules kills: one victim per interval until the pool is empty.
  void start() {
    chaos_.add_periodic(FaultKind::kKillPilot,
                        machine_->engine().now() + interval_, interval_,
                        total_);
    chaos_.start();
  }

  std::size_t killed() const { return chaos_.counters().pilots_killed; }
  std::size_t remaining() const { return chaos_.pilots_remaining(); }

 private:
  ChaosEngine chaos_;
  os::Machine* machine_;
  sim::Duration interval_;
  std::size_t total_;
};

}  // namespace jets::core
