#include "core/standalone.hh"

#include "core/snapshot.hh"

namespace jets::core {

double BatchReport::utilization() const {
  if (total_slots == 0 || batch_finished <= batch_started) return 0.0;
  double busy = 0.0;  // slot-seconds of useful work
  for (const JobRecord& r : records) {
    if (r.status != JobStatus::kDone) continue;
    busy += r.wall_seconds() * r.spec.workers_needed();
  }
  return busy / (static_cast<double>(total_slots) * makespan_seconds());
}

sim::Summary BatchReport::wall_times() const {
  sim::Summary s;
  for (const JobRecord& r : records) {
    if (r.status == JobStatus::kDone) s.add(r.wall_seconds());
  }
  return s;
}

os::Machine::Pid start_worker(os::Machine& machine, const os::AppRegistry& apps,
                              os::NodeId node, WorkerConfig config) {
  os::Env* env_slot = nullptr;  // owned by the wrapper frame below
  (void)env_slot;
  // The worker runs as a plain process; its Program closure owns the config.
  os::Program body = worker_program(apps, std::move(config));
  return machine.exec(
      node, "jets-worker",
      [](os::Machine* m, os::NodeId node, os::Program body) -> sim::Task<void> {
        os::Env env;
        env.machine = m;
        env.node = node;
        env.argv = {"jets-worker"};
        co_await body(env);
      }(&machine, node, std::move(body)));
}

StandaloneJets::StandaloneJets(os::Machine& machine,
                               const os::AppRegistry& apps,
                               StandaloneOptions options)
    : machine_(&machine), apps_(&apps), options_(std::move(options)) {}

void StandaloneJets::start(const std::vector<os::NodeId>& allocation) {
  service_ = std::make_unique<Service>(*machine_, *apps_,
                                       machine_->login_node(),
                                       options_.service);
  service_->start();
  WorkerConfig wc = options_.worker;
  wc.service = service_->address();
  for (os::NodeId node : allocation) {
    for (int s = 0; s < options_.workers_per_node; ++s) {
      workers_.push_back(start_worker(*machine_, *apps_, node, wc));
    }
  }
}

sim::Task<void> StandaloneJets::wait_workers(std::size_t n) {
  if (!service_) throw std::logic_error("StandaloneJets: start() first");
  if (n == 0) n = workers_.size();
  while (service_->connected_workers() < n) {
    co_await sim::delay(sim::milliseconds(100));
  }
}

sim::Task<BatchReport> StandaloneJets::run_batch(std::vector<JobSpec> jobs) {
  if (!service_) throw std::logic_error("StandaloneJets: start() first");
  BatchReport report;
  report.batch_started = machine_->engine().now();
  report.total_slots = workers_.size();
  const std::vector<JobId> ids = service_->submit_batch(jobs);
  co_await service_->wait_all();
  report.batch_finished = machine_->engine().now();
  // Scope the report to *this* batch; the service's counters are
  // cumulative across a pilot allocation's lifetime.
  report.records.reserve(ids.size());
  for (JobId id : ids) {
    const JobRecord& rec = service_->record(id);
    report.records.push_back(rec);
    if (rec.status == JobStatus::kDone) ++report.completed;
    if (rec.status == JobStatus::kFailed) ++report.failed;
    if (rec.status == JobStatus::kQuarantined) {
      ++report.failed;
      ++report.quarantined;
    }
  }
  co_return report;
}

sim::Task<BatchReport> StandaloneJets::run_input(const std::string& input_text) {
  co_return co_await run_batch(parse_job_list(input_text, options_.default_ppn));
}

Snapshot StandaloneJets::checkpoint() const {
  if (!service_) throw std::logic_error("StandaloneJets: service is down");
  return service_->checkpoint();
}

void StandaloneJets::crash_service() {
  if (!service_) throw std::logic_error("StandaloneJets: service is down");
  service_.reset();  // ~Service kills actors, disarms timers, frees the port
}

void StandaloneJets::restore_service(const Snapshot& snap) {
  if (service_) throw std::logic_error("StandaloneJets: service still up");
  service_ = std::make_unique<Service>(*machine_, *apps_,
                                       machine_->login_node(),
                                       options_.service, snap);
  service_->start();
}

}  // namespace jets::core
