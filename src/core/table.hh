// Dense entity tables for the service hot path.
//
// The service tracks 10^5..10^6 workers and jobs; node-based std::maps pay
// an allocation plus pointer-chasing per entity and O(log n) per touch.
// These tables follow the engine's EventSlot slab idiom (sim/engine.hh):
// entries live in a deque-backed slab addressed by dense slot index, freed
// slots go on an intrusive free list, and a generation counter per slot
// makes stale handles fail closed — a handle minted for a dead occupant
// never aliases the slot's next tenant.
//
// Two shapes:
//
//   * SlotMap<T>  — recycling table for workers. Ids are
//     (generation << 32) | slot with generation starting at 1, so an id is
//     never 0 (0 stays the "none" sentinel throughout the service).
//     find() on an erased or recycled id returns nullptr.
//   * DenseTable<T> — append-only table for jobs. JobIds are already dense
//     (1, 2, 3, ...) and job records are kept for the service's lifetime
//     (records()/record() serve them after settle), so the id *is* the
//     slot + 1 and there is no generation axis. Backed by a deque so
//     references stay valid across growth — place_job holds a Job&
//     across co_await suspension points.
//
// Determinism: slot allocation is LIFO off the free list (matching the
// engine), iteration is slot order, and nothing here consults time or
// randomness — same operation sequence, same layout, bit for bit.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <utility>

namespace jets::core {

template <typename T>
class SlotMap {
 public:
  using Id = std::uint64_t;

  static constexpr std::uint32_t slot_of(Id id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static constexpr std::uint32_t gen_of(Id id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Claims a slot (LIFO off the free list, else a fresh one) and returns
  /// the occupant's handle.
  Id insert(T value) {
    std::uint32_t slot;
    if (free_head_ != kNone) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
      slots_[slot].value = std::move(value);
      slots_[slot].live = true;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      slots_[slot].value = std::move(value);
      slots_[slot].live = true;
    }
    ++live_;
    return (static_cast<Id>(slots_[slot].gen) << 32) | slot;
  }

  /// The occupant named by `id`, or nullptr if it was erased (or the slot
  /// has since been recycled — the generation check fails closed).
  T* find(Id id) {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slots_.size()) return nullptr;
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen_of(id)) return nullptr;
    return &s.value;
  }
  const T* find(Id id) const {
    return const_cast<SlotMap*>(this)->find(id);
  }

  /// Like find() but throws on a stale handle (map::at semantics).
  T& at(Id id) {
    T* p = find(id);
    if (!p) throw std::out_of_range("SlotMap::at: stale handle");
    return *p;
  }
  const T& at(Id id) const { return const_cast<SlotMap*>(this)->at(id); }

  /// Frees the slot and bumps its generation, killing every outstanding
  /// handle to this occupant. No-op on a stale handle.
  void erase(Id id) {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen_of(id)) return;
    s.live = false;
    ++s.gen;
    s.value = T{};  // release owned resources now, not at reuse
    s.next_free = free_head_;
    free_head_ = slot;
    --live_;
  }

  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  /// Most slots ever allocated at once (slab high-water mark).
  std::size_t slab_high_water() const { return slots_.size(); }

  /// Visits live occupants in slot order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      Slot& s = slots_[slot];
      if (s.live) fn((static_cast<Id>(s.gen) << 32) | slot, s.value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      const Slot& s = slots_[slot];
      if (s.live) fn((static_cast<Id>(s.gen) << 32) | slot, s.value);
    }
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  struct Slot {
    /// Starts at 1 so no id is ever 0; bumped on erase.
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNone;
    bool live = false;
    T value{};
  };

  std::deque<Slot> slots_;  // deque: references survive growth
  std::uint32_t free_head_ = kNone;
  std::size_t live_ = 0;
};

/// Append-only dense table: id k (1-based) lives at slot k-1, forever.
template <typename T>
class DenseTable {
 public:
  using Id = std::uint64_t;

  /// Appends and returns the new occupant's id (== size() after append).
  Id push_back(T value) {
    rows_.push_back(std::move(value));
    return rows_.size();
  }

  T* find(Id id) {
    if (id == 0 || id > rows_.size()) return nullptr;
    return &rows_[static_cast<std::size_t>(id - 1)];
  }
  const T* find(Id id) const {
    return const_cast<DenseTable*>(this)->find(id);
  }
  T& at(Id id) {
    T* p = find(id);
    if (!p) throw std::out_of_range("DenseTable::at: no such id");
    return *p;
  }
  const T& at(Id id) const { return const_cast<DenseTable*>(this)->at(id); }

  T& back() { return rows_.back(); }
  std::size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < rows_.size(); ++i) fn(i + 1, rows_[i]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < rows_.size(); ++i) fn(i + 1, rows_[i]);
  }

 private:
  std::deque<T> rows_;  // deque: references survive growth
};

}  // namespace jets::core
