#include "core/worker.hh"

#include <map>
#include <memory>
#include <utility>

#include "net/rpc.hh"
#include "net/staging.hh"
#include "obs/tracer.hh"
#include "os/cas.hh"

namespace jets::core {

net::Message make_run_message(const std::string& task_id,
                              const std::vector<std::string>& argv,
                              const std::map<std::string, std::string>& vars) {
  net::rpc::TaskRun run;
  run.task_id = task_id;
  run.argv = argv;
  run.vars = vars;
  return run.encode();
}

RunRequest parse_run_message(const net::Message& m) {
  RunRequest r;
  auto decoded = net::rpc::TaskRun::decode(m);
  if (!decoded.ok()) return r;  // malformed: empty request (never on-wire)
  net::rpc::TaskRun& run = decoded.value();
  r.task_id = std::move(run.task_id);
  r.argv = std::move(run.argv);
  r.vars = std::move(run.vars);
  return r;
}

namespace {

/// State shared between the worker's receive loop, its task wrappers, and
/// its heartbeat actor.
struct WorkerState {
  net::SocketPtr sock;
  /// Tasks started but not yet reported done (task id -> pid).
  std::map<std::string, os::Machine::Pid> outstanding;
  /// Chaos hang control, if a registry was configured (null otherwise).
  std::shared_ptr<WorkerHangControl> ctl;
  /// Open while `outstanding` is non-empty; the heartbeat actor parks on
  /// it when the worker is idle so an idle worker generates *no* events
  /// (the engine's run-to-quiescence termination depends on that). Only
  /// allocated when heartbeats are enabled.
  std::unique_ptr<sim::Gate> work_gate;
  /// Set on worker shutdown so the heartbeat actor exits.
  bool closed = false;

  bool hung() const { return ctl && ctl->hung(); }
  void track_work() {
    if (!work_gate) return;
    if (outstanding.empty()) {
      work_gate->close();
    } else {
      work_gate->open();
    }
  }
};

/// Wraps one task execution: resolves and runs the command, then reports
/// done/ready — unless the task was already reaped by a "kill". Reports go
/// through state->sock (not a channel): the wrapper can outlive the
/// connection it was dispatched on, and its done must follow the redial.
sim::Task<void> task_wrapper(os::Machine* machine, const os::AppRegistry* apps,
                             os::NodeId node, net::rpc::TaskRun req,
                             std::shared_ptr<WorkerState> state) {
  os::Env env;
  env.machine = machine;
  env.node = node;
  env.argv = req.argv;
  env.vars = std::move(req.vars);
  // RAII: if the pilot (and so this wrapper) is killed mid-task, frame
  // teardown closes the span at the kill time.
  obs::ScopedSpan span(machine->tracer(), "worker.task",
                       obs::track_node(node));
  span.attr("task", req.task_id);
  int status = 0;
  try {
    const os::Program& program = apps->lookup(env.argv.at(0));
    co_await program(env);
  } catch (...) {
    status = 1;
  }
  // A hung pilot stops *reporting*: the application process may well have
  // finished, but the wrapper script that would send "done" is frozen.
  if (state->hung()) co_await state->ctl->gate().wait();
  // If a "kill" raced ahead of completion, the kill handler already
  // reported this task; avoid a duplicate done/ready pair.
  if (state->outstanding.erase(req.task_id) == 0) co_return;
  state->track_work();
  net::rpc::post(*state->sock,
                 net::rpc::TaskDone{req.task_id, status,
                                    net::rpc::TaskDone::Reason::kApp});
  net::rpc::post(*state->sock, net::rpc::ReadyNote{});
}

/// While the worker has tasks outstanding, pings the service every
/// `interval` so the service-side liveness deadline can distinguish "busy
/// on a long task" from "hung". Parks silently (no events) while idle or
/// hung. Runs as a child process of the pilot so a pilot kill reaps it.
sim::Task<void> heartbeat_loop(std::shared_ptr<WorkerState> state,
                               sim::Duration interval) {
  for (;;) {
    if (state->closed) co_return;
    if (state->outstanding.empty()) {
      co_await state->work_gate->wait();
      continue;  // re-check closed/hung after waking
    }
    if (state->hung()) {
      co_await state->ctl->gate().wait();
      continue;
    }
    net::rpc::post(*state->sock, net::rpc::PingNote{});
    co_await sim::delay(interval);
  }
}

sim::Task<void> worker_main(const os::AppRegistry* apps, WorkerConfig config,
                            os::Env& env) {
  os::Machine& machine = *env.machine;
  os::Node& node = machine.node(env.node);

  // Expose a hang control to the chaos layer before doing anything else so
  // a fault plan can freeze this pilot at any point of its life.
  std::shared_ptr<WorkerHangControl> ctl;
  if (config.hang_registry) {
    ctl = std::make_shared<WorkerHangControl>(machine.engine(), env.node);
    config.hang_registry->controls.push_back(ctl);
  }

  // Stage files into node-local storage before taking work (§5 feature 2).
  {
    obs::ScopedSpan span(machine.tracer(), "worker.stage",
                         obs::track_node(env.node));
    for (const std::string& file : config.stage_files) {
      if (node.local_fs().exists(file)) continue;
      auto size = machine.shared_fs().size(file);
      if (!size) continue;  // tolerate missing staging entries
      co_await machine.shared_fs().read(file);
      co_await node.local_fs().write(file, *size);
    }
  }

  auto state = std::make_shared<WorkerState>();
  state->ctl = std::move(ctl);
  try {
    state->sock = co_await machine.network().connect(env.node, config.service);
  } catch (const net::ConnectError&) {
    co_return;  // service is gone; pilot exits quietly
  }
  net::rpc::post(*state->sock, net::rpc::RegisterReq{env.node, {}});
  net::rpc::post(*state->sock, net::rpc::ReadyNote{});

  os::Machine::Pid hb_pid = 0;
  if (config.heartbeat_interval > 0) {
    state->work_gate = std::make_unique<sim::Gate>(machine.engine());
    os::ExecOptions hb_opts;
    hb_opts.charge_fork = false;  // in-pilot thread of the wrapper script
    hb_pid = machine.exec(env.node, "jets-heartbeat",
                          heartbeat_loop(state, config.heartbeat_interval),
                          std::move(hb_opts));
  }

  // One channel per connection: a redial gets a fresh one on the new
  // socket (in-flight task wrappers keep reporting via state->sock, so
  // their dones follow the reconnect automatically).
  for (;;) {
    net::rpc::Channel chan(machine.engine(), state->sock);
    // A hung pilot's receive loop freezes at the dispatch point: bytes
    // keep landing in the socket inbox (the connection stays open — the
    // service sees silence, not EOF) but nothing is handled until release.
    chan.set_hang_gate([state]() -> sim::Gate* {
      return state->hung() ? &state->ctl->gate() : nullptr;
    });
    chan.on<net::rpc::TaskRun>([&, state](net::rpc::TaskRun&& req) {
      // The per-task wrapper cost plus binary load (node-local if staged).
      os::ExecOptions opts;
      opts.extra_startup = config.task_overhead;
      const std::string& prog = req.argv.at(0);
      if (node.local_fs().exists(prog) || machine.shared_fs().exists(prog)) {
        opts.binary = prog;
      }
      const std::string task_id = req.task_id;
      os::Machine::Pid pid = machine.exec(
          env.node, "task:" + task_id,
          task_wrapper(&machine, apps, env.node, std::move(req), state),
          std::move(opts));
      state->outstanding[task_id] = pid;
      state->track_work();
      if (config.task_watchdog > 0) {
        machine.engine().call_in(
            config.task_watchdog,
            [state, task_id, pid, machine_ptr = &machine] {
              // The watchdog is part of the frozen wrapper script: while
              // hung it cannot fire (and it does not re-arm — on release
              // the task wrapper reports the task normally).
              if (state->hung()) return;
              auto it = state->outstanding.find(task_id);
              if (it == state->outstanding.end() || it->second != pid) return;
              machine_ptr->kill(pid);
              state->outstanding.erase(it);
              state->track_work();
              if (state->sock) {
                net::rpc::post(
                    *state->sock,
                    net::rpc::TaskDone{task_id, 124,
                                       net::rpc::TaskDone::Reason::kWatchdog});
                net::rpc::post(*state->sock, net::rpc::ReadyNote{});
              }
            });
      }
    });
    chan.on<net::rpc::KillReq>([&, state](net::rpc::KillReq&& kill) {
      auto it = state->outstanding.find(kill.task_id);
      if (it == state->outstanding.end()) return;
      machine.kill(it->second);
      state->outstanding.erase(it);
      state->track_work();
      net::rpc::post(*state->sock,
                     net::rpc::TaskDone{kill.task_id, 137,
                                        net::rpc::TaskDone::Reason::kKilled});
      net::rpc::post(*state->sock, net::rpc::ReadyNote{});
    });
    chan.on<net::rpc::StageReq>(
        // By value: the coroutine frame owns the request (see Channel::on).
        [&, state](net::rpc::StageReq req) -> sim::Task<void> {
          if (!req.legacy) {
            // Digest-addressed job staging: install through the node's CAS
            // so repeat blobs dedup, and report any evictions the install
            // caused back on the ack — the service's residency view
            // depends on it.
            const net::StageHeader& h = req.header;
            std::vector<os::CasDigest> evicted;
            switch (h.source) {
              case net::StageHeader::Source::kWarm:
                // Zero-byte probe: the service believes this digest is
                // already resident. Normally just an LRU touch; on a miss
                // (the ack reporting the eviction is still in flight) fall
                // back to a pull from the service's shared store over the
                // fabric.
                if (!node.cas().touch(h.digest)) {
                  co_await sim::delay(machine.network().fabric().transfer_time(
                      config.service.node, env.node, h.bytes));
                  evicted = co_await node.cas().put(h.digest, h.path, h.bytes);
                }
                break;
              case net::StageHeader::Source::kPeer:
                // Intra-group copy: the bytes cross peer->here, not
                // service->here — this message itself carried none, so
                // charge the fabric for the peer link before installing.
                co_await sim::delay(machine.network().fabric().transfer_time(
                    h.peer, env.node, h.bytes));
                evicted = co_await node.cas().put(h.digest, h.path, h.bytes);
                break;
              case net::StageHeader::Source::kPush:
                // The bytes arrived with this message (wire time already
                // charged by the socket); just install.
                evicted = co_await node.cas().put(h.digest, h.path, h.bytes);
                break;
            }
            net::rpc::StageAck ack;
            ack.path = h.path;
            ack.digest = h.digest;
            ack.evictions = std::move(evicted);
            net::rpc::post(*state->sock, ack);
          } else {
            // Data channel (§4.1): the file's bytes arrived with this
            // message (wire time already charged by the socket); persist
            // them locally.
            co_await node.local_fs().write(req.header.path, req.payload);
            net::rpc::post(*state->sock,
                           net::rpc::StageAck{req.header.path, 0, {}});
          }
        });
    co_await chan.serve();
    // Service connection EOF'd. Without redial the pilot exits here (the
    // pre-recovery behavior); with it, retry the dial under linear
    // backoff — the service may be down for a restore — and re-register
    // carrying the outstanding-task inventory so the restored service
    // can reconcile this pilot with its checkpointed ghost.
    bool redialed = false;
    for (int attempt = 1; config.reconnect_backoff > 0 &&
                          attempt <= config.reconnect_attempts;
         ++attempt) {
      co_await sim::delay(attempt * config.reconnect_backoff);
      if (state->hung()) co_await state->ctl->gate().wait();
      try {
        state->sock =
            co_await machine.network().connect(env.node, config.service);
        redialed = true;
        break;
      } catch (const net::ConnectError&) {
        // nobody listening yet; keep backing off
      }
    }
    if (!redialed) break;  // gave up: pilot exits as before
    // The inventory (map order = sorted task ids, deterministic). Tasks
    // that finished during the outage are simply absent — the service's
    // reconciliation treats a checkpointed-but-unannounced task as a
    // lost done and fails that attempt blamelessly.
    net::rpc::RegisterReq reg;
    reg.node = env.node;
    for (const auto& [tid, pid] : state->outstanding) {
      reg.inventory.push_back(tid);
    }
    net::rpc::post(*state->sock, reg);
    // Only an idle pilot volunteers for work; a busy one re-enters the
    // pool through its normal done/ready cycle. In-flight task wrappers
    // report through state->sock, so their dones route to the new
    // connection automatically.
    if (state->outstanding.empty()) {
      net::rpc::post(*state->sock, net::rpc::ReadyNote{});
    }
  }

  // Natural exit (service closed the connection). A pilot *kill* reaps the
  // heartbeat via the process tree; here we must reap it ourselves.
  state->closed = true;
  if (state->work_gate) state->work_gate->open();
  if (hb_pid != 0) machine.kill(hb_pid);
}

}  // namespace

os::Program worker_program(const os::AppRegistry& apps, WorkerConfig config) {
  return [&apps, config](os::Env& env) -> sim::Task<void> {
    co_await worker_main(&apps, config, env);
  };
}

}  // namespace jets::core
