#include "core/worker.hh"

#include <map>
#include <memory>
#include <set>

namespace jets::core {

net::Message make_run_message(const std::string& task_id,
                              const std::vector<std::string>& argv,
                              const std::map<std::string, std::string>& vars) {
  std::vector<std::string> args{task_id, std::to_string(argv.size())};
  for (const auto& a : argv) args.push_back(a);
  for (const auto& [k, v] : vars) args.push_back(k + "=" + v);
  return net::Message(kMsgRun, std::move(args));
}

RunRequest parse_run_message(const net::Message& m) {
  RunRequest r;
  std::size_t i = 0;
  r.task_id = m.args.at(i++);
  const std::size_t nargv = std::stoul(m.args.at(i++));
  for (std::size_t k = 0; k < nargv; ++k) r.argv.push_back(m.args.at(i++));
  for (; i < m.args.size(); ++i) {
    const std::string& kv = m.args[i];
    const auto eq = kv.find('=');
    if (eq != std::string::npos) r.vars[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  return r;
}

namespace {

/// State shared between the worker's receive loop and its task wrappers.
struct WorkerState {
  net::SocketPtr sock;
  /// Tasks started but not yet reported done (task id -> pid).
  std::map<std::string, os::Machine::Pid> outstanding;
};

/// Wraps one task execution: resolves and runs the command, then reports
/// done/ready — unless the task was already reaped by a "kill".
sim::Task<void> task_wrapper(os::Machine* machine, const os::AppRegistry* apps,
                             os::NodeId node, RunRequest req,
                             std::shared_ptr<WorkerState> state) {
  os::Env env;
  env.machine = machine;
  env.node = node;
  env.argv = req.argv;
  env.vars = std::move(req.vars);
  int status = 0;
  try {
    const os::Program& program = apps->lookup(env.argv.at(0));
    co_await program(env);
  } catch (...) {
    status = 1;
  }
  // If a "kill" raced ahead of completion, the kill handler already
  // reported this task; avoid a duplicate done/ready pair.
  if (state->outstanding.erase(req.task_id) == 0) co_return;
  state->sock->send(net::Message(
      kMsgDone, {req.task_id, std::to_string(status)}));
  state->sock->send(net::Message(kMsgReady));
}

sim::Task<void> worker_main(const os::AppRegistry* apps, WorkerConfig config,
                            os::Env& env) {
  os::Machine& machine = *env.machine;
  os::Node& node = machine.node(env.node);

  // Stage files into node-local storage before taking work (§5 feature 2).
  for (const std::string& file : config.stage_files) {
    if (node.local_fs().exists(file)) continue;
    auto size = machine.shared_fs().size(file);
    if (!size) continue;  // tolerate missing staging entries
    co_await machine.shared_fs().read(file);
    co_await node.local_fs().write(file, *size);
  }

  auto state = std::make_shared<WorkerState>();
  try {
    state->sock = co_await machine.network().connect(env.node, config.service);
  } catch (const net::ConnectError&) {
    co_return;  // service is gone; pilot exits quietly
  }
  state->sock->send(net::Message(kMsgRegister, {std::to_string(env.node)}));
  state->sock->send(net::Message(kMsgReady));

  for (;;) {
    auto m = co_await state->sock->recv();
    if (!m) co_return;  // service closed / died: pilot exits
    if (m->tag == kMsgRun) {
      RunRequest req = parse_run_message(*m);
      // The per-task wrapper cost plus binary load (node-local if staged).
      os::ExecOptions opts;
      opts.extra_startup = config.task_overhead;
      const std::string& prog = req.argv.at(0);
      if (node.local_fs().exists(prog) || machine.shared_fs().exists(prog)) {
        opts.binary = prog;
      }
      const std::string task_id = req.task_id;
      os::Machine::Pid pid = machine.exec(
          env.node, "task:" + task_id,
          task_wrapper(&machine, apps, env.node, std::move(req), state),
          std::move(opts));
      state->outstanding[task_id] = pid;
      if (config.task_watchdog > 0) {
        machine.engine().call_in(
            config.task_watchdog,
            [state, task_id, pid, machine_ptr = &machine] {
              auto it = state->outstanding.find(task_id);
              if (it == state->outstanding.end() || it->second != pid) return;
              machine_ptr->kill(pid);
              state->outstanding.erase(it);
              if (state->sock) {
                state->sock->send(net::Message(kMsgDone, {task_id, "124"}));
                state->sock->send(net::Message(kMsgReady));
              }
            });
      }
    } else if (m->tag == kMsgKill) {
      const std::string& task_id = m->args.at(0);
      auto it = state->outstanding.find(task_id);
      if (it != state->outstanding.end()) {
        machine.kill(it->second);
        state->outstanding.erase(it);
        state->sock->send(net::Message(kMsgDone, {task_id, "137"}));
        state->sock->send(net::Message(kMsgReady));
      }
    } else if (m->tag == kMsgStageIn) {
      // Data channel (§4.1): the file's bytes arrived with this message
      // (wire time already charged by the socket); persist them locally.
      const std::string& path = m->args.at(0);
      co_await node.local_fs().write(path, m->payload_bytes);
      state->sock->send(net::Message(kMsgStaged, {path}));
    }
  }
}

}  // namespace

os::Program worker_program(const os::AppRegistry& apps, WorkerConfig config) {
  return [&apps, config](os::Env& env) -> sim::Task<void> {
    co_await worker_main(&apps, config, env);
  };
}

}  // namespace jets::core
