// The central JETS service (dispatcher).
//
// The essential JETS idea (§5): transform an MPI job specification into a
// set of Hydra proxy invocations — by running a background mpiexec with
// launcher=manual — and rapidly push those proxy command lines to ready
// pilot-job workers over persistent sockets. Sequential jobs are pushed
// directly (Falkon-style). The service:
//
//   * keeps a FIFO job queue and a first-come-first-served ready-worker
//     pool (the paper's defaults; §6.1.4);
//   * aggregates independent workers into MPI-capable groups of exactly
//     the size each job needs;
//   * checks mpiexec outcomes and retries failed jobs on fresh workers,
//     automatically disregarding workers that fail or hang (§5 feature 3,
//     Fig 10);
//   * charges a fixed dispatch cost per task sent — the single-scheduler
//     bottleneck that caps launch throughput (Figs 6 and 9).
//
// Extensions beyond the paper's evaluated system, each behind a Config
// switch and exercised by the ablation benches (paper §7 future work):
// priority+backfill scheduling and network-aware worker grouping.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/job.hh"
#include "core/worker.hh"
#include "net/socket.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "pmi/hydra.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::core {

/// Queue discipline for picking the next job to place.
enum class SchedPolicy {
  kFifo,              // paper default: strict head-of-line
  kPriorityBackfill,  // §7: priority order, skip jobs that don't fit yet
};

class Service {
 public:
  struct Config {
    /// Central scheduler cost per task/proxy message dispatched. This
    /// serializes in the dispatch loop and is the throughput cap of
    /// Figs 6/9 (calibrated in bench/README notes).
    sim::Duration dispatch_overhead = sim::microseconds(120);
    /// Additional serialized cost per *MPI job* placement: forking and
    /// wiring up the background mpiexec on the submit host (§5).
    sim::Duration mpi_job_overhead = sim::milliseconds(5);
    /// Forwarded to each job's MpiexecSpec (see pmi/hydra.hh).
    sim::Duration proxy_setup_cost = sim::microseconds(500);
    /// Total attempts per job before it is declared failed.
    int max_attempts = 3;
    SchedPolicy policy = SchedPolicy::kFifo;
    /// §7: group MPI jobs onto workers with nearby node ids (torus
    /// locality) instead of first-come-first-served.
    bool network_aware_grouping = false;
    /// Applied to jobs whose spec has no timeout; 0 = none.
    sim::Duration default_job_timeout = 0;
    /// Liveness deadline for *busy* workers: a worker that has been silent
    /// this long after being handed work is disregarded — removed from the
    /// pools, its job attempt failed so it retries elsewhere (§5 feature 3:
    /// "disregards workers that fail or hang"). Catches hung pilots whose
    /// socket stays open, which EOF detection alone cannot. Pair with
    /// WorkerConfig::heartbeat_interval (< this) so long-running tasks are
    /// not mistaken for hangs. 0 disables.
    sim::Duration worker_liveness_timeout = 0;
    /// After this many evictions from the same node, refuse that node's
    /// workers entirely (registration and re-enlistment) — a crude
    /// bad-node blacklist. 0 disables (evicted workers may re-enlist by
    /// sending "ready" again, e.g. after a stall drains).
    int blacklist_after = 0;
  };

  /// Observation hooks for benchmark harnesses.
  struct Hooks {
    std::function<void(const JobRecord&)> on_job_start;
    std::function<void(const JobRecord&)> on_job_finish;
  };

  Service(os::Machine& machine, const os::AppRegistry& apps, os::NodeId host,
          Config config);
  Service(os::Machine& machine, const os::AppRegistry& apps, os::NodeId host);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Binds the listen port and starts the accept + dispatch actors.
  void start();

  net::Address address() const { return addr_; }
  const Config& config() const { return config_; }
  Hooks& hooks() { return hooks_; }

  /// Enqueues a job; returns its id. Jobs may be submitted at any time,
  /// including while earlier jobs run (dynamic workloads).
  JobId submit(JobSpec spec);
  std::vector<JobId> submit_batch(const std::vector<JobSpec>& specs);

  /// Completes once every job submitted so far has finished or failed.
  sim::Task<void> wait_all();

  /// Completes when one specific job settles (Done or Failed). Used by the
  /// Coasters bridge, whose Swift app calls block on individual jobs.
  sim::Task<void> wait_job(JobId id);

  /// Coasters data channel (§4.1): pushes `path` (which must exist on the
  /// shared filesystem) to every *currently connected* worker's node-local
  /// storage over the worker sockets, and completes when all have
  /// acknowledged. Removes the need for a separate transfer mechanism;
  /// workers that join later are unaffected.
  sim::Task<void> stage_to_workers(const std::string& path);

  const JobRecord& record(JobId id) const { return jobs_.at(id).rec; }
  std::vector<JobRecord> records() const;

  // Live counters (sampled by harnesses for Figs 10/13).
  std::size_t connected_workers() const { return connected_; }
  std::size_t ready_workers() const;
  std::size_t running_jobs() const { return running_; }
  std::size_t pending_jobs() const { return queue_.size(); }
  std::size_t completed_jobs() const { return completed_; }
  std::size_t failed_jobs() const { return failed_; }

  // Liveness/eviction counters (chaos benches and the fault-matrix tests).
  std::size_t evicted_workers() const { return evicted_; }
  std::size_t reenlisted_workers() const { return reenlisted_; }
  std::size_t heartbeats_received() const { return heartbeats_; }
  std::size_t blacklist_rejections() const { return blacklist_rejections_; }

  /// Test hook: the ready pool holds no duplicates and only workers that
  /// are connected, idle, and not evicted.
  bool ready_pool_consistent() const;

 private:
  using WorkerId = std::uint64_t;

  struct Worker {
    WorkerId id = 0;
    os::NodeId node = 0;
    net::SocketPtr sock;
    bool connected = false;
    bool busy = false;
    /// Disregarded for liveness (socket may still be open). An evicted
    /// worker that sends "ready" again is re-enlisted unless blacklisted.
    bool evicted = false;
    JobId job = 0;  // 0 = none
    std::string task_id;  // task currently assigned to this worker
    /// Last time any message arrived from this worker.
    sim::Time last_heard = 0;
    /// Armed while busy when worker_liveness_timeout > 0.
    sim::TimerHandle liveness_timer;
  };

  struct Job {
    JobRecord rec;
    /// Shared with the job-waiter actor: the waiter resumes *inside*
    /// Mpiexec::wait() when the job settles, so the object must outlive
    /// that resumption even though the service has already let go.
    std::shared_ptr<pmi::Mpiexec> mpx;
    std::vector<WorkerId> assigned;
    std::string task_id;  // sequential jobs: the outstanding task id
    sim::TimerHandle timeout;
    bool deadline_passed = false;
    std::unique_ptr<sim::Gate> settled;  // created lazily by wait_job
  };

  sim::Task<void> accept_loop();
  sim::Task<void> worker_handler(net::SocketPtr sock);
  sim::Task<void> dispatch_loop();
  void kick() { kick_ch_->push(0); }

  /// Picks the next dispatchable job per policy, or nullopt.
  std::optional<JobId> choose_job();
  /// Selects and claims `count` ready workers (FCFS or network-aware).
  std::vector<WorkerId> claim_workers(std::size_t count);
  sim::Task<void> place_job(JobId id);
  void job_finished(JobId id, int status);
  void deadline_expired(JobId id);
  void check_all_done();

  /// Liveness machinery (§5 feature 3 taken beyond EOF detection).
  void liveness_check(WorkerId wid);
  void evict_worker(WorkerId wid);
  bool node_blacklisted(os::NodeId node) const;
  /// Returns claimed-but-never-dispatched workers to the ready pool when a
  /// job settles mid-placement (otherwise they would leak as busy).
  void release_undispatched(const std::vector<WorkerId>& claimed,
                            std::size_t from_idx);

  os::Machine* machine_;
  const os::AppRegistry* apps_;
  os::NodeId host_;
  Config config_;
  Hooks hooks_;

  net::Address addr_{};
  std::unique_ptr<net::Listener> listener_;
  std::vector<sim::ActorId> actors_;  // accept, dispatch, handlers, waiters
  std::unique_ptr<sim::Channel<int>> kick_ch_;
  std::unique_ptr<sim::Gate> all_done_;
  bool started_ = false;

  JobId next_job_ = 1;
  WorkerId next_worker_ = 1;
  std::uint64_t next_task_ = 1;
  std::map<JobId, Job> jobs_;
  std::map<WorkerId, Worker> workers_;
  std::map<std::string, JobId> task_to_job_;  // outstanding sequential tasks
  std::deque<JobId> queue_;
  std::deque<WorkerId> ready_;  // may contain stale (disconnected) entries
  /// In-flight stage-ins: path -> (remaining acks, completion gate).
  struct StageOp {
    std::size_t remaining = 0;
    std::unique_ptr<sim::Gate> done;
  };
  std::map<std::string, StageOp> staging_;
  std::map<os::NodeId, int> node_evictions_;
  std::size_t connected_ = 0;
  std::size_t running_ = 0;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::size_t evicted_ = 0;
  std::size_t reenlisted_ = 0;
  std::size_t heartbeats_ = 0;
  std::size_t blacklist_rejections_ = 0;
};

}  // namespace jets::core
