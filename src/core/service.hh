// The central JETS service (dispatcher).
//
// The essential JETS idea (§5): transform an MPI job specification into a
// set of Hydra proxy invocations — by running a background mpiexec with
// launcher=manual — and rapidly push those proxy command lines to ready
// pilot-job workers over persistent sockets. Sequential jobs are pushed
// directly (Falkon-style). The service:
//
//   * keeps a FIFO job queue and a first-come-first-served ready-worker
//     pool (the paper's defaults; §6.1.4);
//   * aggregates independent workers into MPI-capable groups of exactly
//     the size each job needs;
//   * checks mpiexec outcomes and retries failed jobs on fresh workers,
//     automatically disregarding workers that fail or hang (§5 feature 3,
//     Fig 10);
//   * charges a fixed dispatch cost per task sent — the single-scheduler
//     bottleneck that caps launch throughput (Figs 6 and 9).
//
// Failure handling goes beyond the paper's "retries failed jobs" sentence:
// every settled attempt is *classified* (FailureReason in core/job.hh) and
// appended to JobRecord::history, and requeues run through a retry policy
// engine (RetryPolicy) instead of an immediate head-of-line push:
//
//   * retry.max_attempts (default 3) bounds the attempt budget; with
//     retry.infra_exempt, infrastructure failures (lost/evicted workers,
//     gang partners, launch timeouts) are charged to a separate
//     retry.max_infra_failures budget (default 64) instead;
//   * failed attempts requeue after exponential backoff —
//     retry.backoff_base (250ms) * retry.backoff_factor (2.0)^(failures-1),
//     capped at retry.backoff_max (30s), stretched by up to
//     retry.backoff_jitter (0.25) of itself from a deterministic rng seeded
//     with retry.jitter_seed — so a poison job cannot hot-loop and
//     same-seed runs reproduce identical schedules;
//   * a job whose *own* failures exhaust the budget is quarantined
//     (JobStatus::kQuarantined) rather than merely failed;
//   * JobSpec::retry overrides the service-wide policy per job;
//   * mpi_launch_timeout bounds the gang wiring phase (proxy dial-back +
//     PMI init), failing fast with kLaunchTimeout;
//   * fail_unsatisfiable settles queued jobs wider than the machine can
//     ever again supply (kServiceAbort) instead of letting wait_all hang;
//   * blacklist_probation paroles blacklisted nodes after a cooldown with
//     their eviction count halved.
//
// Extensions beyond the paper's evaluated system, each behind a Config
// switch and exercised by the ablation benches (paper §7 future work):
// priority+backfill scheduling and network-aware worker grouping.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/job.hh"
#include "core/staging.hh"
#include "core/table.hh"
#include "core/worker.hh"
#include "net/rpc.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "pmi/hydra.hh"
#include "sim/random.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::core {

struct Snapshot;  // core/snapshot.hh

/// Queue discipline for picking the next job to place.
enum class SchedPolicy {
  kFifo,              // paper default: strict head-of-line
  kPriorityBackfill,  // §7: priority order, skip jobs that don't fit yet
};

class Service {
 public:
  struct Config {
    /// Central scheduler cost per task/proxy message dispatched. This
    /// serializes in the dispatch loop and is the throughput cap of
    /// Figs 6/9 (calibrated in bench/README notes).
    sim::Duration dispatch_overhead = sim::microseconds(120);
    /// Additional serialized cost per *MPI job* placement: forking and
    /// wiring up the background mpiexec on the submit host (§5).
    sim::Duration mpi_job_overhead = sim::milliseconds(5);
    /// Forwarded to each job's MpiexecSpec (see pmi/hydra.hh).
    sim::Duration proxy_setup_cost = sim::microseconds(500);
    /// Default retry policy (attempt budgets + backoff); JobSpec::retry
    /// overrides it per job. See core/job.hh.
    RetryPolicy retry;
    /// Launch-phase deadline forwarded to each MPI job's MpiexecSpec: the
    /// gang must finish wiring (proxy dial-back + PMI init) within this
    /// long or the attempt fails fast with kLaunchTimeout. 0 disables.
    sim::Duration mpi_launch_timeout = 0;
    SchedPolicy policy = SchedPolicy::kFifo;
    /// §7: group MPI jobs onto workers with nearby node ids (torus
    /// locality) instead of first-come-first-served.
    bool network_aware_grouping = false;
    /// Content-addressed staging of JobSpec::stage_files: each distinct
    /// blob reaches a node at most once (later jobs are satisfied from
    /// warm cache with a zero-byte "staged" ack), and cold copies prefer a
    /// cheap peer node that already holds the digest over a service push.
    /// Off = the naive pre-CAS behavior: every job re-pushes every input
    /// to every one of its nodes (the abl_staging cold baseline).
    bool staging_cache = true;
    /// Data-aware placement: among width-feasible node-sorted windows,
    /// claim the one with the most resident input bytes for the job's
    /// stage_files; ties fall back to the min-span/earliest-window rule,
    /// so cold-cache picks are byte-identical to plain network-aware
    /// grouping. Only meaningful with network_aware_grouping; no effect
    /// on jobs without stage_files.
    bool data_aware_grouping = true;
    /// Applied to jobs whose spec has no timeout; 0 = none.
    sim::Duration default_job_timeout = 0;
    /// Liveness deadline for *busy* workers: a worker that has been silent
    /// this long after being handed work is disregarded — removed from the
    /// pools, its job attempt failed so it retries elsewhere (§5 feature 3:
    /// "disregards workers that fail or hang"). Catches hung pilots whose
    /// socket stays open, which EOF detection alone cannot. Pair with
    /// WorkerConfig::heartbeat_interval (< this) so long-running tasks are
    /// not mistaken for hangs. 0 disables.
    sim::Duration worker_liveness_timeout = 0;
    /// After this many evictions from the same node, refuse that node's
    /// workers entirely (registration and re-enlistment) — a crude
    /// bad-node blacklist. 0 disables (evicted workers may re-enlist by
    /// sending "ready" again, e.g. after a stall drains).
    int blacklist_after = 0;
    /// Probation window for blacklisted nodes: after this long banned, a
    /// node may re-enlist with its eviction count halved (so a repeat
    /// offender is re-banned quickly). 0 = the ban is permanent.
    sim::Duration blacklist_probation = 0;
    /// When the ready pool can never again satisfy a queued job's width —
    /// evictions and blacklisting shrank the machine below a width it once
    /// met — fail the job with kServiceAbort instead of letting wait_all
    /// hang on it.
    bool fail_unsatisfiable = true;
    /// Grace period after a restore-from-snapshot during which checkpointed
    /// workers are carried as "ghosts": they count toward capacity and hold
    /// their slots for heartbeat reconciliation (a surviving pilot that
    /// redials and re-registers reclaims its identity). Ghosts still absent
    /// when the grace expires are dropped and their running jobs requeued
    /// with kServiceRestart.
    sim::Duration restore_grace = sim::seconds(10);
    /// Metrics sink. The service registers its instruments here (dotted
    /// "jets.service.*" names, see DESIGN.md §8) so harnesses can snapshot
    /// one registry across components. nullptr = the service owns a
    /// private registry; the counter accessors below work either way.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Observation hooks for benchmark harnesses.
  struct Hooks {
    std::function<void(const JobRecord&)> on_job_start;
    std::function<void(const JobRecord&)> on_job_finish;
  };

  Service(os::Machine& machine, const os::AppRegistry& apps, os::NodeId host,
          Config config);
  Service(os::Machine& machine, const os::AppRegistry& apps, os::NodeId host);
  /// Recovery constructor: builds a fresh service whose scheduler state is
  /// restored from `snap` (see core/snapshot.hh). Call start() afterwards —
  /// it rebinds the *checkpointed* listen address so surviving pilots can
  /// redial it. Throws SnapshotError if the snapshot is malformed.
  Service(os::Machine& machine, const os::AppRegistry& apps, os::NodeId host,
          Config config, const Snapshot& snap);
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Binds the listen port and starts the accept + dispatch actors.
  void start();

  net::Address address() const { return addr_; }
  const Config& config() const { return config_; }
  Hooks& hooks() { return hooks_; }

  /// Enqueues a job; returns its id. Jobs may be submitted at any time,
  /// including while earlier jobs run (dynamic workloads).
  JobId submit(JobSpec spec);
  std::vector<JobId> submit_batch(const std::vector<JobSpec>& specs);

  /// Completes once every job submitted so far has finished or failed.
  sim::Task<void> wait_all();

  /// Completes when one specific job settles (Done or Failed). Used by the
  /// Coasters bridge, whose Swift app calls block on individual jobs.
  sim::Task<void> wait_job(JobId id);

  /// Coasters data channel (§4.1): pushes `path` (which must exist on the
  /// shared filesystem) to every *currently connected* worker's node-local
  /// storage over the worker sockets, and completes when all have
  /// acknowledged. Removes the need for a separate transfer mechanism;
  /// workers that join later are unaffected.
  sim::Task<void> stage_to_workers(const std::string& path);

  const JobRecord& record(JobId id) const { return jobs_.at(id).rec; }
  std::vector<JobRecord> records() const;

  /// Serializes the full scheduler state — job table with retry budgets and
  /// attempt history, worker table, pending-queue order, blacklist state,
  /// service-owned timer deadlines, the retry rng stream, counters, and the
  /// obs span journal — into a versioned Snapshot (core/snapshot.hh).
  /// Pure: takes no locks (single-threaded), schedules no events, draws no
  /// randomness, mutates nothing, so checkpointing cannot perturb the run.
  Snapshot checkpoint() const;

  /// The metrics registry this service reports to: Config::metrics when
  /// set, otherwise a private one. All the counter accessors below are
  /// views over it — the registry holds the truth.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  // Live counters (sampled by harnesses for Figs 10/13).
  std::size_t connected_workers() const { return connected_; }
  std::size_t ready_workers() const;
  std::size_t running_jobs() const { return running_; }
  std::size_t pending_jobs() const { return queue_.size(); }
  std::size_t completed_jobs() const { return m_completed_->value; }
  std::size_t failed_jobs() const { return m_failed_->value; }
  std::size_t quarantined_jobs() const { return m_quarantined_->value; }

  // Liveness/eviction counters (chaos benches and the fault-matrix tests).
  std::size_t evicted_workers() const { return m_evicted_->value; }
  std::size_t reenlisted_workers() const { return m_reenlisted_->value; }
  std::size_t heartbeats_received() const { return m_heartbeats_->value; }
  std::size_t blacklist_rejections() const {
    return m_blacklist_rejections_->value;
  }
  std::size_t blacklist_paroles() const { return m_blacklist_paroles_->value; }

  // Failure-taxonomy counters (fault-spectrum bench, Fig 10).
  /// Failures classified as `reason` across all jobs: one count per failed
  /// attempt, plus attempt-less settles (queued-job deadlines, aborts).
  std::size_t failures_by_reason(FailureReason reason) const {
    return m_failures_.at(static_cast<std::size_t>(reason))->value;
  }
  /// Delayed requeues the retry engine has scheduled.
  std::size_t retries_scheduled() const { return m_retries_scheduled_->value; }

  // Recovery counters (checkpoint/restore path; see core/snapshot.hh).
  /// Times this service was constructed from a snapshot (0 or 1).
  std::size_t restores() const { return m_restores_->value; }
  /// Checkpointed workers that redialed and reclaimed their identity.
  std::size_t workers_reconciled() const { return m_reconciled_->value; }
  /// Running jobs whose attempt survived the crash (worker + task intact
  /// across the restore) and later settled successfully.
  std::size_t jobs_rescued() const { return m_rescued_->value; }
  /// Checkpointed workers dropped because they never redialed within
  /// Config::restore_grace.
  std::size_t ghosts_dropped() const { return m_ghosts_dropped_->value; }
  /// Ghost workers still awaiting reconciliation (0 once the grace ran out).
  std::size_t awaiting_workers() const { return awaiting_; }
  /// Engine time this service was restored from a snapshot (-1 = never).
  sim::Time restored_at() const { return restored_at_; }

  // Staging counters (abl_staging bench and the staging test lane).
  /// (node, blob) pairs any job asked for — the denominator of the dedup
  /// and warm-hit rates below.
  std::size_t stage_requests() const { return m_stage_requests_->value; }
  /// Blobs pushed service->node over the fabric (cold misses).
  std::size_t stage_pushes() const { return m_stage_pushes_->value; }
  /// Blobs copied node->node because a peer already held the digest.
  std::size_t stage_peer_copies() const { return m_stage_peer_copies_->value; }
  /// Requests satisfied from warm cache with a zero-byte ack.
  std::size_t stage_warm_hits() const { return m_stage_warm_hits_->value; }
  /// Requests that piggybacked on a transfer already in flight.
  std::size_t stage_coalesced() const { return m_stage_coalesced_->value; }
  /// Acks written off because the worker died mid-stage (satellite S1).
  std::size_t stage_acks_lost() const { return m_stage_acks_lost_->value; }
  /// Cache evictions reported by workers' staged acks.
  std::size_t stage_evictions() const { return m_stage_evictions_->value; }
  /// Bytes actually moved service->node.
  std::uint64_t stage_bytes_pushed() const { return m_stage_bytes_pushed_->value; }
  /// Bytes a naive per-job push would have moved but the cache did not
  /// (warm hits + coalesces; peer copies still move bytes, just cheaper).
  std::uint64_t stage_bytes_saved() const { return m_stage_bytes_saved_->value; }

  // --- Elastic allocations (driven by swift::BlockAllocator) -----------------
  //
  // All four calls are opt-in: a service that never sees them keeps an
  // empty elastic table, and every scheduling path below checks that
  // emptiness first — default runs stay byte-identical to the golden
  // manifest.

  /// Tags every worker on `node` with its pilot block's walltime horizon.
  /// The claim gate then refuses to place a job whose expected_runtime
  /// does not fit in the remaining walltime.
  void set_node_expiry(os::NodeId node, sim::Time expires_at);
  /// Stops placing work on `nodes` immediately; anything still running
  /// there at `deadline` is requeued with FailureReason::kWalltimeDrain
  /// (no budget charge, no blacklist strike). A deadline at or before now
  /// requeues synchronously — the preemption path relies on that to save
  /// jobs before the batch system kills the pilots.
  void drain_nodes(const std::vector<os::NodeId>& nodes, sim::Time deadline);
  /// Forgets elastic state for released nodes (a later block may reuse
  /// their ids with a fresh horizon).
  void clear_node_elastic(const std::vector<os::NodeId>& nodes);
  /// Floor for potential_capacity(): the allocator's pool ceiling. Keeps
  /// reap_unsatisfiable from aborting wide queued jobs during a scale-in,
  /// when the pool is momentarily small but can grow back.
  void set_elastic_capacity(std::size_t cap) { elastic_capacity_ = cap; }

  bool node_draining(os::NodeId node) const;
  /// Jobs requeued at a drain deadline (the zero-jobs-lost path).
  std::size_t drain_requeues() const { return m_drain_requeues_->value; }
  /// Placements refused by the walltime claim gate.
  std::size_t gate_refusals() const { return m_gate_refusals_->value; }

  /// Test hook: the ready pool holds no duplicates and only workers that
  /// are connected, idle, and not evicted.
  bool ready_pool_consistent() const;

  // Table/slab observability (scale tests bound these; the invariant is
  // physical footprint = O(live entities), not O(events processed)).
  /// Worker slots ever allocated at once (SlotMap slab high-water).
  std::size_t worker_slab_high_water() const {
    return workers_.slab_high_water();
  }
  /// Jobs ever submitted (the job table is append-only by design).
  std::size_t job_table_size() const { return jobs_.size(); }
  /// Pending-queue entries including stale lazy-deletion copies; the
  /// compaction policy bounds this by 2 * live + O(1).
  std::size_t queue_physical_size() const { return queue_.physical_size(); }
  /// Ready-pool FIFO entries including stale copies; same bound.
  std::size_t ready_physical_size() const { return ready_.physical_size(); }

 private:
  using WorkerId = std::uint64_t;

  /// Lets the differential property suite drive PendingQueue/ReadyPool
  /// directly against naive reference models (tests only).
  friend struct ServiceTestAccess;

  /// Pending-job backlog with O(1)-amortized membership changes at any
  /// scale. Queue entries carry the job's (immutable) width and priority as
  /// a struct-of-arrays sidecar, so dispatch scans never touch the job
  /// table. Removal is lazy, the same way the engine's event heap retires
  /// cancelled events: erase() retires the job's *ticket* (stored in a
  /// dense per-JobId vector), stale entries are dropped when they surface
  /// at a scan front, and wholesale compaction runs once stale copies
  /// outnumber live ones — so a requeue/deadline/backfill-heavy workload
  /// never pays O(n) per settle the way std::erase on the deque did.
  /// Tickets are globally monotone: a job requeued after a retry gets a
  /// fresh ticket, so its old entry reads stale (no ABA).
  class PendingQueue {
   public:
    struct Entry {
      JobId id = 0;
      std::uint64_t ticket = 0;
      std::uint32_t width = 0;  // JobSpec::workers_needed(), cached
      int priority = 0;
    };

    /// The priority-bucket mirror is only paid for when the backfill
    /// policy will actually scan it. Must be set before first use.
    void set_buckets(bool on) { use_buckets_ = on; }

    void push_back(JobId id, int priority, std::uint32_t width) {
      const std::uint64_t t = ++next_ticket_;
      ticket_slot(id) = t;
      ++live_;
      fifo_.push_back(Entry{id, t, width, priority});
      if (use_buckets_) {
        buckets_[priority].push_back(Entry{id, t, width, priority});
        ++bucket_entries_;
      }
    }
    void erase(JobId id) {
      if (id == 0 || id > tickets_.size()) return;
      std::uint64_t& t = tickets_[id - 1];
      if (t == 0) return;  // not queued (e.g. backing off): no-op as before
      t = 0;
      --live_;
      maybe_compact();
    }
    /// Head of the live FIFO; requires !empty().
    JobId front() {
      drop_stale_front();
      return fifo_.front().id;
    }
    /// Cached width of the live head; requires !empty().
    std::uint32_t front_width() {
      drop_stale_front();
      return fifo_.front().width;
    }
    void pop_front() {
      drop_stale_front();
      tickets_[fifo_.front().id - 1] = 0;
      fifo_.pop_front();
      --live_;
    }
    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }
    std::size_t physical_size() const { return fifo_.size(); }
    /// Visits live jobs in submission order (reaping and consistency
    /// walks); stale entries are skipped in place.
    template <typename Fn>
    void for_each(Fn&& fn) const {
      for (const Entry& e : fifo_) {
        if (is_live(e)) fn(e.id, e.width);
      }
    }

    /// First job in (priority desc, FIFO-within-priority) order whose
    /// cached width `fits`; removed from the queue when found. `fits` may
    /// take (width) or (id, width) — the elastic claim gate needs the id
    /// to look up the job's expected runtime.
    template <typename Fits>
    std::optional<JobId> pop_first_fit(Fits&& fits) {
      const auto accepts = [&fits](const Entry& e) {
        if constexpr (std::is_invocable_v<Fits&, JobId, std::uint32_t>) {
          return static_cast<bool>(fits(e.id, e.width));
        } else {
          return static_cast<bool>(fits(e.width));
        }
      };
      for (auto bit = buckets_.begin(); bit != buckets_.end();) {
        std::deque<Entry>& bucket = bit->second;
        // Retired entries at the bucket front are free to drop.
        while (!bucket.empty() && !is_live(bucket.front())) {
          bucket.pop_front();
          --bucket_entries_;
        }
        for (const Entry& e : bucket) {
          if (!is_live(e)) continue;
          if (accepts(e)) {
            const JobId id = e.id;
            tickets_[id - 1] = 0;  // entry (and its fifo copy) now stale
            --live_;
            maybe_compact();
            return id;
          }
        }
        if (bucket.empty()) {
          bit = buckets_.erase(bit);
        } else {
          ++bit;
        }
      }
      return std::nullopt;
    }

   private:
    bool is_live(const Entry& e) const {
      return tickets_[e.id - 1] == e.ticket;
    }
    std::uint64_t& ticket_slot(JobId id) {
      if (id > tickets_.size()) tickets_.resize(static_cast<std::size_t>(id));
      return tickets_[id - 1];
    }
    void drop_stale_front() {
      while (!fifo_.empty() && !is_live(fifo_.front())) fifo_.pop_front();
    }
    /// Rebuilds the deques (preserving live order) once stale copies
    /// dominate; amortized O(1) against the erases that created them.
    void maybe_compact() {
      if (fifo_.size() > 2 * live_ + 64) {
        std::deque<Entry> keep;
        for (const Entry& e : fifo_) {
          if (is_live(e)) keep.push_back(e);
        }
        fifo_.swap(keep);
      }
      if (use_buckets_ && bucket_entries_ > 2 * live_ + 64) {
        bucket_entries_ = 0;
        for (auto bit = buckets_.begin(); bit != buckets_.end();) {
          std::deque<Entry> keep;
          for (const Entry& e : bit->second) {
            if (is_live(e)) keep.push_back(e);
          }
          bit->second.swap(keep);
          bucket_entries_ += bit->second.size();
          bit = bit->second.empty() ? buckets_.erase(bit) : std::next(bit);
        }
      }
    }

    bool use_buckets_ = false;
    std::uint64_t next_ticket_ = 0;
    std::size_t live_ = 0;
    std::size_t bucket_entries_ = 0;
    std::deque<Entry> fifo_;
    std::map<int, std::deque<Entry>, std::greater<int>> buckets_;
    /// Dense per-JobId live ticket (0 = not queued), indexed by id-1.
    std::vector<std::uint64_t> tickets_;
  };

  /// Ready-worker pool. FCFS claims pop the FIFO deque; removal anywhere
  /// else is lazy-deletion on a per-worker-slot ticket (workers re-enter
  /// the pool after every job, so tickets — not ids — are what keeps a
  /// stale entry from aliasing the worker's next enlistment). When
  /// network-aware grouping is on, a mirror of the pool sorted by
  /// (node, arrival) is maintained eagerly as before so each MPI placement
  /// stays one sliding-window span scan.
  class ReadyPool {
   public:
    struct Entry {
      os::NodeId node = 0;
      std::uint64_t arrival = 0;
      WorkerId wid = 0;
      auto operator<=>(const Entry&) const = default;
    };

    /// Must be set before any worker enters the pool.
    void set_indexed(bool on) { indexed_ = on; }

    void push_back(WorkerId wid, os::NodeId node) {
      const std::uint64_t t = ++next_ticket_;
      ticket_slot(wid) = t;
      ++live_;
      fifo_.push_back(FifoEntry{wid, t});
      if (indexed_) {
        const Entry e{node, arrivals_++, wid};
        by_node_.insert(std::upper_bound(by_node_.begin(), by_node_.end(), e),
                        e);
      }
    }
    void erase(WorkerId wid, os::NodeId node) {
      const std::uint32_t slot = slot_of(wid);
      if (slot >= tickets_.size() || tickets_[slot] == 0) return;  // not pooled
      tickets_[slot] = 0;
      --live_;
      maybe_compact();
      if (indexed_) index_erase(wid, node);
    }
    /// Live head of the FIFO; requires !empty().
    WorkerId front() {
      drop_stale_front();
      return fifo_.front().wid;
    }
    void erase_front(os::NodeId node) {
      drop_stale_front();
      const WorkerId wid = fifo_.front().wid;
      tickets_[slot_of(wid)] = 0;
      fifo_.pop_front();
      --live_;
      if (indexed_) index_erase(wid, node);
    }
    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }
    std::size_t physical_size() const { return fifo_.size(); }
    /// Live FIFO view for the consistency test hook (cold path).
    std::vector<WorkerId> live_fifo() const {
      std::vector<WorkerId> out;
      out.reserve(live_);
      for (const FifoEntry& e : fifo_) {
        if (is_live(e)) out.push_back(e.wid);
      }
      return out;
    }
    const std::vector<Entry>& index() const { return by_node_; }

    /// Claims the `count` workers whose sorted window has the smallest
    /// node-id span (ties keep the earliest window); removes them from the
    /// pool and returns them in (node, arrival) order. Requires
    /// count <= size() and the index to be enabled.
    std::vector<WorkerId> claim_min_span(std::size_t count) {
      return claim_best(count, [](const Entry*, std::size_t) {
        return std::uint64_t{0};
      });
    }

    /// Data-aware variant: `score(window, count)` rates each window (the
    /// resident input bytes of the job being placed); the highest-scoring
    /// window wins, ties fall back to smallest span then earliest window.
    /// With an all-zero scorer this is *exactly* claim_min_span — the
    /// determinism contract the golden-manifest gate enforces for
    /// cold-cache runs.
    template <typename Score>
    std::vector<WorkerId> claim_best(std::size_t count, Score&& score) {
      std::size_t best = 0;
      os::NodeId best_span = std::numeric_limits<os::NodeId>::max();
      std::uint64_t best_bytes = 0;
      for (std::size_t i = 0; i + count <= by_node_.size(); ++i) {
        const os::NodeId span = by_node_[i + count - 1].node - by_node_[i].node;
        const std::uint64_t bytes = score(&by_node_[i], count);
        if (bytes > best_bytes || (bytes == best_bytes && span < best_span)) {
          best_bytes = bytes;
          best_span = span;
          best = i;
        }
      }
      std::vector<WorkerId> claimed;
      claimed.reserve(count);
      for (std::size_t k = best; k < best + count; ++k) {
        claimed.push_back(by_node_[k].wid);
      }
      by_node_.erase(by_node_.begin() + static_cast<std::ptrdiff_t>(best),
                     by_node_.begin() + static_cast<std::ptrdiff_t>(best + count));
      for (WorkerId wid : claimed) {
        tickets_[slot_of(wid)] = 0;  // fifo copy goes stale
        --live_;
      }
      maybe_compact();
      return claimed;
    }

   private:
    struct FifoEntry {
      WorkerId wid = 0;
      std::uint64_t ticket = 0;
    };

    static constexpr std::uint32_t slot_of(WorkerId wid) {
      return static_cast<std::uint32_t>(wid & 0xffffffffu);
    }
    bool is_live(const FifoEntry& e) const {
      const std::uint32_t slot = slot_of(e.wid);
      return slot < tickets_.size() && tickets_[slot] == e.ticket;
    }
    std::uint64_t& ticket_slot(WorkerId wid) {
      const std::uint32_t slot = slot_of(wid);
      if (slot >= tickets_.size()) tickets_.resize(slot + 1);
      return tickets_[slot];
    }
    void drop_stale_front() {
      while (!fifo_.empty() && !is_live(fifo_.front())) fifo_.pop_front();
    }
    void maybe_compact() {
      if (fifo_.size() <= 2 * live_ + 64) return;
      std::deque<FifoEntry> keep;
      for (const FifoEntry& e : fifo_) {
        if (is_live(e)) keep.push_back(e);
      }
      fifo_.swap(keep);
    }

    void index_erase(WorkerId wid, os::NodeId node) {
      auto it = std::lower_bound(by_node_.begin(), by_node_.end(),
                                 Entry{node, 0, 0});
      for (; it != by_node_.end() && it->node == node; ++it) {
        if (it->wid == wid) {
          by_node_.erase(it);
          return;
        }
      }
    }

    bool indexed_ = false;
    std::uint64_t arrivals_ = 0;
    std::uint64_t next_ticket_ = 0;
    std::size_t live_ = 0;
    std::deque<FifoEntry> fifo_;
    std::vector<Entry> by_node_;  // sorted by (node, arrival)
    /// Dense per-worker-slot live ticket (0 = not in the pool), indexed by
    /// the SlotMap slot of the worker's handle.
    std::vector<std::uint64_t> tickets_;
  };

  struct Worker {
    WorkerId id = 0;
    /// Registration order (1, 2, 3, ...): handles recycle worker slots, so
    /// paths that must visit workers in registration order (stage fan-out)
    /// sort by this instead of by id.
    std::uint64_t seq = 0;
    os::NodeId node = 0;
    net::SocketPtr sock;
    bool connected = false;
    bool busy = false;
    /// Disregarded for liveness (socket may still be open). An evicted
    /// worker that sends "ready" again is re-enlisted unless blacklisted.
    bool evicted = false;
    JobId job = 0;  // 0 = none
    std::string task_id;  // task currently assigned to this worker
    /// Last time any message arrived from this worker.
    sim::Time last_heard = 0;
    /// Armed while busy when worker_liveness_timeout > 0.
    sim::TimerHandle liveness_timer;
    /// Ghost state after a restore: the worker existed in the checkpoint
    /// but has not yet redialed the restored service. It keeps its slot and
    /// capacity until reconciliation or the restore-grace reaper.
    bool awaiting = false;
    /// Armed at a ban's parole date (previously untracked — a service
    /// destroyed mid-run would leave it firing into freed memory).
    sim::TimerHandle reoffer_timer;
    /// The connection's RPC channel, owned by its worker_handler frame
    /// (valid exactly while that frame is alive; the handler nulls it in
    /// its EOF block before the slot is recycled). Run dispatches and
    /// stage-ins are issued as calls on it; on EOF or liveness eviction
    /// the channel's pending calls are failed with kPeerClosed/kCancelled,
    /// which replaces the old pending_stages write-off list.
    net::rpc::Channel* rpc = nullptr;
  };

  struct Job {
    JobRecord rec;
    /// Shared with the job-waiter actor: the waiter resumes *inside*
    /// Mpiexec::wait() when the job settles, so the object must outlive
    /// that resumption even though the service has already let go.
    std::shared_ptr<pmi::Mpiexec> mpx;
    std::vector<WorkerId> assigned;
    std::string task_id;  // sequential jobs: the outstanding task id
    sim::TimerHandle timeout;
    bool deadline_passed = false;
    /// Armed between a failed attempt and its delayed requeue; while it is
    /// pending the job is kPending but *not* in queue_.
    sim::TimerHandle retry_timer;
    bool in_backoff = false;
    std::unique_ptr<sim::Gate> settled;  // created lazily by wait_job
    /// Open spans of this job's lifecycle (0 = not traced / not open).
    /// span_job covers submit->settle; the others are phases within it —
    /// see DESIGN.md §8 for the span tree.
    obs::SpanId span_job = 0;      // "job"
    obs::SpanId span_queued = 0;   // "job.queued" (also re-queue waits)
    obs::SpanId span_backoff = 0;  // "job.backoff" (retry engine delay)
    obs::SpanId span_attempt = 0;  // "job.attempt" (placement->settle)
    obs::SpanId span_group = 0;    // "job.group" (claim + dispatch fan-out)
    obs::SpanId span_stage = 0;    // "job.stage" (input staging fan-out)
    obs::SpanId span_run = 0;      // "job.run" (work handed over->outcome)
    /// Restored in kRunning state with its attempt's workers intact; if the
    /// attempt later succeeds it counts as "rescued" (jobs_rescued()).
    bool restored_running = false;
  };

  /// Per-node elastic-allocation state (see set_node_expiry/drain_nodes).
  /// The table is empty unless an allocator drives the elastic API, and
  /// every consumer checks that first — the golden-manifest benches never
  /// touch this code.
  struct NodeElastic {
    /// Pilot-block walltime horizon; -1 = none known.
    sim::Time expires_at = -1;
    bool draining = false;
    /// When still-running jobs get requeued (kWalltimeDrain); -1 = n/a.
    sim::Time drain_at = -1;
    sim::TimerHandle drain_timer;
  };

  /// Per-node eviction/blacklist bookkeeping (see Config::blacklist_after
  /// and Config::blacklist_probation).
  struct NodeHealth {
    int evictions = 0;
    bool banned = false;
    /// Parole time; -1 = permanent (blacklist_probation == 0).
    sim::Time banned_until = -1;
  };

  /// Binds metrics_/m_* to Config::metrics or a private registry.
  void init_metrics();
  /// Restore path (defined in snapshot.cc with the codec): rebuilds every
  /// table, queue, counter, and timer from a parsed snapshot. Only the
  /// recovery constructor calls it, on a freshly constructed service.
  void apply_snapshot(const Snapshot& snap);
  /// Fires once restore_grace after a restore: drops ghost workers that
  /// never redialed, requeueing their jobs with kServiceRestart.
  void reconcile_ghosts();
  /// Adopts a redialing pilot into a ghost slot (heartbeat reconciliation).
  /// `inventory` is the task ids the pilot still has in flight; returns the
  /// adopted worker's id, or 0 if no ghost matches (register as new).
  WorkerId adopt_ghost(os::NodeId node, net::SocketPtr sock,
                       const std::vector<std::string>& inventory);
  /// The machine's tracer, or nullptr when tracing is off.
  obs::Tracer* tracer() const;
  /// Closes any span of `job` that is still open (settle paths).
  void close_job_spans(Job& job);

  sim::Task<void> accept_loop();
  sim::Task<void> worker_handler(net::SocketPtr sock);
  sim::Task<void> dispatch_loop();
  void kick() { kick_ch_->push(0); }

  /// Picks the next dispatchable job per policy, or nullopt.
  std::optional<JobId> choose_job();
  /// Selects and claims `count` ready workers (FCFS or network-aware; when
  /// `spec` names stage_files and data_aware_grouping is on, the window
  /// maximizing resident input bytes wins, ties keep the min-span pick).
  std::vector<WorkerId> claim_workers(std::size_t count, const JobSpec& spec);
  sim::Task<void> place_job(JobId id);
  void job_finished(JobId id, int status, FailureReason reason);
  void deadline_expired(JobId id);
  void check_all_done();

  /// Retry policy engine.
  const RetryPolicy& policy_for(const Job& job) const {
    return job.rec.spec.retry ? *job.rec.spec.retry : config_.retry;
  }
  /// Backoff before retry number `failures` (1-based), jitter included.
  sim::Duration backoff_delay(const RetryPolicy& pol, int failures);
  /// Fires when a backoff timer expires: requeues (or fails, if the
  /// machine shrank below the job's width meanwhile).
  void requeue_job(JobId id);
  /// Terminal-state bookkeeping shared by every settle site.
  void settle_job(Job& job, JobStatus status, FailureReason reason);
  /// kWorkerLost for one-worker jobs, kGangPartnerLost for gangs.
  FailureReason worker_lost_reason(const Job& job) const;
  /// Maps a failed mpiexec run onto the taxonomy.
  FailureReason classify_mpi_failure(const Job& job,
                                     const pmi::Mpiexec& mpx) const;

  /// Graceful degradation: workers that could still serve jobs (connected,
  /// or evicted but able to re-enlist).
  std::size_t potential_capacity() const;
  /// Fails queued/backing-off jobs that were once satisfiable but whose
  /// width now exceeds potential_capacity() forever (kServiceAbort).
  void reap_unsatisfiable();

  /// Elastic machinery: walltime-aware claim gate + drain requeues.
  /// A worker may take `spec` iff its node is not draining and the block's
  /// remaining walltime covers the job's expected runtime.
  bool worker_eligible(const Worker& w, const JobSpec& spec) const;
  std::size_t count_eligible(const JobSpec& spec) const;
  /// FCFS among eligible workers (elastic mode trades the O(1) pop for an
  /// O(ready) scan; elastic pools are far from the 10^6-worker hot path).
  std::vector<WorkerId> claim_eligible(std::size_t count, const JobSpec& spec);
  /// Fires at a node's drain deadline: requeues anything still running
  /// there with kWalltimeDrain before the pilots die.
  void drain_deadline(os::NodeId node);

  /// Liveness machinery (§5 feature 3 taken beyond EOF detection).
  void liveness_check(WorkerId wid);
  void evict_worker(WorkerId wid);
  /// Ban check without side effects (used by const paths).
  bool node_banned(os::NodeId node) const;
  /// Ban check that applies lazy parole when probation has expired.
  bool node_blacklisted(os::NodeId node);
  /// Fires at a ban's parole date: re-enlists a still-connected evicted
  /// worker whose "ready" was refused during probation (it waits silently,
  /// so nothing else would re-offer it).
  void reoffer_worker(WorkerId wid);
  /// Returns claimed-but-never-dispatched workers to the ready pool when a
  /// job settles mid-placement (otherwise they would leak as busy).
  void release_undispatched(const std::vector<WorkerId>& claimed,
                            std::size_t from_idx);

  // --- Input staging (CAS replication planner; see DESIGN.md §11) ---
  /// Digest + size of a shared-fs path, interned on first sight so every
  /// job naming the same path agrees on the blob identity.
  std::pair<StageDigest, std::uint64_t> blob_for(const std::string& path);
  /// Stages spec.stage_files onto the claimed workers' nodes: warm cache
  /// -> zero-byte ack, in-flight (node, digest) -> coalesce on the slot
  /// gate, otherwise plan push vs peer copy and send the 4-arg header.
  /// Awaits every ack (or write-off). Callers must re-check job state
  /// after the co_await, exactly like the dispatch fan-out.
  sim::Task<void> stage_job_inputs(JobId id, int attempt,
                                   const std::vector<WorkerId>& claimed);
  /// Unmatched "staged" ack bookkeeping (acks whose StageReq call was
  /// already written off, or acks from never-registered sockets): commits
  /// residency for tracked workers; decrements the slot count only for
  /// untracked ones (a tracked worker's decrement is owned by its call).
  void handle_staged_ack(WorkerId wid, const net::rpc::StageAck& ack);
  /// Completion of one StageReq call: on success commits residency and
  /// applies the ack's eviction reports; on error (peer closed, evicted)
  /// writes the in-flight transfer off so a later job re-stages. Either
  /// way decrements the slot's remaining count, opening the gate at zero.
  void stage_call_settled(
      os::NodeId node, StageDigest digest,
      net::rpc::Expected<net::rpc::StageAck, net::rpc::RpcError> r);
  /// A sequential task's "done" (matched run-call completion, or a stray
  /// done for a task the service no longer tracks).
  void on_task_done(const net::rpc::TaskDone& done);

  os::Machine* machine_;
  const os::AppRegistry* apps_;
  os::NodeId host_;
  Config config_;
  Hooks hooks_;

  net::Address addr_{};
  std::unique_ptr<net::Listener> listener_;
  std::vector<sim::ActorId> actors_;  // accept, dispatch, handlers, waiters
  std::unique_ptr<sim::Channel<int>> kick_ch_;
  std::unique_ptr<sim::Gate> all_done_;
  bool started_ = false;

  std::uint64_t next_worker_seq_ = 1;
  std::uint64_t next_task_ = 1;
  /// Jobs are append-only (records outlive settles) and JobIds are handed
  /// out densely, so the table *is* the id space; workers recycle slots at
  /// EOF behind generation-checked handles. See core/table.hh.
  DenseTable<Job> jobs_;
  SlotMap<Worker> workers_;
  /// Outstanding sequential tasks. Lookup-only (never iterated), so the
  /// unordered map is deterministic and O(1) on the done-message path.
  std::unordered_map<std::string, JobId> task_to_job_;
  PendingQueue queue_;
  ReadyPool ready_;
  /// In-flight stage-ins, digest-keyed (satellite S2 — replaces the old
  /// path-keyed std::map<std::string, StageOp>).
  StageTable staging_;
  /// Which digests are warm/in-flight per node; feeds the replication
  /// planner (peer candidates) and the data-aware window score.
  ResidencyTable residency_;
  /// path -> (digest, bytes), interned by blob_for. Ordered so snapshot
  /// serialization walks it deterministically.
  std::map<std::string, std::pair<StageDigest, std::uint64_t>> blob_info_;
  std::map<os::NodeId, NodeHealth> node_health_;
  /// Ordered so the checkpoint codec and drain sweeps walk it
  /// deterministically. Empty on every non-elastic run.
  std::map<os::NodeId, NodeElastic> node_elastic_;
  /// Capacity floor while an elastic allocator is attached (0 = none).
  std::size_t elastic_capacity_ = 0;
  sim::Rng retry_rng_;
  std::size_t connected_ = 0;
  /// Workers currently disregarded but able to re-enlist; keeps
  /// potential_capacity() O(1) when blacklisting is off (the hot default),
  /// since reap_unsatisfiable runs on every EOF/eviction.
  std::size_t evicted_live_ = 0;
  /// Most workers ever simultaneously connected — a job whose width once
  /// fit under this was satisfiable at some point (see reap_unsatisfiable).
  std::size_t peak_capacity_ = 0;
  std::size_t running_ = 0;
  /// Jobs waiting out a retry backoff (kPending but not in queue_).
  std::size_t backing_off_ = 0;
  /// Ghost workers from a restore still awaiting reconciliation. The
  /// registration path only looks for ghosts while this is nonzero, so the
  /// normal (never-restored) path pays nothing.
  std::size_t awaiting_ = 0;
  /// Armed by apply_snapshot when ghosts exist; fires reconcile_ghosts.
  sim::TimerHandle reconcile_timer_;
  /// Engine time of the restore (-1 = never restored); fig10's recover
  /// scenario derives MTTR from it.
  sim::Time restored_at_ = -1;

  /// Instruments cached out of the registry at construction (stable
  /// addresses): one pointer-indirect add per event, no name lookups on
  /// the hot path. The registry (metrics_) holds the authoritative values.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_quarantined_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Counter* m_reenlisted_ = nullptr;
  obs::Counter* m_heartbeats_ = nullptr;
  obs::Counter* m_blacklist_rejections_ = nullptr;
  obs::Counter* m_blacklist_paroles_ = nullptr;
  obs::Counter* m_retries_scheduled_ = nullptr;
  obs::Counter* m_restores_ = nullptr;
  obs::Counter* m_reconciled_ = nullptr;
  obs::Counter* m_rescued_ = nullptr;
  obs::Counter* m_ghosts_dropped_ = nullptr;
  obs::Counter* m_stage_requests_ = nullptr;
  obs::Counter* m_stage_pushes_ = nullptr;
  obs::Counter* m_stage_peer_copies_ = nullptr;
  obs::Counter* m_stage_warm_hits_ = nullptr;
  obs::Counter* m_stage_coalesced_ = nullptr;
  obs::Counter* m_stage_acks_lost_ = nullptr;
  obs::Counter* m_stage_evictions_ = nullptr;
  obs::Counter* m_stage_bytes_pushed_ = nullptr;
  obs::Counter* m_stage_bytes_saved_ = nullptr;
  obs::Counter* m_drain_requeues_ = nullptr;
  obs::Counter* m_gate_refusals_ = nullptr;
  std::array<obs::Counter*, kFailureReasonCount> m_failures_{};
  /// Shared instrument block for every worker connection's rpc::Channel;
  /// its counters register through reg() below so they checkpoint too.
  net::rpc::ChannelMetrics rpc_metrics_;
  /// Every counter above by registry name, in registration order — the
  /// checkpoint codec walks this to serialize counter values and restore
  /// assigns through it, so the two sides can never drift apart.
  std::vector<std::pair<std::string, obs::Counter*>> counter_index_;
  obs::Gauge* m_workers_connected_ = nullptr;
  obs::Gauge* m_jobs_running_ = nullptr;
  obs::Histogram* m_queue_wait_ = nullptr;
  obs::Histogram* m_job_wall_ = nullptr;
};

}  // namespace jets::core
