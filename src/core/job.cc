#include "core/job.hh"

#include <sstream>
#include <stdexcept>

namespace jets::core {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(std::move(t));
  return toks;
}

}  // namespace

const char* to_string(FailureReason reason) {
  switch (reason) {
    case FailureReason::kNone: return "none";
    case FailureReason::kAppExit: return "app-exit";
    case FailureReason::kWorkerLost: return "worker-lost";
    case FailureReason::kLivenessEvicted: return "liveness-evicted";
    case FailureReason::kGangPartnerLost: return "gang-partner-lost";
    case FailureReason::kLaunchTimeout: return "launch-timeout";
    case FailureReason::kJobDeadline: return "job-deadline";
    case FailureReason::kServiceAbort: return "service-abort";
    case FailureReason::kServiceRestart: return "service-restart";
    case FailureReason::kWalltimeDrain: return "walltime-drain";
  }
  return "unknown";
}

std::uint64_t record_digest(const JobRecord& rec) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(rec.id);
  mix(static_cast<std::uint64_t>(rec.status));
  mix(static_cast<std::uint64_t>(rec.attempts));
  mix(static_cast<std::uint64_t>(rec.app_failures));
  mix(static_cast<std::uint64_t>(rec.infra_failures));
  mix(static_cast<std::uint64_t>(rec.last_reason));
  mix(static_cast<std::uint64_t>(rec.submitted_at));
  mix(static_cast<std::uint64_t>(rec.started_at));
  mix(static_cast<std::uint64_t>(rec.finished_at));
  for (const AttemptRecord& att : rec.history) {
    mix(static_cast<std::uint64_t>(att.attempt));
    mix(static_cast<std::uint64_t>(att.started_at));
    mix(static_cast<std::uint64_t>(att.ended_at));
    mix(static_cast<std::uint64_t>(att.exit_status));
    mix(static_cast<std::uint64_t>(att.reason));
    mix(static_cast<std::uint64_t>(att.backoff));
  }
  for (net::NodeId node : rec.nodes) mix(static_cast<std::uint64_t>(node));
  return h;
}

std::vector<JobSpec> parse_job_list(const std::string& text, int default_ppn) {
  if (default_ppn < 1) throw std::invalid_argument("ppn must be >= 1");
  std::vector<JobSpec> jobs;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    JobSpec spec;
    spec.ppn = default_ppn;
    bool is_mpi = toks[0] == "MPI:";
    if (!is_mpi && toks[0].rfind("MPI[", 0) == 0 && toks[0].back() == ':') {
      // Per-line options: MPI[ppn=K]:
      const std::string opts = toks[0].substr(4, toks[0].size() - 6);
      if (toks[0][toks[0].size() - 2] != ']' || opts.rfind("ppn=", 0) != 0) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": bad MPI options '" + toks[0] + "'");
      }
      try {
        spec.ppn = std::stoi(opts.substr(4));
      } catch (const std::exception&) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": bad ppn in '" + toks[0] + "'");
      }
      if (spec.ppn < 1) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": ppn must be >= 1");
      }
      is_mpi = true;
    }
    if (is_mpi) {
      if (toks.size() < 3) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": MPI: needs a process count and command");
      }
      spec.kind = JobKind::kMpi;
      try {
        spec.nprocs = std::stoi(toks[1]);
      } catch (const std::exception&) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": bad MPI process count '" + toks[1] + "'");
      }
      if (spec.nprocs < 1) {
        throw std::invalid_argument("line " + std::to_string(lineno) +
                                    ": MPI process count must be >= 1");
      }
      spec.argv.assign(toks.begin() + 2, toks.end());
    } else {
      spec.kind = JobKind::kSequential;
      spec.nprocs = 1;
      spec.ppn = 1;
      spec.argv = std::move(toks);
    }
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

std::string to_line(const JobSpec& spec) {
  std::ostringstream os;
  if (spec.kind == JobKind::kMpi) os << "MPI: " << spec.nprocs << ' ';
  for (std::size_t i = 0; i < spec.argv.size(); ++i) {
    if (i) os << ' ';
    os << spec.argv[i];
  }
  return os.str();
}

}  // namespace jets::core
