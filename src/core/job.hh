// JETS job specifications and the stand-alone input-file format.
//
// The stand-alone `jets` tool consumes a simple text file (paper §5.1):
//
//   MPI: 4 namd2.sh input-1.pdb output-1.log
//   MPI: 8 namd2.sh input-2.pdb output-2.log
//   MPI[ppn=4]: 16 namd2.sh input-3.pdb output-3.log
//   my_serial_tool --flag in.dat
//
// `MPI: n cmd...` runs cmd as an n-process MPI job (the optional
// `[ppn=k]` packs k ranks per worker); bare lines run as single-process
// (Falkon-style) tasks. Hostnames are never specified — JETS binds jobs
// to whichever workers are ready at run time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/time.hh"

namespace jets::core {

using JobId = std::uint64_t;

enum class JobKind { kSequential, kMpi };

/// Why a settled attempt (or a job that never got an attempt) failed. The
/// taxonomy splits *application* failures — the job's own code exited
/// nonzero or hung past the task watchdog — from *infrastructure* failures
/// the job is innocent of, so the retry engine can charge them to separate
/// budgets (see RetryPolicy).
enum class FailureReason : std::uint8_t {
  kNone = 0,          // attempt succeeded
  kAppExit,           // the application exited nonzero (or tripped the
                      // worker-side task watchdog)
  kWorkerLost,        // the worker's connection died (EOF) under the job
  kLivenessEvicted,   // the service's liveness deadline disregarded the
                      // worker (hung pilot, stalled network)
  kGangPartnerLost,   // an MPI gang lost one of its workers/proxies, so
                      // every partner's work was wasted
  kLaunchTimeout,     // the gang never finished wiring up (proxy dial-back
                      // + PMI init) within the launch-phase deadline
  kJobDeadline,       // the job-level timeout expired
  kServiceAbort,      // the service gave up: the machine shrank below the
                      // job's width, or the job was aborted administratively
  kServiceRestart,    // the service itself crashed and was restored from a
                      // checkpoint; the attempt died with it. Never charged
                      // to any retry budget — the job is blameless and the
                      // infrastructure event is the service's own.
  kWalltimeDrain,     // the worker's pilot block hit (or was drained ahead
                      // of) its walltime horizon, or was preempted by the
                      // batch system; the job was requeued intact. Like
                      // kServiceRestart, never charged to any budget and
                      // never a blacklist strike — the allocation boundary
                      // is the site's business, not the job's or node's.
};
inline constexpr std::size_t kFailureReasonCount = 10;

const char* to_string(FailureReason reason);

/// Infrastructure-class failures: not the application's fault, so they can
/// be exempted from the app-failure attempt budget (RetryPolicy).
constexpr bool is_infra_failure(FailureReason r) {
  return r == FailureReason::kWorkerLost ||
         r == FailureReason::kLivenessEvicted ||
         r == FailureReason::kGangPartnerLost ||
         r == FailureReason::kLaunchTimeout ||
         r == FailureReason::kServiceRestart ||
         r == FailureReason::kWalltimeDrain;
}

/// Retry discipline applied when an attempt fails. The service holds the
/// default policy (Service::Config::retry); a JobSpec may override it
/// wholesale. Requeues are *delayed*: each failed attempt schedules an
/// exponential-backoff timer (base * factor^(failures-1), capped at `max`,
/// stretched by up to `jitter` drawn from the service's seeded rng), so a
/// poison job cannot hot-loop at the head of the queue and same-seed runs
/// reproduce identical backoff schedules.
struct RetryPolicy {
  /// Attempt budget. Application failures always consume it; infra-class
  /// failures consume it too unless `infra_exempt` is set.
  int max_attempts = 3;
  /// When true, infra-class failures (see is_infra_failure) do not count
  /// toward max_attempts; they are bounded by max_infra_failures instead.
  bool infra_exempt = false;
  /// Hard cap on infra-class failures per job — a backstop against a job
  /// that keeps landing on dying hardware.
  int max_infra_failures = 64;
  /// First-retry delay; 0 disables backoff (requeue happens immediately,
  /// still through the timer path for deterministic ordering).
  sim::Duration backoff_base = sim::milliseconds(250);
  double backoff_factor = 2.0;
  sim::Duration backoff_max = sim::seconds(30);
  /// Each delay is stretched by a uniform draw in [0, jitter) of itself,
  /// from the service's rng (seeded below) — deterministic, but decorrelates
  /// retry stampedes after a mass eviction.
  double backoff_jitter = 0.25;
  /// Seed for the service's backoff-jitter rng stream.
  std::uint64_t jitter_seed = 2011;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// One attempt of one job, as recorded in JobRecord::history.
struct AttemptRecord {
  int attempt = 0;              // 1-based
  sim::Time started_at = -1;
  sim::Time ended_at = -1;      // -1 while in flight
  int exit_status = 0;
  FailureReason reason = FailureReason::kNone;
  /// Backoff delay scheduled after this attempt failed (0 if none — the
  /// attempt succeeded or the job settled for good).
  sim::Duration backoff = 0;

  friend bool operator==(const AttemptRecord&, const AttemptRecord&) = default;
};

struct JobSpec {
  JobKind kind = JobKind::kSequential;
  /// Total MPI process count (1 for sequential jobs).
  int nprocs = 1;
  /// MPI ranks per worker/proxy ("PPN"); workers_needed() derives from it.
  int ppn = 1;
  std::vector<std::string> argv;
  std::map<std::string, std::string> vars;
  /// 0 = no timeout; otherwise the service aborts the job after this long.
  sim::Duration timeout = 0;
  /// Scheduling priority for the priority/backfill policy (higher first);
  /// ignored by the paper's default FIFO scheduler.
  int priority = 0;
  /// Per-job retry policy; unset means the service default applies.
  std::optional<RetryPolicy> retry;
  /// Input files (shared-filesystem paths) this job needs on each of its
  /// workers' nodes before it runs. The service stages them through the
  /// per-node content-addressed cache: each distinct blob crosses the
  /// fabric to a node at most once, later jobs hit warm cache (§5's
  /// staging feature, generalized from worker start-up to per-job data).
  std::vector<std::string> stage_files;

  /// Caller's estimate of one attempt's runtime; 0 = unknown. Under
  /// elastic allocations the service refuses to place a job on a worker
  /// whose pilot block expires before now + expected_runtime, so work is
  /// never started that the walltime is guaranteed to kill.
  sim::Duration expected_runtime = 0;

  /// Number of workers (pilot slots) this job occupies while running.
  int workers_needed() const {
    if (kind == JobKind::kSequential) return 1;
    return (nprocs + ppn - 1) / ppn;
  }

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Final state of one job as tracked by the service. kQuarantined is the
/// poison-job terminal state: the job's *own* failures exhausted the
/// app-failure budget, so resubmitting it as-is would burn more workers.
enum class JobStatus { kPending, kRunning, kDone, kFailed, kQuarantined };

constexpr bool job_settled(JobStatus s) {
  return s == JobStatus::kDone || s == JobStatus::kFailed ||
         s == JobStatus::kQuarantined;
}

struct JobRecord {
  JobId id = 0;
  JobSpec spec;
  JobStatus status = JobStatus::kPending;
  int attempts = 0;
  /// Attempt-budget accounting, per the taxonomy split.
  int app_failures = 0;
  int infra_failures = 0;
  /// Why the most recent attempt failed — or, once settled, why the job
  /// failed for good (kNone for kDone).
  FailureReason last_reason = FailureReason::kNone;
  /// Every attempt, in order, with its classified failure and the backoff
  /// delay the retry engine scheduled after it.
  std::vector<AttemptRecord> history;
  /// Nodes hosting the last attempt's workers (for locality analyses).
  std::vector<net::NodeId> nodes;
  sim::Time submitted_at = 0;
  sim::Time started_at = -1;   // last attempt's start
  sim::Time finished_at = -1;
  /// Wall time of the successful attempt, seconds.
  double wall_seconds() const {
    if (finished_at < 0 || started_at < 0) return 0.0;
    return sim::to_seconds(finished_at - started_at);
  }

  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// FNV-1a digest of one record's observable schedule: status, attempt and
/// failure accounting, the placement's nodes, and every timestamp. Golden
/// state hashes for determinism checks — two same-seed runs must produce
/// identical digests job for job (tests/scale_test.cc folds them into one
/// run hash).
std::uint64_t record_digest(const JobRecord& rec);

/// Parses the stand-alone input format. Blank lines and '#' comments are
/// skipped. Throws std::invalid_argument on malformed lines.
std::vector<JobSpec> parse_job_list(const std::string& text, int default_ppn = 1);

/// Renders a spec back to its input-file line (round-trips parse output).
std::string to_line(const JobSpec& spec);

}  // namespace jets::core
