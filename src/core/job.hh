// JETS job specifications and the stand-alone input-file format.
//
// The stand-alone `jets` tool consumes a simple text file (paper §5.1):
//
//   MPI: 4 namd2.sh input-1.pdb output-1.log
//   MPI: 8 namd2.sh input-2.pdb output-2.log
//   MPI[ppn=4]: 16 namd2.sh input-3.pdb output-3.log
//   my_serial_tool --flag in.dat
//
// `MPI: n cmd...` runs cmd as an n-process MPI job (the optional
// `[ppn=k]` packs k ranks per worker); bare lines run as single-process
// (Falkon-style) tasks. Hostnames are never specified — JETS binds jobs
// to whichever workers are ready at run time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/time.hh"

namespace jets::core {

using JobId = std::uint64_t;

enum class JobKind { kSequential, kMpi };

struct JobSpec {
  JobKind kind = JobKind::kSequential;
  /// Total MPI process count (1 for sequential jobs).
  int nprocs = 1;
  /// MPI ranks per worker/proxy ("PPN"); workers_needed() derives from it.
  int ppn = 1;
  std::vector<std::string> argv;
  std::map<std::string, std::string> vars;
  /// 0 = no timeout; otherwise the service aborts the job after this long.
  sim::Duration timeout = 0;
  /// Scheduling priority for the priority/backfill policy (higher first);
  /// ignored by the paper's default FIFO scheduler.
  int priority = 0;

  /// Number of workers (pilot slots) this job occupies while running.
  int workers_needed() const {
    if (kind == JobKind::kSequential) return 1;
    return (nprocs + ppn - 1) / ppn;
  }
};

/// Final state of one job as tracked by the service.
enum class JobStatus { kPending, kRunning, kDone, kFailed };

struct JobRecord {
  JobId id = 0;
  JobSpec spec;
  JobStatus status = JobStatus::kPending;
  int attempts = 0;
  /// Nodes hosting the last attempt's workers (for locality analyses).
  std::vector<net::NodeId> nodes;
  sim::Time submitted_at = 0;
  sim::Time started_at = -1;   // last attempt's start
  sim::Time finished_at = -1;
  /// Wall time of the successful attempt, seconds.
  double wall_seconds() const {
    if (finished_at < 0 || started_at < 0) return 0.0;
    return sim::to_seconds(finished_at - started_at);
  }
};

/// Parses the stand-alone input format. Blank lines and '#' comments are
/// skipped. Throws std::invalid_argument on malformed lines.
std::vector<JobSpec> parse_job_list(const std::string& text, int default_ppn = 1);

/// Renders a spec back to its input-file line (round-trips parse output).
std::string to_line(const JobSpec& spec);

}  // namespace jets::core
