#include "core/service.hh"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "net/staging.hh"
#include "obs/tracer.hh"
#include "os/cas.hh"

namespace jets::core {

namespace {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kPending: return "pending";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

}  // namespace

Service::Service(os::Machine& machine, const os::AppRegistry& apps,
                 os::NodeId host, Config config)
    : machine_(&machine), apps_(&apps), host_(host), config_(config),
      retry_rng_(sim::Rng(config.retry.jitter_seed).fork("retry")) {
  kick_ch_ = std::make_unique<sim::Channel<int>>(machine.engine());
  all_done_ = std::make_unique<sim::Gate>(machine.engine());
  ready_.set_indexed(config_.network_aware_grouping);
  queue_.set_buckets(config_.policy == SchedPolicy::kPriorityBackfill);
  init_metrics();
}

void Service::init_metrics() {
  if (config_.metrics) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  obs::MetricsRegistry& m = *metrics_;
  // reg() feeds counter_index_ as a side effect: the checkpoint codec
  // serializes counters by walking the index, and restore assigns back
  // through it, so adding a counter here automatically checkpoints it.
  const auto reg = [this, &m](const char* name) {
    obs::Counter* c = &m.counter(name);
    counter_index_.emplace_back(name, c);
    return c;
  };
  m_completed_ = reg("jets.service.jobs.completed");
  m_failed_ = reg("jets.service.jobs.failed");
  m_quarantined_ = reg("jets.service.jobs.quarantined");
  m_evicted_ = reg("jets.service.workers.evicted");
  m_reenlisted_ = reg("jets.service.workers.reenlisted");
  m_heartbeats_ = reg("jets.service.workers.heartbeats");
  m_blacklist_rejections_ = reg("jets.service.blacklist.rejections");
  m_blacklist_paroles_ = reg("jets.service.blacklist.paroles");
  m_retries_scheduled_ = reg("jets.service.retry.scheduled");
  m_restores_ = reg("jets.service.restore.count");
  m_reconciled_ = reg("jets.service.restore.workers_reconciled");
  m_rescued_ = reg("jets.service.restore.jobs_rescued");
  m_ghosts_dropped_ = reg("jets.service.restore.ghosts_dropped");
  m_stage_requests_ = reg("jets.service.staging.requests");
  m_stage_pushes_ = reg("jets.service.staging.pushes");
  m_stage_peer_copies_ = reg("jets.service.staging.peer_copies");
  m_stage_warm_hits_ = reg("jets.service.staging.warm_hits");
  m_stage_coalesced_ = reg("jets.service.staging.coalesced");
  m_stage_acks_lost_ = reg("jets.service.staging.acks_lost");
  m_stage_evictions_ = reg("jets.service.staging.evictions");
  m_stage_bytes_pushed_ = reg("jets.service.staging.bytes_pushed");
  m_stage_bytes_saved_ = reg("jets.service.staging.bytes_saved");
  m_drain_requeues_ = reg("jets.service.elastic.drain_requeues");
  m_gate_refusals_ = reg("jets.service.elastic.gate_refusals");
  rpc_metrics_.calls = reg("jets.rpc.calls");
  rpc_metrics_.notifies = reg("jets.rpc.notifies");
  rpc_metrics_.completed = reg("jets.rpc.completed");
  rpc_metrics_.timeouts = reg("jets.rpc.timeouts");
  rpc_metrics_.peer_closed = reg("jets.rpc.peer_closed");
  rpc_metrics_.cancelled = reg("jets.rpc.cancelled");
  rpc_metrics_.orphans = reg("jets.rpc.orphans");
  rpc_metrics_.decode_errors = reg("jets.rpc.decode_errors");
  rpc_metrics_.unknown_tags = reg("jets.rpc.unknown_tags");
  rpc_metrics_.inflight = &m.gauge("jets.rpc.inflight");
  for (std::size_t i = 0; i < kFailureReasonCount; ++i) {
    m_failures_[i] = reg((std::string("jets.service.failures.") +
                          to_string(static_cast<FailureReason>(i)))
                             .c_str());
  }
  m_workers_connected_ = &m.gauge("jets.service.workers.connected");
  m_jobs_running_ = &m.gauge("jets.service.jobs.running");
  m_queue_wait_ = &m.histogram("jets.service.queue_wait_ns");
  m_job_wall_ = &m.histogram("jets.service.job_wall_ns");
}

obs::Tracer* Service::tracer() const { return machine_->tracer(); }

void Service::close_job_spans(Job& job) {
  obs::Tracer* tr = tracer();
  if (!tr) return;
  tr->end_and_clear(job.span_run);
  tr->end_and_clear(job.span_stage);
  tr->end_and_clear(job.span_group);
  tr->end_and_clear(job.span_attempt);
  tr->end_and_clear(job.span_queued);
  tr->end_and_clear(job.span_backoff);
}

Service::Service(os::Machine& machine, const os::AppRegistry& apps,
                 os::NodeId host)
    : Service(machine, apps, host, Config{}) {}

Service::~Service() {
  for (sim::ActorId id : actors_) machine_->engine().kill(id);
  // Timer audit: every service-owned engine callback captures `this`, so a
  // service destroyed mid-run (the crash-and-recover path, or a test
  // tearing down early) must disarm them all — job deadline/backoff timers,
  // worker liveness timers, blacklist-parole re-offers, and the restore
  // reaper. Each cancel is generation-checked, so already-fired or
  // never-armed handles are no-ops.
  jobs_.for_each([](JobId, Job& job) {
    job.timeout.cancel();
    job.retry_timer.cancel();
  });
  workers_.for_each([](WorkerId, Worker& w) {
    w.liveness_timer.cancel();
    w.reoffer_timer.cancel();
  });
  for (auto& [node, elastic] : node_elastic_) elastic.drain_timer.cancel();
  reconcile_timer_.cancel();
}

void Service::start() {
  if (started_) return;
  started_ = true;
  // A snapshot-restored service rebinds the *checkpointed* address so
  // surviving pilots redialing their configured service endpoint land here.
  if (addr_.port == 0) addr_ = net::Address{host_, machine_->allocate_port()};
  listener_ = machine_->network().listen(addr_);
  actors_.push_back(machine_->engine().spawn("jets-accept", accept_loop()));
  actors_.push_back(machine_->engine().spawn("jets-dispatch", dispatch_loop()));
  // Jobs restored (or submitted) before start() are already queued; give
  // the dispatch loop its first kick so they are not stranded until the
  // next worker event.
  if (!queue_.empty()) kick();
}

JobId Service::submit(JobSpec spec) {
  if (spec.argv.empty()) throw std::invalid_argument("job with empty argv");
  Job job;
  job.rec.spec = std::move(spec);
  job.rec.submitted_at = machine_->engine().now();
  const JobId id = jobs_.push_back(std::move(job));
  Job& j = jobs_.back();
  j.rec.id = id;
  queue_.push_back(id, j.rec.spec.priority,
                   static_cast<std::uint32_t>(j.rec.spec.workers_needed()));
  all_done_->close();
  if (obs::Tracer* tr = tracer()) {
    j.span_job = tr->begin("job", obs::track_job(id));
    tr->attr(j.span_job, "kind",
             j.rec.spec.kind == JobKind::kMpi ? "mpi" : "seq");
    tr->attr(j.span_job, "nprocs",
             static_cast<std::int64_t>(j.rec.spec.nprocs));
    if (j.rec.spec.priority != 0) {
      tr->attr(j.span_job, "priority",
               static_cast<std::int64_t>(j.rec.spec.priority));
    }
    j.span_queued = tr->begin("job.queued", obs::track_job(id), j.span_job);
  }
  // The job's timeout is a deadline measured from submission: it covers
  // queue time too, so a job that can never be placed (e.g. wider than the
  // allocation) still settles.
  const sim::Duration timeout = j.rec.spec.timeout > 0
                                    ? j.rec.spec.timeout
                                    : config_.default_job_timeout;
  if (timeout > 0) {
    j.timeout = machine_->engine().call_in(
        timeout, [this, id] { deadline_expired(id); });
  }
  if (started_) kick();
  return id;
}

void Service::deadline_expired(JobId id) {
  Job* jp = jobs_.find(id);
  if (!jp) return;
  Job& job = *jp;
  job.deadline_passed = true;
  if (job.rec.status == JobStatus::kPending) {
    // Covers queued jobs *and* jobs waiting out a retry backoff (whose
    // pending requeue settle_job cancels).
    queue_.erase(id);
    m_failures_[static_cast<std::size_t>(FailureReason::kJobDeadline)]->inc();
    settle_job(job, JobStatus::kFailed, FailureReason::kJobDeadline);
    kick();
    check_all_done();
  } else if (job.rec.status == JobStatus::kRunning) {
    if (job.mpx) {
      job.mpx->abort("job deadline");  // its waiter finishes the job
    } else {
      // Best-effort kills, then settle the job *now*. Relying on the
      // worker's done/ready cycle is not enough: if the deadline fires
      // while the run message is still being dispatched, the kill would
      // refer to a task the worker has never heard of and the job would
      // hang forever in kRunning.
      for (WorkerId wid : job.assigned) {
        Worker* w = workers_.find(wid);
        if (w && w->connected && w->sock && w->rpc) {
          (void)w->rpc->notify(net::rpc::KillReq{w->task_id});
        }
      }
      job_finished(id, /*status=*/124, FailureReason::kJobDeadline);
    }
  }
}

std::vector<JobId> Service::submit_batch(const std::vector<JobSpec>& specs) {
  std::vector<JobId> ids;
  ids.reserve(specs.size());
  for (const JobSpec& s : specs) ids.push_back(submit(s));
  return ids;
}

sim::Task<void> Service::wait_all() {
  check_all_done();
  co_await all_done_->wait();
}

sim::Task<void> Service::wait_job(JobId id) {
  Job* jp = jobs_.find(id);
  if (!jp) co_return;
  Job& job = *jp;
  if (job_settled(job.rec.status)) co_return;
  if (!job.settled) job.settled = std::make_unique<sim::Gate>(machine_->engine());
  co_await job.settled->wait();
}

std::vector<JobRecord> Service::records() const {
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  jobs_.for_each([&](JobId, const Job& job) { out.push_back(job.rec); });
  return out;
}

std::size_t Service::ready_workers() const { return ready_.size(); }

sim::Task<void> Service::stage_to_workers(const std::string& path) {
  auto size = machine_->shared_fs().size(path);
  if (!size) throw std::invalid_argument("stage_to_workers: no such file " + path);
  // The service itself reads the file once from the shared filesystem,
  // then fans it out over the persistent worker connections. This is the
  // legacy broadcast path (Coasters-style pre-staging): the wire format —
  // bare path, full payload per worker — is frozen; dedup'd per-job
  // staging goes through stage_job_inputs instead.
  co_await machine_->shared_fs().read(path);
  const auto [digest, bytes] = blob_for(path);
  const StageTable::Slot slot =
      staging_.intern(digest, path, machine_->engine());
  staging_.gate(slot).close();
  // Handles recycle worker slots, so slot order is not registration order;
  // the fan-out must stay in registration order (it fixes the wire
  // serialization sequence), hence the sort by seq.
  std::vector<std::pair<std::uint64_t, WorkerId>> targets;
  workers_.for_each([&](WorkerId wid, const Worker& w) {
    if (w.connected && w.sock && w.rpc) targets.emplace_back(w.seq, wid);
  });
  std::sort(targets.begin(), targets.end());
  for (const auto& [seq, wid] : targets) {
    Worker& w = workers_.at(wid);
    ++staging_.remaining(slot);
    net::rpc::StageReq req;
    req.header.path = path;
    req.header.bytes = *size;
    req.legacy = true;
    req.payload = *size;
    const auto sent = w.rpc->call_cb<net::rpc::StageReq>(
        req, [this, node = w.node, digest](auto r) {
          stage_call_settled(node, digest, std::move(r));
        });
    if (!sent.ok()) {  // raced a close: write the pair off immediately
      stage_call_settled(w.node, digest,
                         net::rpc::Unexpected{net::rpc::RpcError::kPeerClosed});
    }
  }
  if (staging_.remaining(slot) == 0) {
    staging_.gate(slot).open();
    co_return;
  }
  co_await staging_.gate(slot).wait();
}

// --- Input staging (CAS replication planner) ---------------------------------

std::pair<StageDigest, std::uint64_t> Service::blob_for(
    const std::string& path) {
  auto it = blob_info_.find(path);
  if (it != blob_info_.end()) return it->second;
  const auto size = machine_->shared_fs().size(path);
  if (!size) throw std::invalid_argument("stage_files: no such file " + path);
  const auto info = std::make_pair(os::cas_digest(path, *size), *size);
  blob_info_.emplace(path, info);
  return info;
}

sim::Task<void> Service::stage_job_inputs(
    JobId id, int attempt, const std::vector<WorkerId>& claimed) {
  Job& job = jobs_.at(id);
  const JobSpec& spec = job.rec.spec;
  if (obs::Tracer* tr = tracer()) {
    job.span_stage = tr->begin("job.stage", obs::track_job(id),
                               job.span_attempt);
  }
  // Each node needs each blob once, whatever the job's ppn packs onto it:
  // dedup the claimed workers to one representative per node, keeping
  // claim order so the wire sequence is deterministic.
  std::vector<std::pair<os::NodeId, WorkerId>> nodes;
  for (WorkerId wid : claimed) {
    const os::NodeId node = workers_.at(wid).node;
    bool seen = false;
    for (const auto& [n, rep] : nodes) {
      if (n == node) {
        seen = true;
        break;
      }
    }
    if (!seen) nodes.emplace_back(node, wid);
  }
  std::vector<StageTable::Slot> waits;
  for (const std::string& path : spec.stage_files) {
    const auto [digest, bytes] = blob_for(path);
    const StageTable::Slot slot =
        staging_.intern(digest, path, machine_->engine());
    // The service reads a blob from the shared filesystem at most once per
    // fan-out, and only if at least one node actually needs the bytes.
    bool read_done = false;
    for (const auto& [node, rep] : nodes) {
      m_stage_requests_->inc();
      net::StageHeader h;
      h.path = path;
      h.digest = digest;
      h.bytes = bytes;
      std::uint64_t payload = 0;
      if (config_.staging_cache && residency_.contains(node, digest)) {
        // Warm cache: zero-byte probe, acked by a cache touch. The ack
        // round trip keeps residency honest (a racing eviction report
        // makes the worker fall back to a pull).
        h.source = net::StageHeader::Source::kWarm;
        m_stage_warm_hits_->inc();
        m_stage_bytes_saved_->inc(bytes);
      } else if (config_.staging_cache && residency_.pending(node, digest)) {
        // Already on the wire to this node (another job's fan-out):
        // piggyback on that transfer instead of sending anything.
        m_stage_coalesced_->inc();
        m_stage_bytes_saved_->inc(bytes);
        waits.push_back(slot);
        continue;
      } else {
        const net::StagePlan plan =
            config_.staging_cache
                ? net::plan_transfer(machine_->network().fabric(), host_,
                                     node, residency_.holders(digest), bytes)
                : net::StagePlan{};  // ablation baseline: always push
        if (plan.use_peer) {
          // A peer node in the fabric already holds the digest: have the
          // target copy from it; the service sends only the header.
          h.source = net::StageHeader::Source::kPeer;
          h.peer = plan.peer;
          m_stage_peer_copies_->inc();
        } else {
          h.source = net::StageHeader::Source::kPush;
          payload = bytes;
          m_stage_pushes_->inc();
          m_stage_bytes_pushed_->inc(bytes);
          if (!read_done) {
            read_done = true;
            co_await machine_->shared_fs().read(path);
            // The read suspended us: the job (or the target) may be gone.
            if (job.rec.status != JobStatus::kRunning ||
                job.rec.attempts != attempt) {
              break;  // caller re-checks and releases the claim
            }
          }
        }
        residency_.mark_pending(node, digest);
      }
      Worker* w = workers_.find(rep);
      if (!w || !w->connected || !w->sock || !w->rpc) {
        // The representative died while we were reading: write the pair
        // off — the attempt is about to fail through the worker-lost path.
        residency_.clear_pending(node, digest);
        continue;
      }
      ++staging_.remaining(slot);
      staging_.gate(slot).close();
      net::rpc::StageReq req;
      req.header = h;
      req.payload = payload;
      const auto sent = w->rpc->call_cb<net::rpc::StageReq>(
          req, [this, node = node, digest](auto r) {
            stage_call_settled(node, digest, std::move(r));
          });
      if (!sent.ok()) {  // raced a close: write the pair off immediately
        stage_call_settled(node, digest,
                           net::rpc::Unexpected{net::rpc::RpcError::kPeerClosed});
      }
      waits.push_back(slot);
    }
    if (job.rec.status != JobStatus::kRunning || job.rec.attempts != attempt) {
      break;
    }
  }
  // Await every touched slot once (sorted + dedup'd for a deterministic
  // wait order). Gates open when their remaining count drains — by acks,
  // or by write-offs when a stage target dies (the channel drain settles
  // its StageReq calls with kPeerClosed/kCancelled); a
  // dead *claimed* worker also fails the attempt, which the status check
  // below and the caller both observe.
  std::sort(waits.begin(), waits.end());
  waits.erase(std::unique(waits.begin(), waits.end()), waits.end());
  for (const StageTable::Slot slot : waits) {
    co_await staging_.gate(slot).wait();
    if (job.rec.status != JobStatus::kRunning || job.rec.attempts != attempt) {
      break;  // settled mid-stage: stop waiting, the caller cleans up
    }
  }
  if (obs::Tracer* tr = tracer()) tr->end_and_clear(job.span_stage);
}

void Service::handle_staged_ack(WorkerId wid, const net::rpc::StageAck& ack) {
  Worker* w = workers_.find(wid);
  StageDigest digest = ack.digest;
  if (digest != 0) {
    if (w) {
      // The blob is on the node now — even a late ack from an evicted
      // worker makes that true, so commit unconditionally.
      residency_.commit(w->node, digest);
      // Evictions the worker's CAS performed to make room travel on the
      // ack; apply them so the planner never trusts a stale peer.
      for (const os::CasDigest evicted : ack.evictions) {
        residency_.remove(w->node, evicted);
        m_stage_evictions_->inc();
      }
    }
  } else {
    // Legacy bare-path ack (stage_to_workers broadcast).
    const auto it = blob_info_.find(ack.path);
    if (it == blob_info_.end()) return;
    digest = it->second.first;
  }
  // A tracked worker's decrement belongs to its StageReq call (which
  // completed, or was written off at eviction/EOF — then this late ack
  // must not double-decrement). Untracked sockets keep the historical
  // unconditional decrement.
  if (w) return;
  const StageTable::Slot slot = staging_.find(digest);
  if (slot == StageTable::kNone) return;
  std::uint32_t& rem = staging_.remaining(slot);
  if (rem > 0 && --rem == 0) staging_.gate(slot).open();
}

void Service::stage_call_settled(
    os::NodeId node, StageDigest digest,
    net::rpc::Expected<net::rpc::StageAck, net::rpc::RpcError> r) {
  if (r.ok()) {
    const net::rpc::StageAck& ack = r.value();
    if (ack.digest != 0) {
      // The blob is on the node now; commit before opening the gate so
      // the planner can offer this node as a peer immediately.
      residency_.commit(node, ack.digest);
      for (const os::CasDigest evicted : ack.evictions) {
        residency_.remove(node, evicted);
        m_stage_evictions_->inc();
      }
    }
  } else {
    // The ack will never come (EOF drain, eviction write-off): forget the
    // in-flight transfer so a later job re-stages (satellite S1).
    residency_.clear_pending(node, digest);
    m_stage_acks_lost_->inc();
  }
  const StageTable::Slot slot = staging_.find(digest);
  if (slot == StageTable::kNone) return;
  std::uint32_t& rem = staging_.remaining(slot);
  if (rem > 0 && --rem == 0) staging_.gate(slot).open();
}

void Service::on_task_done(const net::rpc::TaskDone& done) {
  const auto tit = task_to_job_.find(done.task_id);
  if (tit == task_to_job_.end()) return;
  const JobId jid = tit->second;
  task_to_job_.erase(tit);
  // The worker's exit-reason token ("app"/"watchdog"/"killed", see
  // worker.hh) all classify as the application's own failure: the
  // watchdog kill (124) means the *app* hung, and service-requested
  // kills only reach here for tasks the service no longer tracks.
  job_finished(jid, done.status,
               done.status == 0 ? FailureReason::kNone
                                : FailureReason::kAppExit);
}

void Service::check_all_done() {
  if (!queue_.empty() || running_ != 0 || backing_off_ != 0) return;
  if (m_completed_->value + m_failed_->value + m_quarantined_->value ==
      jobs_.size()) {
    all_done_->open();
  }
}

// --- Worker side -------------------------------------------------------------

sim::Task<void> Service::accept_loop() {
  for (;;) {
    net::SocketPtr sock = co_await listener_->accept();
    if (!sock) co_return;
    actors_.push_back(machine_->engine().spawn(
        "jets-worker-conn", worker_handler(std::move(sock))));
  }
}

sim::Task<void> Service::worker_handler(net::SocketPtr sock) {
  WorkerId wid = 0;
  net::rpc::Channel::Config cfg;
  cfg.metrics = &rpc_metrics_;
  // The channel must not drain pending calls at EOF on its own: the
  // disconnect bookkeeping below writes them off at the exact point the
  // pre-RPC code did, keeping the event schedule byte-identical.
  cfg.manual_drain = true;
  net::rpc::Channel ch(machine_->engine(), sock, cfg);
  ch.set_on_message([this, &wid] {
    if (wid != 0) workers_.at(wid).last_heard = machine_->engine().now();
  });
  ch.on<net::rpc::RegisterReq>([this, &wid, &ch,
                                &sock](net::rpc::RegisterReq&& reg) {
    if (node_blacklisted(reg.node)) {
      m_blacklist_rejections_->inc();
      sock->close();
      ch.stop();  // refuse the node outright
      return;
    }
    // Heartbeat reconciliation after a restore: while ghost workers are
    // awaiting their pilots, a redialing pilot (its reg carries the task
    // ids it still has in flight, see worker.cc) reclaims its
    // checkpointed slot instead of registering as new. The awaiting_
    // guard keeps this off the never-restored hot path entirely.
    if (awaiting_ > 0) {
      wid = adopt_ghost(reg.node, sock, reg.inventory);
      if (wid != 0) {
        workers_.at(wid).rpc = &ch;
        return;
      }
    }
    Worker w;
    w.seq = next_worker_seq_++;
    w.node = reg.node;
    w.sock = sock;
    w.connected = true;
    w.last_heard = machine_->engine().now();
    wid = workers_.insert(std::move(w));
    workers_.at(wid).id = wid;
    workers_.at(wid).rpc = &ch;
    ++connected_;
    m_workers_connected_->set(static_cast<std::int64_t>(connected_));
    peak_capacity_ = std::max(peak_capacity_, connected_);
  });
  ch.on<net::rpc::PingNote>([this, &wid](net::rpc::PingNote&&) {
    if (wid != 0) m_heartbeats_->inc();  // last_heard refreshed above
  });
  ch.on<net::rpc::ReadyNote>([this, &wid](net::rpc::ReadyNote&&) {
    if (wid == 0) return;
    Worker& w = workers_.at(wid);
    w.liveness_timer.cancel();
    if (w.busy && w.job != 0) {
      // "ready" while the service still counts this worker's sequential
      // task as running means the done never arrived — it was sent into a
      // service outage and dropped. Fail the attempt (blameless:
      // kServiceRestart) so the job retries instead of leaking in
      // kRunning forever. Unreachable in normal runs: done always
      // precedes ready and settles or requeues the job first. MPI gangs
      // are excluded (a proxy's exit legitimately sends ready while the
      // gang job still runs; mpiexec owns that outcome) — their
      // job.task_id is always empty.
      Job* j = jobs_.find(w.job);
      if (j && j->rec.status == JobStatus::kRunning &&
          !j->task_id.empty() && j->task_id == w.task_id) {
        job_finished(w.job, /*status=*/1, FailureReason::kServiceRestart);
      }
    }
    w.busy = false;
    w.job = 0;
    w.task_id.clear();
    if (w.evicted) {
      // A disregarded worker came back (hang released, stall drained).
      // Unless its node has been blacklisted, give it another chance.
      if (node_blacklisted(w.node)) {
        m_blacklist_rejections_->inc();
        // The refused worker now waits silently for work, so if the ban
        // has a parole date, check back then and re-offer it ourselves.
        const auto ht = node_health_.find(w.node);
        if (ht != node_health_.end() && ht->second.banned &&
            ht->second.banned_until >= 0) {
          // Tracked in the worker so the destructor (and a repeat refusal)
          // can disarm it — an untracked `this` capture here was the one
          // timer a mid-run service teardown could not cancel.
          w.reoffer_timer.cancel();
          w.reoffer_timer = machine_->engine().call_at(
              ht->second.banned_until, [this, wid] { reoffer_worker(wid); });
        }
        return;
      }
      w.evicted = false;
      --evicted_live_;
      w.connected = true;
      ++connected_;
      m_workers_connected_->set(static_cast<std::int64_t>(connected_));
      peak_capacity_ = std::max(peak_capacity_, connected_);
      m_reenlisted_->inc();
    }
    ready_.push_back(wid, w.node);
    kick();
  });
  // Acks whose StageReq call already settled (written off at eviction or
  // sent on an untracked socket) fall through to this unmatched handler.
  ch.on<net::rpc::StageAck>([this, &wid](net::rpc::StageAck&& ack) {
    handle_staged_ack(wid, ack);
  });
  ch.on<net::rpc::TaskDone>([this, &wid](net::rpc::TaskDone&& done) {
    // Unmatched dones: MPI proxy exits (mpiexec owns their outcome — the
    // on_task_done lookup misses) and tasks the service no longer tracks.
    if (wid != 0) on_task_done(done);
  });
  co_await ch.serve();
  // Worker gone (allocation expired, node fault, kill): disregard it.
  if (wid != 0) {
    Worker* w = workers_.find(wid);
    if (!w) co_return;
    w->liveness_timer.cancel();
    // If the run call is still pending, the fail_all() drain below counts
    // its kPeerClosed; a lost task with no tracked call (MPI gang member,
    // restored ghost) is counted here so every lost run shows up once in
    // jets.rpc.peer_closed.
    const bool run_call_pending =
        w->rpc && !w->task_id.empty() &&
        w->rpc->has_pending(net::rpc::TaskDone::kTag, w->task_id);
    if (w->connected) {
      w->connected = false;
      --connected_;
      m_workers_connected_->set(static_cast<std::int64_t>(connected_));
      ready_.erase(wid, w->node);
      if (w->busy && w->job != 0) {
        // Its task cannot finish; fail the attempt so the job can retry on
        // other workers ("minimizing their impact", §5 feature 3).
        const JobId jid = w->job;
        Job* j = jobs_.find(jid);
        if (j) {
          if (!run_call_pending) rpc_metrics_.peer_closed->inc();
          job_finished(jid, /*status=*/1, worker_lost_reason(*j));
        }
      }
    }
    // A worker already evicted for liveness needs no further bookkeeping;
    // with the connection truly gone it can never re-enlist, so its slot
    // is recycled — every outstanding handle to it fails the generation
    // check from here on (timers, reoffer callbacks, stale claims).
    if (w->evicted) --evicted_live_;
    // Unacked calls die with the connection: drain them (stage write-offs
    // land in stage_call_settled, the run call's error is counted) before
    // the slot is recycled, or their completion gates would hang forever.
    if (w->rpc) {
      w->rpc->fail_all(net::rpc::RpcError::kPeerClosed);
      w->rpc = nullptr;
    }
    workers_.erase(wid);
    // This slot is gone for good — a queued wide job may now be doomed.
    reap_unsatisfiable();
  }
}

// --- Scheduling --------------------------------------------------------------

std::optional<JobId> Service::choose_job() {
  if (queue_.empty()) return std::nullopt;
  if (config_.policy == SchedPolicy::kFifo) {
    // Width is cached in the queue entry: the FIFO head check never
    // touches the job table.
    const auto needed = static_cast<std::size_t>(queue_.front_width());
    if (ready_.size() < needed) return std::nullopt;  // head-of-line blocks
    const JobId head = queue_.front();
    if (!node_elastic_.empty() &&
        count_eligible(jobs_.at(head).rec.spec) < needed) {
      // Enough raw workers, but not enough whose pilot blocks outlive the
      // job's expected runtime: the walltime gate refuses the placement.
      m_gate_refusals_->inc();
      return std::nullopt;
    }
    queue_.pop_front();
    return head;
  }
  // Priority + backfill: the first job in (priority desc, FIFO) order whose
  // worker demand fits the currently ready pool. The queue's bucket index
  // yields that order directly — no per-kick sort of the backlog.
  return queue_.pop_first_fit([this](JobId id, std::uint32_t width) {
    const auto needed = static_cast<std::size_t>(width);
    if (ready_.size() < needed) return false;
    if (node_elastic_.empty()) return true;
    if (count_eligible(jobs_.at(id).rec.spec) < needed) {
      m_gate_refusals_->inc();
      return false;
    }
    return true;
  });
}

std::vector<Service::WorkerId> Service::claim_workers(std::size_t count,
                                                      const JobSpec& spec) {
  std::vector<WorkerId> claimed;
  if (!node_elastic_.empty()) {
    // Elastic mode: FCFS among workers whose blocks are neither draining
    // nor expiring before the job's expected runtime completes.
    claimed = claim_eligible(count, spec);
  } else if (!config_.network_aware_grouping || count <= 1) {
    // Paper default: first come, first served (§6.1.4).
    claimed.reserve(count);
    while (claimed.size() < count && !ready_.empty()) {
      const WorkerId wid = ready_.front();
      ready_.erase_front(workers_.at(wid).node);
      claimed.push_back(wid);
    }
  } else if (config_.data_aware_grouping && !spec.stage_files.empty()) {
    // Data-aware refinement: among width-feasible windows, prefer the one
    // whose nodes already hold (or are receiving) the most input bytes —
    // warm cache beats short hops. Ties fall back to the min-span pick,
    // so a cold cache (every score 0) reproduces claim_min_span exactly:
    // that is what keeps cold runs byte-identical to the golden manifest.
    std::vector<std::pair<StageDigest, std::uint64_t>> wanted;
    wanted.reserve(spec.stage_files.size());
    for (const std::string& path : spec.stage_files) {
      // Lookup only: a path never staged anywhere scores 0 on every node,
      // so interning it here would change nothing but state.
      const auto it = blob_info_.find(path);
      if (it != blob_info_.end()) wanted.push_back(it->second);
    }
    claimed = ready_.claim_best(count, [&](const auto* win, std::size_t n) {
      std::uint64_t total = 0;
      for (std::size_t i = 0; i < n; ++i) {
        // The window is node-sorted; count each distinct node once.
        if (i > 0 && win[i].node == win[i - 1].node) continue;
        total += residency_.resident_bytes(win[i].node, wanted);
      }
      return total;
    });
  } else {
    // §7 extension: pick the window of ready workers with the smallest
    // node-id span (node ids are laid out along the torus, so a small span
    // means fewer hops between the job's processes). The pool keeps its
    // node-sorted mirror up to date, so this is a single window scan.
    claimed = ready_.claim_min_span(count);
  }
  for (WorkerId wid : claimed) workers_.at(wid).busy = true;
  return claimed;
}

sim::Task<void> Service::dispatch_loop() {
  for (;;) {
    auto signal = co_await kick_ch_->recv();
    if (!signal) co_return;
    for (;;) {
      std::optional<JobId> pick = choose_job();
      if (!pick) break;
      co_await place_job(*pick);
    }
  }
}

sim::Task<void> Service::place_job(JobId id) {
  // Safe to hold across co_await: the job table is append-only and
  // deque-backed, so growth never moves this Job.
  Job& job = jobs_.at(id);
  const JobSpec& spec = job.rec.spec;
  const auto needed = static_cast<std::size_t>(spec.workers_needed());
  job.assigned = claim_workers(needed, spec);
  // Local copy: job.assigned is cleared if the job settles (eviction,
  // deadline) while this coroutine is suspended in a dispatch delay.
  const std::vector<WorkerId> claimed = job.assigned;
  job.rec.status = JobStatus::kRunning;
  job.rec.started_at = machine_->engine().now();
  // Attempt generation: if the job settles *and* is re-placed while this
  // coroutine is suspended in a dispatch delay, the status check alone
  // would confuse the new attempt for this one.
  const int attempt = ++job.rec.attempts;
  {
    AttemptRecord att;
    att.attempt = attempt;
    att.started_at = machine_->engine().now();
    job.rec.history.push_back(att);
  }
  if (obs::Tracer* tr = tracer()) {
    tr->end_and_clear(job.span_queued);
    job.span_attempt = tr->begin("job.attempt", obs::track_job(id),
                                 job.span_job);
    tr->attr(job.span_attempt, "attempt", static_cast<std::int64_t>(attempt));
    job.span_group = tr->begin("job.group", obs::track_job(id),
                               job.span_attempt);
  }
  if (attempt == 1) {
    m_queue_wait_->observe(machine_->engine().now() - job.rec.submitted_at);
  }
  ++running_;
  m_jobs_running_->set(static_cast<std::int64_t>(running_));
  job.rec.nodes.clear();
  for (WorkerId wid : claimed) {
    Worker& w = workers_.at(wid);
    w.job = id;
    job.rec.nodes.push_back(w.node);
    if (config_.worker_liveness_timeout > 0) {
      // The liveness clock starts when work is handed over; heartbeats
      // (and done/ready traffic) keep pushing last_heard forward.
      w.last_heard = machine_->engine().now();
      w.liveness_timer.cancel();
      w.liveness_timer = machine_->engine().call_in(
          config_.worker_liveness_timeout,
          [this, wid] { liveness_check(wid); });
    }
  }
  if (hooks_.on_job_start) hooks_.on_job_start(job.rec);

  // Input staging precedes dispatch. The empty-list guard is load-bearing
  // for determinism: jobs without stage_files (every golden-manifest
  // workload) must reach the dispatch co_awaits with an unchanged event
  // sequence, so the staging path may not suspend even once for them.
  if (!spec.stage_files.empty()) {
    co_await stage_job_inputs(id, attempt, claimed);
    if (job.rec.status != JobStatus::kRunning ||
        job.rec.attempts != attempt) {  // settled mid-stage
      release_undispatched(claimed, 0);
      co_return;
    }
  }

  if (spec.kind == JobKind::kSequential) {
    const std::string tid = "t" + std::to_string(next_task_++);
    task_to_job_[tid] = id;
    job.task_id = tid;
    workers_.at(claimed.front()).task_id = tid;
    co_await sim::delay(config_.dispatch_overhead);
    if (job.rec.status != JobStatus::kRunning ||
        job.rec.attempts != attempt) {  // settled mid-placement
      release_undispatched(claimed, 0);
      co_return;
    }
    // Re-resolve the handle after the suspension: the worker's slot may
    // have been recycled if it EOF'd during the dispatch delay.
    Worker* w = workers_.find(claimed.front());
    if (!w || !w->connected || w->evicted || !w->rpc ||
        w->rpc->peer_closed()) {
      // The claimed worker vanished while the run message was in flight:
      // fail the attempt now rather than dropping the message and waiting
      // out a job deadline that may never fire. This is the typed
      // claim-to-flush disconnect path: it counts as a peer-closed call.
      rpc_metrics_.peer_closed->inc();
      job_finished(id, /*status=*/1, worker_lost_reason(job));
      co_return;
    }
    net::rpc::TaskRun run;
    run.task_id = tid;
    run.argv = spec.argv;
    run.vars = spec.vars;
    const auto sent = w->rpc->call_cb<net::rpc::TaskRun>(
        run,
        [this](net::rpc::Expected<net::rpc::TaskDone, net::rpc::RpcError> r) {
          // Errors (kPeerClosed drain) need no action here: the disconnect
          // bookkeeping fails the attempt at its historical point.
          if (r.ok()) on_task_done(r.value());
        });
    if (!sent.ok()) {
      // call_cb counted the refusal; just fail the attempt.
      job_finished(id, /*status=*/1, worker_lost_reason(job));
      co_return;
    }
    if (obs::Tracer* tr = tracer()) {
      tr->end_and_clear(job.span_group);
      job.span_run = tr->begin("job.run", obs::track_job(id),
                               job.span_attempt);
    }
  } else {
    co_await sim::delay(config_.mpi_job_overhead);
    if (job.rec.status != JobStatus::kRunning || job.rec.attempts != attempt) {
      release_undispatched(claimed, 0);
      co_return;
    }
    pmi::MpiexecSpec mspec;
    mspec.user_argv = spec.argv;
    mspec.nprocs = spec.nprocs;
    mspec.ranks_per_proxy = spec.ppn;
    mspec.user_vars = spec.vars;
    mspec.proxy_setup_cost = config_.proxy_setup_cost;
    mspec.launch_timeout = config_.mpi_launch_timeout;
    mspec.trace_track = obs::track_job(id);
    mspec.trace_parent = job.span_attempt;
    job.mpx = std::make_shared<pmi::Mpiexec>(*machine_, *apps_, host_, mspec);
    job.mpx->start();
    const auto cmds = job.mpx->proxy_commands();
    for (std::size_t k = 0; k < cmds.size(); ++k) {
      const WorkerId wid = claimed.at(k);
      const std::string tid = "t" + std::to_string(next_task_++);
      workers_.at(wid).task_id = tid;
      co_await sim::delay(config_.dispatch_overhead);
      if (job.rec.status != JobStatus::kRunning || job.rec.attempts != attempt) {
        release_undispatched(claimed, k);  // w never got its run message
        co_return;
      }
      // Re-resolve after the suspension (slot may have been recycled).
      Worker* w = workers_.find(wid);
      if (!w || !w->connected || w->evicted || !w->rpc) {
        // A gang member vanished mid-dispatch: fail the attempt and free
        // the rest of the gang now — mpiexec would otherwise wait forever
        // for a proxy that was never started.
        rpc_metrics_.peer_closed->inc();
        job_finished(id, /*status=*/1, worker_lost_reason(job));
        release_undispatched(claimed, k);
        co_return;
      }
      // One-way: a proxy's exit is not the gang's outcome (mpiexec owns
      // that), so gang runs are notifies, not calls.
      net::rpc::TaskRun run;
      run.task_id = tid;
      run.argv = cmds[k];
      (void)w->rpc->notify(run);
    }
    if (obs::Tracer* tr = tracer()) {
      tr->end_and_clear(job.span_group);
      job.span_run = tr->begin("job.run", obs::track_job(id),
                               job.span_attempt);
    }
    // Completion is observed through mpiexec, whose output JETS checks.
    // The waiter holds shared ownership: it is the coroutine suspended
    // inside mpx->wait(), so mpx must survive until it unwinds.
    actors_.push_back(machine_->engine().spawn(
        "jets-job-waiter",
        [](Service* s, JobId id, std::shared_ptr<pmi::Mpiexec> mpx) -> sim::Task<void> {
          const int rc = co_await mpx->wait();
          FailureReason reason = FailureReason::kNone;
          if (rc != 0) {
            Job* j = s->jobs_.find(id);
            reason = j ? s->classify_mpi_failure(*j, *mpx)
                       : FailureReason::kAppExit;
          }
          s->job_finished(id, rc, reason);
        }(this, id, job.mpx)));
  }
}

void Service::job_finished(JobId id, int status, FailureReason reason) {
  Job* jp = jobs_.find(id);
  if (!jp) return;
  Job& job = *jp;
  if (job.rec.status != JobStatus::kRunning) return;  // already settled
  // NB: the submission-relative deadline timer stays armed across retries
  // (settle_job cancels it); cancelling here would hand a failing job a
  // fresh, unbounded deadline on every attempt.
  --running_;
  m_jobs_running_->set(static_cast<std::int64_t>(running_));

  if (status != 0) {
    // Reap stragglers: any connected worker still running a piece of this
    // job gets a kill; its own done/ready cycle frees it. find() skips
    // assignees whose slot already went to EOF (they were disconnected
    // anyway, so the old map-based path skipped them too).
    for (WorkerId wid : job.assigned) {
      Worker* w = workers_.find(wid);
      if (w && w->connected && w->busy && w->job == id && w->sock && w->rpc) {
        (void)w->rpc->notify(net::rpc::KillReq{w->task_id});
      }
    }
  }
  // Note: assigned workers' liveness timers stay armed. A straggler that
  // is itself hung would otherwise leak as busy-forever once its job has
  // settled; the pending check evicts it instead. Responsive stragglers
  // cancel the timer through their done/ready cycle.
  for (WorkerId wid : job.assigned) {
    Worker* w = workers_.find(wid);
    if (w && w->job == id) w->job = 0;
  }
  job.assigned.clear();
  if (!job.task_id.empty()) {
    task_to_job_.erase(job.task_id);
    job.task_id.clear();
  }
  if (job.mpx) {
    // Release any actor still blocked in mpx->wait() before destroying the
    // gate it waits on, then tear down the control service (PMI EOF
    // unblocks any surviving ranks).
    job.mpx->abort("job settled");
    job.mpx.reset();
  }

  // Close out this attempt's history entry.
  if (!job.rec.history.empty() && job.rec.history.back().ended_at < 0) {
    AttemptRecord& att = job.rec.history.back();
    att.ended_at = machine_->engine().now();
    att.exit_status = status;
    att.reason = reason;
  }

  if (obs::Tracer* tr = tracer()) {
    tr->end_and_clear(job.span_run);
    tr->end_and_clear(job.span_group);
    tr->attr(job.span_attempt, "status", static_cast<std::int64_t>(status));
    if (reason != FailureReason::kNone) {
      tr->attr(job.span_attempt, "reason", to_string(reason));
    }
    tr->end_and_clear(job.span_attempt);
  }

  if (status == 0) {
    settle_job(job, JobStatus::kDone, FailureReason::kNone);
    kick();
    check_all_done();
    return;
  }

  job.rec.last_reason = reason;
  job.restored_running = false;  // the rescued attempt did not survive
  m_failures_[static_cast<std::size_t>(reason)]->inc();
  // A service restart or a walltime drain is nobody's failure
  // *budget-wise*: the attempt died because the scheduler crashed or the
  // pilot block hit its allocation boundary. Both are recorded in the
  // history (above) and the taxonomy counter, but charged to neither
  // budget and exempt from both caps — a crash or an expiring allocation
  // must never consume a job's retries.
  const bool blameless = reason == FailureReason::kServiceRestart ||
                         reason == FailureReason::kWalltimeDrain;
  if (!blameless) {
    if (is_infra_failure(reason)) {
      ++job.rec.infra_failures;
    } else {
      ++job.rec.app_failures;
    }
  }

  const RetryPolicy& pol = policy_for(job);
  // Infra-class failures can be exempted from the app attempt budget; a
  // separate hard cap still bounds them.
  const int charged = pol.infra_exempt
                          ? job.rec.app_failures
                          : job.rec.app_failures + job.rec.infra_failures;
  const bool terminal_reason = reason == FailureReason::kJobDeadline ||
                               reason == FailureReason::kServiceAbort;
  if (!terminal_reason && !job.deadline_passed &&
      (blameless || (charged < pol.max_attempts &&
                     job.rec.infra_failures < pol.max_infra_failures))) {
    // Delayed requeue through the retry engine — never straight back to
    // the head of the queue.
    job.rec.status = JobStatus::kPending;
    const int failures = job.rec.app_failures + job.rec.infra_failures;
    const sim::Duration delay = backoff_delay(pol, failures);
    if (!job.rec.history.empty()) job.rec.history.back().backoff = delay;
    job.in_backoff = true;
    ++backing_off_;
    m_retries_scheduled_->inc();
    if (obs::Tracer* tr = tracer()) {
      job.span_backoff = tr->begin("job.backoff", obs::track_job(id),
                                   job.span_job);
    }
    job.retry_timer =
        machine_->engine().call_in(delay, [this, id] { requeue_job(id); });
  } else if (reason == FailureReason::kAppExit && charged >= pol.max_attempts) {
    // The job's own failures exhausted the budget: poison, not unlucky.
    settle_job(job, JobStatus::kQuarantined, reason);
  } else {
    settle_job(job, JobStatus::kFailed, reason);
  }
  kick();
  check_all_done();
}

sim::Duration Service::backoff_delay(const RetryPolicy& pol, int failures) {
  if (pol.backoff_base <= 0) return 0;
  double d = static_cast<double>(pol.backoff_base);
  const double cap = static_cast<double>(pol.backoff_max);
  for (int i = 1; i < failures && (cap <= 0 || d < cap); ++i) {
    d *= pol.backoff_factor;
  }
  if (cap > 0) d = std::min(d, cap);
  if (pol.backoff_jitter > 0) {
    d *= 1.0 + retry_rng_.uniform(0.0, pol.backoff_jitter);
  }
  return static_cast<sim::Duration>(d);
}

void Service::requeue_job(JobId id) {
  Job* jp = jobs_.find(id);
  if (!jp) return;
  Job& job = *jp;
  if (job.rec.status != JobStatus::kPending || !job.in_backoff) return;
  job.in_backoff = false;
  --backing_off_;
  // The machine may have shrunk below the job's width during the backoff.
  const auto needed = static_cast<std::size_t>(job.rec.spec.workers_needed());
  if (config_.fail_unsatisfiable && needed > potential_capacity() &&
      needed <= peak_capacity_) {
    m_failures_[static_cast<std::size_t>(FailureReason::kServiceAbort)]->inc();
    settle_job(job, JobStatus::kFailed, FailureReason::kServiceAbort);
    check_all_done();
    return;
  }
  if (obs::Tracer* tr = tracer()) {
    tr->end_and_clear(job.span_backoff);
    job.span_queued = tr->begin("job.queued", obs::track_job(id),
                                job.span_job);
  }
  queue_.push_back(id, job.rec.spec.priority,
                   static_cast<std::uint32_t>(job.rec.spec.workers_needed()));
  kick();
}

void Service::settle_job(Job& job, JobStatus status, FailureReason reason) {
  job.timeout.cancel();
  job.retry_timer.cancel();
  if (job.in_backoff) {
    job.in_backoff = false;
    --backing_off_;
  }
  job.rec.status = status;
  job.rec.last_reason = reason;
  job.rec.finished_at = machine_->engine().now();
  if (status == JobStatus::kDone) {
    // A restored-running attempt that made it to kDone survived a service
    // crash end to end — the recovery path's headline number.
    if (job.restored_running) m_rescued_->inc();
    m_completed_->inc();
  } else if (status == JobStatus::kQuarantined) {
    m_quarantined_->inc();
  } else {
    m_failed_->inc();
  }
  m_job_wall_->observe(job.rec.finished_at - job.rec.submitted_at);
  close_job_spans(job);
  if (obs::Tracer* tr = tracer()) {
    tr->attr(job.span_job, "status", to_string(status));
    if (reason != FailureReason::kNone) {
      tr->attr(job.span_job, "reason", to_string(reason));
    }
    tr->end_and_clear(job.span_job);
  }
  if (job.settled) job.settled->open();
  if (hooks_.on_job_finish) hooks_.on_job_finish(job.rec);
}

FailureReason Service::worker_lost_reason(const Job& job) const {
  return job.rec.spec.workers_needed() > 1 ? FailureReason::kGangPartnerLost
                                           : FailureReason::kWorkerLost;
}

FailureReason Service::classify_mpi_failure(const Job& job,
                                            const pmi::Mpiexec& mpx) const {
  if (job.deadline_passed) return FailureReason::kJobDeadline;
  switch (mpx.fail_kind()) {
    case pmi::MpiexecFailKind::kLaunchTimeout:
      return FailureReason::kLaunchTimeout;
    case pmi::MpiexecFailKind::kDisconnect:
      return worker_lost_reason(job);
    case pmi::MpiexecFailKind::kAborted:
      return FailureReason::kServiceAbort;
    case pmi::MpiexecFailKind::kExit:
    case pmi::MpiexecFailKind::kNone:
      break;
  }
  return FailureReason::kAppExit;
}

std::size_t Service::potential_capacity() const {
  // Without blacklisting, no node is ever banned, so the count is just two
  // maintained counters — O(1) on the EOF/eviction path, which calls this
  // once per departure (10^5..10^6 times in a teardown storm).
  // Ghosts awaiting reconciliation count as capacity: their pilots may
  // redial any moment, so reaping a wide job during the restore grace would
  // be premature.
  // An elastic allocator floors the count at its pool ceiling: the pool
  // may be momentarily empty between a drain and the next scale-out, and
  // a wide queued job must survive that valley.
  if (config_.blacklist_after == 0) {
    return std::max(connected_ + evicted_live_ + awaiting_,
                    elastic_capacity_);
  }
  std::size_t n = 0;
  workers_.for_each([&](WorkerId, const Worker& w) {
    if (w.connected) {
      ++n;
    } else if ((w.evicted || w.awaiting) && !node_banned(w.node)) {
      ++n;  // could still re-enlist / reconcile
    }
  });
  return std::max(n, elastic_capacity_);
}

void Service::reap_unsatisfiable() {
  if (!config_.fail_unsatisfiable) return;
  if (queue_.empty()) return;
  const std::size_t cap = potential_capacity();
  std::vector<JobId> doomed;
  queue_.for_each([&](JobId id, std::uint32_t width) {
    const auto needed = static_cast<std::size_t>(width);
    // Only jobs the machine *once* had room for: a job wider than the
    // allocation ever was keeps waiting (workers may still register), and
    // is bounded by its deadline as before.
    if (needed > cap && needed <= peak_capacity_) doomed.push_back(id);
  });
  for (JobId id : doomed) {
    Job& job = jobs_.at(id);
    queue_.erase(id);
    m_failures_[static_cast<std::size_t>(FailureReason::kServiceAbort)]->inc();
    settle_job(job, JobStatus::kFailed, FailureReason::kServiceAbort);
  }
  if (!doomed.empty()) check_all_done();
}

// --- Elastic allocations -----------------------------------------------------

void Service::set_node_expiry(os::NodeId node, sim::Time expires_at) {
  node_elastic_[node].expires_at = expires_at;
}

void Service::drain_nodes(const std::vector<os::NodeId>& nodes,
                          sim::Time deadline) {
  for (os::NodeId node : nodes) {
    NodeElastic& e = node_elastic_[node];
    // A repeat drain may only *tighten* the deadline (a preemption landing
    // on a block that was already draining toward its walltime).
    if (e.draining && deadline >= e.drain_at) continue;
    e.draining = true;
    e.drain_at = deadline;
    e.drain_timer.cancel();
    if (deadline <= machine_->engine().now()) {
      // Preemption path: the block dies as soon as this call returns, so
      // the requeue must happen synchronously — before the pilots do.
      drain_deadline(node);
    } else {
      e.drain_timer = machine_->engine().call_at(
          deadline, [this, node] { drain_deadline(node); });
    }
  }
}

void Service::clear_node_elastic(const std::vector<os::NodeId>& nodes) {
  for (os::NodeId node : nodes) {
    auto it = node_elastic_.find(node);
    if (it == node_elastic_.end()) continue;
    it->second.drain_timer.cancel();
    node_elastic_.erase(it);
  }
}

bool Service::node_draining(os::NodeId node) const {
  auto it = node_elastic_.find(node);
  return it != node_elastic_.end() && it->second.draining;
}

bool Service::worker_eligible(const Worker& w, const JobSpec& spec) const {
  auto it = node_elastic_.find(w.node);
  if (it == node_elastic_.end()) return true;
  const NodeElastic& e = it->second;
  if (e.draining) return false;
  // An unknown runtime cannot be gated; the drain deadline still rescues
  // the job if the estimate was missing or wrong (zero-jobs-lost backstop).
  if (e.expires_at < 0 || spec.expected_runtime <= 0) return true;
  return machine_->engine().now() + spec.expected_runtime <= e.expires_at;
}

std::size_t Service::count_eligible(const JobSpec& spec) const {
  std::size_t n = 0;
  for (WorkerId wid : ready_.live_fifo()) {
    if (worker_eligible(workers_.at(wid), spec)) ++n;
  }
  return n;
}

std::vector<Service::WorkerId> Service::claim_eligible(std::size_t count,
                                                       const JobSpec& spec) {
  std::vector<WorkerId> claimed;
  claimed.reserve(count);
  for (WorkerId wid : ready_.live_fifo()) {
    if (claimed.size() == count) break;
    if (worker_eligible(workers_.at(wid), spec)) claimed.push_back(wid);
  }
  for (WorkerId wid : claimed) ready_.erase(wid, workers_.at(wid).node);
  return claimed;
}

void Service::drain_deadline(os::NodeId node) {
  // Slot order is deterministic; a gang spanning the node appears once per
  // assigned worker but settles on the first job_finished (the rest skip
  // via the status check).
  std::vector<JobId> victims;
  workers_.for_each([&](WorkerId, const Worker& w) {
    if (w.node == node && w.busy && w.job != 0) victims.push_back(w.job);
  });
  for (JobId id : victims) {
    Job* j = jobs_.find(id);
    if (!j || j->rec.status != JobStatus::kRunning) continue;
    m_drain_requeues_->inc();
    job_finished(id, 1, FailureReason::kWalltimeDrain);
  }
}

// --- Worker liveness ---------------------------------------------------------

void Service::liveness_check(WorkerId wid) {
  Worker* wp = workers_.find(wid);
  if (!wp) return;  // slot recycled: the timer's target is long gone
  Worker& w = *wp;
  // Only busy workers are under a liveness deadline: an idle worker owes
  // us nothing (and pinging while idle would keep the simulation alive
  // forever — see WorkerConfig::heartbeat_interval).
  if (!w.connected || w.evicted || !w.busy) return;
  const sim::Duration elapsed = machine_->engine().now() - w.last_heard;
  if (elapsed >= config_.worker_liveness_timeout) {
    evict_worker(wid);
  } else {
    // Heard from it since the timer was armed; re-check when the current
    // silence would exceed the deadline.
    w.liveness_timer = machine_->engine().call_in(
        config_.worker_liveness_timeout - elapsed,
        [this, wid] { liveness_check(wid); });
  }
}

void Service::evict_worker(WorkerId wid) {
  Worker& w = workers_.at(wid);
  if (!w.connected || w.evicted) return;
  // Disregard, don't disconnect: the socket stays open so a worker that
  // was merely wedged (stall drains, hang released) can announce itself
  // with "ready" and be re-enlisted.
  w.evicted = true;
  ++evicted_live_;
  w.connected = false;
  --connected_;
  m_workers_connected_->set(static_cast<std::int64_t>(connected_));
  m_evicted_->inc();
  NodeHealth& h = node_health_[w.node];
  ++h.evictions;
  if (config_.blacklist_after > 0 && !h.banned &&
      h.evictions >= config_.blacklist_after) {
    h.banned = true;
    h.banned_until =
        config_.blacklist_probation > 0
            ? machine_->engine().now() + config_.blacklist_probation
            : -1;  // permanent
  }
  w.liveness_timer.cancel();
  ready_.erase(wid, w.node);
  // A disregarded worker's acks cannot be trusted to arrive: write off its
  // unacked stage-ins now so no stage gate waits on a hung pilot. If it
  // acks late anyway, residency is still committed (the data did land;
  // the ack falls through to the unmatched handler) but the settled call
  // skips the double decrement. The run call, if any, stays pending: a
  // late done must still settle the job exactly as it always did.
  if (w.rpc) {
    w.rpc->fail_responses(net::rpc::StageAck::kTag,
                          net::rpc::RpcError::kCancelled);
  }
  if (w.busy && w.job != 0) {
    // The in-flight attempt cannot be trusted to finish; fail it so the
    // job retries on live workers ("minimizing their impact", §5).
    job_finished(w.job, /*status=*/1, FailureReason::kLivenessEvicted);
  }
  // Banning a node may have shrunk the machine below a queued job's width.
  reap_unsatisfiable();
}

bool Service::node_banned(os::NodeId node) const {
  auto it = node_health_.find(node);
  if (it == node_health_.end() || !it->second.banned) return false;
  return it->second.banned_until < 0 ||
         machine_->engine().now() < it->second.banned_until;
}

bool Service::node_blacklisted(os::NodeId node) {
  auto it = node_health_.find(node);
  if (it == node_health_.end() || !it->second.banned) return false;
  NodeHealth& h = it->second;
  if (h.banned_until >= 0 && machine_->engine().now() >= h.banned_until) {
    // Probation served: parole the node, but remember half its record so a
    // repeat offender is re-banned quickly.
    h.banned = false;
    h.banned_until = -1;
    h.evictions /= 2;
    m_blacklist_paroles_->inc();
    return false;
  }
  return true;
}

void Service::reoffer_worker(WorkerId wid) {
  Worker* wp = workers_.find(wid);
  if (!wp) return;  // EOF recycled the slot: nothing to re-offer
  Worker& w = *wp;
  // Only an evicted-but-alive idle worker qualifies (EOF erases the slot,
  // so a worker whose connection died in the meantime fails the handle
  // check above), and a still-banned node (probation extended by a re-ban)
  // stays out.
  if (!w.evicted || w.connected || w.busy || !w.sock) return;
  if (node_blacklisted(w.node)) return;
  w.evicted = false;
  --evicted_live_;
  w.connected = true;
  ++connected_;
  m_workers_connected_->set(static_cast<std::int64_t>(connected_));
  peak_capacity_ = std::max(peak_capacity_, connected_);
  m_reenlisted_->inc();
  ready_.push_back(wid, w.node);
  kick();
}

// --- Restore reconciliation -------------------------------------------------
//
// checkpoint()/apply_snapshot() live in snapshot.cc with the codec; the two
// functions below are the runtime half of recovery: deciding stale-vs-live
// for each checkpointed worker as its pilot redials (or doesn't).

Service::WorkerId Service::adopt_ghost(
    os::NodeId node, net::SocketPtr sock,
    const std::vector<std::string>& inventory) {
  // Prefer the ghost whose outstanding task the pilot announces (that pins
  // the identity exactly); otherwise any ghost on the same node, lowest
  // registration seq first so the match is deterministic.
  WorkerId task_match = 0;
  WorkerId node_match = 0;
  std::uint64_t task_seq = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t node_seq = std::numeric_limits<std::uint64_t>::max();
  workers_.for_each([&](WorkerId wid, const Worker& w) {
    if (!w.awaiting || w.node != node) return;
    if (!w.task_id.empty() &&
        std::find(inventory.begin(), inventory.end(), w.task_id) !=
            inventory.end()) {
      if (w.seq < task_seq) {
        task_seq = w.seq;
        task_match = wid;
      }
    }
    if (w.seq < node_seq) {
      node_seq = w.seq;
      node_match = wid;
    }
  });
  const WorkerId wid = task_match != 0 ? task_match : node_match;
  if (wid == 0) return 0;

  Worker& w = workers_.at(wid);
  w.awaiting = false;
  --awaiting_;
  w.evicted = false;  // a redialing pilot is alive by definition
  w.sock = std::move(sock);
  w.connected = true;
  w.last_heard = machine_->engine().now();
  ++connected_;
  m_workers_connected_->set(static_cast<std::int64_t>(connected_));
  peak_capacity_ = std::max(peak_capacity_, connected_);
  m_reconciled_->inc();

  if (w.busy && w.job != 0) {
    Job* j = jobs_.find(w.job);
    const bool task_alive =
        !w.task_id.empty() &&
        std::find(inventory.begin(), inventory.end(), w.task_id) !=
            inventory.end();
    if (j && j->rec.status == JobStatus::kRunning && !task_alive) {
      // The checkpoint says this worker runs a task, the pilot says it
      // doesn't: the task finished during the outage and its done message
      // was lost with the dead service. The attempt cannot be trusted —
      // fail it (blameless) so the job retries.
      job_finished(w.job, /*status=*/1, FailureReason::kServiceRestart);
    } else if (j && task_alive && config_.worker_liveness_timeout > 0) {
      w.liveness_timer.cancel();
      w.liveness_timer = machine_->engine().call_in(
          config_.worker_liveness_timeout, [this, wid] { liveness_check(wid); });
    }
  }
  if (awaiting_ == 0) {
    reconcile_timer_.cancel();
    check_all_done();
  }
  return wid;
}

void Service::reconcile_ghosts() {
  // The restore grace ran out: any ghost still awaiting its pilot is
  // declared dead. Their running jobs are requeued (kServiceRestart) and
  // the slots recycled, exactly like an EOF would have done.
  std::vector<WorkerId> stale;
  workers_.for_each([&](WorkerId wid, const Worker& w) {
    if (w.awaiting) stale.push_back(wid);
  });
  for (WorkerId wid : stale) {
    Worker& w = workers_.at(wid);
    w.awaiting = false;
    --awaiting_;
    m_ghosts_dropped_->inc();
    if (w.busy && w.job != 0) {
      Job* j = jobs_.find(w.job);
      if (j && j->rec.status == JobStatus::kRunning) {
        job_finished(w.job, /*status=*/1, FailureReason::kServiceRestart);
      }
    }
    workers_.erase(wid);
  }
  if (!stale.empty()) {
    reap_unsatisfiable();
    kick();
    check_all_done();
  }
}

void Service::release_undispatched(const std::vector<WorkerId>& claimed,
                                   std::size_t from_idx) {
  bool released = false;
  for (std::size_t k = from_idx; k < claimed.size(); ++k) {
    // Handle re-lookup: the claim was taken before a suspension point, so
    // the worker may have EOF'd (slot recycled) in between.
    Worker* w = workers_.find(claimed[k]);
    // Only a healthy, still-claimed worker goes back to the pool; evicted
    // or disconnected ones are already accounted for elsewhere.
    if (!w || !w->connected || w->evicted || !w->busy || w->job != 0) continue;
    w->busy = false;
    w->task_id.clear();
    w->liveness_timer.cancel();
    ready_.push_back(claimed[k], w->node);
    released = true;
  }
  if (released) kick();
}

bool Service::ready_pool_consistent() const {
  const std::vector<WorkerId> fifo = ready_.live_fifo();
  std::set<WorkerId> seen;
  for (WorkerId wid : fifo) {
    if (!seen.insert(wid).second) return false;  // duplicate entry
    const Worker* w = workers_.find(wid);
    if (!w) return false;
    if (!w->connected || w->busy || w->evicted) return false;
  }
  if (config_.network_aware_grouping) {
    // The node-sorted mirror must agree with the FIFO view exactly: same
    // workers, correct node keys, strictly increasing (node, arrival).
    const auto& index = ready_.index();
    if (index.size() != fifo.size()) return false;
    for (std::size_t i = 0; i < index.size(); ++i) {
      if (i > 0 && !(index[i - 1] < index[i])) return false;
      const Worker* w = workers_.find(index[i].wid);
      if (!w || w->node != index[i].node) return false;
      if (!seen.contains(index[i].wid)) return false;
    }
  }
  return true;
}

}  // namespace jets::core
