#include "core/service.hh"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

namespace jets::core {

Service::Service(os::Machine& machine, const os::AppRegistry& apps,
                 os::NodeId host, Config config)
    : machine_(&machine), apps_(&apps), host_(host), config_(config) {
  kick_ch_ = std::make_unique<sim::Channel<int>>(machine.engine());
  all_done_ = std::make_unique<sim::Gate>(machine.engine());
}

Service::Service(os::Machine& machine, const os::AppRegistry& apps,
                 os::NodeId host)
    : Service(machine, apps, host, Config{}) {}

Service::~Service() {
  for (sim::ActorId id : actors_) machine_->engine().kill(id);
}

void Service::start() {
  if (started_) return;
  started_ = true;
  addr_ = net::Address{host_, machine_->allocate_port()};
  listener_ = machine_->network().listen(addr_);
  actors_.push_back(machine_->engine().spawn("jets-accept", accept_loop()));
  actors_.push_back(machine_->engine().spawn("jets-dispatch", dispatch_loop()));
}

JobId Service::submit(JobSpec spec) {
  if (spec.argv.empty()) throw std::invalid_argument("job with empty argv");
  const JobId id = next_job_++;
  Job job;
  job.rec.id = id;
  job.rec.spec = std::move(spec);
  job.rec.submitted_at = machine_->engine().now();
  auto [it, _] = jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  all_done_->close();
  // The job's timeout is a deadline measured from submission: it covers
  // queue time too, so a job that can never be placed (e.g. wider than the
  // allocation) still settles.
  const sim::Duration timeout = it->second.rec.spec.timeout > 0
                                    ? it->second.rec.spec.timeout
                                    : config_.default_job_timeout;
  if (timeout > 0) {
    it->second.timeout = machine_->engine().call_in(
        timeout, [this, id] { deadline_expired(id); });
  }
  if (started_) kick();
  return id;
}

void Service::deadline_expired(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  job.deadline_passed = true;
  if (job.rec.status == JobStatus::kPending) {
    std::erase(queue_, id);
    job.rec.status = JobStatus::kFailed;
    job.rec.finished_at = machine_->engine().now();
    ++failed_;
    if (job.settled) job.settled->open();
    if (hooks_.on_job_finish) hooks_.on_job_finish(job.rec);
    kick();
    check_all_done();
  } else if (job.rec.status == JobStatus::kRunning) {
    if (job.mpx) {
      job.mpx->abort("job deadline");  // its waiter finishes the job
    } else {
      // Best-effort kills, then settle the job *now*. Relying on the
      // worker's done/ready cycle is not enough: if the deadline fires
      // while the run message is still being dispatched, the kill would
      // refer to a task the worker has never heard of and the job would
      // hang forever in kRunning.
      for (WorkerId wid : job.assigned) {
        Worker& w = workers_.at(wid);
        if (w.connected && w.sock) {
          w.sock->send(net::Message(kMsgKill, {w.task_id}));
        }
      }
      job_finished(id, /*status=*/124);
    }
  }
}

std::vector<JobId> Service::submit_batch(const std::vector<JobSpec>& specs) {
  std::vector<JobId> ids;
  ids.reserve(specs.size());
  for (const JobSpec& s : specs) ids.push_back(submit(s));
  return ids;
}

sim::Task<void> Service::wait_all() {
  check_all_done();
  co_await all_done_->wait();
}

sim::Task<void> Service::wait_job(JobId id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) co_return;
  Job& job = it->second;
  if (job.rec.status == JobStatus::kDone || job.rec.status == JobStatus::kFailed) {
    co_return;
  }
  if (!job.settled) job.settled = std::make_unique<sim::Gate>(machine_->engine());
  co_await job.settled->wait();
}

std::vector<JobRecord> Service::records() const {
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [_, job] : jobs_) out.push_back(job.rec);
  return out;
}

std::size_t Service::ready_workers() const { return ready_.size(); }

sim::Task<void> Service::stage_to_workers(const std::string& path) {
  auto size = machine_->shared_fs().size(path);
  if (!size) throw std::invalid_argument("stage_to_workers: no such file " + path);
  // The service itself reads the file once from the shared filesystem,
  // then fans it out over the persistent worker connections.
  co_await machine_->shared_fs().read(path);
  StageOp& op = staging_[path];
  if (!op.done) op.done = std::make_unique<sim::Gate>(machine_->engine());
  op.done->close();
  for (auto& [wid, w] : workers_) {
    if (!w.connected || !w.sock) continue;
    ++op.remaining;
    net::Message m(kMsgStageIn, {path}, *size);
    w.sock->send(std::move(m));
  }
  if (op.remaining == 0) co_return;
  co_await op.done->wait();
}

void Service::check_all_done() {
  if (!queue_.empty() || running_ != 0) return;
  if (completed_ + failed_ == jobs_.size()) all_done_->open();
}

// --- Worker side -------------------------------------------------------------

sim::Task<void> Service::accept_loop() {
  for (;;) {
    net::SocketPtr sock = co_await listener_->accept();
    if (!sock) co_return;
    actors_.push_back(machine_->engine().spawn(
        "jets-worker-conn", worker_handler(std::move(sock))));
  }
}

sim::Task<void> Service::worker_handler(net::SocketPtr sock) {
  WorkerId wid = 0;
  for (;;) {
    auto m = co_await sock->recv();
    if (!m) break;
    if (wid != 0) workers_.at(wid).last_heard = machine_->engine().now();
    if (m->tag == kMsgRegister) {
      const auto node = static_cast<os::NodeId>(std::stoul(m->args.at(0)));
      if (node_blacklisted(node)) {
        ++blacklist_rejections_;
        sock->close();
        break;  // refuse the node outright
      }
      wid = next_worker_++;
      Worker w;
      w.id = wid;
      w.node = node;
      w.sock = sock;
      w.connected = true;
      w.last_heard = machine_->engine().now();
      workers_.emplace(wid, std::move(w));
      ++connected_;
    } else if (m->tag == kMsgPing && wid != 0) {
      ++heartbeats_;  // last_heard already refreshed above
    } else if (m->tag == kMsgReady && wid != 0) {
      Worker& w = workers_.at(wid);
      w.liveness_timer.cancel();
      w.busy = false;
      w.job = 0;
      w.task_id.clear();
      if (w.evicted) {
        // A disregarded worker came back (hang released, stall drained).
        // Unless its node has been blacklisted, give it another chance.
        if (node_blacklisted(w.node)) {
          ++blacklist_rejections_;
          continue;
        }
        w.evicted = false;
        w.connected = true;
        ++connected_;
        ++reenlisted_;
      }
      ready_.push_back(wid);
      kick();
    } else if (m->tag == kMsgStaged) {
      auto it = staging_.find(m->args.at(0));
      if (it != staging_.end() && it->second.remaining > 0) {
        if (--it->second.remaining == 0) it->second.done->open();
      }
    } else if (m->tag == kMsgDone && wid != 0) {
      const std::string& task_id = m->args.at(0);
      const int status = std::stoi(m->args.at(1));
      auto it = task_to_job_.find(task_id);
      if (it != task_to_job_.end()) {
        const JobId jid = it->second;
        task_to_job_.erase(it);
        job_finished(jid, status);
      }
      // Proxy exits of MPI jobs land here too; mpiexec owns their outcome.
    }
  }
  // Worker gone (allocation expired, node fault, kill): disregard it.
  if (wid != 0) {
    auto it = workers_.find(wid);
    if (it == workers_.end()) co_return;
    it->second.liveness_timer.cancel();
    if (it->second.connected) {
      it->second.connected = false;
      --connected_;
      std::erase(ready_, wid);
      if (it->second.busy && it->second.job != 0) {
        // Its task cannot finish; fail the attempt so the job can retry on
        // other workers ("minimizing their impact", §5 feature 3).
        job_finished(it->second.job, /*status=*/1);
      }
    }
    // A worker already evicted for liveness needs no further bookkeeping;
    // mark it unable to re-enlist now that its connection is truly gone.
    it->second.evicted = false;
  }
}

// --- Scheduling --------------------------------------------------------------

std::optional<JobId> Service::choose_job() {
  if (queue_.empty()) return std::nullopt;
  if (config_.policy == SchedPolicy::kFifo) {
    const JobId head = queue_.front();
    const auto needed =
        static_cast<std::size_t>(jobs_.at(head).rec.spec.workers_needed());
    if (ready_.size() < needed) return std::nullopt;  // head-of-line blocks
    queue_.pop_front();
    return head;
  }
  // Priority + backfill: scan in (priority desc, FIFO) order; take the
  // first job whose worker demand fits the currently ready pool.
  std::vector<std::size_t> order(queue_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return jobs_.at(queue_[a]).rec.spec.priority >
           jobs_.at(queue_[b]).rec.spec.priority;
  });
  for (std::size_t idx : order) {
    const JobId id = queue_[idx];
    const auto needed =
        static_cast<std::size_t>(jobs_.at(id).rec.spec.workers_needed());
    if (ready_.size() >= needed) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
      return id;
    }
  }
  return std::nullopt;
}

std::vector<Service::WorkerId> Service::claim_workers(std::size_t count) {
  std::vector<WorkerId> claimed;
  claimed.reserve(count);
  if (!config_.network_aware_grouping || count <= 1) {
    // Paper default: first come, first served (§6.1.4).
    while (claimed.size() < count && !ready_.empty()) {
      claimed.push_back(ready_.front());
      ready_.pop_front();
    }
  } else {
    // §7 extension: pick the window of ready workers with the smallest
    // node-id span (node ids are laid out along the torus, so a small span
    // means fewer hops between the job's processes).
    std::vector<WorkerId> pool(ready_.begin(), ready_.end());
    std::sort(pool.begin(), pool.end(), [this](WorkerId a, WorkerId b) {
      return workers_.at(a).node < workers_.at(b).node;
    });
    std::size_t best = 0;
    os::NodeId best_span = std::numeric_limits<os::NodeId>::max();
    for (std::size_t i = 0; i + count <= pool.size(); ++i) {
      const os::NodeId span = workers_.at(pool[i + count - 1]).node -
                              workers_.at(pool[i]).node;
      if (span < best_span) {
        best_span = span;
        best = i;
      }
    }
    claimed.assign(pool.begin() + static_cast<std::ptrdiff_t>(best),
                   pool.begin() + static_cast<std::ptrdiff_t>(best + count));
    for (WorkerId wid : claimed) std::erase(ready_, wid);
  }
  for (WorkerId wid : claimed) workers_.at(wid).busy = true;
  return claimed;
}

sim::Task<void> Service::dispatch_loop() {
  for (;;) {
    auto signal = co_await kick_ch_->recv();
    if (!signal) co_return;
    for (;;) {
      std::optional<JobId> pick = choose_job();
      if (!pick) break;
      co_await place_job(*pick);
    }
  }
}

sim::Task<void> Service::place_job(JobId id) {
  Job& job = jobs_.at(id);
  const JobSpec& spec = job.rec.spec;
  const auto needed = static_cast<std::size_t>(spec.workers_needed());
  job.assigned = claim_workers(needed);
  // Local copy: job.assigned is cleared if the job settles (eviction,
  // deadline) while this coroutine is suspended in a dispatch delay.
  const std::vector<WorkerId> claimed = job.assigned;
  job.rec.status = JobStatus::kRunning;
  job.rec.started_at = machine_->engine().now();
  ++job.rec.attempts;
  ++running_;
  job.rec.nodes.clear();
  for (WorkerId wid : claimed) {
    Worker& w = workers_.at(wid);
    w.job = id;
    job.rec.nodes.push_back(w.node);
    if (config_.worker_liveness_timeout > 0) {
      // The liveness clock starts when work is handed over; heartbeats
      // (and done/ready traffic) keep pushing last_heard forward.
      w.last_heard = machine_->engine().now();
      w.liveness_timer.cancel();
      w.liveness_timer = machine_->engine().call_in(
          config_.worker_liveness_timeout,
          [this, wid] { liveness_check(wid); });
    }
  }
  if (hooks_.on_job_start) hooks_.on_job_start(job.rec);

  if (spec.kind == JobKind::kSequential) {
    const std::string tid = "t" + std::to_string(next_task_++);
    task_to_job_[tid] = id;
    job.task_id = tid;
    Worker& w = workers_.at(claimed.front());
    w.task_id = tid;
    co_await sim::delay(config_.dispatch_overhead);
    if (job.rec.status != JobStatus::kRunning) {  // settled mid-placement
      release_undispatched(claimed, 0);
      co_return;
    }
    if (w.connected) w.sock->send(make_run_message(tid, spec.argv, spec.vars));
  } else {
    co_await sim::delay(config_.mpi_job_overhead);
    if (job.rec.status != JobStatus::kRunning) {
      release_undispatched(claimed, 0);
      co_return;
    }
    pmi::MpiexecSpec mspec;
    mspec.user_argv = spec.argv;
    mspec.nprocs = spec.nprocs;
    mspec.ranks_per_proxy = spec.ppn;
    mspec.user_vars = spec.vars;
    mspec.proxy_setup_cost = config_.proxy_setup_cost;
    job.mpx = std::make_shared<pmi::Mpiexec>(*machine_, *apps_, host_, mspec);
    job.mpx->start();
    const auto cmds = job.mpx->proxy_commands();
    for (std::size_t k = 0; k < cmds.size(); ++k) {
      Worker& w = workers_.at(claimed.at(k));
      const std::string tid = "t" + std::to_string(next_task_++);
      w.task_id = tid;
      co_await sim::delay(config_.dispatch_overhead);
      if (job.rec.status != JobStatus::kRunning) {
        release_undispatched(claimed, k);  // w never got its run message
        co_return;
      }
      if (w.connected) w.sock->send(make_run_message(tid, cmds[k], {}));
    }
    // Completion is observed through mpiexec, whose output JETS checks.
    // The waiter holds shared ownership: it is the coroutine suspended
    // inside mpx->wait(), so mpx must survive until it unwinds.
    actors_.push_back(machine_->engine().spawn(
        "jets-job-waiter",
        [](Service* s, JobId id, std::shared_ptr<pmi::Mpiexec> mpx) -> sim::Task<void> {
          const int rc = co_await mpx->wait();
          s->job_finished(id, rc);
        }(this, id, job.mpx)));
  }
}

void Service::job_finished(JobId id, int status) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (job.rec.status != JobStatus::kRunning) return;  // already settled
  job.timeout.cancel();
  --running_;

  if (status != 0) {
    // Reap stragglers: any connected worker still running a piece of this
    // job gets a kill; its own done/ready cycle frees it.
    for (WorkerId wid : job.assigned) {
      Worker& w = workers_.at(wid);
      if (w.connected && w.busy && w.job == id && w.sock) {
        w.sock->send(net::Message(kMsgKill, {w.task_id}));
      }
    }
  }
  // Note: assigned workers' liveness timers stay armed. A straggler that
  // is itself hung would otherwise leak as busy-forever once its job has
  // settled; the pending check evicts it instead. Responsive stragglers
  // cancel the timer through their done/ready cycle.
  for (WorkerId wid : job.assigned) {
    Worker& w = workers_.at(wid);
    if (w.job == id) w.job = 0;
  }
  job.assigned.clear();
  if (!job.task_id.empty()) {
    task_to_job_.erase(job.task_id);
    job.task_id.clear();
  }
  if (job.mpx) {
    // Release any actor still blocked in mpx->wait() before destroying the
    // gate it waits on, then tear down the control service (PMI EOF
    // unblocks any surviving ranks).
    job.mpx->abort("job settled");
    job.mpx.reset();
  }

  if (status == 0) {
    job.rec.status = JobStatus::kDone;
    job.rec.finished_at = machine_->engine().now();
    ++completed_;
    if (job.settled) job.settled->open();
    if (hooks_.on_job_finish) hooks_.on_job_finish(job.rec);
  } else if (job.rec.attempts < config_.max_attempts && !job.deadline_passed) {
    job.rec.status = JobStatus::kPending;
    queue_.push_back(id);
  } else {
    job.rec.status = JobStatus::kFailed;
    job.rec.finished_at = machine_->engine().now();
    ++failed_;
    if (job.settled) job.settled->open();
    if (hooks_.on_job_finish) hooks_.on_job_finish(job.rec);
  }
  kick();
  check_all_done();
}

// --- Worker liveness ---------------------------------------------------------

void Service::liveness_check(WorkerId wid) {
  auto it = workers_.find(wid);
  if (it == workers_.end()) return;
  Worker& w = it->second;
  // Only busy workers are under a liveness deadline: an idle worker owes
  // us nothing (and pinging while idle would keep the simulation alive
  // forever — see WorkerConfig::heartbeat_interval).
  if (!w.connected || w.evicted || !w.busy) return;
  const sim::Duration elapsed = machine_->engine().now() - w.last_heard;
  if (elapsed >= config_.worker_liveness_timeout) {
    evict_worker(wid);
  } else {
    // Heard from it since the timer was armed; re-check when the current
    // silence would exceed the deadline.
    w.liveness_timer = machine_->engine().call_in(
        config_.worker_liveness_timeout - elapsed,
        [this, wid] { liveness_check(wid); });
  }
}

void Service::evict_worker(WorkerId wid) {
  Worker& w = workers_.at(wid);
  if (!w.connected || w.evicted) return;
  // Disregard, don't disconnect: the socket stays open so a worker that
  // was merely wedged (stall drains, hang released) can announce itself
  // with "ready" and be re-enlisted.
  w.evicted = true;
  w.connected = false;
  --connected_;
  ++evicted_;
  ++node_evictions_[w.node];
  w.liveness_timer.cancel();
  std::erase(ready_, wid);
  if (w.busy && w.job != 0) {
    // The in-flight attempt cannot be trusted to finish; fail it so the
    // job retries on live workers ("minimizing their impact", §5).
    job_finished(w.job, /*status=*/1);
  }
}

bool Service::node_blacklisted(os::NodeId node) const {
  if (config_.blacklist_after <= 0) return false;
  auto it = node_evictions_.find(node);
  return it != node_evictions_.end() && it->second >= config_.blacklist_after;
}

void Service::release_undispatched(const std::vector<WorkerId>& claimed,
                                   std::size_t from_idx) {
  bool released = false;
  for (std::size_t k = from_idx; k < claimed.size(); ++k) {
    Worker& w = workers_.at(claimed[k]);
    // Only a healthy, still-claimed worker goes back to the pool; evicted
    // or disconnected ones are already accounted for elsewhere.
    if (!w.connected || w.evicted || !w.busy || w.job != 0) continue;
    w.busy = false;
    w.task_id.clear();
    w.liveness_timer.cancel();
    ready_.push_back(claimed[k]);
    released = true;
  }
  if (released) kick();
}

bool Service::ready_pool_consistent() const {
  std::set<WorkerId> seen;
  for (WorkerId wid : ready_) {
    if (!seen.insert(wid).second) return false;  // duplicate entry
    auto it = workers_.find(wid);
    if (it == workers_.end()) return false;
    const Worker& w = it->second;
    if (!w.connected || w.busy || w.evicted) return false;
  }
  return true;
}

}  // namespace jets::core
