// The stand-alone `jets` tool (§5.1): maximum-performance batch execution
// of a pre-defined task list, without the Swift layer.
//
// Given an allocation's node list, it starts the central Service on the
// login node, a configurable number of pilot workers per compute node (the
// provided "starter scripts"), submits the batch, and reports per-job
// records plus the utilization metric of Eq. (1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.hh"
#include "core/service.hh"
#include "core/worker.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "sim/stats.hh"

namespace jets::core {

struct StandaloneOptions {
  /// Pilot slots per compute node (1 on BG/P experiments of §6.1.4; one
  /// per core for the sequential-rate test of §6.1.1).
  int workers_per_node = 1;
  /// Per-worker configuration; the service address is filled in by start().
  WorkerConfig worker;
  Service::Config service;
  /// Ranks-per-worker applied to parsed "MPI: n ..." lines.
  int default_ppn = 1;
};

/// Outcome of a batch run, with the paper's Eq. (1) utilization.
struct BatchReport {
  std::vector<JobRecord> records;
  sim::Time batch_started = 0;
  sim::Time batch_finished = 0;
  std::size_t completed = 0;
  /// Jobs that did not finish: kFailed *and* kQuarantined.
  std::size_t failed = 0;
  /// Of `failed`, jobs quarantined as poison (app budget exhausted).
  std::size_t quarantined = 0;
  std::size_t total_slots = 0;

  double makespan_seconds() const {
    return sim::to_seconds(batch_finished - batch_started);
  }

  /// Eq. (1): sum over jobs of (duration x slots used) divided by
  /// (allocation slots x batch wall time). With one worker per node and one
  /// rank per worker this is exactly the paper's metric.
  double utilization() const;

  /// Distribution of successful jobs' wall times (Fig 11).
  sim::Summary wall_times() const;
};

class StandaloneJets {
 public:
  StandaloneJets(os::Machine& machine, const os::AppRegistry& apps,
                 StandaloneOptions options);

  /// Starts the service (login node) and the workers (allocation nodes).
  void start(const std::vector<os::NodeId>& allocation);

  Service& service() { return *service_; }
  const std::vector<os::Machine::Pid>& worker_pids() const { return workers_; }
  std::size_t total_slots() const { return workers_.size(); }

  /// Completes once at least `n` workers have registered (0 = all started
  /// slots). Benches use this so batch makespans exclude the pilot-boot /
  /// staging ramp, as the paper's measurements do.
  sim::Task<void> wait_workers(std::size_t n = 0);

  /// Submits jobs and completes when the whole batch has settled.
  sim::Task<BatchReport> run_batch(std::vector<JobSpec> jobs);

  /// Convenience: parse the §5.1 input format and run it.
  sim::Task<BatchReport> run_input(const std::string& input_text);

  // Crash-recovery drill — the natural wiring for a chaos kServiceCrash
  // fault (ChaosEngine::set_service_crash): crash on fire, restore from the
  // latest checkpoint `duration` later. Coroutines suspended in wait_all()
  // or wait_job() when the service crashes are never resumed (their gates
  // die with it, exactly like RPC clients of a crashed scheduler); recovery
  // harnesses poll the service's counters instead.
  /// Snapshot of the live service's scheduler state (see core/snapshot.hh).
  Snapshot checkpoint() const;
  /// Destroys the service mid-run: actors die, timers disarm, the listen
  /// port closes. Workers see EOF and (when configured with
  /// reconnect_backoff) start redialing.
  void crash_service();
  /// Fresh service restored from `snap`, started on the checkpointed listen
  /// address so redialing pilots find it. Requires service_up() == false.
  void restore_service(const Snapshot& snap);
  bool service_up() const { return service_ != nullptr; }

 private:
  os::Machine* machine_;
  const os::AppRegistry* apps_;
  StandaloneOptions options_;
  std::unique_ptr<Service> service_;
  std::vector<os::Machine::Pid> workers_;
};

/// Starts one pilot worker on `node`; returns its pid (kill it to simulate
/// a node fault, as the Fig 10 harness does).
os::Machine::Pid start_worker(os::Machine& machine, const os::AppRegistry& apps,
                              os::NodeId node, WorkerConfig config);

}  // namespace jets::core
