#include "core/chaos.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jets::core {

void ChaosEngine::attach_metrics(obs::MetricsRegistry& registry) {
  if (metrics_ == &registry) return;  // idempotent re-attach
  // Switching registries (a restored Service re-binding a fresh one): seed
  // the new registry with the counts accumulated so far, so mirrored
  // counters never run behind counters_.
  metrics_ = &registry;
  const auto sync = [this](const char* name, std::size_t v) {
    obs::Counter& c = metrics_->counter(name);
    if (c.value < v) c.inc(v - c.value);
  };
  sync("jets.chaos.pilots_killed", counters_.pilots_killed);
  sync("jets.chaos.connections_reset", counters_.connections_reset);
  sync("jets.chaos.nodes_stalled", counters_.nodes_stalled);
  sync("jets.chaos.workers_hung", counters_.workers_hung);
  sync("jets.chaos.workers_released", counters_.workers_released);
  sync("jets.chaos.nodes_degraded", counters_.nodes_degraded);
  sync("jets.chaos.services_crashed", counters_.services_crashed);
  sync("jets.chaos.services_restored", counters_.services_restored);
  sync("jets.chaos.allocations_denied", counters_.allocations_denied);
  sync("jets.chaos.allocations_stalled", counters_.allocations_stalled);
  sync("jets.chaos.allocations_preempted", counters_.allocations_preempted);
}

void ChaosEngine::bump(std::size_t ChaosCounters::* member, std::size_t d) {
  counters_.*member += d;
  if (!metrics_ || d == 0) return;
  // Fault firing is cold path; a name lookup per bump is fine.
  const char* name =
      member == &ChaosCounters::pilots_killed ? "jets.chaos.pilots_killed"
      : member == &ChaosCounters::connections_reset
          ? "jets.chaos.connections_reset"
      : member == &ChaosCounters::nodes_stalled ? "jets.chaos.nodes_stalled"
      : member == &ChaosCounters::workers_hung ? "jets.chaos.workers_hung"
      : member == &ChaosCounters::workers_released
          ? "jets.chaos.workers_released"
      : member == &ChaosCounters::services_crashed
          ? "jets.chaos.services_crashed"
      : member == &ChaosCounters::services_restored
          ? "jets.chaos.services_restored"
      : member == &ChaosCounters::allocations_denied
          ? "jets.chaos.allocations_denied"
      : member == &ChaosCounters::allocations_stalled
          ? "jets.chaos.allocations_stalled"
      : member == &ChaosCounters::allocations_preempted
          ? "jets.chaos.allocations_preempted"
          : "jets.chaos.nodes_degraded";
  metrics_->counter(name).inc(d);
}

void ChaosEngine::add_periodic(FaultKind kind, sim::Time first_at,
                               sim::Duration interval, std::size_t count,
                               sim::Duration duration) {
  for (std::size_t k = 0; k < count; ++k) {
    Fault f;
    f.at = first_at + static_cast<sim::Duration>(k) * interval;
    f.kind = kind;
    f.duration = duration;
    plan_.push_back(f);
  }
}

void ChaosEngine::start() {
  if (started_) throw std::logic_error("ChaosEngine::start called twice");
  started_ = true;
  if (nodes_.empty()) {
    nodes_.reserve(machine_->compute_node_count());
    for (std::size_t i = 0; i < machine_->compute_node_count(); ++i) {
      nodes_.push_back(static_cast<os::NodeId>(i));
    }
  }
  // Arm in plan order: equal-time faults fire FIFO in the order they were
  // added, which keeps the rng draw sequence (and thus the run) stable.
  // Fault times already behind the clock (start() is usually called after
  // the harness waited for workers) fire immediately.
  for (const Fault& f : plan_) {
    machine_->engine().call_at(std::max(f.at, machine_->engine().now()),
                               [this, f] { fire(f); });
  }
}

os::NodeId ChaosEngine::pick_node(const Fault& f) {
  if (f.node != kRandomTarget) return f.node;
  if (nodes_.empty()) throw std::logic_error("chaos: no target nodes");
  const auto idx = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(nodes_.size()) - 1));
  return nodes_[idx];
}

void ChaosEngine::fire(const Fault& f) {
  switch (f.kind) {
    case FaultKind::kKillPilot: {
      if (pilots_.empty()) return;
      const auto idx = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(pilots_.size()) - 1));
      machine_->kill(pilots_[idx]);
      pilots_.erase(pilots_.begin() + static_cast<std::ptrdiff_t>(idx));
      bump(&ChaosCounters::pilots_killed);
      break;
    }
    case FaultKind::kSocketClose: {
      bump(&ChaosCounters::connections_reset,
           machine_->network().reset_node(pick_node(f)));
      break;
    }
    case FaultKind::kSocketStall: {
      machine_->network().stall_node(pick_node(f), f.duration);
      bump(&ChaosCounters::nodes_stalled);
      break;
    }
    case FaultKind::kHangWorker: {
      if (!registry_) return;
      // Target: the first not-yet-hung control on the requested node, or a
      // random not-yet-hung one. Registration order is the deterministic
      // worker start order, so "first" is stable.
      std::vector<std::shared_ptr<WorkerHangControl>> eligible;
      for (const auto& ctl : registry_->controls) {
        if (ctl->hung()) continue;
        if (f.node != kRandomTarget && ctl->node() != f.node) continue;
        eligible.push_back(ctl);
      }
      if (eligible.empty()) return;
      std::shared_ptr<WorkerHangControl> victim;
      if (f.node != kRandomTarget) {
        victim = eligible.front();
      } else {
        const auto idx = static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(eligible.size()) - 1));
        victim = eligible[idx];
      }
      victim->hang();
      bump(&ChaosCounters::workers_hung);
      if (f.duration > 0) {
        machine_->engine().call_in(f.duration, [this, victim] {
          if (!victim->hung()) return;
          victim->release();
          bump(&ChaosCounters::workers_released);
        });
      }
      break;
    }
    case FaultKind::kServiceCrash: {
      if (!crash_cb_) return;
      crash_cb_();
      bump(&ChaosCounters::services_crashed);
      if (restore_cb_) {
        machine_->engine().call_in(f.duration, [this] {
          restore_cb_();
          bump(&ChaosCounters::services_restored);
        });
      }
      break;
    }
    case FaultKind::kAllocationDeny: {
      if (!batch_sched_) return;
      batch_sched_->inject_denials(1);
      bump(&ChaosCounters::allocations_denied);
      break;
    }
    case FaultKind::kAllocationStall: {
      if (!batch_sched_) return;
      batch_sched_->inject_stall(f.duration);
      bump(&ChaosCounters::allocations_stalled);
      break;
    }
    case FaultKind::kPreemption: {
      if (!batch_sched_) return;
      const std::vector<std::uint64_t> ids = batch_sched_->live_ids();
      if (ids.empty()) return;
      const auto idx = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1));
      if (batch_sched_->preempt(ids[idx])) {
        bump(&ChaosCounters::allocations_preempted);
      }
      break;
    }
    case FaultKind::kSlowNode: {
      const os::NodeId node = pick_node(f);
      machine_->set_node_slowdown(node, f.exec_scale, f.compute_scale);
      bump(&ChaosCounters::nodes_degraded);
      if (f.duration > 0) {
        machine_->engine().call_in(f.duration, [this, node] {
          machine_->set_node_slowdown(node, 1.0, 1.0);
        });
      }
      break;
    }
  }
}

}  // namespace jets::core
