// Service-side staging state: the in-flight stage-in table and the
// per-node cache-residency view.
//
// StageTable replaces the old std::map<std::string, StageOp> staging index
// with a digest-keyed flat table in the SoA style of core/table.hh: one
// slot per distinct blob digest, parallel arrays for the hot fields
// (digest, remaining acks) and a stable-address gate array, plus an O(1)
// digest -> slot index. Slots are permanent per digest — the set of
// distinct staged blobs is small and reused (that is the whole point of
// content addressing), and a persistent slot sidesteps every completion-
// gate lifetime question: a later restage of the same digest just re-arms
// the slot's gate.
//
// ResidencyTable is the service's model of which digests are warm on which
// node, fed by worker "staged" acks (including their eviction reports) and
// drained by worker loss. It also maintains the inverse holder index the
// replication planner prices peer copies from, and answers the data-aware
// scheduler's "how many wanted bytes are already on this node" query.
// All containers are ordered or index-addressed: every walk is
// deterministic, which the golden-manifest byte-identity gate requires.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/fabric.hh"
#include "sim/engine.hh"
#include "sim/sync.hh"

namespace jets::core {

using StageDigest = std::uint64_t;

/// In-flight stage-in fan-outs, one slot per distinct blob digest.
class StageTable {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kNone = 0xffffffffu;

  /// Slot of `d`, or kNone.
  Slot find(StageDigest d) const {
    auto it = index_.find(d);
    return it == index_.end() ? kNone : it->second;
  }

  /// Gets or creates the slot for `d` (gate created closed-able, path
  /// recorded for diagnostics/acks).
  Slot intern(StageDigest d, const std::string& path, sim::Engine& engine) {
    auto [it, inserted] = index_.try_emplace(d, static_cast<Slot>(digests_.size()));
    if (inserted) {
      digests_.push_back(d);
      paths_.push_back(path);
      remaining_.push_back(0);
      gates_.push_back(std::make_unique<sim::Gate>(engine));
      gates_.back()->open();  // nothing outstanding yet
    }
    return it->second;
  }

  StageDigest digest(Slot s) const { return digests_[s]; }
  const std::string& path(Slot s) const { return paths_[s]; }
  std::uint32_t& remaining(Slot s) { return remaining_[s]; }
  std::uint32_t remaining(Slot s) const { return remaining_[s]; }
  sim::Gate& gate(Slot s) { return *gates_[s]; }

  std::size_t size() const { return digests_.size(); }

 private:
  std::vector<StageDigest> digests_;
  std::vector<std::string> paths_;
  std::vector<std::uint32_t> remaining_;
  /// unique_ptr keeps gate addresses stable across vector growth — waiter
  /// coroutine frames hold references across co_await.
  std::vector<std::unique_ptr<sim::Gate>> gates_;
  std::unordered_map<StageDigest, Slot> index_;  // lookup-only: deterministic
};

/// Which digests are warm (acked) or in flight (sent, unacked) per node,
/// plus the inverse holder index for peer-copy planning.
class ResidencyTable {
 public:
  bool contains(net::NodeId node, StageDigest d) const {
    auto it = nodes_.find(node);
    return it != nodes_.end() && sorted_contains(it->second.resident, d);
  }
  bool pending(net::NodeId node, StageDigest d) const {
    auto it = nodes_.find(node);
    return it != nodes_.end() && sorted_contains(it->second.pending, d);
  }

  /// A stage-in for (node, d) is on the wire.
  void mark_pending(net::NodeId node, StageDigest d) {
    sorted_insert(nodes_[node].pending, d);
  }
  /// The node acked (node, d): pending -> resident, holder index updated.
  void commit(net::NodeId node, StageDigest d) {
    Cache& c = nodes_[node];
    sorted_erase(c.pending, d);
    if (sorted_insert(c.resident, d)) sorted_insert(holders_[d], node);
  }
  /// The stage-in died unacked (worker lost mid-stage).
  void clear_pending(net::NodeId node, StageDigest d) {
    auto it = nodes_.find(node);
    if (it != nodes_.end()) sorted_erase(it->second.pending, d);
  }
  /// Residency without a wire round trip (snapshot restore).
  void add(net::NodeId node, StageDigest d) { commit(node, d); }
  /// The node's cache evicted d (reported in a "staged" ack).
  void remove(net::NodeId node, StageDigest d) {
    auto it = nodes_.find(node);
    if (it == nodes_.end() || !sorted_erase(it->second.resident, d)) return;
    auto hit = holders_.find(d);
    if (hit != holders_.end()) {
      sorted_erase(hit->second, node);
      if (hit->second.empty()) holders_.erase(hit);
    }
  }

  /// Nodes holding d, ascending (the planner's peer candidates).
  std::span<const net::NodeId> holders(StageDigest d) const {
    auto it = holders_.find(d);
    if (it == holders_.end()) return {};
    return it->second;
  }

  /// Total bytes of `wanted` blobs already resident (or in flight — the
  /// data will be there) on `node`; the data-aware window score.
  std::uint64_t resident_bytes(
      net::NodeId node,
      std::span<const std::pair<StageDigest, std::uint64_t>> wanted) const {
    auto it = nodes_.find(node);
    if (it == nodes_.end()) return 0;
    std::uint64_t total = 0;
    for (const auto& [d, bytes] : wanted) {
      if (sorted_contains(it->second.resident, d) ||
          sorted_contains(it->second.pending, d)) {
        total += bytes;
      }
    }
    return total;
  }

  /// Deterministic walk over nodes with any resident digest (snapshots).
  template <typename Fn>
  void for_each_resident(Fn&& fn) const {
    for (const auto& [node, cache] : nodes_) {
      if (!cache.resident.empty()) fn(node, cache.resident);
    }
  }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Cache {
    std::vector<StageDigest> resident;  // sorted
    std::vector<StageDigest> pending;   // sorted
  };

  template <typename T>
  static bool sorted_contains(const std::vector<T>& v, T x) {
    return std::binary_search(v.begin(), v.end(), x);
  }
  template <typename T>
  static bool sorted_insert(std::vector<T>& v, T x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it != v.end() && *it == x) return false;
    v.insert(it, x);
    return true;
  }
  template <typename T>
  static bool sorted_erase(std::vector<T>& v, T x) {
    auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) return false;
    v.erase(it);
    return true;
  }

  std::map<net::NodeId, Cache> nodes_;
  std::map<StageDigest, std::vector<net::NodeId>> holders_;
};

}  // namespace jets::core
