// The JETS worker agent (pilot job).
//
// One worker occupies one scheduling slot on a compute node for the life of
// an allocation. At startup it optionally stages files (the Hydra proxy
// binary, the application image, reused input data) from the shared
// filesystem into node-local storage (§5 feature 2 — "local storage ...
// boosts startup performance"), then registers with the central JETS
// service and executes whatever command lines it is handed: Hydra proxy
// invocations for MPI jobs, or plain commands for sequential tasks.
//
// Workers are persistent — they amortize scheduler/launch costs across many
// tasks, which is the core reason JETS beats per-job mpiexec/ssh launching
// (Fig 7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "sim/sync.hh"
#include "sim/time.hh"

namespace jets::core {

/// Hang fault primitive (chaos class 3): freezes a pilot's task-handling —
/// inbound messages stop being processed, completed tasks stop being
/// reported, heartbeats stop — while the worker's socket stays *open*, so
/// the service sees silence rather than EOF. This is the failure mode §5's
/// "disregards workers that fail or hang" must catch without TCP's help.
class WorkerHangControl {
 public:
  WorkerHangControl(sim::Engine& engine, os::NodeId node)
      : node_(node), resume_(engine) {
    resume_.open();
  }

  os::NodeId node() const noexcept { return node_; }
  bool hung() const noexcept { return !resume_.is_open(); }

  void hang() { resume_.close(); }
  void release() { resume_.open(); }

  /// Awaited by the worker's actors at every handling point; blocks while
  /// hung, passes through instantly otherwise.
  sim::Gate& gate() { return resume_; }

 private:
  os::NodeId node_;
  sim::Gate resume_;
};

/// Hands each started worker's hang control to the chaos layer. Shared by
/// value through WorkerConfig; workers register themselves at startup, in
/// deterministic start order.
struct WorkerHangRegistry {
  std::vector<std::shared_ptr<WorkerHangControl>> controls;
};

struct WorkerConfig {
  /// The JETS service to register with.
  net::Address service{};
  /// Files copied shared-fs -> node-local storage before registering
  /// ("provided to the JETS start-up script as a simple list", §5).
  std::vector<std::string> stage_files;
  /// Per-task wrapper cost: the pilot script's bookkeeping, environment
  /// setup, and fork of each task. Dominated by interpreter speed — large
  /// on BG/P's 850 MHz cores, small on x86 (see bench calibration notes).
  sim::Duration task_overhead = sim::milliseconds(5);
  /// Worker-side watchdog: a task still running after this long is killed
  /// and reported failed (exit 124), so a hung application cannot wedge
  /// the pilot slot — the "hang" half of §5's fault-tolerance claim.
  /// 0 disables.
  sim::Duration task_watchdog = 0;
  /// Liveness heartbeat: while the worker has tasks outstanding it pings
  /// the service every interval, so the service can tell "busy on a long
  /// task" from "hung with the socket still open". 0 disables. Pair with
  /// Service::Config::worker_liveness_timeout (> this interval).
  sim::Duration heartbeat_interval = 0;
  /// When set, the worker registers a hang control here at startup so a
  /// chaos plan can freeze it (see WorkerHangControl).
  std::shared_ptr<WorkerHangRegistry> hang_registry;
  /// Crash-recovery redial: on EOF from the service, retry the connection
  /// with linear backoff (attempt k waits k * reconnect_backoff) instead of
  /// exiting, up to reconnect_attempts tries. The re-registration carries
  /// the pilot's outstanding task inventory so a snapshot-restored service
  /// can reconcile the pilot with its checkpointed ghost (see
  /// Service::Config::restore_grace). 0 disables — EOF ends the pilot, the
  /// pre-recovery behavior and the default for every golden benchmark.
  sim::Duration reconnect_backoff = 0;
  int reconnect_attempts = 10;
};

/// Protocol tags between worker and service (also used by Coasters):
///   worker -> service:  "reg" [node, task...]  after staging; on a
///                        crash-recovery redial the extra args list the
///                        pilot's outstanding task ids (its inventory),
///                        which the restored service uses to reconcile the
///                        pilot with its checkpointed ghost
///                       "ready"                idle, requesting work
///                       "done" [task, status, reason]
///                        task finished; reason is "app" (the command's own
///                        exit), "watchdog" (worker-side task watchdog fired,
///                        status 124) or "killed" (service-requested kill,
///                        status 137)
///                       "staged" [path]        stage-in written locally
///                        (legacy broadcast ack); the digest-addressed form
///                        is "staged" [path, d=<hex16>, e=<hex16>...] — d
///                        names the installed blob, each e reports a CAS
///                        eviction the install caused (keeps the service's
///                        residency view honest)
///                       "hb"                   liveness ping while busy
///   service -> worker:  "run" [task, n, argv..., k=v...]
///                       "kill" [task]
///                       "stagein" [path] + payload bytes (data channel:
///                        file contents pushed over this connection, §4.1);
///                        the digest-addressed form is "stagein"
///                        [path, d=<hex16>, b=<bytes>, s=<src>] where src is
///                        "push" (payload carries the bytes), "peer:<node>"
///                        (copy from that peer over the fabric) or "warm"
///                        (zero-byte probe of a cache-resident blob) — see
///                        net/staging.hh for the codec
inline constexpr const char* kMsgRegister = "reg";
inline constexpr const char* kMsgReady = "ready";
inline constexpr const char* kMsgDone = "done";
inline constexpr const char* kMsgPing = "hb";
inline constexpr const char* kMsgRun = "run";
inline constexpr const char* kMsgKill = "kill";
inline constexpr const char* kMsgStageIn = "stagein";
inline constexpr const char* kMsgStaged = "staged";

/// Builds a "run" message for `task_id` executing `argv` with env `vars`.
net::Message make_run_message(const std::string& task_id,
                              const std::vector<std::string>& argv,
                              const std::map<std::string, std::string>& vars);

/// Decoded form of a "run" message.
struct RunRequest {
  std::string task_id;
  std::vector<std::string> argv;
  std::map<std::string, std::string> vars;
};
RunRequest parse_run_message(const net::Message& m);

/// Builds the worker agent program. `apps` resolves task argv[0]s and must
/// outlive all workers. Install into a registry or exec directly via
/// run_command.
os::Program worker_program(const os::AppRegistry& apps, WorkerConfig config);

}  // namespace jets::core
