// Snapshot codec + the two Service halves that depend on it:
// checkpoint() (live state -> Snapshot) and apply_snapshot()
// (Snapshot -> freshly constructed service). See snapshot.hh for the wire
// format and DESIGN.md §10 for the determinism argument.
#include "core/snapshot.hh"

#include <algorithm>
#include <bit>
#include <sstream>
#include <unordered_map>

#include "core/service.hh"
#include "obs/tracer.hh"

namespace jets::core {

namespace {

// Section tags. Values are wire protocol: never renumber, only append.
enum SectionTag : std::uint16_t {
  kMeta = 1,      // required
  kCounters = 2,  // optional
  kJobs = 3,      // required
  kQueue = 4,     // required
  kWorkers = 5,   // required
  kNodes = 6,     // optional
  kRng = 7,       // required
  kJournal = 8,   // optional
  kStaging = 9,   // optional
  kElastic = 10,  // optional
};

constexpr std::uint8_t kFlagLittleEndian = 0x01;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

  /// Appends a complete tagged section built by `body` (payload length is
  /// back-patched, so sections compose without a second serialization pass).
  template <typename Body>
  void section(std::uint16_t tag, Body&& body) {
    u16(tag);
    const std::size_t len_at = buf_.size();
    u64(0);  // placeholder
    const std::size_t begin = buf_.size();
    body(*this);
    const std::uint64_t len = buf_.size() - begin;
    for (int i = 0; i < 8; ++i) {
      buf_[len_at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(len >> (8 * i));
    }
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }
  void skip(std::size_t n) { take(n); }
  /// Bounded view of the next `n` bytes (one section's payload), consumed
  /// from this reader — a corrupt section can never read past its length.
  Reader sub(std::size_t n) { return Reader(take(n), n); }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (n > size_ - pos_) throw SnapshotError("snapshot truncated");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  std::uint64_t le(std::size_t n) {
    const std::uint8_t* p = take(n);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) v |= std::uint64_t{p[i]} << (8 * i);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void write_retry(Writer& w, const RetryPolicy& p) {
  w.i32(p.max_attempts);
  w.boolean(p.infra_exempt);
  w.i32(p.max_infra_failures);
  w.i64(p.backoff_base);
  w.f64(p.backoff_factor);
  w.i64(p.backoff_max);
  w.f64(p.backoff_jitter);
  w.u64(p.jitter_seed);
}

RetryPolicy read_retry(Reader& r) {
  RetryPolicy p;
  p.max_attempts = r.i32();
  p.infra_exempt = r.boolean();
  p.max_infra_failures = r.i32();
  p.backoff_base = r.i64();
  p.backoff_factor = r.f64();
  p.backoff_max = r.i64();
  p.backoff_jitter = r.f64();
  p.jitter_seed = r.u64();
  return p;
}

void write_spec(Writer& w, const JobSpec& s) {
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.i32(s.nprocs);
  w.i32(s.ppn);
  w.u32(static_cast<std::uint32_t>(s.argv.size()));
  for (const std::string& a : s.argv) w.str(a);
  w.u32(static_cast<std::uint32_t>(s.vars.size()));
  for (const auto& [k, v] : s.vars) {
    w.str(k);
    w.str(v);
  }
  w.i64(s.timeout);
  w.i32(s.priority);
  w.boolean(s.retry.has_value());
  if (s.retry) write_retry(w, *s.retry);
  w.u32(static_cast<std::uint32_t>(s.stage_files.size()));
  for (const std::string& f : s.stage_files) w.str(f);
  w.i64(s.expected_runtime);
}

JobSpec read_spec(Reader& r) {
  JobSpec s;
  const std::uint8_t kind = r.u8();
  if (kind > 1) throw SnapshotError("snapshot: bad job kind");
  s.kind = static_cast<JobKind>(kind);
  s.nprocs = r.i32();
  s.ppn = r.i32();
  for (std::uint32_t n = r.u32(); n > 0; --n) s.argv.push_back(r.str());
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    std::string k = r.str();
    s.vars[std::move(k)] = r.str();
  }
  s.timeout = r.i64();
  s.priority = r.i32();
  if (r.boolean()) s.retry = read_retry(r);
  for (std::uint32_t n = r.u32(); n > 0; --n) s.stage_files.push_back(r.str());
  s.expected_runtime = r.i64();
  return s;
}

FailureReason read_reason(Reader& r) {
  const std::uint8_t v = r.u8();
  if (v >= kFailureReasonCount) throw SnapshotError("snapshot: bad failure reason");
  return static_cast<FailureReason>(v);
}

void write_record(Writer& w, const JobRecord& rec) {
  w.u64(rec.id);
  write_spec(w, rec.spec);
  w.u8(static_cast<std::uint8_t>(rec.status));
  w.i32(rec.attempts);
  w.i32(rec.app_failures);
  w.i32(rec.infra_failures);
  w.u8(static_cast<std::uint8_t>(rec.last_reason));
  w.u32(static_cast<std::uint32_t>(rec.history.size()));
  for (const AttemptRecord& a : rec.history) {
    w.i32(a.attempt);
    w.i64(a.started_at);
    w.i64(a.ended_at);
    w.i32(a.exit_status);
    w.u8(static_cast<std::uint8_t>(a.reason));
    w.i64(a.backoff);
  }
  w.u32(static_cast<std::uint32_t>(rec.nodes.size()));
  for (net::NodeId n : rec.nodes) w.u32(n);
  w.i64(rec.submitted_at);
  w.i64(rec.started_at);
  w.i64(rec.finished_at);
}

JobRecord read_record(Reader& r) {
  JobRecord rec;
  rec.id = r.u64();
  rec.spec = read_spec(r);
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(JobStatus::kQuarantined)) {
    throw SnapshotError("snapshot: bad job status");
  }
  rec.status = static_cast<JobStatus>(status);
  rec.attempts = r.i32();
  rec.app_failures = r.i32();
  rec.infra_failures = r.i32();
  rec.last_reason = read_reason(r);
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    AttemptRecord a;
    a.attempt = r.i32();
    a.started_at = r.i64();
    a.ended_at = r.i64();
    a.exit_status = r.i32();
    a.reason = read_reason(r);
    a.backoff = r.i64();
    rec.history.push_back(a);
  }
  for (std::uint32_t n = r.u32(); n > 0; --n) rec.nodes.push_back(r.u32());
  rec.submitted_at = r.i64();
  rec.started_at = r.i64();
  rec.finished_at = r.i64();
  return rec;
}

void write_span(Writer& w, const obs::Span& s) {
  w.u64(s.id);
  w.u64(s.parent);
  w.str(s.name);
  w.u64(s.track);
  w.i64(s.begin);
  w.i64(s.end);
  w.u32(static_cast<std::uint32_t>(s.attrs.size()));
  for (const obs::Attr& a : s.attrs) {
    w.str(a.key);
    w.str(a.value);
  }
}

obs::Span read_span(Reader& r) {
  obs::Span s;
  s.id = r.u64();
  s.parent = r.u64();
  s.name = r.str();
  s.track = r.u64();
  s.begin = r.i64();
  s.end = r.i64();
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    obs::Attr a;
    a.key = r.str();
    a.value = r.str();
    s.attrs.push_back(std::move(a));
  }
  return s;
}

}  // namespace

// --- Snapshot <-> bytes ------------------------------------------------------

std::vector<std::uint8_t> Snapshot::serialize() const {
  Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u8(kFlagLittleEndian);
  w.section(kMeta, [&](Writer& s) {
    s.i64(taken_at);
    s.u32(addr.node);
    s.u32(addr.port);
    s.u64(next_worker_seq);
    s.u64(next_task);
    s.u64(peak_capacity);
  });
  w.section(kRng, [&](Writer& s) { s.str(rng_state); });
  w.section(kCounters, [&](Writer& s) {
    s.u32(static_cast<std::uint32_t>(counters.size()));
    for (const auto& [name, value] : counters) {
      s.str(name);
      s.u64(value);
    }
  });
  w.section(kJobs, [&](Writer& s) {
    s.u64(jobs.size());
    for (const JobSnap& j : jobs) {
      write_record(s, j.rec);
      s.str(j.task_id);
      s.u32(static_cast<std::uint32_t>(j.assigned_seq.size()));
      for (std::uint64_t seq : j.assigned_seq) s.u64(seq);
      s.boolean(j.in_backoff);
      s.i64(j.retry_at);
      s.i64(j.timeout_at);
      s.boolean(j.deadline_passed);
    }
  });
  w.section(kQueue, [&](Writer& s) {
    s.u64(queue_order.size());
    for (JobId id : queue_order) s.u64(id);
  });
  w.section(kWorkers, [&](Writer& s) {
    s.u64(workers.size());
    for (const WorkerSnap& ws : workers) {
      s.u64(ws.seq);
      s.u32(ws.node);
      s.boolean(ws.connected);
      s.boolean(ws.busy);
      s.boolean(ws.evicted);
      s.u64(ws.job);
      s.str(ws.task_id);
      s.i64(ws.last_heard);
      s.boolean(ws.ready);
      s.u64(ws.ready_rank);
    }
  });
  w.section(kNodes, [&](Writer& s) {
    s.u32(static_cast<std::uint32_t>(node_health.size()));
    for (const NodeHealthSnap& nh : node_health) {
      s.u32(nh.node);
      s.i32(nh.evictions);
      s.boolean(nh.banned);
      s.i64(nh.banned_until);
    }
  });
  w.section(kStaging, [&](Writer& s) {
    s.u32(static_cast<std::uint32_t>(blobs.size()));
    for (const BlobSnap& b : blobs) {
      s.str(b.path);
      s.u64(b.digest);
      s.u64(b.bytes);
    }
    s.u32(static_cast<std::uint32_t>(node_caches.size()));
    for (const NodeCacheSnap& nc : node_caches) {
      s.u32(nc.node);
      s.u32(static_cast<std::uint32_t>(nc.digests.size()));
      for (std::uint64_t d : nc.digests) s.u64(d);
    }
  });
  w.section(kElastic, [&](Writer& s) {
    s.u64(elastic_capacity);
    s.u32(static_cast<std::uint32_t>(elastic.size()));
    for (const ElasticNodeSnap& en : elastic) {
      s.u32(en.node);
      s.i64(en.expires_at);
      s.boolean(en.draining);
      s.i64(en.drain_at);
    }
  });
  w.section(kJournal, [&](Writer& s) {
    s.u64(journal.size());
    for (const obs::Span& sp : journal) write_span(s, sp);
  });
  return w.bytes();
}

Snapshot Snapshot::parse(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes.data(), bytes.size());
  if (r.u32() != kMagic) throw SnapshotError("snapshot: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw SnapshotError("snapshot: unsupported version " + std::to_string(version));
  }
  if ((r.u8() & kFlagLittleEndian) == 0) {
    throw SnapshotError("snapshot: unsupported byte order");
  }
  Snapshot out;
  bool have_meta = false, have_rng = false, have_jobs = false,
       have_queue = false, have_workers = false;
  while (!r.done()) {
    const std::uint16_t tag = r.u16();
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) throw SnapshotError("snapshot truncated");
    Reader s = r.sub(static_cast<std::size_t>(len));
    switch (tag) {
      case kMeta:
        out.taken_at = s.i64();
        out.addr.node = s.u32();
        out.addr.port = s.u32();
        out.next_worker_seq = s.u64();
        out.next_task = s.u64();
        out.peak_capacity = s.u64();
        have_meta = true;
        break;
      case kRng:
        out.rng_state = s.str();
        have_rng = true;
        break;
      case kCounters:
        for (std::uint32_t n = s.u32(); n > 0; --n) {
          std::string name = s.str();
          out.counters.emplace_back(std::move(name), s.u64());
        }
        break;
      case kJobs:
        for (std::uint64_t n = s.u64(); n > 0; --n) {
          JobSnap j;
          j.rec = read_record(s);
          j.task_id = s.str();
          for (std::uint32_t k = s.u32(); k > 0; --k) {
            j.assigned_seq.push_back(s.u64());
          }
          j.in_backoff = s.boolean();
          j.retry_at = s.i64();
          j.timeout_at = s.i64();
          j.deadline_passed = s.boolean();
          out.jobs.push_back(std::move(j));
        }
        have_jobs = true;
        break;
      case kQueue:
        for (std::uint64_t n = s.u64(); n > 0; --n) {
          out.queue_order.push_back(s.u64());
        }
        have_queue = true;
        break;
      case kWorkers:
        for (std::uint64_t n = s.u64(); n > 0; --n) {
          WorkerSnap ws;
          ws.seq = s.u64();
          ws.node = s.u32();
          ws.connected = s.boolean();
          ws.busy = s.boolean();
          ws.evicted = s.boolean();
          ws.job = s.u64();
          ws.task_id = s.str();
          ws.last_heard = s.i64();
          ws.ready = s.boolean();
          ws.ready_rank = s.u64();
          out.workers.push_back(std::move(ws));
        }
        have_workers = true;
        break;
      case kNodes:
        for (std::uint32_t n = s.u32(); n > 0; --n) {
          NodeHealthSnap nh;
          nh.node = s.u32();
          nh.evictions = s.i32();
          nh.banned = s.boolean();
          nh.banned_until = s.i64();
          out.node_health.push_back(nh);
        }
        break;
      case kStaging:
        for (std::uint32_t n = s.u32(); n > 0; --n) {
          BlobSnap b;
          b.path = s.str();
          b.digest = s.u64();
          b.bytes = s.u64();
          out.blobs.push_back(std::move(b));
        }
        for (std::uint32_t n = s.u32(); n > 0; --n) {
          NodeCacheSnap nc;
          nc.node = s.u32();
          for (std::uint32_t k = s.u32(); k > 0; --k) {
            nc.digests.push_back(s.u64());
          }
          out.node_caches.push_back(std::move(nc));
        }
        break;
      case kElastic:
        out.elastic_capacity = s.u64();
        for (std::uint32_t n = s.u32(); n > 0; --n) {
          ElasticNodeSnap en;
          en.node = s.u32();
          en.expires_at = s.i64();
          en.draining = s.boolean();
          en.drain_at = s.i64();
          out.elastic.push_back(en);
        }
        break;
      case kJournal:
        for (std::uint64_t n = s.u64(); n > 0; --n) {
          out.journal.push_back(read_span(s));
        }
        break;
      default:
        break;  // unknown section from a newer writer: skipped by length
    }
  }
  if (!have_meta || !have_rng || !have_jobs || !have_queue || !have_workers) {
    throw SnapshotError("snapshot: missing required section");
  }
  return out;
}

// --- Service -> Snapshot -----------------------------------------------------

Snapshot Service::checkpoint() const {
  Snapshot s;
  s.taken_at = machine_->engine().now();
  s.addr = addr_;
  s.next_worker_seq = next_worker_seq_;
  s.next_task = next_task_;
  s.peak_capacity = peak_capacity_;
  {
    std::ostringstream os;
    os << retry_rng_.generator();
    s.rng_state = os.str();
  }
  s.counters.reserve(counter_index_.size());
  for (const auto& [name, c] : counter_index_) s.counters.emplace_back(name, c->value);

  // Workers: handles are process-local, so everything cross-referencing a
  // worker is keyed by registration seq on the wire.
  std::unordered_map<WorkerId, std::uint64_t> seq_of;
  std::unordered_map<WorkerId, std::uint64_t> rank_of;
  {
    const std::vector<WorkerId> fifo = ready_.live_fifo();
    for (std::size_t i = 0; i < fifo.size(); ++i) rank_of[fifo[i]] = i + 1;
  }
  workers_.for_each([&](WorkerId wid, const Worker& w) {
    seq_of.emplace(wid, w.seq);
    WorkerSnap ws;
    ws.seq = w.seq;
    ws.node = w.node;
    ws.connected = w.connected;
    ws.busy = w.busy;
    ws.evicted = w.evicted;
    ws.job = w.job;
    ws.task_id = w.task_id;
    ws.last_heard = w.last_heard;
    if (const auto it = rank_of.find(wid); it != rank_of.end()) {
      ws.ready = true;
      ws.ready_rank = it->second;
    }
    s.workers.push_back(std::move(ws));
  });
  std::sort(s.workers.begin(), s.workers.end(),
            [](const WorkerSnap& a, const WorkerSnap& b) { return a.seq < b.seq; });

  jobs_.for_each([&](JobId, const Job& job) {
    JobSnap js;
    js.rec = job.rec;
    js.task_id = job.task_id;
    for (WorkerId wid : job.assigned) {
      if (const auto it = seq_of.find(wid); it != seq_of.end()) {
        js.assigned_seq.push_back(it->second);
      }
    }
    js.in_backoff = job.in_backoff;
    if (const auto at = job.retry_timer.fire_time()) js.retry_at = *at;
    if (const auto at = job.timeout.fire_time()) js.timeout_at = *at;
    js.deadline_passed = job.deadline_passed;
    s.jobs.push_back(std::move(js));
  });

  queue_.for_each([&](JobId id, std::uint32_t) { s.queue_order.push_back(id); });

  for (const auto& [node, h] : node_health_) {
    s.node_health.push_back(
        NodeHealthSnap{node, h.evictions, h.banned, h.banned_until});
  }

  // Elastic allocation state: a node's walltime horizon and drain progress
  // survive the crash, so a restored service keeps refusing doomed
  // placements and still requeues at the (re-armed) drain deadline.
  s.elastic_capacity = elastic_capacity_;
  for (const auto& [node, e] : node_elastic_) {
    s.elastic.push_back(
        ElasticNodeSnap{node, e.expires_at, e.draining, e.drain_at});
  }

  // Staging state: interned blobs (ascending path — blob_info_ is ordered)
  // and acked residency. Pending stage-ins are not captured: see
  // NodeCacheSnap.
  for (const auto& [path, info] : blob_info_) {
    s.blobs.push_back(BlobSnap{path, info.first, info.second});
  }
  residency_.for_each_resident(
      [&](net::NodeId node, const std::vector<StageDigest>& digests) {
        s.node_caches.push_back(NodeCacheSnap{node, digests});
      });

  if (const obs::Tracer* tr = tracer()) s.journal = tr->spans();
  return s;
}

// --- Snapshot -> Service -----------------------------------------------------

Service::Service(os::Machine& machine, const os::AppRegistry& apps,
                 os::NodeId host, Config config, const Snapshot& snap)
    : Service(machine, apps, host, std::move(config)) {
  apply_snapshot(snap);
}

void Service::apply_snapshot(const Snapshot& snap) {
  const sim::Time now = machine_->engine().now();
  addr_ = snap.addr;  // start() rebinds this exact address
  next_worker_seq_ = snap.next_worker_seq;
  next_task_ = snap.next_task;
  peak_capacity_ = snap.peak_capacity;
  {
    std::istringstream is(snap.rng_state);
    is >> retry_rng_.generator();
    if (is.fail()) throw SnapshotError("snapshot: bad rng state");
  }
  // Get-or-create by name: counters the snapshot knows and this build does
  // not (or vice versa) restore/default independently — same skip-forward
  // compatibility as unknown sections.
  for (const auto& [name, value] : snap.counters) {
    metrics_->counter(name).value = value;
  }

  // Every checkpointed worker comes back as a ghost: slot + capacity held,
  // not connected, awaiting its pilot's redial (adopt_ghost) or the
  // restore-grace reaper (reconcile_ghosts). evicted_live_ deliberately
  // stays 0 — awaiting_ already counts every ghost once, evicted or not.
  std::unordered_map<std::uint64_t, WorkerId> wid_of_seq;
  for (const WorkerSnap& ws : snap.workers) {
    Worker w;
    w.seq = ws.seq;
    w.node = ws.node;
    w.busy = ws.busy;
    w.evicted = ws.evicted;
    w.job = ws.job;
    w.task_id = ws.task_id;
    w.last_heard = ws.last_heard;
    w.connected = false;
    w.awaiting = true;
    const WorkerId wid = workers_.insert(std::move(w));
    workers_.at(wid).id = wid;
    if (!wid_of_seq.emplace(ws.seq, wid).second) {
      throw SnapshotError("snapshot: duplicate worker seq");
    }
    ++awaiting_;
  }

  // Jobs, ascending id: the dense table hands ids back out in push order,
  // so the restored table *is* the checkpointed id space.
  std::vector<JobId> restart_requeue;
  for (const JobSnap& js : snap.jobs) {
    Job job;
    job.rec = js.rec;
    job.deadline_passed = js.deadline_passed;
    const JobId id = jobs_.push_back(std::move(job));
    if (id != js.rec.id) throw SnapshotError("snapshot: job ids not dense");
    Job& j = jobs_.back();
    if (j.rec.status == JobStatus::kPending && js.in_backoff) {
      j.in_backoff = true;
      ++backing_off_;
      const sim::Time at = js.retry_at >= 0 ? std::max(js.retry_at, now) : now;
      j.retry_timer =
          machine_->engine().call_at(at, [this, id] { requeue_job(id); });
    } else if (j.rec.status == JobStatus::kRunning) {
      // Rescuable: a sequential attempt whose worker survived into the
      // checkpoint. The task may still be running on the pilot; whether it
      // actually is gets settled at reconciliation (adopt_ghost checks the
      // pilot's task inventory, reconcile_ghosts declares no-shows dead).
      std::vector<WorkerId> assigned;
      bool have_workers = !js.assigned_seq.empty();
      for (std::uint64_t seq : js.assigned_seq) {
        if (const auto it = wid_of_seq.find(seq); it != wid_of_seq.end()) {
          assigned.push_back(it->second);
        } else {
          have_workers = false;
        }
      }
      if (j.rec.spec.kind == JobKind::kSequential && !js.task_id.empty() &&
          have_workers) {
        j.task_id = js.task_id;
        j.assigned = assigned;
        task_to_job_[js.task_id] = id;
        j.restored_running = true;
        ++running_;
      } else {
        // MPI gangs cannot be rescued — the background mpiexec and its PMI
        // wiring died with the service — and neither can an attempt whose
        // workers were already gone at checkpoint time. Close the attempt
        // as kServiceRestart (blameless: charged to no budget) and requeue.
        if (!j.rec.history.empty() && j.rec.history.back().ended_at < 0) {
          AttemptRecord& att = j.rec.history.back();
          att.ended_at = now;
          att.exit_status = 1;
          att.reason = FailureReason::kServiceRestart;
        }
        j.rec.last_reason = FailureReason::kServiceRestart;
        m_failures_[static_cast<std::size_t>(FailureReason::kServiceRestart)]
            ->inc();
        j.rec.status = JobStatus::kPending;
        restart_requeue.push_back(id);
        for (WorkerId wid : assigned) {
          Worker& w = workers_.at(wid);
          if (w.job == id) {
            w.job = 0;
            w.busy = false;
            w.task_id.clear();
          }
        }
      }
    }
    // Deadlines are submission-relative and survive retries, so they are
    // re-armed for every unsettled job; one already overdue fires "now"
    // (engine order keeps this deterministic).
    if (!job_settled(j.rec.status) && js.timeout_at >= 0) {
      j.timeout = machine_->engine().call_at(
          std::max(js.timeout_at, now), [this, id] { deadline_expired(id); });
    }
  }

  // Queue: the checkpointed FIFO first (verbatim order), then the jobs whose
  // running attempts died with the service, in ascending id order.
  for (JobId id : snap.queue_order) {
    Job* j = jobs_.find(id);
    if (!j || j->rec.status != JobStatus::kPending || j->in_backoff) {
      throw SnapshotError("snapshot: queue entry is not a queued job");
    }
    queue_.push_back(id, j->rec.spec.priority,
                     static_cast<std::uint32_t>(j->rec.spec.workers_needed()));
  }
  for (JobId id : restart_requeue) {
    Job& j = jobs_.at(id);
    queue_.push_back(id, j.rec.spec.priority,
                     static_cast<std::uint32_t>(j.rec.spec.workers_needed()));
  }

  for (const NodeHealthSnap& nh : snap.node_health) {
    node_health_[nh.node] =
        NodeHealth{nh.evictions, nh.banned, nh.banned_until};
  }

  // Elastic state: horizons and drain flags verbatim; a drain deadline
  // already overdue fires "now" so the block's jobs are still requeued.
  elastic_capacity_ = snap.elastic_capacity;
  for (const ElasticNodeSnap& en : snap.elastic) {
    NodeElastic e;
    e.expires_at = en.expires_at;
    e.draining = en.draining;
    e.drain_at = en.drain_at;
    const os::NodeId node = en.node;
    if (en.draining && en.drain_at >= 0) {
      e.drain_timer = machine_->engine().call_at(
          std::max(en.drain_at, now), [this, node] { drain_deadline(node); });
    }
    node_elastic_[node] = e;
  }

  // Staging state: blob identities and acked residency survive the crash
  // (node-local caches belong to the nodes, which did not restart), so the
  // replication planner picks up warm exactly where it left off. In-flight
  // stage-ins died with the service and are re-staged on demand.
  for (const BlobSnap& b : snap.blobs) {
    blob_info_[b.path] = {b.digest, b.bytes};
  }
  for (const NodeCacheSnap& nc : snap.node_caches) {
    for (const std::uint64_t d : nc.digests) residency_.add(nc.node, d);
  }

  m_workers_connected_->set(0);
  m_jobs_running_->set(static_cast<std::int64_t>(running_));
  // Seed a *fresh* tracer (a restarted service process) with the pre-crash
  // journal. When the tracer survived the crash — same-machine restore, as
  // in the simulated drills — it already holds these spans; importing again
  // would duplicate the whole history.
  if (obs::Tracer* tr = tracer(); tr && tr->spans().empty()) {
    tr->import_spans(snap.journal);
  }

  if (!queue_.empty() || running_ != 0 || backing_off_ != 0) {
    all_done_->close();
  }
  m_restores_->inc();
  restored_at_ = now;
  if (awaiting_ > 0) {
    reconcile_timer_ = machine_->engine().call_in(
        config_.restore_grace, [this] { reconcile_ghosts(); });
  }
}

}  // namespace jets::core
