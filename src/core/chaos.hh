// Deterministic chaos engine: a scheduled fault plan over the simulated
// machine, generalizing the paper's faulty-setting protocol (§6.1.5) from
// "kill a random pilot every N seconds" to four fault classes:
//
//   kKillPilot   — SIGKILL a pilot process. Its task subtree dies with it
//                  and the service notices through the broken socket (the
//                  original Fig 10 fault).
//   kSocketClose — RST every connection touching a node: in-flight bytes
//                  vanish, both ends see EOF now (a switch port dying).
//   kSocketStall — freeze a node's network sends and deliveries for a
//                  fixed window (deep congestion, a flapping link). The
//                  connection *survives*; traffic resumes afterwards.
//   kHangWorker  — freeze a pilot's task-handling actor while its socket
//                  stays open (wedged interpreter, D-state process). Only
//                  the service-side liveness deadline can catch this.
//   kSlowNode    — multiply a node's fork/exec and compute costs (thermal
//                  throttling, a sick DIMM). Optionally heals later.
//   kServiceCrash— the service process itself dies and is restored from a
//                  checkpoint `duration` later (the service-crash-and-
//                  recover fault class). The engine only orchestrates: the
//                  harness supplies crash/restore callbacks via
//                  set_service_crash(), typically Snapshot-backed.
//   kAllocationDeny — the batch system refuses the next submit outright
//                  (site policy, exhausted fair-share). Needs
//                  set_batch_scheduler().
//   kAllocationStall — the batch queue freezes for `duration`: pending and
//                  new requests sit until the stall clears (a wedged
//                  scheduler daemon, a reservation blocking backfill).
//   kPreemption  — a granted block is revoked ahead of its walltime
//                  (backfill preemption, reservation reclaim), exercising
//                  the same drain/requeue machinery as walltime expiry.
//
// Every random choice draws from one explicitly seeded sim::Rng at fire
// time, and all faults are armed on the simulation clock, so a chaos run
// is byte-reproducible: same seed + same plan => identical execution.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/worker.hh"
#include "obs/metrics.hh"
#include "os/machine.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace jets::core {

enum class FaultKind {
  kKillPilot,
  kSocketClose,
  kSocketStall,
  kHangWorker,
  kSlowNode,
  kServiceCrash,
  kAllocationDeny,
  kAllocationStall,
  kPreemption,
};

/// Sentinel for Fault::node: pick a target deterministically (from the
/// chaos rng) at fire time.
inline constexpr os::NodeId kRandomTarget =
    std::numeric_limits<os::NodeId>::max();

/// One scheduled fault.
struct Fault {
  /// Absolute simulation time to fire at.
  sim::Time at = 0;
  FaultKind kind = FaultKind::kKillPilot;
  /// Target node for socket/slow faults, and preferred node for hangs
  /// (kKillPilot always picks a random remaining pilot).
  os::NodeId node = kRandomTarget;
  /// kSocketStall: stall window. kHangWorker: release after this long
  /// (0 = hung forever). kSlowNode: heal after this long (0 = permanent).
  sim::Duration duration = 0;
  /// kSlowNode multipliers (>= 1.0 degrades; 1.0/1.0 is a no-op heal).
  double exec_scale = 1.0;
  double compute_scale = 1.0;
};

struct ChaosCounters {
  std::size_t pilots_killed = 0;
  std::size_t connections_reset = 0;  // RST'd by kSocketClose faults
  std::size_t nodes_stalled = 0;
  std::size_t workers_hung = 0;
  std::size_t workers_released = 0;
  std::size_t nodes_degraded = 0;
  std::size_t services_crashed = 0;
  std::size_t services_restored = 0;
  std::size_t allocations_denied = 0;
  std::size_t allocations_stalled = 0;
  std::size_t allocations_preempted = 0;
};

class ChaosEngine {
 public:
  ChaosEngine(os::Machine& machine, sim::Rng rng)
      : machine_(&machine), rng_(rng) {}

  /// Candidate victims for kKillPilot faults (each killed at most once).
  void set_pilots(std::vector<os::Machine::Pid> pilots) {
    pilots_ = std::move(pilots);
  }
  /// Candidate targets for random-node socket/slow faults. Defaults to
  /// every compute node of the machine.
  void set_nodes(std::vector<os::NodeId> nodes) { nodes_ = std::move(nodes); }
  /// Source of hang controls for kHangWorker faults (workers started with
  /// WorkerConfig::hang_registry register themselves here).
  void set_hang_registry(std::shared_ptr<WorkerHangRegistry> registry) {
    registry_ = std::move(registry);
  }
  /// Callbacks for kServiceCrash faults: `crash` tears the service down
  /// (typically after taking a Snapshot), `restore` brings it back. The
  /// restore fires `duration` after the crash (0 = next event at the same
  /// time). Without these, kServiceCrash faults are inert.
  void set_service_crash(std::function<void()> crash,
                         std::function<void()> restore) {
    crash_cb_ = std::move(crash);
    restore_cb_ = std::move(restore);
  }
  /// Target for allocation faults (deny/stall/preempt). Without it those
  /// fault kinds are inert. The scheduler must outlive the engine.
  void set_batch_scheduler(os::BatchScheduler* sched) { batch_sched_ = sched; }

  /// Adds one fault to the plan. Must be called before start().
  void add(Fault f) { plan_.push_back(f); }

  /// Adds `count` faults of `kind` at first_at, first_at + interval, ...
  /// with random targets and the given per-fault duration.
  void add_periodic(FaultKind kind, sim::Time first_at, sim::Duration interval,
                    std::size_t count, sim::Duration duration = 0);

  /// Arms the whole plan on the engine clock. Call once.
  void start();

  const ChaosCounters& counters() const { return counters_; }
  /// Pilots not yet killed (FaultInjector-compatible accounting).
  std::size_t pilots_remaining() const { return pilots_.size(); }

  /// Mirrors every ChaosCounters bump into `registry` as "jets.chaos.*"
  /// counters, so a harness snapshotting one registry sees injected-fault
  /// counts next to the service's failure taxonomy. Call before start();
  /// the registry must outlive the engine. Idempotent: re-attaching the
  /// same registry is a no-op, and attaching a different one first syncs
  /// the accumulated counts into it — a restored Service re-binding its
  /// registry may call this again safely.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  void fire(const Fault& f);
  /// ++counters_.<member> mirrored to the registry when attached.
  void bump(std::size_t ChaosCounters::* member, std::size_t d = 1);
  /// Resolves a fault's target node (drawing from rng_ when random).
  os::NodeId pick_node(const Fault& f);

  os::Machine* machine_;
  sim::Rng rng_;
  std::vector<Fault> plan_;
  std::vector<os::Machine::Pid> pilots_;
  std::vector<os::NodeId> nodes_;
  std::shared_ptr<WorkerHangRegistry> registry_;
  std::function<void()> crash_cb_;
  std::function<void()> restore_cb_;
  os::BatchScheduler* batch_sched_ = nullptr;
  ChaosCounters counters_;
  obs::MetricsRegistry* metrics_ = nullptr;
  bool started_ = false;
};

}  // namespace jets::core
