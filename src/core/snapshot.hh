// Versioned, self-describing binary serialization of the full Service
// scheduler state — the checkpoint half of crash recovery (ROADMAP item 5).
//
// A Snapshot is an explicit inventory of every piece of mutable scheduler
// state: the append-only job table (records, per-attempt FailureReason
// history, retry/backoff budgets), the worker table keyed by registration
// seq (SlotMap handles are process-local and never serialized), the
// pending-queue FIFO order, blacklist/probation state, the deadlines of
// every service-owned engine timer (re-armed on restore), the retry rng
// stream, the metrics counters, and the obs span journal.
//
// Wire format (all integers little-endian, fixed-width):
//
//   header:   magic u32 ("JETS") | version u32 | flags u8 (bit0 = LE)
//   sections: { tag u16 | length u64 | payload[length] } ...
//
// Sections are tagged and length-prefixed so a reader can *skip* sections
// it does not understand (forward compatibility: a newer writer may append
// sections an old reader ignores). Strings are u32 length + bytes; bools
// are one byte; times/durations are two's-complement i64; doubles are
// their IEEE-754 bit pattern as u64. Truncated input, a bad magic, an
// unsupported version, or a missing required section throws SnapshotError.
//
// What is NOT captured (and why replay still works — see DESIGN.md §10):
// engine-internal event/actor state, in-flight network messages, worker-
// side pilot state, live mpiexec gangs, histograms (distribution summaries
// are observability, not scheduler state), and open socket endpoints.
// Restore compensates through reconciliation: every checkpointed worker
// returns as a "ghost" until its pilot redials and reclaims it, running
// MPI attempts are requeued with kServiceRestart (never charged to retry
// budgets), and sequential attempts are rescued when the redialing pilot
// still announces their task id.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/job.hh"
#include "net/socket.hh"
#include "obs/span.hh"
#include "sim/time.hh"

namespace jets::core {

/// Malformed snapshot input (bad magic/version, truncation, inconsistent
/// cross-references such as a queue entry naming a non-pending job).
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One checkpointed worker, keyed by registration seq (stable across
/// restore; SlotMap handles are not). `ready`/`ready_rank` record the
/// ready-pool membership for audit and round-trip fidelity; restore ignores
/// them — a ghost re-enters the pool only when its pilot redials and sends
/// "ready" again, which is what makes the pool trustworthy after a crash.
struct WorkerSnap {
  std::uint64_t seq = 0;
  std::uint32_t node = 0;
  bool connected = false;
  bool busy = false;
  bool evicted = false;
  JobId job = 0;
  std::string task_id;
  sim::Time last_heard = 0;
  bool ready = false;
  std::uint64_t ready_rank = 0;  // 1-based FIFO position; 0 = not pooled

  friend bool operator==(const WorkerSnap&, const WorkerSnap&) = default;
};

/// One checkpointed job: the full JobRecord plus the scheduler-side state
/// that does not live in the record. Timer state is serialized as absolute
/// deadlines (-1 = not armed) and re-armed on restore, clamped to `now`.
struct JobSnap {
  JobRecord rec;
  std::string task_id;                     // outstanding sequential task
  std::vector<std::uint64_t> assigned_seq; // attempt's workers, by seq
  bool in_backoff = false;
  sim::Time retry_at = -1;    // backoff timer deadline
  sim::Time timeout_at = -1;  // job deadline timer
  bool deadline_passed = false;

  friend bool operator==(const JobSnap&, const JobSnap&) = default;
};

/// One content-addressed blob the service has interned for staging
/// (path -> digest/size). Restored into blob_info_ so post-restore jobs
/// agree with pre-crash jobs on every blob identity.
struct BlobSnap {
  std::string path;
  std::uint64_t digest = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const BlobSnap&, const BlobSnap&) = default;
};

/// One node's warm-cache residency: digests the node has *acked* (sorted
/// ascending). In-flight stage-ins are deliberately not captured — they
/// die with the crash and are simply re-staged on demand, exactly like a
/// worker lost mid-stage.
struct NodeCacheSnap {
  std::uint32_t node = 0;
  std::vector<std::uint64_t> digests;

  friend bool operator==(const NodeCacheSnap&, const NodeCacheSnap&) = default;
};

/// Per-node elastic-allocation state (walltime horizon + drain progress);
/// present only for runs driven by an elastic allocator. Drain deadlines
/// are re-armed on restore (clamped to `now`), so a crash between a drain
/// start and its deadline still requeues the block's jobs.
struct ElasticNodeSnap {
  std::uint32_t node = 0;
  sim::Time expires_at = -1;
  bool draining = false;
  sim::Time drain_at = -1;

  friend bool operator==(const ElasticNodeSnap&, const ElasticNodeSnap&) =
      default;
};

/// Per-node blacklist/probation state.
struct NodeHealthSnap {
  std::uint32_t node = 0;
  std::int32_t evictions = 0;
  bool banned = false;
  sim::Time banned_until = -1;

  friend bool operator==(const NodeHealthSnap&, const NodeHealthSnap&) = default;
};

struct Snapshot {
  static constexpr std::uint32_t kMagic = 0x5354454a;  // "JETS" as LE bytes
  static constexpr std::uint32_t kVersion = 1;

  /// Engine time the checkpoint was taken.
  sim::Time taken_at = 0;
  /// The service's bound listen address; restore rebinds it so surviving
  /// pilots redialing their configured endpoint reach the new incarnation.
  net::Address addr{};
  std::uint64_t next_worker_seq = 1;
  std::uint64_t next_task = 1;
  std::uint64_t peak_capacity = 0;
  /// std::mt19937_64 stream state of the retry-jitter rng (its canonical
  /// text serialization), so post-restore backoff draws continue the
  /// checkpointed sequence.
  std::string rng_state;
  /// Service counters by registry name (histograms are not captured).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Every job, ascending dense id (index i holds id i+1).
  std::vector<JobSnap> jobs;
  /// Live pending-queue FIFO, front first.
  std::vector<JobId> queue_order;
  /// Every worker, ascending seq.
  std::vector<WorkerSnap> workers;
  /// Blacklist state, ascending node.
  std::vector<NodeHealthSnap> node_health;
  /// Elastic allocation state, ascending node (empty on non-elastic runs).
  std::vector<ElasticNodeSnap> elastic;
  /// Elastic capacity floor (see Service::set_elastic_capacity).
  std::uint64_t elastic_capacity = 0;
  /// Interned staging blobs, ascending path.
  std::vector<BlobSnap> blobs;
  /// Warm-cache residency, ascending node (nodes with any resident digest).
  std::vector<NodeCacheSnap> node_caches;
  /// The obs span journal (empty when no tracer was attached); restore
  /// imports it so the restored run's trace stays contiguous.
  std::vector<obs::Span> journal;

  std::vector<std::uint8_t> serialize() const;
  static Snapshot parse(const std::vector<std::uint8_t>& bytes);

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

}  // namespace jets::core
