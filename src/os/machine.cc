#include "os/machine.hh"

#include <stdexcept>

namespace jets::os {

Machine::Machine(sim::Engine& engine, MachineSpec spec)
    : engine_(&engine), spec_(std::move(spec)),
      network_(engine, spec_.fabric),
      shared_fs_(engine, spec_.shared_fs_latency, spec_.shared_fs_bps) {
  if (!spec_.fabric) throw std::invalid_argument("MachineSpec needs a fabric");
  nodes_.reserve(spec_.compute_nodes + 1);
  for (std::size_t i = 0; i <= spec_.compute_nodes; ++i) {
    // The last entry is the login/service node; same NodeSpec, which is fine
    // because service processes are modelled by explicit handler costs.
    nodes_.push_back(std::make_unique<Node>(
        engine, static_cast<NodeId>(i), spec_.node));
  }
}

Machine::~Machine() { engine_->shutdown(); }

// --- Presets -----------------------------------------------------------------
//
// Surveyor (BG/P, §6.1.1/6.1.4): 4 cores/node @ 850 MHz. Process startup
// under ZeptoOS is slow: fork/exec of a staged binary plus the JETS wrapper
// scripting comes to several hundred ms; we charge 80 ms fork/exec here and
// let the JETS worker add its script overhead (see core/worker). The
// IP-over-torus TCP stack gives the high small-message latency seen in
// Fig 8. Shared storage is PVFS/GPFS over the I/O nodes: a few ms per
// metadata op, a few GB/s aggregate.
MachineSpec Machine::surveyor(std::size_t nodes) {
  MachineSpec s;
  s.name = "surveyor-bgp";
  s.compute_nodes = nodes;
  s.node.cores = 4;
  s.node.fork_exec = sim::milliseconds(80);
  s.node.local_fs_latency = sim::microseconds(50);
  s.node.local_fs_bps = 800e6;  // ramdisk on an 850 MHz PPC450
  // One rack is 8x8x16; smaller allocations still use the same geometry.
  s.fabric = std::make_shared<net::TorusTcpFabric>(net::TorusShape{8, 8, 16});
  s.shared_fs_latency = sim::milliseconds(6);
  s.shared_fs_bps = 3.0e9;
  return s;
}

// Breadboard (x86 test cluster, §6.1.2): fast commodity nodes, GigE.
MachineSpec Machine::breadboard(std::size_t nodes) {
  MachineSpec s;
  s.name = "breadboard-x86";
  s.compute_nodes = nodes;
  s.node.cores = 8;
  s.node.fork_exec = sim::milliseconds(4);
  s.node.local_fs_latency = sim::microseconds(15);
  s.node.local_fs_bps = 2.5e9;
  s.fabric = std::make_shared<net::EthernetFabric>();
  s.shared_fs_latency = sim::milliseconds(3);
  s.shared_fs_bps = 1.5e9;
  return s;
}

// Eureka (§6.2.1): 100 nodes, 2x quad-core Xeon E5405 @ 2 GHz, 32 GB,
// GPFS. Same order of magnitude as Breadboard but with GPFS contention
// mattering for the Swift workloads.
MachineSpec Machine::eureka(std::size_t nodes) {
  MachineSpec s;
  s.name = "eureka-x86";
  s.compute_nodes = nodes;
  s.node.cores = 8;
  s.node.fork_exec = sim::milliseconds(5);
  s.node.local_fs_latency = sim::microseconds(15);
  s.node.local_fs_bps = 2.5e9;
  s.fabric = std::make_shared<net::EthernetFabric>(sim::microseconds(70), 125e6);
  s.shared_fs_latency = sim::milliseconds(5);
  s.shared_fs_bps = 2.0e9;
  return s;
}

// --- Process management --------------------------------------------------------

sim::Task<void> Machine::load_binary(NodeId node, const std::string& binary) {
  Node& n = this->node(node);
  if (n.binary_resident(binary)) {
    co_await sim::delay(n.spec().local_fs_latency);  // cache hit
  } else if (n.local_fs().exists(binary)) {
    co_await n.local_fs().read(binary);
    n.mark_binary_resident(binary);
  } else {
    // Shared-filesystem images are re-read on every exec (no coherent
    // client cache on the compute nodes).
    co_await shared_fs_.read(binary);
  }
}

sim::Task<void> Machine::run_process(NodeId node, sim::Task<void> body,
                                     ExecOptions opts) {
  const NodeSpec& spec = this->node(node).spec();
  // A chaos-degraded node pays its exec multiplier on fork and wrapper
  // startup; the scale is sampled per charge, so healing mid-run takes
  // effect on the next exec.
  auto exec_cost = [this, node](sim::Duration d) {
    const double scale = this->node(node).exec_scale();
    if (scale == 1.0) return d;
    return static_cast<sim::Duration>(static_cast<double>(d) * scale + 0.5);
  };
  if (opts.charge_fork) co_await sim::delay(exec_cost(spec.fork_exec));
  if (opts.extra_startup > 0) co_await sim::delay(exec_cost(opts.extra_startup));
  if (!opts.binary.empty()) co_await load_binary(node, opts.binary);
  co_await std::move(body);
}

Machine::Pid Machine::exec(NodeId node, std::string name, sim::Task<void> body,
                           ExecOptions opts) {
  const Pid pid = next_pid_++;
  sim::ActorId actor = engine_->spawn(
      std::move(name), run_process(node, std::move(body), std::move(opts)));
  processes_[pid] = actor;
  pid_by_actor_[actor] = pid;
  // fork semantics: if exec() was called from inside another simulated
  // process, the new process joins its tree (kill takes the whole subtree).
  if (sim::ActorId caller = engine_->running_actor(); caller != 0) {
    auto parent = pid_by_actor_.find(caller);
    if (parent != pid_by_actor_.end()) {
      children_[parent->second].push_back(pid);
    }
  }
  // Reap the table entry when the process ends (whatever the cause).
  engine_->spawn("reaper", [](Machine* m, Pid pid, sim::ActorId actor) -> sim::Task<void> {
    co_await m->engine_->join(actor);
    m->processes_.erase(pid);
    m->pid_by_actor_.erase(actor);
    m->children_.erase(pid);
  }(this, pid, actor));
  return pid;
}

bool Machine::kill(Pid pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) return false;
  // Take down the subtree first (ZeptoOS-like: the pilot script's children
  // die with it). Copy the child list: kills mutate the map.
  if (auto kids = children_.find(pid); kids != children_.end()) {
    const std::vector<Pid> copy = kids->second;
    for (Pid child : copy) kill(child);
  }
  it = processes_.find(pid);
  if (it == processes_.end()) return true;  // reaped during child kills
  const sim::ActorId actor = it->second;
  processes_.erase(it);
  pid_by_actor_.erase(actor);
  children_.erase(pid);
  return engine_->kill(actor);
}

bool Machine::alive(Pid pid) const {
  auto it = processes_.find(pid);
  return it != processes_.end() && engine_->is_live(it->second);
}

std::size_t Machine::process_count() const { return processes_.size(); }

sim::Task<void> Machine::wait(Pid pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) co_return;
  co_await engine_->join(it->second);
}

// --- BatchScheduler --------------------------------------------------------------

const char* to_string(AllocationError::Kind kind) {
  switch (kind) {
    case AllocationError::Kind::kDenied: return "denied";
    case AllocationError::Kind::kOutOfNodes: return "out-of-nodes";
    case AllocationError::Kind::kQueueStarvation: return "queue-starvation";
  }
  return "?";
}

BatchScheduler::~BatchScheduler() {
  for (auto& [id, live] : live_) live.walltime_timer.cancel();
}

sim::Task<BatchScheduler::Allocation> BatchScheduler::submit(
    std::size_t nodes, sim::Duration walltime) {
  if (nodes < policy_.min_nodes) {
    throw std::invalid_argument("allocation below site minimum node count");
  }
  if (nodes > machine_->compute_node_count()) {
    throw std::invalid_argument("allocation exceeds machine size");
  }
  if (busy_.empty()) busy_.resize(machine_->compute_node_count(), false);
  if (injected_denials_ > 0) {
    --injected_denials_;
    throw AllocationError(AllocationError::Kind::kDenied,
                          "allocation denied by site policy");
  }

  // Queue wait grows with request size (crude model of backfill pressure).
  const sim::Duration mean_wait =
      policy_.base_queue_wait +
      policy_.wait_per_node * static_cast<sim::Duration>(nodes);
  sim::Duration wait = rng_.exponential_duration(mean_wait);
  const sim::Time entered = machine_->engine().now();
  // A stalled queue holds every pending request until the stall clears.
  if (stall_until_ > entered + wait) wait = stall_until_ - entered;
  if (policy_.submit_timeout > 0 && wait > policy_.submit_timeout) {
    co_await sim::delay(policy_.submit_timeout);
    throw AllocationError(AllocationError::Kind::kQueueStarvation,
                          "allocation request starved in the batch queue");
  }
  co_await sim::delay(wait);
  co_await sim::delay(policy_.boot_time);

  Allocation alloc;
  alloc.nodes.reserve(nodes);
  for (std::size_t i = 0; i < busy_.size() && alloc.nodes.size() < nodes; ++i) {
    if (!busy_[i]) {
      busy_[i] = true;
      alloc.nodes.push_back(static_cast<NodeId>(i));
    }
  }
  if (alloc.nodes.size() < nodes) {
    for (NodeId id : alloc.nodes) busy_[id] = false;
    throw AllocationError(AllocationError::Kind::kOutOfNodes,
                          "machine out of free nodes");
  }
  alloc.id = next_alloc_id_++;
  alloc.started_at = machine_->engine().now();
  alloc.expires_at = alloc.started_at + walltime;
  live_.emplace(alloc.id, Live{alloc, {}, {}});
  co_return alloc;
}

void BatchScheduler::release(const Allocation& alloc) {
  auto it = live_.find(alloc.id);
  if (it == live_.end()) return;  // stale copy or double release: no-op
  it->second.walltime_timer.cancel();
  for (NodeId id : it->second.alloc.nodes) busy_.at(id) = false;
  live_.erase(it);
}

void BatchScheduler::enforce_walltime(const Allocation& alloc,
                                      std::vector<Machine::Pid> pilots) {
  auto it = live_.find(alloc.id);
  if (it == live_.end()) return;  // already released: nothing to enforce
  it->second.pilots = std::move(pilots);
  it->second.walltime_timer.cancel();
  const std::uint64_t id = alloc.id;
  it->second.walltime_timer =
      machine_->engine().call_at(it->second.alloc.expires_at,
                                 [this, id] { expire(id); });
}

void BatchScheduler::expire(std::uint64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  for (Machine::Pid pid : it->second.pilots) machine_->kill(pid);
  for (NodeId n : it->second.alloc.nodes) busy_.at(n) = false;
  live_.erase(it);
}

bool BatchScheduler::preempt(std::uint64_t id) {
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  const Allocation alloc = it->second.alloc;
  // Handler runs before any pilot dies so the service can drain/requeue
  // the allocation's jobs synchronously — nothing is lost to the kill.
  if (on_preempt_) on_preempt_(alloc);
  it = live_.find(id);  // the handler may have released it already
  if (it == live_.end()) return true;
  it->second.walltime_timer.cancel();
  for (Machine::Pid pid : it->second.pilots) machine_->kill(pid);
  for (NodeId n : it->second.alloc.nodes) busy_.at(n) = false;
  live_.erase(it);
  return true;
}

void BatchScheduler::inject_stall(sim::Duration window) {
  const sim::Time until = machine_->engine().now() + window;
  if (until > stall_until_) stall_until_ = until;
}

std::vector<std::uint64_t> BatchScheduler::live_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(live_.size());
  for (const auto& [id, live] : live_) ids.push_back(id);
  return ids;
}

const BatchScheduler::Allocation* BatchScheduler::live_allocation(
    std::uint64_t id) const {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second.alloc;
}

std::size_t BatchScheduler::free_nodes() const {
  if (busy_.empty()) return machine_->compute_node_count();
  std::size_t n = 0;
  for (bool b : busy_) n += b ? 0 : 1;
  return n;
}

}  // namespace jets::os
