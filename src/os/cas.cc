#include "os/cas.hh"

namespace jets::os {

CasDigest cas_digest(std::string_view path, std::uint64_t bytes) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (char c : path) mix(static_cast<std::uint8_t>(c));
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(bytes >> (8 * i)));
  return h;
}

std::string cas_digest_hex(CasDigest d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[d & 0xf];
    d >>= 4;
  }
  return out;
}

CasDigest cas_digest_from_hex(std::string_view hex) {
  if (hex.size() != 16) return 0;
  CasDigest d = 0;
  for (char c : hex) {
    d <<= 4;
    if (c >= '0' && c <= '9') {
      d |= static_cast<CasDigest>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d |= static_cast<CasDigest>(c - 'a' + 10);
    } else {
      return 0;
    }
  }
  return d;
}

sim::Task<std::vector<CasDigest>> CasStore::put(CasDigest d, std::string path,
                                                std::uint64_t bytes) {
  std::vector<CasDigest> evicted;
  auto it = entries_.find(d);
  if (it != entries_.end()) {
    ++stats_.hits;
    lru_.erase(it->second.tick);
    it->second.tick = ++next_tick_;
    lru_.emplace(it->second.tick, d);
    co_return evicted;
  }
  if (capacity_ > 0 && bytes <= capacity_) {
    make_room(bytes, &evicted);
  }
  ++stats_.insertions;
  stored_bytes_ += bytes;
  Entry e;
  e.path = path;
  e.bytes = bytes;
  e.tick = ++next_tick_;
  // Register (and pin) before the backing write so a concurrent put of the
  // same digest dedups against the in-flight insertion instead of writing
  // twice, and so the entry cannot be evicted out from under its own write.
  e.refs = 1;
  entries_.emplace(d, std::move(e));
  lru_.emplace(next_tick_, d);
  co_await backing_->write(path, bytes);
  unpin(d);
  co_return evicted;
}

bool CasStore::touch(CasDigest d) {
  auto it = entries_.find(d);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.erase(it->second.tick);
  it->second.tick = ++next_tick_;
  lru_.emplace(it->second.tick, d);
  return true;
}

void CasStore::pin(CasDigest d) {
  auto it = entries_.find(d);
  if (it != entries_.end()) ++it->second.refs;
}

void CasStore::unpin(CasDigest d) {
  auto it = entries_.find(d);
  if (it != entries_.end() && it->second.refs > 0) --it->second.refs;
}

void CasStore::make_room(std::uint64_t need, std::vector<CasDigest>* out) {
  auto lit = lru_.begin();
  while (stored_bytes_ + need > capacity_ && lit != lru_.end()) {
    const CasDigest victim = lit->second;
    auto eit = entries_.find(victim);
    if (eit->second.refs > 0) {  // pinned: skip, try the next-oldest
      ++lit;
      continue;
    }
    stored_bytes_ -= eit->second.bytes;
    backing_->remove(eit->second.path);
    entries_.erase(eit);
    lit = lru_.erase(lit);
    ++stats_.evictions;
    out->push_back(victim);
  }
}

}  // namespace jets::os
