#include "os/fairshare.hh"

#include <cmath>

namespace jets::os {

void FairShareServer::advance_clock() {
  const sim::Time now = engine_->now();
  if (now > clock_updated_at_ && !transfers_.empty()) {
    const double dt = sim::to_seconds(now - clock_updated_at_);
    virtual_clock_ += dt * bps_ / static_cast<double>(transfers_.size());
  }
  clock_updated_at_ = now;
}

void FairShareServer::schedule_next_completion() {
  pending_timer_.cancel();
  if (transfers_.empty()) return;
  const double next_deadline = transfers_.begin()->first;
  const double remaining = std::max(0.0, next_deadline - virtual_clock_);
  const double real_seconds =
      remaining * static_cast<double>(transfers_.size()) / bps_;
  pending_timer_ = engine_->call_in(sim::from_seconds(real_seconds),
                                    [this] { complete_due_transfers(); });
}

void FairShareServer::complete_due_transfers() {
  advance_clock();
  // Numerical slack: anything within half a nanosecond of service is done.
  const double eps = bps_ * 0.5e-9;
  while (!transfers_.empty() &&
         transfers_.begin()->first <= virtual_clock_ + eps) {
    transfers_.begin()->second.done->open();
    transfers_.erase(transfers_.begin());
  }
  schedule_next_completion();
}

sim::Task<void> FairShareServer::transfer(std::uint64_t bytes) {
  advance_clock();
  auto done = std::make_shared<sim::Gate>(*engine_);
  Transfer t{virtual_clock_ + static_cast<double>(bytes), done};
  transfers_.emplace(t.virtual_deadline, t);
  schedule_next_completion();
  co_await done->wait();
}

}  // namespace jets::os
