// Simulated machines: compute nodes, login/service nodes, the interconnect,
// the shared parallel filesystem, and a process table.
//
// Three presets reproduce the paper's testbeds (§6):
//  * Surveyor   — IBM Blue Gene/P: 4 cores/node @ 850 MHz, ZeptoOS with
//                 IP-over-torus (TCP) messaging, RAM-disk local storage,
//                 slow process startup, PVFS/GPFS shared storage.
//  * Breadboard — x86 commodity cluster, GigE, fast fork/exec.
//  * Eureka     — 100-node x86 cluster, 2x quad-core Xeon E5405 (8 cores,
//                 32 GB) per node, GPFS (§6.2.1).
//
// Calibration constants carry comments tying them back to the paper's
// reported magnitudes; absolute values are tuned so the benchmark harnesses
// land in the paper's regimes (e.g. ~7,000 seq. launches/s on a full rack).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hh"
#include "net/socket.hh"
#include "os/cas.hh"
#include "os/filesystem.hh"
#include "sim/engine.hh"
#include "sim/random.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::obs {
class Tracer;
}

namespace jets::os {

using net::NodeId;

/// Per-node hardware/OS parameters.
struct NodeSpec {
  unsigned cores = 4;
  /// fork+exec of an already-resident binary (excludes binary I/O).
  sim::Duration fork_exec = sim::milliseconds(10);
  /// Node-local storage (ZeptoOS ramdisk / local scratch).
  sim::Duration local_fs_latency = sim::microseconds(20);
  double local_fs_bps = 1.5e9;
  /// Capacity of the node's content-addressed staging cache (os/cas.hh);
  /// 0 = unbounded. Bounds resident staged-blob bytes with LRU eviction —
  /// the ramdisk is a slice of node RAM, not a disk.
  std::uint64_t cas_capacity = 0;
};

struct MachineSpec {
  std::string name;
  std::size_t compute_nodes = 0;
  NodeSpec node;
  std::shared_ptr<const net::Fabric> fabric;
  /// Shared parallel filesystem (GPFS/PVFS) behaviour.
  sim::Duration shared_fs_latency = sim::milliseconds(4);
  double shared_fs_bps = 2.0e9;
};

/// One compute (or login) node.
class Node {
 public:
  Node(sim::Engine& engine, NodeId id, const NodeSpec& spec)
      : id_(id), spec_(spec),
        local_fs_(engine, spec.local_fs_latency, spec.local_fs_bps),
        cas_(local_fs_, spec.cas_capacity),
        cores_(engine, spec.cores) {}

  NodeId id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }
  LocalFs& local_fs() { return local_fs_; }
  /// Content-addressed staging cache over local_fs() (see os/cas.hh).
  /// Shared by every worker on the node, like the ramdisk it models.
  CasStore& cas() { return cas_; }
  sim::Semaphore& cores() { return cores_; }

  /// Page-cache model for program images: a binary exec'd from *local*
  /// storage stays resident, so repeat execs skip the image read. Images
  /// on the shared filesystem are re-read every exec (compute nodes mount
  /// GPFS/PVFS without a coherent local cache — why the paper stages
  /// binaries to the ramdisk and "suppresses lookups to GPFS", §6.1.4).
  bool binary_resident(const std::string& path) const {
    return resident_binaries_.contains(path);
  }
  void mark_binary_resident(const std::string& path) {
    resident_binaries_.insert(path);
  }

  /// Slow-node fault model (chaos class 4): multipliers applied to this
  /// node's fork/exec cost and to model compute time (see
  /// Machine::scale_compute). 1.0 = healthy; >1 = degraded (thermal
  /// throttling, a sick DIMM, a noisy neighbour on shared hardware).
  double exec_scale() const noexcept { return exec_scale_; }
  double compute_scale() const noexcept { return compute_scale_; }
  void set_slowdown(double exec_scale, double compute_scale) {
    exec_scale_ = exec_scale;
    compute_scale_ = compute_scale;
  }

 private:
  NodeId id_;
  NodeSpec spec_;
  LocalFs local_fs_;
  CasStore cas_;
  sim::Semaphore cores_;
  std::set<std::string> resident_binaries_;
  double exec_scale_ = 1.0;
  double compute_scale_ = 1.0;
};

/// Options for launching a simulated process.
struct ExecOptions {
  /// If non-empty, the named program binary is loaded before the body runs:
  /// from node-local storage when staged there, otherwise from the shared
  /// filesystem (the staging-ablation lever, §6.1.4).
  std::string binary;
  /// Extra fixed startup cost (e.g. interpreter/wrapper-script overhead).
  sim::Duration extra_startup = 0;
  /// Charge the node's fork/exec cost (disable for pure logic actors).
  bool charge_fork = true;
};

class Machine {
 public:
  using Pid = std::uint64_t;

  Machine(sim::Engine& engine, MachineSpec spec);

  /// Tears down all engine actors while this machine's network and
  /// filesystems are still alive — simulated-process frames hold sockets
  /// whose destructors call back into the machine.
  ~Machine();

  // --- Presets (constants documented in machine.cc) ---------------------
  static MachineSpec surveyor(std::size_t nodes);    // IBM Blue Gene/P
  static MachineSpec breadboard(std::size_t nodes);  // x86 cluster, GigE
  static MachineSpec eureka(std::size_t nodes);      // x86 cluster, 8 cores

  sim::Engine& engine() { return *engine_; }
  const MachineSpec& spec() const { return spec_; }
  std::size_t compute_node_count() const { return spec_.compute_nodes; }

  /// Compute nodes are ids [0, compute_nodes); the login node hosts the
  /// central services (JETS dispatcher, CoasterService, mpiexec).
  NodeId login_node() const {
    return static_cast<NodeId>(spec_.compute_nodes);
  }
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }

  /// Degrades `node`: fork/exec (and wrapper startup) costs are multiplied
  /// by `exec_scale`, and durations passed through scale_compute by
  /// `compute_scale`. Pass 1.0/1.0 to heal the node.
  void set_node_slowdown(NodeId node, double exec_scale,
                         double compute_scale) {
    this->node(node).set_slowdown(exec_scale, compute_scale);
  }

  /// Applies `node`'s compute multiplier to a model duration. Application
  /// models (apps/synthetic, apps/namd) route their compute delays through
  /// this so a chaos-degraded node visibly stretches task wall times.
  sim::Duration scale_compute(NodeId node, sim::Duration d) const {
    const double scale = this->node(node).compute_scale();
    if (scale == 1.0) return d;
    return static_cast<sim::Duration>(static_cast<double>(d) * scale + 0.5);
  }

  net::Network& network() { return network_; }
  SharedFs& shared_fs() { return shared_fs_; }

  /// Observability hook: the span tracer every JETS component on this
  /// machine reports to, or nullptr (the default — tracing off, no cost
  /// beyond this pointer load). Attach before starting the workload and
  /// keep the tracer alive for the machine's lifetime; recording never
  /// schedules events, so attaching cannot perturb the simulation.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Hands out machine-unique ports for dynamically bound services
  /// (mpiexec control ports, MPI rank endpoints).
  net::Port allocate_port() { return next_port_++; }

  // --- Process management ------------------------------------------------

  /// Forks a process on `node` running `body`. Startup cost (fork/exec +
  /// binary load per `opts`) is charged before the body starts. Returns
  /// immediately with the pid. If called from within another simulated
  /// process, the new process becomes its child (kill takes the subtree).
  Pid exec(NodeId node, std::string name, sim::Task<void> body,
           ExecOptions opts = {});

  /// SIGKILL to the whole process tree rooted at `pid`: children first,
  /// then the process itself; coroutine teardown closes their sockets.
  bool kill(Pid pid);

  bool alive(Pid pid) const;
  std::size_t process_count() const;

  /// Awaitable completion of a process (like waitpid).
  sim::Task<void> wait(Pid pid);

  /// The simulated I/O time to load `binary` on `node`: node-local if
  /// staged there, shared-fs otherwise. Exposed for tests and models.
  sim::Task<void> load_binary(NodeId node, const std::string& binary);

 private:
  sim::Task<void> run_process(NodeId node, sim::Task<void> body,
                              ExecOptions opts);

  sim::Engine* engine_;
  MachineSpec spec_;
  net::Network network_;
  SharedFs shared_fs_;
  std::vector<std::unique_ptr<Node>> nodes_;
  obs::Tracer* tracer_ = nullptr;
  Pid next_pid_ = 1;
  net::Port next_port_ = 10000;
  std::unordered_map<Pid, sim::ActorId> processes_;
  std::unordered_map<sim::ActorId, Pid> pid_by_actor_;
  std::unordered_map<Pid, std::vector<Pid>> children_;
};

/// Typed failure taxonomy for allocation requests. Distinct from the
/// std::invalid_argument thrown for caller bugs (below-minimum / oversize
/// requests): an AllocationError is a *site* outcome a resilient allocator
/// is expected to retry or route around.
class AllocationError : public std::runtime_error {
 public:
  enum class Kind {
    kDenied,           // batch system refused the request (policy/chaos)
    kOutOfNodes,       // machine has no contiguous free capacity left
    kQueueStarvation,  // request sat in the queue past submit_timeout
  };

  AllocationError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* to_string(AllocationError::Kind kind);

/// Cobalt/PBS-like batch scheduler: an allocation request waits in the
/// queue (longer for bigger requests), boots ("allocations may take on the
/// order of minutes to boot", §1), then exposes its node list until the
/// walltime expires. This is step (1) of the paper's Fig 1 model and the
/// substrate for the spectrum-allocator extension (§7).
///
/// Every grant carries a unique allocation id; release/walltime/preempt all
/// key off the id, so a stale Allocation copy (already released, nodes
/// re-granted) is a harmless no-op instead of freeing nodes out from under
/// a later allocation.
class BatchScheduler {
 public:
  struct Policy {
    sim::Duration boot_time = sim::seconds(90);
    sim::Duration base_queue_wait = sim::seconds(30);
    /// Additional expected queue wait per requested node (exponentially
    /// distributed jitter around the mean).
    sim::Duration wait_per_node = sim::milliseconds(500);
    std::size_t min_nodes = 1;  // site policy, e.g. 512 on Intrepid (§3)
    /// Queue-starvation deadline: a request that would not clear the queue
    /// within this window fails with AllocationError::kQueueStarvation
    /// instead of waiting forever. 0 = wait indefinitely.
    sim::Duration submit_timeout = 0;
  };

  struct Allocation {
    /// Unique grant id (0 = never granted). Stale copies are detected by
    /// id lookup, never by node list.
    std::uint64_t id = 0;
    std::vector<NodeId> nodes;
    sim::Time started_at = 0;
    sim::Time expires_at = 0;
  };

  BatchScheduler(Machine& machine, Policy policy, sim::Rng rng)
      : machine_(&machine), policy_(policy), rng_(rng) {}
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Waits (queue + boot) and returns an allocation of `nodes` free nodes.
  /// Throws std::invalid_argument if the request violates site policy or
  /// exceeds the machine; AllocationError for site outcomes (denied,
  /// out of nodes, queue starvation).
  sim::Task<Allocation> submit(std::size_t nodes, sim::Duration walltime);

  /// Returns an allocation's nodes to the free pool and cancels its
  /// walltime timer. Idempotent by id: releasing twice, or releasing a
  /// stale copy whose id is no longer live, is a no-op.
  void release(const Allocation& alloc);

  /// Arms the allocation's walltime: at expires_at every pid in `pilots`
  /// is killed (taking its task subtree) and the nodes are released —
  /// what Cobalt does to pilot jobs when "the allocation expires" (§1).
  /// A no-op if the allocation was already released; release() before
  /// expiry disarms the timer.
  void enforce_walltime(const Allocation& alloc,
                        std::vector<Machine::Pid> pilots);

  /// Revokes a live allocation ahead of its walltime (backfill preemption,
  /// reservation reclaim). Fires the preempt handler first — giving the
  /// service a chance to drain/requeue synchronously — then kills the
  /// registered pilots and releases the nodes. Returns false if the id is
  /// not live.
  bool preempt(std::uint64_t id);

  /// Called at the start of preempt(), before any pilot is killed.
  void set_preempt_handler(std::function<void(const Allocation&)> fn) {
    on_preempt_ = std::move(fn);
  }

  /// Chaos hooks: the next `n` submits are denied at grant time; requests
  /// in (or entering) the queue stall until now + `window`.
  void inject_denials(std::size_t n) { injected_denials_ += n; }
  void inject_stall(sim::Duration window);

  std::size_t free_nodes() const;
  /// Live (granted, unreleased) allocation ids in grant order.
  std::vector<std::uint64_t> live_ids() const;
  const Allocation* live_allocation(std::uint64_t id) const;

 private:
  struct Live {
    Allocation alloc;
    std::vector<Machine::Pid> pilots;
    sim::TimerHandle walltime_timer;
  };

  void expire(std::uint64_t id);

  Machine* machine_;
  Policy policy_;
  sim::Rng rng_;
  std::vector<bool> busy_;  // lazily sized to compute_nodes
  std::uint64_t next_alloc_id_ = 1;
  std::map<std::uint64_t, Live> live_;
  std::size_t injected_denials_ = 0;
  sim::Time stall_until_ = -1;
  std::function<void(const Allocation&)> on_preempt_;
};

}  // namespace jets::os
