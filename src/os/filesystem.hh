// Filesystem models: a contended shared parallel filesystem (GPFS / PVFS)
// and fast node-local RAM storage (the ZeptoOS ramdisk JETS stages binaries
// into, §6.1.4).
//
// Files are metadata only — a path and a size; reads and writes charge
// simulated time but move no real bytes. The shared filesystem charges a
// per-operation latency (metadata RPC) plus fair-share bandwidth across all
// concurrent accessors; local storage charges per-node latency/bandwidth
// with no cross-node contention.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "os/fairshare.hh"
#include "sim/engine.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::os {

/// Error for reads of nonexistent paths.
class FileError : public std::runtime_error {
 public:
  explicit FileError(const std::string& what) : std::runtime_error(what) {}
};

/// Abstract file store interface shared by local and parallel filesystems.
class FileStore {
 public:
  virtual ~FileStore() = default;

  /// Reads the whole file at `path`; completes after simulated I/O time.
  /// Throws FileError if missing.
  virtual sim::Task<void> read(const std::string& path) = 0;

  /// Creates/overwrites `path` with `bytes`; completes after I/O time.
  virtual sim::Task<void> write(const std::string& path, std::uint64_t bytes) = 0;

  /// Metadata-only existence/creation (no time charged); for test setup and
  /// staging bookkeeping.
  virtual bool exists(const std::string& path) const = 0;
  virtual void put(const std::string& path, std::uint64_t bytes) = 0;
  virtual std::optional<std::uint64_t> size(const std::string& path) const = 0;
  /// Metadata-only removal (no time charged); absent paths are a no-op.
  /// The CAS layer's LRU eviction drops blobs through this.
  virtual void remove(const std::string&) {}
};

/// Node-local RAM filesystem: fast, uncontended, private to one node.
class LocalFs final : public FileStore {
 public:
  LocalFs(sim::Engine& engine, sim::Duration op_latency, double bytes_per_second)
      : engine_(&engine), latency_(op_latency), bps_(bytes_per_second) {}

  sim::Task<void> read(const std::string& path) override;
  sim::Task<void> write(const std::string& path, std::uint64_t bytes) override;
  bool exists(const std::string& path) const override {
    return files_.contains(path);
  }
  void put(const std::string& path, std::uint64_t bytes) override {
    files_[path] = bytes;
  }
  std::optional<std::uint64_t> size(const std::string& path) const override {
    auto it = files_.find(path);
    if (it == files_.end()) return std::nullopt;
    return it->second;
  }
  void remove(const std::string& path) override { files_.erase(path); }

 private:
  sim::Engine* engine_;
  sim::Duration latency_;
  double bps_;
  std::unordered_map<std::string, std::uint64_t> files_;
};

/// Shared parallel filesystem: every operation pays a metadata round trip
/// whose cost grows with the number of concurrent clients (distributed
/// lock/token management — why "simultaneous small-file accesses" hurt,
/// §6.2.2), and data movement shares the servers' aggregate bandwidth
/// fairly across all concurrent accesses machine-wide.
class SharedFs final : public FileStore {
 public:
  SharedFs(sim::Engine& engine, sim::Duration op_latency, double bytes_per_second)
      : engine_(&engine), latency_(op_latency),
        server_(std::make_unique<FairShareServer>(engine, bytes_per_second)) {}

  sim::Task<void> read(const std::string& path) override;
  sim::Task<void> write(const std::string& path, std::uint64_t bytes) override;
  bool exists(const std::string& path) const override {
    return files_.contains(path);
  }
  void put(const std::string& path, std::uint64_t bytes) override {
    files_[path] = bytes;
  }
  std::optional<std::uint64_t> size(const std::string& path) const override {
    auto it = files_.find(path);
    if (it == files_.end()) return std::nullopt;
    return it->second;
  }

  std::size_t active_transfers() const { return server_->active_transfers(); }

  /// Clients currently inside any read/write/io operation (metadata phase
  /// included). Drives the contention model and the §1.2 client counting.
  std::size_t active_clients() const { return clients_; }

  /// Metadata latency under the current client load:
  /// base x (1 + clients/16).
  sim::Duration loaded_latency() const {
    return latency_ + latency_ * static_cast<sim::Duration>(clients_) / 16;
  }

  /// Charges the time of moving `bytes` through the shared servers in
  /// `ops` operations (metadata latency each), without tracking a path —
  /// how applications model their own input/output traffic.
  sim::Task<void> io(std::uint64_t bytes, unsigned ops = 1);

 private:
  /// RAII client registration; lives in the operation's coroutine frame so
  /// even a killed caller deregisters.
  struct ClientGuard {
    SharedFs* fs;
    explicit ClientGuard(SharedFs* fs) : fs(fs) { ++fs->clients_; }
    ClientGuard(const ClientGuard&) = delete;
    ~ClientGuard() { --fs->clients_; }
  };

  sim::Engine* engine_;
  sim::Duration latency_;
  std::unique_ptr<FairShareServer> server_;
  std::unordered_map<std::string, std::uint64_t> files_;
  std::size_t clients_ = 0;
};

}  // namespace jets::os
