// Processor-sharing bandwidth server.
//
// Models a contended resource (GPFS server bandwidth, an I/O link) where k
// concurrent transfers each progress at rate B/k. This is the egalitarian
// processor-sharing queue; it is simulated exactly using a virtual-service
// clock V(t) with dV/dt = B / n(t): a transfer of s bytes admitted when the
// clock reads V0 completes when V(t) = V0 + s.
//
// The GPFS contention this models is what drives two of the paper's
// observations: utilization loss from "simultaneous small-file accesses"
// in single-process REM runs (§6.2.2), and the benefit of staging binaries
// to node-local storage (§6.1.4).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "sim/engine.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::os {

class FairShareServer {
 public:
  /// `bytes_per_second`: aggregate capacity shared by all active transfers.
  FairShareServer(sim::Engine& engine, double bytes_per_second)
      : engine_(&engine), bps_(bytes_per_second) {}
  FairShareServer(const FairShareServer&) = delete;
  FairShareServer& operator=(const FairShareServer&) = delete;

  /// Transfers `bytes` through the shared server; completes after this
  /// transfer's fair share of bandwidth has moved all bytes.
  sim::Task<void> transfer(std::uint64_t bytes);

  std::size_t active_transfers() const { return transfers_.size(); }
  double bytes_per_second() const { return bps_; }

 private:
  struct Transfer {
    double virtual_deadline;  // V value at which this transfer completes
    std::shared_ptr<sim::Gate> done;
  };

  /// Advances V(t) to `now` and (re)schedules the next completion timer.
  void advance_clock();
  void schedule_next_completion();
  void complete_due_transfers();

  sim::Engine* engine_;
  double bps_;
  double virtual_clock_ = 0.0;  // total service delivered per active stream
  sim::Time clock_updated_at_ = 0;
  std::uint64_t next_id_ = 0;
  // Ordered by virtual deadline so the next completion is begin().
  std::multimap<double, Transfer> transfers_;
  sim::TimerHandle pending_timer_;
};

}  // namespace jets::os
