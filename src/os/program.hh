// Simulated user programs.
//
// JETS deals in *command lines*: its input files, worker protocol, and Hydra
// proxy specs all carry argv vectors. In the simulation, argv[0] is resolved
// through an AppRegistry to a C++ coroutine — the moral equivalent of $PATH
// + exec. A Program receives an Env describing where it runs and with what
// arguments/environment, exactly the information a real exec'd process gets.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/socket.hh"
#include "os/machine.hh"
#include "sim/task.hh"

namespace jets::pmi {
class PmiClient;  // rank-side process-management interface (pmi/client.hh)
}

namespace jets::os {

/// Everything a simulated process sees at startup: its node, argv, and
/// environment. Processes launched by a Hydra proxy additionally get a PMI
/// client (how MPICH wires ranks together) and a stdout sink socket (the
/// paper routes application stdout proxy -> mpiexec -> JETS, §6.1.6).
struct Env {
  Machine* machine = nullptr;
  NodeId node = 0;
  std::vector<std::string> argv;
  std::map<std::string, std::string> vars;

  /// Set only for processes bootstrapped by a Hydra proxy.
  pmi::PmiClient* pmi = nullptr;
  /// Where stdout bytes go (may be null: discarded).
  net::SocketPtr stdout_sink;

  const std::string& var(const std::string& key) const {
    auto it = vars.find(key);
    if (it == vars.end()) throw std::out_of_range("missing env var: " + key);
    return it->second;
  }
  std::string var_or(const std::string& key, std::string fallback) const {
    auto it = vars.find(key);
    return it == vars.end() ? std::move(fallback) : it->second;
  }

  /// Emits `bytes` of stdout (counts wire time on the sink if present).
  void write_stdout(std::size_t bytes) const {
    if (stdout_sink) stdout_sink->send(net::Message("stdout", {}, bytes));
  }
};

/// A runnable program body. The Env reference stays valid for the lifetime
/// of the coroutine (owned by the launching wrapper's frame).
using Program = std::function<sim::Task<void>(Env&)>;

/// Maps executable names (argv[0]) to program bodies — the simulated $PATH.
class AppRegistry {
 public:
  void install(std::string name, Program program) {
    apps_[std::move(name)] = std::move(program);
  }

  bool contains(const std::string& name) const { return apps_.contains(name); }

  const Program& lookup(const std::string& name) const {
    auto it = apps_.find(name);
    if (it == apps_.end()) {
      throw std::invalid_argument("exec: command not found: " + name);
    }
    return it->second;
  }

  std::size_t size() const { return apps_.size(); }

 private:
  std::map<std::string, Program> apps_;
};

namespace detail {
inline sim::Task<void> command_body(Machine* machine, const AppRegistry* apps,
                                    NodeId node, std::vector<std::string> argv,
                                    std::map<std::string, std::string> vars) {
  Env env;
  env.machine = machine;
  env.node = node;
  env.argv = std::move(argv);
  env.vars = std::move(vars);
  const Program& program = apps->lookup(env.argv.at(0));
  co_await program(env);
}
}  // namespace detail

/// exec()s a command line on a node: resolves argv[0] through the registry
/// and runs it with a fresh Env. The standard way every launcher (ssh,
/// Cobalt scripts, JETS workers, Hydra proxies) starts programs.
inline Machine::Pid run_command(Machine& machine, const AppRegistry& apps,
                                NodeId node, std::vector<std::string> argv,
                                std::map<std::string, std::string> vars = {},
                                ExecOptions opts = {}) {
  std::string name = argv.at(0);
  return machine.exec(node, std::move(name),
                      detail::command_body(&machine, &apps, node,
                                           std::move(argv), std::move(vars)),
                      std::move(opts));
}

}  // namespace jets::os
