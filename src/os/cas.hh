// Per-node content-addressed blob store (the staging cache).
//
// A CasStore layers content addressing over a node's FileStore (the
// ZeptoOS ramdisk model in os/filesystem.hh): blobs are keyed by an
// FNV-1a/64 digest of their identity, entries are ref-counted so in-use
// blobs cannot be dropped, and total resident bytes are bounded by a
// capacity with least-recently-used eviction of unpinned entries.
//
// Files in this simulation are metadata only (path + size), so the digest
// is computed over that identity rather than over real bytes; what matters
// for the model is that equal inputs collapse to one key. put() charges
// the backing store's write time once per *insertion* — a put of an
// already-resident digest is a cache hit and costs nothing, which is
// exactly the dedup the service's replication planner banks on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "os/filesystem.hh"
#include "sim/task.hh"

namespace jets::os {

/// Content digest: FNV-1a/64 over the blob's identity.
using CasDigest = std::uint64_t;

/// Digest of a staged file's identity (path + size). Same basis as
/// core::record_digest: FNV-1a/64, mixed byte by byte.
CasDigest cas_digest(std::string_view path, std::uint64_t bytes);

/// Renders a digest as fixed-width lowercase hex (wire headers); parse
/// returns 0 for malformed input (0 is never a valid digest of real
/// identity in practice — the FNV offset basis is nonzero).
std::string cas_digest_hex(CasDigest d);
CasDigest cas_digest_from_hex(std::string_view hex);

class CasStore {
 public:
  struct Stats {
    std::uint64_t hits = 0;        // touch/put of a resident digest
    std::uint64_t misses = 0;      // touch of an absent digest
    std::uint64_t insertions = 0;  // puts that actually wrote
    std::uint64_t evictions = 0;   // LRU drops to make room
  };

  /// `capacity_bytes` bounds resident blob bytes; 0 = unbounded. Pinned
  /// entries never count as evictable, so a store full of pinned blobs may
  /// exceed its capacity rather than drop data in use.
  explicit CasStore(FileStore& backing, std::uint64_t capacity_bytes = 0)
      : backing_(&backing), capacity_(capacity_bytes) {}
  CasStore(const CasStore&) = delete;
  CasStore& operator=(const CasStore&) = delete;

  bool contains(CasDigest d) const { return entries_.contains(d); }

  /// Inserts the blob unless already resident (then this is a pure LRU
  /// touch). A real insertion evicts least-recently-used unpinned entries
  /// until the new blob fits, then charges the backing store's write time.
  /// Returns the digests evicted to make room (empty on a hit).
  sim::Task<std::vector<CasDigest>> put(CasDigest d, std::string path,
                                        std::uint64_t bytes);

  /// LRU-touches `d`; true on hit. A miss only counts (no side effects).
  bool touch(CasDigest d);

  /// Ref-count an entry in active use; pinned entries survive eviction.
  /// Both are no-ops for absent digests (a pin can race an eviction).
  void pin(CasDigest d);
  void unpin(CasDigest d);

  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::size_t entries() const { return entries_.size(); }
  std::uint64_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    std::string path;
    std::uint64_t bytes = 0;
    std::uint32_t refs = 0;
    std::uint64_t tick = 0;  // key into lru_
  };

  /// Evicts LRU unpinned entries until `need` more bytes fit (or nothing
  /// evictable remains); appends the victims' digests to `out`.
  void make_room(std::uint64_t need, std::vector<CasDigest>* out);

  FileStore* backing_;
  std::uint64_t capacity_;
  std::uint64_t stored_bytes_ = 0;
  std::uint64_t next_tick_ = 0;
  /// Ordered maps keep every walk deterministic (the simulation's golden
  /// outputs hash over anything this store influences).
  std::map<CasDigest, Entry> entries_;
  std::map<std::uint64_t, CasDigest> lru_;  // tick -> digest, oldest first
  Stats stats_;
};

}  // namespace jets::os
