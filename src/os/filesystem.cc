#include "os/filesystem.hh"

namespace jets::os {

sim::Task<void> LocalFs::read(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) throw FileError("local file not found: " + path);
  const std::uint64_t bytes = it->second;
  co_await sim::delay(latency_ +
                      sim::from_seconds(static_cast<double>(bytes) / bps_));
}

sim::Task<void> LocalFs::write(const std::string& path, std::uint64_t bytes) {
  co_await sim::delay(latency_ +
                      sim::from_seconds(static_cast<double>(bytes) / bps_));
  files_[path] = bytes;
}

sim::Task<void> SharedFs::read(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) throw FileError("shared file not found: " + path);
  const std::uint64_t bytes = it->second;
  ClientGuard guard(this);
  co_await sim::delay(loaded_latency());
  co_await server_->transfer(bytes);
}

sim::Task<void> SharedFs::write(const std::string& path, std::uint64_t bytes) {
  ClientGuard guard(this);
  co_await sim::delay(loaded_latency());
  co_await server_->transfer(bytes);
  files_[path] = bytes;
}

sim::Task<void> SharedFs::io(std::uint64_t bytes, unsigned ops) {
  if (ops == 0) co_return;
  ClientGuard guard(this);
  co_await sim::delay(loaded_latency() * ops);
  co_await server_->transfer(bytes);
}

}  // namespace jets::os
