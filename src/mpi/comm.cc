#include "mpi/comm.hh"

#include <stdexcept>

namespace jets::mpi {

Comm::Comm(os::Env& env, int rank, int size)
    : env_(&env), machine_(env.machine), rank_(rank), size_(size) {}

Comm::~Comm() {
  if (acceptor_ != 0) machine_->engine().kill(acceptor_);
}

sim::Task<std::unique_ptr<Comm>> Comm::init(os::Env& env) {
  if (env.pmi == nullptr) {
    throw std::logic_error("MPI_Init: process was not started by a PMI proxy");
  }
  auto comm = std::unique_ptr<Comm>(
      new Comm(env, env.pmi->rank(), env.pmi->size()));
  comm->self_addr_ =
      net::Address{env.node, env.machine->allocate_port()};
  comm->listener_ = env.machine->network().listen(comm->self_addr_);
  comm->acceptor_ =
      env.machine->engine().spawn("mpi-acceptor", comm->accept_loop());
  // Publish this rank's business card and fence.
  env.pmi->put("card." + std::to_string(comm->rank_),
               std::to_string(comm->self_addr_.node) + " " +
                   std::to_string(comm->self_addr_.port));
  co_await env.pmi->barrier();
  co_return comm;
}

double Comm::wtime() const {
  return sim::to_seconds(machine_->engine().now());
}

sim::Task<void> Comm::accept_loop() {
  for (;;) {
    net::SocketPtr sock = co_await listener_->accept();
    if (!sock) co_return;
    auto hello = co_await sock->recv();
    if (!hello || hello->tag != "mpi.hello") continue;
    const int peer = std::stoi(hello->args.at(0));
    in_[peer] = std::move(sock);
    auto it = in_ready_.find(peer);
    if (it != in_ready_.end()) it->second->open();
  }
}

sim::Task<net::Socket*> Comm::outbound(int dest) {
  auto it = out_.find(dest);
  if (it != out_.end()) co_return it->second.get();
  // Fetch the peer's card (blocking PMI get) and dial it.
  std::string card = co_await env_->pmi->get("card." + std::to_string(dest));
  const auto space = card.find(' ');
  net::Address addr{static_cast<os::NodeId>(std::stoul(card.substr(0, space))),
                    static_cast<net::Port>(std::stoul(card.substr(space + 1)))};
  net::SocketPtr sock = co_await machine_->network().connect(env_->node, addr);
  sock->send(net::Message("mpi.hello", {std::to_string(rank_)}));
  net::Socket* raw = sock.get();
  out_[dest] = std::move(sock);
  co_return raw;
}

sim::Task<void> Comm::send(int dest, std::size_t bytes, int tag, double value) {
  net::Socket* sock = co_await outbound(dest);
  sock->send(net::Message(
      "mpi.msg",
      {std::to_string(rank_), std::to_string(tag), std::to_string(value)},
      bytes));
}

sim::Task<void> Comm::ssend(int dest, std::size_t bytes, int tag) {
  net::Socket* sock = co_await outbound(dest);
  // Built as a named local: GCC 12 miscompiles brace-initialized temporaries
  // inside co_await expressions ("array used as initializer").
  net::Message m("mpi.msg", {std::to_string(rank_), std::to_string(tag)}, bytes);
  co_await sock->send_sync(std::move(m));
}

sim::Task<RecvResult> Comm::recv(int src) {
  auto it = in_.find(src);
  if (it == in_.end()) {
    auto& gate = in_ready_[src];
    if (!gate) gate = std::make_unique<sim::Gate>(machine_->engine());
    co_await gate->wait();
    it = in_.find(src);
    if (it == in_.end()) throw std::runtime_error("MPI recv: lost peer");
  }
  auto m = co_await it->second->recv();
  if (!m) throw std::runtime_error("MPI recv: connection to rank " +
                                   std::to_string(src) + " lost");
  RecvResult r;
  r.source = std::stoi(m->args.at(0));
  r.tag = std::stoi(m->args.at(1));
  if (m->args.size() > 2) r.value = std::stod(m->args.at(2));
  r.bytes = m->payload_bytes;
  co_return r;
}

sim::Task<void> Comm::barrier() {
  if (size_ == 1) co_return;
  for (int k = 1; k < size_; k <<= 1) {
    const int dest = (rank_ + k) % size_;
    const int src = (rank_ - k + size_) % size_;
    co_await send(dest, 1, /*tag=*/-k);
    (void)co_await recv(src);
  }
}

namespace {
/// Reserved tag space for collective traffic (never collides with the
/// negative tags the barrier uses, which are powers of two times -1).
constexpr int kIoDataTag = -1000001;
constexpr int kIoAckTag = -1000002;
constexpr int kCollTag = -1000003;
}  // namespace

sim::Task<std::size_t> Comm::bcast(std::size_t bytes, int root) {
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("bcast: root " + std::to_string(root) +
                                " out of range for size " +
                                std::to_string(size_));
  }
  if (size_ == 1) co_return bytes;
  const int vrank = (rank_ - root + size_) % size_;
  auto real = [this, root](int v) { return (v + root) % size_; };
  std::size_t payload = bytes;
  // Binomial tree: receive from the parent, then relay down the subtree.
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      RecvResult r = co_await recv(real(vrank - mask));
      payload = r.bytes;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_ && (vrank & (mask - 1)) == 0 && !(vrank & mask)) {
      co_await send(real(vrank + mask), payload, kCollTag);
    }
    mask >>= 1;
  }
  co_return payload;
}

sim::Task<double> Comm::reduce_sum(double value, int root) {
  if (root < 0 || root >= size_) {
    throw std::invalid_argument("reduce_sum: root " + std::to_string(root) +
                                " out of range for size " +
                                std::to_string(size_));
  }
  if (size_ == 1) co_return value;
  const int vrank = (rank_ - root + size_) % size_;
  auto real = [this, root](int v) { return (v + root) % size_; };
  double acc = value;
  for (int mask = 1; mask < size_; mask <<= 1) {
    if (vrank & mask) {
      co_await send(real(vrank - mask), sizeof(double), kCollTag, acc);
      break;
    }
    const int partner = vrank | mask;
    if (partner < size_) {
      RecvResult r = co_await recv(real(partner));
      acc += r.value;
    }
  }
  co_return acc;
}

sim::Task<double> Comm::allreduce_sum(double value) {
  const double total = co_await reduce_sum(value, 0);
  // Broadcast the scalar back down the same binomial tree.
  if (size_ == 1) co_return total;
  double out = total;
  const int vrank = rank_;
  int mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      RecvResult r = co_await recv(vrank - mask);
      out = r.value;
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_ && (vrank & (mask - 1)) == 0 && !(vrank & mask)) {
      co_await send(vrank + mask, sizeof(double), kCollTag, out);
    }
    mask >>= 1;
  }
  co_return out;
}

sim::Task<void> Comm::write_all(const std::string& path,
                                std::size_t bytes_per_rank) {
  if (size_ == 1) {
    co_await env_->machine->shared_fs().write(path, bytes_per_rank);
    co_return;
  }
  if (rank_ == 0) {
    // Two-phase aggregation: gather the payloads, then one client writes.
    std::size_t total = bytes_per_rank;
    for (int src = 1; src < size_; ++src) {
      RecvResult r = co_await recv(src);
      total += r.bytes;
    }
    co_await env_->machine->shared_fs().write(
        path, static_cast<std::uint64_t>(total));
    for (int dst = 1; dst < size_; ++dst) {
      co_await send(dst, 1, kIoAckTag);
    }
  } else {
    co_await send(0, bytes_per_rank, kIoDataTag);
    (void)co_await recv(0);  // durable ack
  }
}

sim::Task<void> Comm::write_independent(const std::string& path,
                                        std::size_t bytes_per_rank) {
  co_await env_->machine->shared_fs().write(
      path + "." + std::to_string(rank_),
      static_cast<std::uint64_t>(bytes_per_rank));
}

sim::Task<void> Comm::finalize() {
  if (finalized_) co_return;
  finalized_ = true;
  co_await env_->pmi->barrier();
  machine_->engine().kill(acceptor_);
  acceptor_ = 0;
  listener_.reset();
  out_.clear();
  in_.clear();
}

}  // namespace jets::mpi
