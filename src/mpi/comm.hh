// Minimal MPI implementation over PMI + simulated sockets.
//
// Reproduces the subset the paper's workloads exercise: MPI_Init wire-up
// through the PMI key-value space (publish a connection card, fence, fetch
// peers on demand), point-to-point Send/Recv over per-pair socket
// connections, a dissemination Barrier, Wtime, and Finalize.
//
// Connection discipline: a sender always transmits on a connection *it*
// initiated; a receiver reads from the connection its peer initiated. Each
// socket therefore carries one direction of traffic, which sidesteps the
// simultaneous-connect race without locks. (MPICH multiplexes one duplex
// socket per pair; the timing difference is one extra connect RTT on the
// first reply, negligible against the ZeptoOS TCP stack cost modelled in
// the fabric.)
//
// The transport "mode" of Fig 8 (native DCMF vs MPICH/sockets) is selected
// by the machine's fabric model, exactly as on the real system where the
// same MPI program is compiled against a different messaging substrate.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/socket.hh"
#include "os/machine.hh"
#include "os/program.hh"
#include "pmi/client.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::mpi {

/// A received point-to-point message.
struct RecvResult {
  int source = -1;
  int tag = 0;
  std::size_t bytes = 0;
  /// Scalar payload carried alongside the (unsimulated) bulk bytes; used
  /// by the reduction collectives.
  double value = 0;
};

/// MPI_COMM_WORLD for one process. Construct with Comm::init from inside a
/// Hydra-launched program (Env::pmi must be set).
class Comm {
 public:
  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  /// MPI_Init: binds this rank's endpoint, publishes its card in the PMI
  /// KVS, and fences so every rank is reachable before user code runs.
  static sim::Task<std::unique_ptr<Comm>> init(os::Env& env);

  int rank() const { return rank_; }
  int size() const { return size_; }

  /// MPI_Wtime: simulated seconds.
  double wtime() const;

  /// Buffered (standard-mode) send of `bytes` to `dest`. `value` is an
  /// optional scalar payload surfaced in the receiver's RecvResult.
  sim::Task<void> send(int dest, std::size_t bytes, int tag = 0,
                       double value = 0);

  /// Synchronous send: completes when the payload has left this endpoint.
  sim::Task<void> ssend(int dest, std::size_t bytes, int tag = 0);

  /// Blocking receive of the next message from `src`.
  /// Throws std::runtime_error if the peer connection is lost first.
  sim::Task<RecvResult> recv(int src);

  /// Dissemination barrier: ceil(log2(size)) rounds of pairwise messages.
  sim::Task<void> barrier();

  /// Binomial-tree broadcast of `bytes` from `root`; returns the byte
  /// count on every rank (payload contents are not simulated).
  sim::Task<std::size_t> bcast(std::size_t bytes, int root = 0);

  /// Binomial-tree reduction of a double with operator + toward `root`.
  /// Returns the reduced value on root, the partial on others.
  sim::Task<double> reduce_sum(double value, int root = 0);

  /// reduce + bcast: every rank gets the global sum.
  sim::Task<double> allreduce_sum(double value);

  /// MPI-IO-style collective write: every rank contributes
  /// `bytes_per_rank`; the data is aggregated to rank 0 over the
  /// interconnect and written to the shared filesystem as ONE client —
  /// the paper's §1.2 argument: "for 16-process MPTC tasks using MPI-IO,
  /// the number of clients would be N/16". Collective: all ranks must
  /// call it; returns on all ranks once the write is durable.
  sim::Task<void> write_all(const std::string& path, std::size_t bytes_per_rank);

  /// The MTC strawman: every rank writes its own chunk directly (size
  /// filesystem clients). Not collective; returns when this rank's chunk
  /// is durable.
  sim::Task<void> write_independent(const std::string& path,
                                    std::size_t bytes_per_rank);

  /// MPI_Finalize: fences via PMI and tears down connections.
  sim::Task<void> finalize();

 private:
  Comm(os::Env& env, int rank, int size);

  sim::Task<void> accept_loop();
  sim::Task<net::Socket*> outbound(int dest);

  os::Env* env_;
  os::Machine* machine_;
  int rank_;
  int size_;
  net::Address self_addr_{};
  std::unique_ptr<net::Listener> listener_;
  sim::ActorId acceptor_ = 0;

  std::map<int, net::SocketPtr> out_;  // connections we initiated
  std::map<int, net::SocketPtr> in_;   // connections peers initiated
  std::map<int, std::unique_ptr<sim::Gate>> in_ready_;
  bool finalized_ = false;
};

}  // namespace jets::mpi
