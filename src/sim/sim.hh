// Umbrella header for the discrete-event simulation substrate.
#pragma once

#include "sim/engine.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time.hh"
