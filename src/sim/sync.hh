// Synchronization primitives for simulated processes: Gate (one-shot /
// re-armable broadcast event), Channel<T> (unbounded MPSC-style message
// queue with optional receive timeout), and Semaphore (counted permits with
// FIFO handoff and leak-proof cancellation).
//
// All primitives wake waiters *through the engine's event queue* at the
// current simulated time rather than resuming inline. This keeps the event
// loop the only resumer (bounded stack depth) and preserves deterministic
// FIFO ordering between equal-time wakeups.
#pragma once

#include <cassert>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::sim {

/// A broadcast event. wait() suspends until open(); open() releases all
/// current and future waiters until close() re-arms it.
class Gate {
 public:
  explicit Gate(Engine& engine) : engine_(&engine) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const noexcept { return open_; }

  void open() {
    if (open_) return;
    open_ = true;
    for (Resumption& r : waiters_) {
      engine_->schedule(engine_->now(), std::move(r));
    }
    waiters_.clear();
  }

  /// Re-arms the gate so subsequent wait() calls block again.
  void close() { open_ = false; }

  struct WaitAwaiter {
    Gate* gate;
    bool await_ready() const noexcept { return gate->open_; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      gate->waiters_.push_back(Resumption::of(h, h.promise().context()));
    }
    void await_resume() const noexcept {}
  };

  auto wait() { return WaitAwaiter{this}; }

 private:
  Engine* engine_;
  bool open_ = false;
  std::vector<Resumption> waiters_;
};

/// Unbounded FIFO message channel. Senders never block; receivers block
/// until a value arrives, the channel is closed, or (recv_for) a timeout
/// elapses. Receivers whose actor has been killed are skipped.
///
/// Channels are typically held via std::shared_ptr when endpoints have
/// different lifetimes (e.g., the two ends of a socket).
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; delivers directly to the oldest live waiter if any.
  void push(T value) {
    assert(!closed_ && "push on closed channel");
    while (!waiters_.empty()) {
      WaitNode node = std::move(waiters_.front());
      waiters_.pop_front();
      if (node.state->settled || node.resume.expired()) continue;
      node.state->settled = true;
      node.state->value = std::move(value);
      engine_->schedule(engine_->now(), std::move(node.resume));
      return;
    }
    buffer_.push_back(std::move(value));
  }

  /// Closes the channel: pending waiters (and future receives once the
  /// buffer drains) complete with std::nullopt. Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    for (WaitNode& node : waiters_) {
      if (node.state->settled) continue;
      node.state->settled = true;  // value stays nullopt -> "closed"
      engine_->schedule(engine_->now(), std::move(node.resume));
    }
    waiters_.clear();
  }

  bool closed() const noexcept { return closed_; }
  bool empty() const noexcept { return buffer_.empty(); }
  std::size_t size() const noexcept { return buffer_.size(); }

  /// `co_await ch.recv()` -> std::optional<T>; nullopt means closed.
  auto recv() { return RecvAwaiter{this, -1}; }

  /// `co_await ch.recv_for(d)` -> std::optional<T>; nullopt means timeout
  /// or closed. `d < 0` means wait forever.
  auto recv_for(Duration timeout) { return RecvAwaiter{this, timeout}; }

 private:
  struct RecvState {
    std::optional<T> value;
    bool settled = false;
  };

  struct WaitNode {
    Resumption resume;
    std::shared_ptr<RecvState> state;
  };

  struct RecvAwaiter {
    RecvAwaiter(Channel* ch, Duration timeout) : ch(ch), timeout(timeout) {}
    Channel* ch;
    Duration timeout;
    std::shared_ptr<RecvState> state;
    std::optional<T> immediate;
    TimerHandle timer;

    bool await_ready() {
      if (!ch->buffer_.empty()) {
        immediate = std::move(ch->buffer_.front());
        ch->buffer_.pop_front();
        return true;
      }
      if (ch->closed_ || timeout == 0) return true;  // nullopt
      return false;
    }

    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      state = std::make_shared<RecvState>();
      Resumption r = Resumption::of(h, h.promise().context());
      if (timeout >= 0) {
        Engine* engine = ch->engine_;
        // The timer holds its own copies; if it fires first it settles the
        // state so a later push() skips this node.
        timer = engine->call_at(
            engine->now() + timeout,
            [state = state, r]() mutable {
              if (state->settled) return;
              state->settled = true;  // value stays nullopt -> "timeout"
              if (!r.expired()) {
                r.engine->schedule(r.engine->now(), std::move(r));
              }
            });
      }
      ch->waiters_.push_back(WaitNode{std::move(r), state});
    }

    std::optional<T> await_resume() {
      if (!state) return std::move(immediate);
      timer.cancel();
      return std::move(state->value);
    }
  };

  Engine* engine_;
  std::deque<T> buffer_;
  std::deque<WaitNode> waiters_;
  bool closed_ = false;
};

/// Counted semaphore with FIFO handoff. A permit granted to a waiter whose
/// coroutine is destroyed before it resumes is returned to the pool (the
/// awaiter's destructor detects "granted but never consumed"), so kills
/// cannot leak permits.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t permits)
      : engine_(&engine), available_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::size_t available() const noexcept { return available_; }
  std::size_t waiting() const noexcept { return waiters_.size(); }

  /// `co_await sem.acquire()`: obtains one permit (FIFO order).
  auto acquire() { return AcquireAwaiter{this}; }

  /// Claims a permit iff one is free right now; never suspends.
  bool try_acquire() {
    if (available_ == 0) return false;
    --available_;
    return true;
  }

  /// Returns one permit, handing it to the oldest live waiter if any.
  void release() {
    while (!waiters_.empty()) {
      WaitNode node = std::move(waiters_.front());
      waiters_.pop_front();
      if (node.state->settled || node.resume.expired()) continue;
      node.state->settled = true;
      node.state->granted = true;
      engine_->schedule(engine_->now(), std::move(node.resume));
      return;  // permit handed over directly
    }
    ++available_;
  }

 private:
  struct AcquireState {
    bool settled = false;
    bool granted = false;
    bool consumed = false;
  };

  struct WaitNode {
    Resumption resume;
    std::shared_ptr<AcquireState> state;
  };

  struct AcquireAwaiter {
    explicit AcquireAwaiter(Semaphore* sem) : sem(sem) {}
    Semaphore* sem;
    std::shared_ptr<AcquireState> state;

    bool await_ready() {
      if (sem->available_ > 0) {
        --sem->available_;
        return true;
      }
      return false;
    }

    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      state = std::make_shared<AcquireState>();
      sem->waiters_.push_back(
          WaitNode{Resumption::of(h, h.promise().context()), state});
    }

    void await_resume() {
      if (state) state->consumed = true;
    }

    ~AcquireAwaiter() {
      // Frame destroyed after the permit was handed over but before the
      // coroutine resumed: give the permit back.
      if (state && state->granted && !state->consumed) sem->release();
    }
  };

  Engine* engine_;
  std::size_t available_;
  std::deque<WaitNode> waiters_;
};

/// RAII permit holder: `auto permit = co_await Permit::acquire(sem);`
/// releases on destruction (including when the owning frame is killed).
class Permit {
 public:
  Permit() = default;
  explicit Permit(Semaphore& sem) : sem_(&sem) {}
  Permit(Permit&& o) noexcept : sem_(std::exchange(o.sem_, nullptr)) {}
  Permit& operator=(Permit&& o) noexcept {
    if (this != &o) {
      reset();
      sem_ = std::exchange(o.sem_, nullptr);
    }
    return *this;
  }
  Permit(const Permit&) = delete;
  Permit& operator=(const Permit&) = delete;
  ~Permit() { reset(); }

  static Task<Permit> acquire(Semaphore& sem) {
    co_await sem.acquire();
    co_return Permit(sem);
  }

  void reset() {
    if (sem_) {
      sem_->release();
      sem_ = nullptr;
    }
  }

 private:
  Semaphore* sem_ = nullptr;
};

}  // namespace jets::sim
