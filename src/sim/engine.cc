#include "sim/engine.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace jets::sim {

void engine_actor_finished(Engine& engine, std::uint64_t actor_id,
                           std::exception_ptr error) {
  engine.finished_.emplace_back(actor_id, std::move(error));
}

Engine::~Engine() { shutdown(); }

// --- Observers ----------------------------------------------------------

void Engine::add_observer(EngineObserver* observer) {
  assert(observer != nullptr);
  assert(std::find(observers_.begin(), observers_.end(), observer) ==
         observers_.end());
  observers_.push_back(observer);
}

void Engine::remove_observer(EngineObserver* observer) {
  auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it != observers_.end()) observers_.erase(it);
}

// --- Event slab --------------------------------------------------------

std::uint32_t Engine::alloc_event_slot() {
  std::uint32_t slot;
  if (free_events_ != kNoSlot) {
    slot = free_events_;
    free_events_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  ++live_slots_;
  return slot;
}

void Engine::free_event_slot(std::uint32_t slot) {
  EventSlot& s = slots_[slot];
  assert(s.kind != EventSlot::kFree);
  // Move the closure out before touching slab metadata: its destructor may
  // call back into the engine (cancel other timers, even allocate slots),
  // so it must run against a consistent slab — after this slot is free.
  std::function<void()> doomed = std::move(s.fn);
  s.fn = nullptr;
  s.handle = {};
  s.ctx = nullptr;
  s.kind = EventSlot::kFree;
  ++s.gen;  // expire the heap index entry and any TimerHandle copies
  s.next_free = free_events_;
  free_events_ = slot;
  --live_slots_;
  // `doomed` (the cancelled/fired closure) is destroyed here, eagerly.
}

void Engine::push_entry(Time t, std::uint32_t slot) {
  slots_[slot].at = t;
  heap_.push_back(HeapEntry{t, seq_++, slot, slots_[slot].gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
}

void Engine::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
  heap_.pop_back();
}

void Engine::compact_heap() {
  // Lazy-deletion sweep: drop every entry the run loop would skip anyway
  // (generation-mismatched, i.e. cancelled, plus resumptions whose actor is
  // gone — those also give their slot back). Rebuilding the heap afterwards
  // cannot reorder execution: pop order is fully determined by (t, seq).
  auto is_dead = [this](const HeapEntry& e) {
    EventSlot& s = slots_[e.slot];
    if (s.gen != e.gen) return true;
    if (s.kind == EventSlot::kResume &&
        !actor_slot_live(s.actor_slot, s.actor_gen)) {
      free_event_slot(e.slot);
      return true;
    }
    return false;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), is_dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), HeapLater{});
  dead_entries_ = 0;
  ++compactions_;
}

// --- Scheduling --------------------------------------------------------

void Engine::schedule(Time t, Resumption r) {
  assert(t >= now_);
  const std::uint32_t slot = alloc_event_slot();
  EventSlot& s = slots_[slot];
  s.kind = EventSlot::kResume;
  s.handle = r.handle;
  s.ctx = r.ctx;
  s.actor_slot = r.actor_slot;
  s.actor_gen = r.actor_gen;
  push_entry(t, slot);
}

TimerHandle Engine::call_at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  const std::uint32_t slot = alloc_event_slot();
  EventSlot& s = slots_[slot];
  s.kind = EventSlot::kCallback;
  s.fn = std::move(fn);
  push_entry(t, slot);
  return TimerHandle(this, slot, s.gen);
}

void Engine::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size() || slots_[slot].gen != gen) return;  // already gone
  assert(slots_[slot].kind == EventSlot::kCallback);
  ++cancelled_events_;
  ++dead_entries_;  // the index entry stays behind for lazy removal
  free_event_slot(slot);
  maybe_compact();
}

// --- Actors ------------------------------------------------------------

std::uint32_t Engine::alloc_actor_slot() {
  std::uint32_t slot;
  if (free_actors_ != kNoSlot) {
    slot = free_actors_;
    free_actors_ = actor_slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(actor_slots_.size());
    actor_slots_.emplace_back();
  }
  return slot;
}

ActorId Engine::spawn(std::string name, Task<void> body) {
  if (!body.valid()) throw std::invalid_argument("spawn: empty task");
  const ActorId id = next_actor_id_++;
  const std::uint32_t slot = alloc_actor_slot();
  ActorSlot& as = actor_slots_[slot];
  Actor& actor = as.actor.emplace();
  actor.id = id;
  actor.name = std::move(name);
  actor.ctx = std::make_unique<ActorContext>();
  actor.ctx->engine = this;
  actor.ctx->id = id;
  actor.ctx->name = actor.name;
  actor.ctx->slot = slot;
  actor.ctx->gen = as.gen;
  actor.root = body.release();
  actor.root.promise().set_context(actor.ctx.get());
  schedule(now_, Resumption::of(actor.root, actor.ctx.get()));
  for (std::size_t i = 0; i < observers_.size(); ++i) {
    observers_[i]->on_spawn(now_, id, actor.name);
  }
  id_to_slot_.emplace(id, slot);
  return id;
}

bool Engine::kill(ActorId id) {
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return false;
  if (running_actor_ == id) {
    // Cannot destroy the frame we are currently executing inside; reap
    // after the current dispatch unwinds. The generation bump happens at
    // destruction, before any later event could be dispatched, so events
    // the actor schedules in its remaining steps still die unexecuted.
    deferred_kills_.push_back(id);
    return true;
  }
  destroy_actor_slot(it->second, nullptr);
  return true;
}

const std::string* Engine::actor_name(ActorId id) const {
  auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? nullptr
                                 : &actor_slots_[it->second].actor->name;
}

void Engine::add_joiner(ActorId id, Resumption r) {
  actor_slots_[id_to_slot_.at(id)].actor->joiners.push_back(std::move(r));
}

void Engine::reap_finished_and_killed() {
  while (!finished_.empty() || !deferred_kills_.empty()) {
    if (!finished_.empty()) {
      auto [id, error] = std::move(finished_.back());
      finished_.pop_back();
      auto it = id_to_slot_.find(id);
      if (it != id_to_slot_.end()) destroy_actor_slot(it->second, std::move(error));
    } else {
      ActorId id = deferred_kills_.back();
      deferred_kills_.pop_back();
      auto it = id_to_slot_.find(id);
      if (it != id_to_slot_.end()) destroy_actor_slot(it->second, nullptr);
    }
  }
}

void Engine::destroy_actor_slot(std::uint32_t slot, std::exception_ptr error) {
  ActorSlot& as = actor_slots_[slot];
  Actor actor = std::move(*as.actor);
  as.actor.reset();
  ++as.gen;  // expire every pending resumption for this actor at once
  as.next_free = free_actors_;
  free_actors_ = slot;
  id_to_slot_.erase(actor.id);
  if (!in_shutdown_) {
    // Finished actors arrive via the finished_ list; everything else
    // reaching here directly is a kill.
    const bool finished = actor.root && actor.root.done();
    for (std::size_t i = 0; i < observers_.size(); ++i) {
      if (finished) {
        observers_[i]->on_finish(now_, actor.id, actor.name);
      } else {
        observers_[i]->on_kill(now_, actor.id, actor.name);
      }
    }
  }
  if (error) unhandled_errors_.push_back(error);
  if (!in_shutdown_) {
    for (Resumption& r : actor.joiners) {
      schedule(now_, std::move(r));
    }
  }
  if (actor.root) actor.root.destroy();
}

// --- Run loop ----------------------------------------------------------

void Engine::dispatch(std::uint32_t slot) {
  EventSlot& s = slots_[slot];
  if (s.kind == EventSlot::kResume) {
    // Copy the payload out and free the slot *before* resuming: the resumed
    // coroutine may schedule, cancel, or trigger a compaction (all of which
    // may touch or even reallocate the slab).
    std::coroutine_handle<> h = s.handle;
    ActorContext* ctx = s.ctx;
    free_event_slot(slot);
    ++events_executed_;
    running_actor_ = ctx->id;
    h.resume();
    running_actor_ = 0;
  } else {
    std::function<void()> fn = std::move(s.fn);
    free_event_slot(slot);
    ++events_executed_;
    fn();
  }
  reap_finished_and_killed();
}

Time Engine::run() { return run_until(kTimeInfinity); }

Time Engine::run_until(Time limit) {
  while (!heap_.empty()) {
    // Dead events (killed actor, cancelled timer) are dropped without
    // advancing the clock: a run's end time reflects work that actually
    // happened, not ghosts of cancelled timeouts.
    {
      const HeapEntry& top = heap_.front();
      EventSlot& s = slots_[top.slot];
      if (s.gen != top.gen) {
        // Cancelled timer: the slot was already freed by cancel_event.
        --dead_entries_;
        pop_top();
        continue;
      }
      if (s.kind == EventSlot::kResume &&
          !actor_slot_live(s.actor_slot, s.actor_gen)) {
        free_event_slot(top.slot);
        pop_top();
        continue;
      }
    }
    if (heap_.front().t > limit) {
      now_ = limit;
      check_failures();
      return now_;
    }
    const Time t = heap_.front().t;
    const std::uint32_t slot = heap_.front().slot;
    pop_top();
    now_ = t;
    dispatch(slot);
  }
  check_failures();
  return now_;
}

void Engine::check_failures() {
  if (unhandled_errors_.empty()) return;
  std::exception_ptr first = unhandled_errors_.front();
  unhandled_errors_.clear();
  std::rethrow_exception(first);
}

void Engine::shutdown() {
  in_shutdown_ = true;
  // Destroy live actors in a defined order (ascending id) so coroutine-frame
  // destructors (which may close sockets etc.) run deterministically.
  std::vector<ActorId> ids;
  ids.reserve(id_to_slot_.size());
  for (const auto& [id, _] : id_to_slot_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (ActorId id : ids) {
    auto it = id_to_slot_.find(id);
    if (it == id_to_slot_.end()) continue;
    destroy_actor_slot(it->second, nullptr);
  }
  // Drop all pending events. Slots are freed (closures destroyed) but the
  // slab itself is kept, so generations persist and a late TimerHandle
  // cancel() remains a harmless generation mismatch.
  for (const HeapEntry& e : heap_) {
    if (slots_[e.slot].gen == e.gen) free_event_slot(e.slot);
  }
  heap_.clear();
  dead_entries_ = 0;
  finished_.clear();
  deferred_kills_.clear();
  in_shutdown_ = false;
}

}  // namespace jets::sim
