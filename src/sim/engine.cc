#include "sim/engine.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace jets::sim {

void engine_actor_finished(Engine& engine, std::uint64_t actor_id,
                           std::exception_ptr error) {
  engine.finished_.emplace_back(actor_id, std::move(error));
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  in_shutdown_ = true;
  // Destroy live actors in a defined order (ascending id) so coroutine-frame
  // destructors (which may close sockets etc.) run deterministically.
  std::vector<ActorId> ids;
  ids.reserve(actors_.size());
  for (const auto& [id, _] : actors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (ActorId id : ids) {
    auto it = actors_.find(id);
    if (it == actors_.end()) continue;
    *it->second.alive = false;
    it->second.alive.reset();
    if (it->second.root) it->second.root.destroy();
    actors_.erase(it);
  }
  queue_ = {};
  finished_.clear();
  deferred_kills_.clear();
  in_shutdown_ = false;
}

ActorId Engine::spawn(std::string name, Task<void> body) {
  if (!body.valid()) throw std::invalid_argument("spawn: empty task");
  const ActorId id = next_actor_id_++;
  Actor actor;
  actor.name = std::move(name);
  actor.ctx = std::make_unique<ActorContext>();
  actor.ctx->engine = this;
  actor.ctx->id = id;
  actor.ctx->name = actor.name;
  actor.ctx->alive = std::make_shared<bool>(true);
  actor.alive = actor.ctx->alive;
  actor.root = body.release();
  actor.root.promise().set_context(actor.ctx.get());
  schedule(now_, Resumption::of(actor.root, actor.ctx.get()));
  if (observer_) observer_->on_spawn(now_, id, actor.name);
  actors_.emplace(id, std::move(actor));
  return id;
}

bool Engine::kill(ActorId id) {
  auto it = actors_.find(id);
  if (it == actors_.end()) return false;
  if (running_actor_ == id) {
    // Cannot destroy the frame we are currently executing inside; mark dead
    // and reap after the current dispatch unwinds.
    *it->second.alive = false;
    deferred_kills_.push_back(id);
    return true;
  }
  destroy_actor(it, nullptr);
  return true;
}

const std::string* Engine::actor_name(ActorId id) const {
  auto it = actors_.find(id);
  return it == actors_.end() ? nullptr : &it->second.name;
}

void Engine::add_joiner(ActorId id, Resumption r) {
  actors_.at(id).joiners.push_back(std::move(r));
}

void Engine::schedule(Time t, Resumption r) {
  assert(t >= now_);
  Event ev;
  ev.t = t;
  ev.seq = seq_++;
  ev.resume = std::move(r);
  queue_.push(std::move(ev));
}

TimerHandle Engine::call_at(Time t, std::function<void()> fn) {
  assert(t >= now_);
  Event ev;
  ev.t = t;
  ev.seq = seq_++;
  ev.fn = std::move(fn);
  ev.cancelled = std::make_shared<bool>(false);
  TimerHandle handle(ev.cancelled);
  queue_.push(std::move(ev));
  return handle;
}

void Engine::dispatch(Event& ev) {
  if (ev.resume.handle) {
    auto owner = ev.resume.token.lock();  // keep the actor alive across resume
    if (!owner) return;                   // actor killed since scheduling
    ++events_executed_;
    running_actor_ = ev.resume.ctx->id;
    ev.resume.handle.resume();
    running_actor_ = 0;
  } else if (ev.fn) {
    if (*ev.cancelled) return;
    ++events_executed_;
    ev.fn();
  }
  reap_finished_and_killed();
}

void Engine::reap_finished_and_killed() {
  while (!finished_.empty() || !deferred_kills_.empty()) {
    if (!finished_.empty()) {
      auto [id, error] = std::move(finished_.back());
      finished_.pop_back();
      auto it = actors_.find(id);
      if (it != actors_.end()) destroy_actor(it, std::move(error));
    } else {
      ActorId id = deferred_kills_.back();
      deferred_kills_.pop_back();
      auto it = actors_.find(id);
      if (it != actors_.end()) destroy_actor(it, nullptr);
    }
  }
}

void Engine::destroy_actor(std::unordered_map<ActorId, Actor>::iterator it,
                           std::exception_ptr error) {
  Actor actor = std::move(it->second);
  const ActorId id = it->first;
  actors_.erase(it);
  if (observer_ && !in_shutdown_) {
    // Finished actors arrive via the finished_ list; everything else
    // reaching here directly is a kill.
    if (actor.root && actor.root.done()) {
      observer_->on_finish(now_, id, actor.name);
    } else {
      observer_->on_kill(now_, id, actor.name);
    }
  }
  *actor.alive = false;
  if (error) unhandled_errors_.push_back(error);
  for (Resumption& r : actor.joiners) {
    schedule(now_, std::move(r));
  }
  actor.alive.reset();  // expire all pending event tokens for this actor
  if (actor.root) actor.root.destroy();
}

Time Engine::run() { return run_until(kTimeInfinity); }

Time Engine::run_until(Time limit) {
  while (!queue_.empty()) {
    // Dead events (killed actor, cancelled timer) are dropped without
    // advancing the clock: a run's end time reflects work that actually
    // happened, not ghosts of cancelled timeouts.
    {
      const Event& top = queue_.top();
      const bool dead = top.resume.handle ? top.resume.token.expired()
                                          : (!top.fn || *top.cancelled);
      if (dead) {
        queue_.pop();
        continue;
      }
    }
    if (queue_.top().t > limit) {
      now_ = limit;
      check_failures();
      return now_;
    }
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    dispatch(ev);
  }
  check_failures();
  return now_;
}

void Engine::check_failures() {
  if (unhandled_errors_.empty()) return;
  std::exception_ptr first = unhandled_errors_.front();
  unhandled_errors_.clear();
  std::rethrow_exception(first);
}

}  // namespace jets::sim
