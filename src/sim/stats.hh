// Measurement utilities used by the benchmark harnesses: sample summaries,
// histograms (Fig 11), time series (Figs 10/13), and time-weighted gauges
// for the utilization metric of Eq. (1) in the paper.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace jets::sim {

/// Accumulates scalar samples; provides mean/min/max/quantiles.
class Summary {
 public:
  void add(double x);
  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// q in [0, 1]; nearest-rank on the sorted samples.
  double quantile(double q) const;
  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over doubles; values outside [lo, hi) clamp to the
/// edge bins. Used for the NAMD wall-time distribution (Fig 11).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bins() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  std::size_t total() const noexcept { return total_; }
  /// Rows of "lo hi count" for harness output.
  std::string to_table() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ordered (time, value) series, e.g. running-job counts (Figs 10, 13).
class TimeSeries {
 public:
  void add(Time t, double v) { points_.emplace_back(t, v); }
  std::size_t size() const noexcept { return points_.size(); }
  const std::vector<std::pair<Time, double>>& points() const noexcept {
    return points_;
  }
  /// Downsamples to at most `max_points` by striding (for printed figures).
  TimeSeries downsample(std::size_t max_points) const;
  std::string to_table() const;

 private:
  std::vector<std::pair<Time, double>> points_;
};

/// A gauge whose time-weighted integral can be queried: drives utilization
/// (busy core-seconds / capacity core-seconds), queue lengths over time, etc.
class TimeWeightedGauge {
 public:
  explicit TimeWeightedGauge(double initial = 0.0) : value_(initial) {}

  void set(Time now, double v);
  void add(Time now, double dv);
  double value() const noexcept { return value_; }

  /// Integral of the gauge over [0, now].
  double integral(Time now) const;

  /// Time-average of the gauge over [from, to] given the integral bookkeeping
  /// started at 0. Requires from <= to.
  double average(Time from, Time to) const;

  /// The recorded step points (for plotting load level, Fig 13).
  const TimeSeries& series() const noexcept { return series_; }

 private:
  double value_ = 0.0;
  Time last_change_ = 0;
  double integral_ = 0.0;          // over [0, last_change_]
  double integral_at_from_ = 0.0;  // helper for average(); see .cc
  TimeSeries series_;
  // Past integral checkpoints for average(from, to) queries.
  std::map<Time, double> checkpoints_;
};

/// The paper's utilization metric, Eq. (1):
///   utilization = (duration * jobs * n) / (allocation_size * time)
/// expressed here as busy core-time over capacity core-time.
class UtilizationMeter {
 public:
  explicit UtilizationMeter(std::size_t capacity_cores)
      : capacity_(capacity_cores), busy_(0.0) {}

  void task_started(Time now, std::size_t cores) {
    busy_.add(now, static_cast<double>(cores));
  }
  void task_finished(Time now, std::size_t cores) {
    busy_.add(now, -static_cast<double>(cores));
  }

  std::size_t capacity() const noexcept { return capacity_; }
  double busy_now() const noexcept { return busy_.value(); }

  /// Utilization over [from, to].
  double utilization(Time from, Time to) const;

  /// Load level (busy cores) as a time series, for Fig 13.
  const TimeSeries& load_series() const noexcept { return busy_.series(); }

 private:
  std::size_t capacity_;
  TimeWeightedGauge busy_;
};

}  // namespace jets::sim
