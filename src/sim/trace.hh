// Execution tracing for the simulation engine.
//
// An EngineObserver receives actor lifecycle callbacks (spawn, finish,
// kill); TraceLog is a ready-made observer that records them with
// timestamps and offers filtering/counting — the tool for debugging
// middleware interactions ("which proxy died first?") and for tests that
// assert on process churn.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/time.hh"

namespace jets::sim {

struct TraceEvent {
  enum class Kind { kSpawn, kFinish, kKill };
  Kind kind = Kind::kSpawn;
  Time at = 0;
  ActorId actor = 0;
  std::string name;
};

/// Recording observer. Attach with ScopedObserver{engine, log}, whose
/// destructor detaches before the log can go out of scope; any number of
/// observers can be registered at once.
class TraceLog : public EngineObserver {
 public:
  void on_spawn(Time at, ActorId id, const std::string& name) override {
    record({TraceEvent::Kind::kSpawn, at, id, name});
  }
  void on_finish(Time at, ActorId id, const std::string& name) override {
    record({TraceEvent::Kind::kFinish, at, id, name});
  }
  void on_kill(Time at, ActorId id, const std::string& name) override {
    record({TraceEvent::Kind::kKill, at, id, name});
  }

  void record(TraceEvent ev) { events_.push_back(std::move(ev)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  std::size_t count(TraceEvent::Kind kind) const {
    std::size_t n = 0;
    for (const auto& e : events_) n += e.kind == kind ? 1 : 0;
    return n;
  }

  /// Events whose actor name contains `needle` (e.g. "worker", "mpiexec").
  std::vector<TraceEvent> matching(const std::string& needle) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_) {
      if (e.name.find(needle) != std::string::npos) out.push_back(e);
    }
    return out;
  }

  /// Live actors at the end of the recorded window (spawned, not ended).
  std::size_t live_at_end() const {
    std::size_t live = 0;
    for (const auto& e : events_) {
      if (e.kind == TraceEvent::Kind::kSpawn) {
        ++live;
      } else if (live > 0) {
        --live;
      }
    }
    return live;
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace jets::sim
