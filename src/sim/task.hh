// Coroutine task type for simulated processes.
//
// Every piece of concurrent logic in the simulation — worker agents, the JETS
// service, mpiexec, Hydra proxies, MPI ranks — is written as a `Task<T>`
// coroutine. Tasks suspend on awaitables (delays, channel receives, socket
// I/O) and are resumed by the `Engine` event loop at the appropriate
// simulated time. A child task's frame is owned by the awaiting parent's
// frame, so destroying an actor's root task tears down its whole coroutine
// chain — this is how process kill (fault injection) works.
#pragma once

#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

namespace jets::sim {

class Engine;

/// Out-of-line hook (defined in engine.cc) through which a completed *root*
/// task notifies its engine; avoids a circular include with engine.hh.
void engine_actor_finished(Engine& engine, std::uint64_t actor_id,
                           std::exception_ptr error);

/// Per-actor bookkeeping shared by every coroutine frame the actor runs.
///
/// `slot`/`gen` identify the actor's slab slot in the engine: events queued
/// for this actor carry a copy of both and are skipped once the slot's
/// generation moves on (the actor was killed or finished). This replaces a
/// per-resumption `weak_ptr` cancellation token with a plain epoch compare.
struct ActorContext {
  Engine* engine = nullptr;
  std::uint64_t id = 0;
  std::string name;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

/// Base class for all Task promises; carries the actor context and the
/// continuation to resume when the coroutine completes.
class PromiseBase {
 public:
  ActorContext* context() const noexcept { return ctx_; }
  void set_context(ActorContext* ctx) noexcept { ctx_ = ctx; }
  void set_continuation(std::coroutine_handle<> h) noexcept { continuation_ = h; }
  std::coroutine_handle<> continuation() const noexcept { return continuation_; }

  /// Set by unhandled_exception(); surfaced to the awaiter or the engine.
  std::exception_ptr error;

 protected:
  ActorContext* ctx_ = nullptr;
  std::coroutine_handle<> continuation_;
};

namespace detail {

/// Final awaiter: symmetric-transfers control back to whoever co_awaited the
/// completed task. A root task (no continuation) instead notifies its engine,
/// which reaps the frame once the current resume unwinds.
struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    PromiseBase& p = h.promise();
    if (auto cont = p.continuation()) return cont;
    if (ActorContext* ctx = p.context()) {
      engine_actor_finished(*ctx->engine, ctx->id, p.error);
    }
    return std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

/// Awaiter used when a Task is co_awaited: propagates the parent's actor
/// context into the child, starts it, and resumes the parent on completion.
template <typename TaskT>
struct TaskAwaiter {
  typename TaskT::Handle child;

  bool await_ready() const noexcept { return !child || child.done(); }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> parent) noexcept {
    child.promise().set_context(parent.promise().context());
    child.promise().set_continuation(parent);
    return child;  // symmetric transfer: start the child now
  }

  decltype(auto) await_resume() {
    auto& p = child.promise();
    if (p.error) std::rethrow_exception(p.error);
    if constexpr (!std::is_void_v<typename TaskT::value_type>) {
      return std::move(*p.value);
    }
  }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Moving a Task transfers ownership
/// of the coroutine frame; the destructor destroys a still-suspended frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;
  using value_type = T;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ && handle_.done(); }
  Handle handle() const noexcept { return handle_; }

  /// Releases ownership of the frame (used by Engine for root tasks).
  Handle release() noexcept { return std::exchange(handle_, nullptr); }

  /// Awaiting a task propagates the parent's actor context into the child,
  /// starts the child, and resumes the parent once the child completes.
  auto operator co_await() && noexcept { return detail::TaskAwaiter<Task>{handle_}; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;
  using value_type = void;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return handle_ != nullptr; }
  bool done() const noexcept { return handle_ && handle_.done(); }
  Handle handle() const noexcept { return handle_; }
  Handle release() noexcept { return std::exchange(handle_, nullptr); }

  auto operator co_await() && noexcept { return detail::TaskAwaiter<Task>{handle_}; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_;
};

}  // namespace jets::sim
