// Deterministic random-number utilities for workload models.
//
// All stochastic model inputs (task durations, fault times, message jitter)
// draw from an explicitly seeded Rng so every benchmark run regenerates the
// same figure. Streams can be forked per component (`fork("worker/17")`) so
// adding draws in one component does not perturb another.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <string_view>

#include "sim/time.hh"

namespace jets::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed), seed_(seed) {}

  std::uint64_t seed() const noexcept { return seed_; }

  /// Derives an independent deterministic stream for a named component.
  Rng fork(std::string_view label) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over seed || label
    auto mix = [&h](std::uint64_t byte) {
      h ^= byte;
      h *= 1099511628211ull;
    };
    for (int i = 0; i < 8; ++i) mix((seed_ >> (8 * i)) & 0xff);
    for (unsigned char c : label) mix(c);
    return Rng(h);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(gen_); }

  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Lognormal parameterised by the *target* median and a shape sigma (the
  /// log-space standard deviation) — convenient for long-tailed task times.
  double lognormal_median(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(gen_);
  }

  /// Random duration uniform in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return uniform_int(lo, hi);
  }

  /// Exponentially distributed duration with the given mean, floored at 0.
  Duration exponential_duration(Duration mean) {
    return from_seconds(exponential(to_seconds(mean)));
  }

  std::mt19937_64& generator() noexcept { return gen_; }
  /// Read-only engine access, e.g. for serializing the stream state
  /// (operator<< on mt19937_64 takes const&).
  const std::mt19937_64& generator() const noexcept { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uint64_t seed_;
};

}  // namespace jets::sim
