// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped events. Two event kinds
// exist: coroutine resumptions (the workhorse — every `co_await delay(...)`,
// channel receive, or socket operation schedules one) and plain callbacks
// (used by timers, fault injectors, and periodic samplers).
//
// Hot-path layout: event payloads live in a slab (free-list recycled), and
// the priority queue holds only compact {time, seq, slot, gen} index
// entries, so heap sifts move 24-byte PODs instead of fat closures.
// Cancellation is generation-based on both axes:
//
//   * a TimerHandle remembers its event slot's generation; cancel() frees
//     the slot (releasing the closure's captures *immediately*) and bumps
//     the generation, so the stale heap entry is skipped when it surfaces;
//   * a Resumption remembers its actor slot's generation; killing the actor
//     bumps it, so stale resumptions are skipped without any weak_ptr lock.
//
// A storm of cancelled timers cannot bloat the heap: once known-dead index
// entries outnumber live ones the heap is compacted in place (lazy deletion
// with periodic sweeps). Compaction only removes entries that would have
// been skipped anyway, so the (time, seq) execution order — and therefore
// bit-reproducibility — is unchanged.
//
// Single-threaded by design: simulated concurrency comes from interleaving
// coroutines in simulated time, and equal-time events run in FIFO insertion
// order, so every run is bit-reproducible.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::sim {

/// Identifier of a spawned actor (a root coroutine plus its context).
using ActorId = std::uint64_t;

/// Observer for actor lifecycle events (see sim/trace.hh for a recorder).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_spawn(Time at, ActorId id, const std::string& name) = 0;
  virtual void on_finish(Time at, ActorId id, const std::string& name) = 0;
  virtual void on_kill(Time at, ActorId id, const std::string& name) = 0;
};

class Engine;

/// Handle to a scheduled callback; cancel() prevents a pending fire and
/// releases the callback's captures immediately. Copyable; all copies refer
/// to the same slot+generation, so cancelling any of them works and double
/// cancels are no-ops. The engine must outlive any cancel() call.
class TimerHandle {
 public:
  TimerHandle() = default;
  TimerHandle(Engine* engine, std::uint32_t slot, std::uint32_t gen)
      : engine_(engine), slot_(slot), gen_(gen) {}
  inline void cancel();
  /// Absolute time the callback will fire, or nullopt if the handle is
  /// empty, already fired, or cancelled. Lets checkpoint code serialize a
  /// timer as its deadline and re-arm it on restore.
  inline std::optional<Time> fire_time() const;
  bool valid() const noexcept { return engine_ != nullptr; }

 private:
  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// A suspended coroutine waiting to be resumed, together with the actor it
/// belongs to. `ctx` is only dereferenced after the slot-generation check
/// passes (expired() is false), so it can never dangle: the generation is
/// bumped before the context is destroyed.
struct Resumption {
  std::coroutine_handle<> handle;
  ActorContext* ctx = nullptr;
  Engine* engine = nullptr;
  std::uint32_t actor_slot = 0;
  std::uint32_t actor_gen = 0;

  static Resumption of(std::coroutine_handle<> h, ActorContext* ctx) {
    return Resumption{h, ctx, ctx->engine, ctx->slot, ctx->gen};
  }

  /// True once the owning actor finished or was killed (epoch check
  /// against the actor slot's generation). Default-constructed
  /// resumptions are expired.
  inline bool expired() const;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  // --- Actor management -----------------------------------------------

  /// Starts `body` as a new independent actor. The first resumption is
  /// queued at the current time; the returned id can be joined or killed.
  ActorId spawn(std::string name, Task<void> body);

  /// Destroys a live actor's coroutine chain and cancels its pending
  /// events. Safe to call from within any actor (including itself; the
  /// teardown is deferred until the current resume step unwinds).
  /// Returns false if the actor is unknown or already finished.
  bool kill(ActorId id);

  bool is_live(ActorId id) const { return id_to_slot_.contains(id); }
  std::size_t live_actor_count() const { return id_to_slot_.size(); }
  const std::string* actor_name(ActorId id) const;

  /// The actor currently being resumed (0 outside a resume step). Lets
  /// higher layers attribute side effects (e.g. process parentage) to the
  /// acting simulated process.
  ActorId running_actor() const noexcept { return running_actor_; }

  /// Awaitable that completes when the given actor finishes or is killed.
  /// An uncaught exception in any actor is reported by check_failures()
  /// (called from run()), not through join.
  auto join(ActorId id);

  // --- Event scheduling (used by awaitables and timers) ----------------

  /// Queues a coroutine resumption at absolute time `t` (>= now). The
  /// resumption is dropped if its actor has been killed by then.
  void schedule(Time t, Resumption r);

  /// Registers a resumption to fire when actor `id` terminates. Exposed for
  /// the join awaitable; requires the actor to be live.
  void add_joiner(ActorId id, Resumption r);

  /// Queues a plain callback at absolute time `t`.
  TimerHandle call_at(Time t, std::function<void()> fn);
  TimerHandle call_in(Duration d, std::function<void()> fn) {
    return call_at(now_ + d, std::move(fn));
  }

  // --- Running ----------------------------------------------------------

  /// Runs until the event queue is empty. Returns the final time.
  Time run();

  /// Runs until the queue is empty or simulated time would exceed `limit`;
  /// the clock is left at min(limit, time of last executed event).
  Time run_until(Time limit);

  /// Total events executed (skipped-cancelled events are not counted).
  std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// If any actor terminated with an exception nobody joined, rethrows the
  /// first such exception. run()/run_until() call this automatically.
  void check_failures();

  /// Destroys every live actor (in ascending id order) and drops all
  /// pending events. Higher layers whose objects are referenced from actor
  /// frames (e.g. a Machine's network) call this from their destructors so
  /// frame teardown runs while those objects are still alive.
  void shutdown();

  /// Registers a lifecycle observer; every registered observer is notified
  /// in registration order. The observer must stay registered only while it
  /// is alive — prefer ScopedObserver, which cannot dangle. shutdown() does
  /// not notify. Double registration is an error (asserted).
  void add_observer(EngineObserver* observer);

  /// Unregisters a previously added observer; unknown pointers are ignored
  /// so teardown paths can remove unconditionally.
  void remove_observer(EngineObserver* observer);

  std::size_t observer_count() const noexcept { return observers_.size(); }

  // --- Observability of the event core ----------------------------------

  /// Event slots currently allocated: scheduled-and-not-yet-fired events.
  /// Cancelled timers leave immediately; resumptions of a dead actor are
  /// counted until they surface at the heap top or a compaction sweeps
  /// them.
  std::size_t pending_events() const noexcept { return live_slots_; }
  /// Timers cancelled before firing (their closures were released eagerly).
  std::uint64_t cancelled_events() const noexcept { return cancelled_events_; }
  /// Lazy-deletion sweeps performed on the index heap.
  std::uint64_t compactions() const noexcept { return compactions_; }
  /// Raw index-heap entries, including not-yet-swept dead ones.
  std::size_t heap_size() const noexcept { return heap_.size(); }
  /// Most event slots ever allocated at once (slab high-water mark).
  std::size_t slab_high_water() const noexcept { return slots_.size(); }

  // --- Internal hooks for TimerHandle / Resumption (treat as private) ----

  /// Cancels a callback event if (slot, gen) still names it: releases the
  /// closure now and marks the heap entry dead for lazy removal.
  void cancel_event(std::uint32_t slot, std::uint32_t gen);
  /// Absolute fire time of a pending callback event, if (slot, gen) still
  /// names one. Read-only; used by TimerHandle::fire_time().
  std::optional<Time> event_time(std::uint32_t slot, std::uint32_t gen) const {
    if (slot >= slots_.size()) return std::nullopt;
    const EventSlot& s = slots_[slot];
    if (s.gen != gen || s.kind != EventSlot::kCallback) return std::nullopt;
    return s.at;
  }
  /// Epoch check: does (slot, gen) still name a live actor?
  bool actor_slot_live(std::uint32_t slot, std::uint32_t gen) const {
    return slot < actor_slots_.size() && actor_slots_[slot].gen == gen;
  }

 private:
  friend void engine_actor_finished(Engine&, std::uint64_t, std::exception_ptr);

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Compact once at least this many known-dead entries have accumulated
  /// *and* they are at least half the heap.
  static constexpr std::size_t kCompactMin = 64;

  struct Actor {
    ActorId id = 0;
    std::string name;
    Task<void>::Handle root;
    std::unique_ptr<ActorContext> ctx;
    std::vector<Resumption> joiners;
  };

  /// Slab cell for actors. `gen` is bumped when the occupant is destroyed,
  /// which atomically expires every Resumption created for it.
  struct ActorSlot {
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    std::optional<Actor> actor;
  };

  /// Slab cell for events. Exactly one payload is meaningful per kind.
  /// `gen` is bumped when the slot is freed (fire, cancel, or sweep), which
  /// expires the heap index entry and any TimerHandle pointing here.
  struct EventSlot {
    enum Kind : std::uint8_t { kFree, kResume, kCallback };
    std::uint32_t gen = 0;
    Kind kind = kFree;
    std::uint32_t next_free = kNoSlot;
    // kResume payload:
    std::coroutine_handle<> handle{};
    ActorContext* ctx = nullptr;
    std::uint32_t actor_slot = 0;
    std::uint32_t actor_gen = 0;
    // kCallback payload:
    std::function<void()> fn;
    /// Absolute fire time, mirrored from the heap entry so event_time()
    /// can answer without searching the heap.
    Time at = 0;
  };

  /// What the priority queue actually sifts: 24 bytes, trivially copyable.
  struct HeapEntry {
    Time t = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  /// Max-heap comparator inverted into a min-heap on (time, seq): FIFO
  /// among equal times — the same total order as the seed implementation.
  struct HeapLater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::uint32_t alloc_event_slot();
  void free_event_slot(std::uint32_t slot);
  void push_entry(Time t, std::uint32_t slot);
  void pop_top();
  /// Removes every known-dead index entry (cancelled timers, resumptions of
  /// dead actors) and re-heapifies. Order-preserving: only entries the run
  /// loop would skip are removed.
  void compact_heap();
  void maybe_compact() {
    if (dead_entries_ >= kCompactMin && dead_entries_ * 2 >= heap_.size()) {
      compact_heap();
    }
  }

  std::uint32_t alloc_actor_slot();
  void dispatch(std::uint32_t slot);
  void reap_finished_and_killed();
  void destroy_actor_slot(std::uint32_t slot, std::exception_ptr error);

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_executed_ = 0;
  ActorId next_actor_id_ = 1;
  ActorId running_actor_ = 0;  // 0 = none

  // Event core: index heap over the slab.
  std::vector<HeapEntry> heap_;
  std::vector<EventSlot> slots_;
  std::uint32_t free_events_ = kNoSlot;
  std::size_t live_slots_ = 0;
  /// Known-dead entries still in heap_ (from cancel_event); resumptions of
  /// dead actors are discovered lazily and not counted here.
  std::size_t dead_entries_ = 0;
  std::uint64_t cancelled_events_ = 0;
  std::uint64_t compactions_ = 0;

  // Actor slab + public-id index (ids are never reused).
  std::vector<ActorSlot> actor_slots_;
  std::uint32_t free_actors_ = kNoSlot;
  std::unordered_map<ActorId, std::uint32_t> id_to_slot_;

  // Actors whose root completed during the current dispatch, plus the error
  // (if any) their body ended with; reaped after the dispatch unwinds.
  std::vector<std::pair<ActorId, std::exception_ptr>> finished_;
  std::vector<ActorId> deferred_kills_;
  std::vector<std::exception_ptr> unhandled_errors_;
  // Registered lifecycle observers, notified in registration order. Index
  // loop (not iterators) in the notify paths: an observer may add/remove
  // observers from inside a callback.
  std::vector<EngineObserver*> observers_;
  bool in_shutdown_ = false;
};

/// RAII observer registration: adds on construction, removes on
/// destruction, so the observer can never outlive its registration window
/// (the dangling-pointer footgun of manual attach/detach pairs).
class ScopedObserver {
 public:
  ScopedObserver(Engine& engine, EngineObserver& observer)
      : engine_(&engine), observer_(&observer) {
    engine_->add_observer(observer_);
  }
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;
  ~ScopedObserver() { engine_->remove_observer(observer_); }

 private:
  Engine* engine_;
  EngineObserver* observer_;
};

inline void TimerHandle::cancel() {
  if (engine_) engine_->cancel_event(slot_, gen_);
}

inline std::optional<Time> TimerHandle::fire_time() const {
  if (!engine_) return std::nullopt;
  return engine_->event_time(slot_, gen_);
}

inline bool Resumption::expired() const {
  return engine == nullptr || !engine->actor_slot_live(actor_slot, actor_gen);
}

struct JoinAwaiter {
  Engine* engine;
  ActorId id;
  bool await_ready() const noexcept;
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) {
    engine->add_joiner(id, Resumption::of(h, h.promise().context()));
  }
  void await_resume() const noexcept {}
};

inline auto Engine::join(ActorId id) { return JoinAwaiter{this, id}; }

inline bool JoinAwaiter::await_ready() const noexcept {
  return !engine->is_live(id);
}

// --- Basic awaitables ---------------------------------------------------

/// `co_await delay(d)`: resume the current coroutine after `d` simulated
/// time. `delay(0)` yields through the event queue (a fair "yield").
struct Delay {
  Duration d;
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) const {
    ActorContext* ctx = h.promise().context();
    ctx->engine->schedule(ctx->engine->now() + d, Resumption::of(h, ctx));
  }
  void await_resume() const noexcept {}
};

inline Delay delay(Duration d) { return Delay{d}; }
inline Delay yield() { return Delay{0}; }

/// `co_await current_context()`: gives a coroutine access to its own actor
/// context (engine pointer, actor id, cancellation token).
struct CurrentContext {
  ActorContext* ctx = nullptr;
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> h) {
    ctx = h.promise().context();
    return false;  // never actually suspend
  }
  ActorContext* await_resume() const noexcept { return ctx; }
};

inline CurrentContext current_context() { return {}; }

}  // namespace jets::sim
