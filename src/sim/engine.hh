// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped events. Two event kinds
// exist: coroutine resumptions (the workhorse — every `co_await delay(...)`,
// channel receive, or socket operation schedules one) and plain callbacks
// (used by timers, fault injectors, and periodic samplers). Events carry a
// weak cancellation token; killing an actor expires its token so stale
// resumptions are skipped rather than resuming a destroyed frame.
//
// Single-threaded by design: simulated concurrency comes from interleaving
// coroutines in simulated time, and equal-time events run in FIFO insertion
// order, so every run is bit-reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::sim {

/// Identifier of a spawned actor (a root coroutine plus its context).
using ActorId = std::uint64_t;

/// Observer for actor lifecycle events (see sim/trace.hh for a recorder).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_spawn(Time at, ActorId id, const std::string& name) = 0;
  virtual void on_finish(Time at, ActorId id, const std::string& name) = 0;
  virtual void on_kill(Time at, ActorId id, const std::string& name) = 0;
};

/// Handle to a scheduled callback; cancel() prevents a pending fire.
class TimerHandle {
 public:
  TimerHandle() = default;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool valid() const noexcept { return cancelled_ != nullptr; }

 private:
  std::shared_ptr<bool> cancelled_;
};

/// A suspended coroutine waiting to be resumed, together with the actor it
/// belongs to. `ctx` is only dereferenced after `token.lock()` succeeds, so
/// it can never dangle: the token expires before the context is destroyed.
struct Resumption {
  std::coroutine_handle<> handle;
  ActorContext* ctx = nullptr;
  std::weak_ptr<void> token;

  static Resumption of(std::coroutine_handle<> h, ActorContext* ctx) {
    return Resumption{h, ctx, std::weak_ptr<void>(ctx->alive)};
  }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time.
  Time now() const noexcept { return now_; }

  // --- Actor management -----------------------------------------------

  /// Starts `body` as a new independent actor. The first resumption is
  /// queued at the current time; the returned id can be joined or killed.
  ActorId spawn(std::string name, Task<void> body);

  /// Destroys a live actor's coroutine chain and cancels its pending
  /// events. Safe to call from within any actor (including itself; the
  /// teardown is deferred until the current resume step unwinds).
  /// Returns false if the actor is unknown or already finished.
  bool kill(ActorId id);

  bool is_live(ActorId id) const { return actors_.contains(id); }
  std::size_t live_actor_count() const { return actors_.size(); }
  const std::string* actor_name(ActorId id) const;

  /// The actor currently being resumed (0 outside a resume step). Lets
  /// higher layers attribute side effects (e.g. process parentage) to the
  /// acting simulated process.
  ActorId running_actor() const noexcept { return running_actor_; }

  /// Awaitable that completes when the given actor finishes or is killed.
  /// An uncaught exception in any actor is reported by check_failures()
  /// (called from run()), not through join.
  auto join(ActorId id);

  // --- Event scheduling (used by awaitables and timers) ----------------

  /// Queues a coroutine resumption at absolute time `t` (>= now). The
  /// resumption is dropped if its actor has been killed by then.
  void schedule(Time t, Resumption r);

  /// Registers a resumption to fire when actor `id` terminates. Exposed for
  /// the join awaitable; requires the actor to be live.
  void add_joiner(ActorId id, Resumption r);

  /// Queues a plain callback at absolute time `t`.
  TimerHandle call_at(Time t, std::function<void()> fn);
  TimerHandle call_in(Duration d, std::function<void()> fn) {
    return call_at(now_ + d, std::move(fn));
  }

  // --- Running ----------------------------------------------------------

  /// Runs until the event queue is empty. Returns the final time.
  Time run();

  /// Runs until the queue is empty or simulated time would exceed `limit`;
  /// the clock is left at min(limit, time of last executed event).
  Time run_until(Time limit);

  /// Total events executed (skipped-cancelled events are not counted).
  std::uint64_t events_executed() const noexcept { return events_executed_; }

  /// If any actor terminated with an exception nobody joined, rethrows the
  /// first such exception. run()/run_until() call this automatically.
  void check_failures();

  /// Destroys every live actor (in ascending id order) and drops all
  /// pending events. Higher layers whose objects are referenced from actor
  /// frames (e.g. a Machine's network) call this from their destructors so
  /// frame teardown runs while those objects are still alive.
  void shutdown();

  /// Installs (or clears, with nullptr) a lifecycle observer. The observer
  /// must outlive its registration; shutdown() does not notify.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

 private:
  friend void engine_actor_finished(Engine&, std::uint64_t, std::exception_ptr);

  struct Actor {
    std::string name;
    Task<void>::Handle root;
    std::unique_ptr<ActorContext> ctx;
    std::shared_ptr<bool> alive;
    std::vector<Resumption> joiners;
  };

  struct Event {
    Time t = 0;
    std::uint64_t seq = 0;
    // Exactly one of {resume.handle, fn} is set.
    Resumption resume;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;  // for fn events only
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;  // min-heap on time
      return a.seq > b.seq;              // FIFO among equal times
    }
  };

  void dispatch(Event& ev);
  void reap_finished_and_killed();
  void destroy_actor(std::unordered_map<ActorId, Actor>::iterator it,
                     std::exception_ptr error);

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_executed_ = 0;
  ActorId next_actor_id_ = 1;
  ActorId running_actor_ = 0;  // 0 = none
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_map<ActorId, Actor> actors_;
  // Actors whose root completed during the current dispatch, plus the error
  // (if any) their body ended with; reaped after the dispatch unwinds.
  std::vector<std::pair<ActorId, std::exception_ptr>> finished_;
  std::vector<ActorId> deferred_kills_;
  std::vector<std::exception_ptr> unhandled_errors_;
  EngineObserver* observer_ = nullptr;
  bool in_shutdown_ = false;
};

struct JoinAwaiter {
  Engine* engine;
  ActorId id;
  bool await_ready() const noexcept;
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) {
    engine->add_joiner(id, Resumption::of(h, h.promise().context()));
  }
  void await_resume() const noexcept {}
};

inline auto Engine::join(ActorId id) { return JoinAwaiter{this, id}; }

inline bool JoinAwaiter::await_ready() const noexcept {
  return !engine->is_live(id);
}

// --- Basic awaitables ---------------------------------------------------

/// `co_await delay(d)`: resume the current coroutine after `d` simulated
/// time. `delay(0)` yields through the event queue (a fair "yield").
struct Delay {
  Duration d;
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  void await_suspend(std::coroutine_handle<Promise> h) const {
    ActorContext* ctx = h.promise().context();
    ctx->engine->schedule(ctx->engine->now() + d, Resumption::of(h, ctx));
  }
  void await_resume() const noexcept {}
};

inline Delay delay(Duration d) { return Delay{d}; }
inline Delay yield() { return Delay{0}; }

/// `co_await current_context()`: gives a coroutine access to its own actor
/// context (engine pointer, actor id, cancellation token).
struct CurrentContext {
  ActorContext* ctx = nullptr;
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  bool await_suspend(std::coroutine_handle<Promise> h) {
    ctx = h.promise().context();
    return false;  // never actually suspend
  }
  ActorContext* await_resume() const noexcept { return ctx; }
};

inline CurrentContext current_context() { return {}; }

}  // namespace jets::sim
