#include "sim/stats.hh"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace jets::sim {

// --- Summary --------------------------------------------------------------

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Summary::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[idx];
}

// --- Histogram --------------------------------------------------------------

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::to_table() const {
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os << bin_lo(b) << ' ' << bin_hi(b) << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

// --- TimeSeries -------------------------------------------------------------

TimeSeries TimeSeries::downsample(std::size_t max_points) const {
  TimeSeries out;
  if (points_.empty() || max_points == 0) return out;
  if (points_.size() <= max_points) return *this;
  const double stride =
      static_cast<double>(points_.size()) / static_cast<double>(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(static_cast<double>(i) * stride);
    out.points_.push_back(points_[idx]);
  }
  out.points_.push_back(points_.back());
  return out;
}

std::string TimeSeries::to_table() const {
  std::ostringstream os;
  for (const auto& [t, v] : points_) {
    os << to_seconds(t) << ' ' << v << '\n';
  }
  return os.str();
}

// --- TimeWeightedGauge --------------------------------------------------------

void TimeWeightedGauge::set(Time now, double v) {
  integral_ += value_ * to_seconds(now - last_change_);
  last_change_ = now;
  value_ = v;
  series_.add(now, v);
  checkpoints_[now] = integral_;
}

void TimeWeightedGauge::add(Time now, double dv) { set(now, value_ + dv); }

double TimeWeightedGauge::integral(Time now) const {
  return integral_ + value_ * to_seconds(now - last_change_);
}

double TimeWeightedGauge::average(Time from, Time to) const {
  if (to <= from) return value_;
  // Integral at `from`: last checkpoint <= from, extended at that value.
  auto integral_at = [this](Time t) {
    auto it = checkpoints_.upper_bound(t);
    if (it == checkpoints_.begin()) return 0.0;
    --it;
    // Value in effect after the checkpointed change:
    // find it from the series: checkpoints_ and series_ are parallel, but we
    // only need integral_ + value*(t - change); reconstruct via neighbors.
    double base = it->second;
    Time change = it->first;
    // Value at that change time: search series (same index ordering).
    // The series is append-only with matching timestamps; linear search from
    // the back is fine for harness-scale queries.
    double v = value_;
    const auto& pts = series_.points();
    for (auto rit = pts.rbegin(); rit != pts.rend(); ++rit) {
      if (rit->first <= change) {
        v = rit->second;
        break;
      }
    }
    if (t > last_change_) {
      return integral_ + value_ * to_seconds(t - last_change_);
    }
    return base + v * to_seconds(t - change);
  };
  const double num = integral_at(to) - integral_at(from);
  return num / to_seconds(to - from);
}

// --- UtilizationMeter ---------------------------------------------------------

double UtilizationMeter::utilization(Time from, Time to) const {
  if (to <= from || capacity_ == 0) return 0.0;
  return busy_.average(from, to) / static_cast<double>(capacity_);
}

}  // namespace jets::sim
