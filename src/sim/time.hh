// Simulated-time representation for the JETS discrete-event engine.
//
// All simulation clocks are 64-bit signed nanosecond counts from the start of
// the run. Integer time (rather than floating-point seconds) keeps event
// ordering exact and runs bit-reproducible across platforms, which the
// benchmark harnesses rely on.
#pragma once

#include <cstdint>

namespace jets::sim {

/// Absolute simulated time, in nanoseconds since the start of the run.
using Time = std::int64_t;

/// A span of simulated time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Largest representable time; used as "never" for timeouts.
inline constexpr Time kTimeInfinity = INT64_MAX;

constexpr Duration nanoseconds(std::int64_t n) { return n; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a (possibly fractional) second count to a Duration, rounding to
/// the nearest nanosecond. Handy for model parameters expressed in seconds.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Converts a Duration (or Time) to floating-point seconds for reporting.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace jets::sim
