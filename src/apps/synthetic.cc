#include "apps/synthetic.hh"

#include <string>

#include "mpi/comm.hh"

namespace jets::apps {

namespace {

double arg_seconds(const os::Env& env, std::size_t idx, double fallback) {
  if (env.argv.size() <= idx) return fallback;
  return std::stod(env.argv[idx]);
}

/// Compute time for this app on its node: the nominal duration stretched
/// by the node's chaos compute multiplier (slow-node fault class).
sim::Duration compute(const os::Env& env, double seconds) {
  return env.machine->scale_compute(env.node, sim::from_seconds(seconds));
}

}  // namespace

void install_synthetic_apps(os::AppRegistry& registry,
                            SyntheticResults* results) {
  registry.install("noop", [](os::Env&) -> sim::Task<void> { co_return; });

  registry.install("sleep", [](os::Env& env) -> sim::Task<void> {
    co_await sim::delay(compute(env, arg_seconds(env, 1, 1.0)));
  });

  // The Fig 7/9 app: "starts up, performs an MPI barrier on all processes,
  // waits for a given time, performs a second MPI barrier, and exits."
  registry.install("mpi_sleep", [](os::Env& env) -> sim::Task<void> {
    auto comm = co_await mpi::Comm::init(env);
    co_await comm->barrier();
    co_await sim::delay(compute(env, arg_seconds(env, 1, 1.0)));
    co_await comm->barrier();
    co_await comm->finalize();
  });

  // The Fig 15 app: barrier, 10 s sleep, each process writes its MPI rank
  // to an output file, barrier, exit (§6.2.1).
  registry.install("mpi_sleep_write", [](os::Env& env) -> sim::Task<void> {
    auto comm = co_await mpi::Comm::init(env);
    co_await comm->barrier();
    co_await sim::delay(compute(env, arg_seconds(env, 1, 10.0)));
    const std::string out =
        (env.argv.size() > 2 ? env.argv[2] : std::string("/gpfs/out")) + "." +
        std::to_string(comm->rank());
    co_await env.machine->shared_fs().write(out, 16);
    co_await comm->barrier();
    co_await comm->finalize();
  });

  registry.install("pingpong", [results](os::Env& env) -> sim::Task<void> {
    const int iters =
        env.argv.size() > 1 ? std::stoi(env.argv[1]) : 100;
    const std::size_t bytes =
        env.argv.size() > 2 ? std::stoul(env.argv[2]) : 8;
    auto comm = co_await mpi::Comm::init(env);
    // Warm up the pair connection so measured iterations exclude the
    // one-time connect handshake, as a real pingpong's first iteration
    // would be discarded.
    if (comm->rank() == 0) {
      co_await comm->send(1, 1);
      (void)co_await comm->recv(1);
    } else {
      (void)co_await comm->recv(0);
      co_await comm->send(0, 1);
    }
    const double t0 = comm->wtime();
    for (int i = 0; i < iters; ++i) {
      if (comm->rank() == 0) {
        co_await comm->send(1, bytes);
        (void)co_await comm->recv(1);
      } else {
        (void)co_await comm->recv(0);
        co_await comm->send(0, bytes);
      }
    }
    if (comm->rank() == 0 && results != nullptr) {
      results->pingpong_rtt.add((comm->wtime() - t0) / iters);
      results->pingpong_bytes = bytes;
    }
    co_await comm->finalize();
  });
}

}  // namespace jets::apps
