// The NAMD stand-in application (paper §6.1.6).
//
// One invocation models a replica-exchange NAMD segment: an NMA system of
// 44,992 atoms run for 10 timesteps, which the paper measures at ~100 s on
// 4 BG/P cores, with a long tail to ~160 s (Fig 11). I/O per run: 5 input
// files / 14.8 MB read, 3 output files / 2.2 MB written, ~11 KB of stdout.
//
// The compute time is sampled from a lognormal distribution whose median/
// shape parameters default to a fit of Fig 11 — and can be re-derived from
// the *real* MD kernel via calibrate_from_kernel(), which times the actual
// Lennard-Jones integrator (examples/rem_namd.cc exercises this).
//
// Usage:  namd_segment <median_s> <sigma> <tag> [out_prefix]
// The <tag> seeds the duration sample, so a given segment's wall time is
// reproducible across runs and modes.
#pragma once

#include <cstdint>
#include <string>

#include "os/program.hh"

namespace jets::apps {

struct NamdModel {
  /// Wall times are floor + lognormal: a deterministic compute floor (the
  /// 10 NMA timesteps) plus a long-tailed straggler component (network/
  /// filesystem interference) — Fig 11: mode 100-120 s, tail to ~160 s.
  double median_seconds = 105.0;
  double sigma = 0.75;  // shape of the straggler tail
  std::uint64_t input_bytes = 14'800'000;   // 5 files
  unsigned input_files = 5;
  std::uint64_t output_bytes = 2'200'000;   // 3 files
  unsigned output_files = 3;
  std::uint64_t stdout_bytes = 11'000;
};

/// Installs "namd_segment" into the registry. The app runs under MPI when
/// launched with a PMI context (JETS MPI jobs) and sequentially otherwise;
/// only rank 0 performs file I/O (the MPI-IO aggregation the paper cites
/// as an MPTC benefit: N/ppn filesystem clients instead of N).
void install_namd_app(os::AppRegistry& registry, NamdModel model = {});

/// Derives the wall-time a segment of `steps` MD steps of an `atoms`-sized
/// system would take, by actually running the Lennard-Jones kernel on a
/// smaller system and extrapolating O(N^2 within cutoff) cost. Returns the
/// measured median seconds to plug into NamdModel. Real computation — used
/// by the examples, not by the deterministic benches.
double calibrate_from_kernel(std::size_t atoms, std::size_t steps,
                             double machine_slowdown);

/// Deterministic per-invocation duration sample shared by the app and the
/// harness-side predictions.
double sample_segment_seconds(const NamdModel& model, const std::string& tag);

}  // namespace jets::apps
