#include "apps/namd.hh"

#include <chrono>
#include <cmath>

#include "md/lj_system.hh"
#include "mpi/comm.hh"
#include "sim/random.hh"

namespace jets::apps {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

double sample_segment_seconds(const NamdModel& model, const std::string& tag) {
  sim::Rng rng(fnv1a(tag));
  // ~91.5 % of the median is the deterministic floor; the rest is a
  // lognormal straggler tail. Median stays at model.median_seconds.
  const double floor = 0.915 * model.median_seconds;
  return floor + rng.lognormal_median(0.085 * model.median_seconds, model.sigma);
}

double calibrate_from_kernel(std::size_t atoms, std::size_t steps,
                             double machine_slowdown) {
  // Run a small real LJ system and scale: the all-pairs force loop is
  // O(N^2) at fixed density with our simple implementation (cell lists
  // would make it O(N)); NAMD-like codes are closer to O(N), so we scale
  // linearly in N and in steps, then apply the host-vs-BG/P slowdown.
  md::LjConfig config;
  config.particles = 500;
  md::LjSystem sys(config);
  sys.step(5);  // warm-up
  const auto t0 = std::chrono::steady_clock::now();
  constexpr std::size_t kMeasuredSteps = 10;
  sys.step(kMeasuredSteps);
  const auto t1 = std::chrono::steady_clock::now();
  const double per_step_per_atom =
      std::chrono::duration<double>(t1 - t0).count() /
      static_cast<double>(kMeasuredSteps) /
      static_cast<double>(config.particles);
  return per_step_per_atom * static_cast<double>(atoms) *
         static_cast<double>(steps) * machine_slowdown;
}

void install_namd_app(os::AppRegistry& registry, NamdModel model) {
  registry.install("namd_segment", [model](os::Env& env) -> sim::Task<void> {
    const double median =
        env.argv.size() > 1 ? std::stod(env.argv[1]) : model.median_seconds;
    const double sigma =
        env.argv.size() > 2 ? std::stod(env.argv[2]) : model.sigma;
    const std::string tag = env.argv.size() > 3 ? env.argv[3] : "seg";
    NamdModel m = model;
    m.median_seconds = median;
    m.sigma = sigma;
    const double compute_s = sample_segment_seconds(m, tag);

    if (env.pmi != nullptr) {
      auto comm = co_await mpi::Comm::init(env);
      co_await comm->barrier();
      if (comm->rank() == 0) {
        // MPI-IO style aggregation: one filesystem client per job.
        co_await env.machine->shared_fs().io(m.input_bytes, m.input_files);
      }
      co_await sim::delay(sim::from_seconds(compute_s));
      co_await comm->barrier();
      if (comm->rank() == 0) {
        co_await env.machine->shared_fs().io(m.output_bytes, m.output_files);
        env.write_stdout(m.stdout_bytes);
      }
      co_await comm->finalize();
    } else {
      co_await env.machine->shared_fs().io(m.input_bytes, m.input_files);
      co_await sim::delay(sim::from_seconds(compute_s));
      co_await env.machine->shared_fs().io(m.output_bytes, m.output_files);
      env.write_stdout(m.stdout_bytes);
    }
  });
}

}  // namespace jets::apps
