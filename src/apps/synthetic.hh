// Synthetic benchmark applications (paper §6.1.1, §6.1.2, §6.1.3, §6.2.1).
//
//   noop                         — exits immediately (Fig 6, Fig 10)
//   sleep <seconds>              — sequential busy app
//   mpi_sleep <seconds>          — MPI_Barrier; sleep; MPI_Barrier (Fig 7/9)
//   mpi_sleep_write <secs> <out> — barrier; sleep; each rank writes its rank
//                                  to a shared-fs file; barrier (Fig 15)
//   pingpong <iters> <bytes>     — two-rank blocking send/recv loop timed
//                                  with MPI_Wtime (Fig 8)
//
// Results that only the application can observe (ping-pong round trips)
// are deposited into a SyntheticResults sink owned by the harness.
#pragma once

#include "os/program.hh"
#include "sim/stats.hh"

namespace jets::apps {

struct SyntheticResults {
  /// Per-round-trip times (seconds) recorded by "pingpong" rank 0.
  sim::Summary pingpong_rtt;
  /// Payload bytes of the last ping-pong run (for bandwidth derivation).
  std::size_t pingpong_bytes = 0;
};

/// Installs the synthetic apps into `registry`. If `results` is non-null it
/// must outlive every run. Binaries are NOT registered on any filesystem —
/// harnesses decide where each app's image lives (GPFS vs staged).
void install_synthetic_apps(os::AppRegistry& registry,
                            SyntheticResults* results = nullptr);

}  // namespace jets::apps
