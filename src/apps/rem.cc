#include "apps/rem.hh"

#include <string>
#include <vector>

namespace jets::apps {

namespace {

std::string seg_name(const char* kind, int i, int j) {
  return std::string("/gpfs/rem/") + kind + "." + std::to_string(i) + "." +
         std::to_string(j);
}

}  // namespace

void build_rem_workflow(swift::SwiftEngine& engine,
                        const RemWorkflowConfig& config) {
  const int R = config.replicas;
  const int J = config.exchanges;

  // File futures: c/v/s (NAMD coordinates, velocities, extended system),
  // o (NAMD stdout), x (exchange token), per segment — Fig 17's arrays.
  auto grid = [&](const char* kind) {
    std::vector<std::vector<swift::DataPtr>> g(
        static_cast<std::size_t>(R),
        std::vector<swift::DataPtr>(static_cast<std::size_t>(J + 1)));
    for (int i = 0; i < R; ++i) {
      for (int j = 0; j <= J; ++j) {
        g[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            engine.file(seg_name(kind, i, j), kind[0] == 'o' ? 11'000 : 740'000);
      }
    }
    return g;
  };
  auto c = grid("c"), v = grid("v"), s = grid("s"), o = grid("o"), x = grid("x");

  // Column 0 holds the initial conditions: set immediately.
  for (int i = 0; i < R; ++i) {
    for (auto* g : {&c, &v, &s, &x}) {
      (*g)[static_cast<std::size_t>(i)][0]->set();
    }
  }

  // Segments: namd(i, j) consumes (c,v,s)[i][j-1] and the exchange token
  // x[i][j-1], produces (c,v,s,o)[i][j].
  for (int i = 0; i < R; ++i) {
    for (int j = 1; j <= J; ++j) {
      const auto ii = static_cast<std::size_t>(i);
      const auto jj = static_cast<std::size_t>(j);
      swift::AppCall call;
      call.argv = {"namd_segment", std::to_string(config.namd.median_seconds),
                   std::to_string(config.namd.sigma),
                   "rem-" + std::to_string(config.seed) + "-" +
                       std::to_string(i) + "-" + std::to_string(j)};
      call.inputs = {c[ii][jj - 1], v[ii][jj - 1], s[ii][jj - 1],
                     x[ii][jj - 1]};
      call.outputs = {c[ii][jj], v[ii][jj], s[ii][jj], o[ii][jj]};
      call.mpi = config.mpi;
      call.nprocs = config.nprocs;
      call.ppn = config.ppn;
      engine.app(std::move(call));
    }
  }

  // Exchanges after each column j (j = 1..J-1 feed the next column; the
  // final column needs no exchange). Alternating parity pairs neighbours;
  // unpaired edge replicas get a trivial pass-through token.
  for (int j = 1; j < J; ++j) {
    const auto jj = static_cast<std::size_t>(j);
    std::vector<bool> paired(static_cast<std::size_t>(R), false);
    const int start = j % 2 == 0 ? 1 : 0;  // Fig 17's %% parity flip
    for (int i = start; i + 1 < R; i += 2) {
      const auto ii = static_cast<std::size_t>(i);
      swift::AppCall ex;
      ex.argv = {"rem_exchange"};
      ex.inputs = {o[ii][jj], o[ii + 1][jj]};
      ex.outputs = {x[ii][jj], x[ii + 1][jj]};
      ex.run_on_login = true;  // filesystem-bound; keep compute slots free
      ex.login_cost = config.exchange_cost;
      engine.app(std::move(ex));
      paired[ii] = paired[ii + 1] = true;
    }
    for (int i = 0; i < R; ++i) {
      if (paired[static_cast<std::size_t>(i)]) continue;
      const auto ii = static_cast<std::size_t>(i);
      swift::AppCall pass;
      pass.argv = {"rem_pass"};
      pass.inputs = {o[ii][jj]};
      pass.outputs = {x[ii][jj]};
      pass.run_on_login = true;
      pass.login_cost = 0;
      engine.app(std::move(pass));
    }
  }
}

}  // namespace jets::apps
