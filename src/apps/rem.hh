// The asynchronous REM dataflow of paper Figs 16/17, built on the Swift
// engine: rows are replica trajectories, columns are exchange epochs; a
// segment (i, j) consumes replica i's coordinate/velocity/extended-system
// files from column j-1 plus the exchange token of the (i, j-1) exchange,
// and produces the column-j files. Exchanges pair neighbouring replicas
// with alternating parity and run as filesystem-bound scripts on the login
// node ("freeing the compute nodes for the next ready NAMD segment",
// §6.2.2). Everything executes concurrently, limited only by these
// dependencies — exactly Swift's semantics.
#pragma once

#include <cstdint>

#include "apps/namd.hh"
#include "swift/engine.hh"

namespace jets::apps {

struct RemWorkflowConfig {
  int replicas = 8;
  int exchanges = 4;  // columns of segments after the initial one
  /// Run each segment as an MPI job of `nprocs` ranks (ppn per worker);
  /// false = single-process segments (Fig 18a vs 18b).
  bool mpi = false;
  int nprocs = 8;
  int ppn = 8;
  /// NAMD model parameters for the segments.
  NamdModel namd;
  /// Cost of the exchange script on the login node (file shuffling).
  sim::Duration exchange_cost = sim::milliseconds(400);
  std::uint64_t seed = 7;
};

/// Registers the whole REM dataflow on `engine`. Segments use the
/// "namd_segment" app (install_namd_app must have been called on the
/// registry backing the CoasterService). Call engine.run_to_completion()
/// afterwards.
void build_rem_workflow(swift::SwiftEngine& engine,
                        const RemWorkflowConfig& config);

/// Expected number of NAMD segment jobs the workflow will run.
inline int rem_segment_count(const RemWorkflowConfig& c) {
  return c.replicas * c.exchanges;
}

}  // namespace jets::apps
