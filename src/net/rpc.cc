#include "net/rpc.hh"

#include <charconv>

namespace jets::net::rpc {
namespace {

// Digest text form: exactly 16 lowercase hex chars (the CAS convention —
// see os::CasStore). Anything else, including a zero digest, is rejected:
// the service historically dropped acks whose digest failed this parse.
std::optional<std::uint64_t> parse_hex16(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// Full-consumption unsigned parse; rejects empty, signs, and trailing junk.
std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || s.empty()) return std::nullopt;
  return v;
}

/// Full-consumption signed int parse (task exit statuses).
std::optional<int> parse_int(std::string_view s) {
  int v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last || s.empty()) return std::nullopt;
  return v;
}

using Kind = DecodeError::Kind;

template <typename M>
Expected<M, DecodeError> err(Kind kind, const char* field) {
  return Unexpected{DecodeError{kind, field}};
}

template <typename M>
std::optional<DecodeError> check_tag(const Message& m) {
  if (m.tag != M::kTag) return DecodeError{Kind::kBadTag, "tag"};
  return std::nullopt;
}

}  // namespace

const char* to_string(RpcError e) {
  switch (e) {
    case RpcError::kTimeout: return "timeout";
    case RpcError::kPeerClosed: return "peer_closed";
    case RpcError::kCancelled: return "cancelled";
    case RpcError::kWindowFull: return "window_full";
    case RpcError::kDecode: return "decode";
  }
  return "unknown";
}

std::string to_string(const DecodeError& e) {
  const char* kind = "unknown";
  switch (e.kind) {
    case Kind::kBadTag: kind = "bad_tag"; break;
    case Kind::kMissingArg: kind = "missing_arg"; break;
    case Kind::kTrailingArgs: kind = "trailing_args"; break;
    case Kind::kBadNumber: kind = "bad_number"; break;
    case Kind::kBadEnum: kind = "bad_enum"; break;
    case Kind::kBadDigest: kind = "bad_digest"; break;
    case Kind::kOversized: kind = "oversized"; break;
  }
  return std::string(kind) + "(" + e.field + ")";
}

// --- Protocol encode/decode ----------------------------------------------

Message RegisterReq::encode() const {
  std::vector<std::string> args;
  args.reserve(1 + inventory.size());
  args.push_back(std::to_string(node));
  for (const std::string& t : inventory) args.push_back(t);
  return Message(kTag, std::move(args));
}

Expected<RegisterReq, DecodeError> RegisterReq::decode(const Message& m) {
  if (auto e = check_tag<RegisterReq>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<RegisterReq>(Kind::kMissingArg, "node");
  const auto node = parse_u64(m.args[0]);
  if (!node) return err<RegisterReq>(Kind::kBadNumber, "node");
  if (*node > 0xFFFFFFFFu) return err<RegisterReq>(Kind::kOversized, "node");
  RegisterReq r;
  r.node = static_cast<NodeId>(*node);
  r.inventory.assign(m.args.begin() + 1, m.args.end());
  return r;
}

Expected<ReadyNote, DecodeError> ReadyNote::decode(const Message& m) {
  if (auto e = check_tag<ReadyNote>(m)) return Unexpected{*e};
  if (!m.args.empty()) return err<ReadyNote>(Kind::kTrailingArgs, "args");
  return ReadyNote{};
}

Expected<PingNote, DecodeError> PingNote::decode(const Message& m) {
  if (auto e = check_tag<PingNote>(m)) return Unexpected{*e};
  if (!m.args.empty()) return err<PingNote>(Kind::kTrailingArgs, "args");
  return PingNote{};
}

Message TaskDone::encode() const {
  const char* reason_token = "app";
  switch (reason) {
    case Reason::kApp: reason_token = "app"; break;
    case Reason::kWatchdog: reason_token = "watchdog"; break;
    case Reason::kKilled: reason_token = "killed"; break;
  }
  return Message(kTag, {task_id, std::to_string(status), reason_token});
}

Expected<TaskDone, DecodeError> TaskDone::decode(const Message& m) {
  if (auto e = check_tag<TaskDone>(m)) return Unexpected{*e};
  if (m.args.size() < 3) return err<TaskDone>(Kind::kMissingArg, "reason");
  if (m.args.size() > 3) return err<TaskDone>(Kind::kTrailingArgs, "args");
  const auto status = parse_int(m.args[1]);
  if (!status) return err<TaskDone>(Kind::kBadNumber, "status");
  TaskDone d;
  d.task_id = m.args[0];
  d.status = *status;
  if (m.args[2] == "app") {
    d.reason = Reason::kApp;
  } else if (m.args[2] == "watchdog") {
    d.reason = Reason::kWatchdog;
  } else if (m.args[2] == "killed") {
    d.reason = Reason::kKilled;
  } else {
    return err<TaskDone>(Kind::kBadEnum, "reason");
  }
  return d;
}

Message TaskRun::encode() const {
  std::vector<std::string> args;
  args.reserve(2 + argv.size() + vars.size());
  args.push_back(task_id);
  args.push_back(std::to_string(argv.size()));
  for (const std::string& a : argv) args.push_back(a);
  for (const auto& [k, v] : vars) args.push_back(k + "=" + v);
  return Message(kTag, std::move(args));
}

Expected<TaskRun, DecodeError> TaskRun::decode(const Message& m) {
  if (auto e = check_tag<TaskRun>(m)) return Unexpected{*e};
  if (m.args.size() < 2) return err<TaskRun>(Kind::kMissingArg, "argc");
  const auto n = parse_u64(m.args[1]);
  if (!n) return err<TaskRun>(Kind::kBadNumber, "argc");
  if (*n > m.args.size() - 2) return err<TaskRun>(Kind::kMissingArg, "argv");
  TaskRun r;
  r.task_id = m.args[0];
  r.argv.assign(m.args.begin() + 2,
                m.args.begin() + 2 + static_cast<std::ptrdiff_t>(*n));
  for (std::size_t i = 2 + *n; i < m.args.size(); ++i) {
    const std::string& kv = m.args[i];
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return err<TaskRun>(Kind::kTrailingArgs, "vars");
    }
    r.vars[kv.substr(0, eq)] = kv.substr(eq + 1);
  }
  return r;
}

Expected<KillReq, DecodeError> KillReq::decode(const Message& m) {
  if (auto e = check_tag<KillReq>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<KillReq>(Kind::kMissingArg, "task");
  if (m.args.size() > 1) return err<KillReq>(Kind::kTrailingArgs, "args");
  return KillReq{m.args[0]};
}

Message StageAck::encode() const {
  if (digest == 0) return Message(kTag, {path});
  std::vector<std::string> args;
  args.reserve(2 + evictions.size());
  args.push_back(path);
  args.push_back("d=" + hex16(digest));
  for (const std::uint64_t ev : evictions) args.push_back("e=" + hex16(ev));
  return Message(kTag, std::move(args));
}

Expected<StageAck, DecodeError> StageAck::decode(const Message& m) {
  if (auto e = check_tag<StageAck>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<StageAck>(Kind::kMissingArg, "path");
  StageAck a;
  a.path = m.args[0];
  if (m.args.size() >= 2 && m.args[1].starts_with("d=")) {
    const auto digest = parse_hex16(std::string_view(m.args[1]).substr(2));
    if (!digest || *digest == 0) return err<StageAck>(Kind::kBadDigest, "d");
    a.digest = *digest;
    for (std::size_t i = 2; i < m.args.size(); ++i) {
      const std::string_view arg = m.args[i];
      if (!arg.starts_with("e=")) {
        return err<StageAck>(Kind::kTrailingArgs, "e");
      }
      const auto ev = parse_hex16(arg.substr(2));
      if (!ev || *ev == 0) return err<StageAck>(Kind::kBadDigest, "e");
      a.evictions.push_back(*ev);
    }
  } else if (m.args.size() > 1) {
    return err<StageAck>(Kind::kTrailingArgs, "args");
  }
  return a;
}

Message StageReq::encode() const {
  if (legacy) {
    return Message(kTag, {header.path}, payload);
  }
  return Message(kTag, encode_stage_args(header), payload);
}

Expected<StageReq, DecodeError> StageReq::decode(const Message& m) {
  if (auto e = check_tag<StageReq>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<StageReq>(Kind::kMissingArg, "path");
  StageReq r;
  r.payload = m.payload_bytes;
  if (const auto h = parse_stage_args(m.args)) {
    r.header = *h;
  } else {
    // Legacy broadcast fallback: anything not matching the digest grammar
    // is [path] (+ payload). This mirrors the worker's historical
    // behavior and keeps the pre-CAS channel working.
    r.legacy = true;
    r.header.path = m.args[0];
    r.header.bytes = m.payload_bytes;
  }
  return r;
}

Expected<PmiInit, DecodeError> PmiInit::decode(const Message& m) {
  if (auto e = check_tag<PmiInit>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<PmiInit>(Kind::kMissingArg, "rank");
  if (m.args.size() > 1) return err<PmiInit>(Kind::kTrailingArgs, "args");
  const auto rank = parse_int(m.args[0]);
  if (!rank) return err<PmiInit>(Kind::kBadNumber, "rank");
  return PmiInit{*rank};
}

Expected<PmiPut, DecodeError> PmiPut::decode(const Message& m) {
  if (auto e = check_tag<PmiPut>(m)) return Unexpected{*e};
  if (m.args.size() < 2) return err<PmiPut>(Kind::kMissingArg, "value");
  if (m.args.size() > 2) return err<PmiPut>(Kind::kTrailingArgs, "args");
  return PmiPut{m.args[0], m.args[1]};
}

Expected<PmiValue, DecodeError> PmiValue::decode(const Message& m) {
  if (auto e = check_tag<PmiValue>(m)) return Unexpected{*e};
  if (m.args.size() < 2) return err<PmiValue>(Kind::kMissingArg, "value");
  if (m.args.size() > 2) return err<PmiValue>(Kind::kTrailingArgs, "args");
  return PmiValue{m.args[0], m.args[1]};
}

Expected<PmiGet, DecodeError> PmiGet::decode(const Message& m) {
  if (auto e = check_tag<PmiGet>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<PmiGet>(Kind::kMissingArg, "key");
  if (m.args.size() > 1) return err<PmiGet>(Kind::kTrailingArgs, "args");
  return PmiGet{m.args[0]};
}

Expected<PmiBarrierOut, DecodeError> PmiBarrierOut::decode(const Message& m) {
  if (auto e = check_tag<PmiBarrierOut>(m)) return Unexpected{*e};
  if (!m.args.empty()) return err<PmiBarrierOut>(Kind::kTrailingArgs, "args");
  return PmiBarrierOut{};
}

Expected<PmiBarrier, DecodeError> PmiBarrier::decode(const Message& m) {
  if (auto e = check_tag<PmiBarrier>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<PmiBarrier>(Kind::kMissingArg, "rank");
  if (m.args.size() > 1) return err<PmiBarrier>(Kind::kTrailingArgs, "args");
  const auto rank = parse_int(m.args[0]);
  if (!rank) return err<PmiBarrier>(Kind::kBadNumber, "rank");
  return PmiBarrier{*rank};
}

Expected<PmiFinalize, DecodeError> PmiFinalize::decode(const Message& m) {
  if (auto e = check_tag<PmiFinalize>(m)) return Unexpected{*e};
  if (m.args.empty()) return err<PmiFinalize>(Kind::kMissingArg, "rank");
  if (m.args.size() > 1) return err<PmiFinalize>(Kind::kTrailingArgs, "args");
  const auto rank = parse_int(m.args[0]);
  if (!rank) return err<PmiFinalize>(Kind::kBadNumber, "rank");
  return PmiFinalize{*rank};
}

// --- Metrics --------------------------------------------------------------

ChannelMetrics ChannelMetrics::bind(obs::MetricsRegistry& m) {
  ChannelMetrics out;
  out.calls = &m.counter("jets.rpc.calls");
  out.notifies = &m.counter("jets.rpc.notifies");
  out.completed = &m.counter("jets.rpc.completed");
  out.timeouts = &m.counter("jets.rpc.timeouts");
  out.peer_closed = &m.counter("jets.rpc.peer_closed");
  out.cancelled = &m.counter("jets.rpc.cancelled");
  out.orphans = &m.counter("jets.rpc.orphans");
  out.decode_errors = &m.counter("jets.rpc.decode_errors");
  out.unknown_tags = &m.counter("jets.rpc.unknown_tags");
  out.inflight = &m.gauge("jets.rpc.inflight");
  return out;
}

// --- Channel --------------------------------------------------------------

Channel::Channel(sim::Engine& engine, SocketPtr sock, Config config)
    : engine_(&engine), sock_(std::move(sock)), config_(config) {
  if (config_.window > 0) {
    window_ = std::make_unique<sim::Semaphore>(engine, config_.window);
  }
}

Channel::~Channel() {
  // Never invoke completions here: the channel dies during its owner's
  // teardown (actor kill, service destruction) when the frames those
  // callbacks capture may already be gone. Deadline timers must not
  // outlive us, though.
  for (auto& [id, p] : calls_) p.deadline.cancel();
}

std::string Channel::index_key(std::string_view tag, std::string_view key) {
  std::string k;
  k.reserve(tag.size() + 1 + key.size());
  k.append(tag);
  k.push_back('\0');
  k.append(key);
  return k;
}

Channel::TagEntry* Channel::find_tag(std::string_view tag) {
  for (TagEntry& e : tags_) {
    if (e.tag == tag) return &e;
  }
  return nullptr;
}

Channel::TagEntry* Channel::route(std::string_view tag) {
  if (TagEntry* e = find_tag(tag)) return e;
  tags_.push_back(TagEntry{tag, nullptr, nullptr});
  return &tags_.back();
}

bool Channel::has_pending(std::string_view resp_tag,
                          std::string_view key) const {
  const auto it = index_.find(index_key(resp_tag, key));
  return it != index_.end() && !it->second.empty();
}

bool Channel::try_complete(const char* resp_tag, const std::string& key,
                           void* resp) {
  const auto it = index_.find(index_key(resp_tag, key));
  if (it == index_.end() || it->second.empty()) return false;
  finish_call(it->second.front(), resp, RpcError::kCancelled /* unused */);
  return true;
}

void Channel::unlink_index(const PendingCall& p) {
  const auto it = index_.find(index_key(p.resp_tag, p.key));
  if (it == index_.end()) return;
  std::deque<CallId>& dq = it->second;
  const auto dit = std::find(dq.begin(), dq.end(), p.id);
  if (dit != dq.end()) dq.erase(dit);
  if (dq.empty()) index_.erase(it);
}

void Channel::finish_call(CallId id, void* resp, RpcError err) {
  const auto it = calls_.find(id);
  if (it == calls_.end()) return;
  PendingCall p = std::move(it->second);
  calls_.erase(it);
  unlink_index(p);
  p.deadline.cancel();
  if (p.credited && window_) window_->release();
  if (ChannelMetrics* mm = config_.metrics) {
    --mm->inflight_now;
    if (mm->inflight) mm->inflight->set(mm->inflight_now);
    if (resp) {
      if (mm->completed) mm->completed->inc();
    } else {
      switch (err) {
        case RpcError::kTimeout:
          if (mm->timeouts) mm->timeouts->inc();
          break;
        case RpcError::kPeerClosed:
          if (mm->peer_closed) mm->peer_closed->inc();
          break;
        case RpcError::kCancelled:
          if (mm->cancelled) mm->cancelled->inc();
          break;
        default:
          break;
      }
    }
  }
  if (config_.tracer && p.span != 0) {
    if (!resp) config_.tracer->attr(p.span, "err", to_string(err));
    config_.tracer->end(p.span);
  }
  p.complete(resp, err);
}

void Channel::on_deadline(CallId id) { finish_call(id, nullptr, RpcError::kTimeout); }

void Channel::fail_all(RpcError err) {
  while (!calls_.empty()) {
    finish_call(calls_.begin()->first, nullptr, err);
  }
}

void Channel::fail_responses(std::string_view resp_tag, RpcError err) {
  std::vector<CallId> ids;
  for (const auto& [id, p] : calls_) {
    if (resp_tag == p.resp_tag) ids.push_back(id);
  }
  for (const CallId id : ids) finish_call(id, nullptr, err);
}

bool Channel::cancel(CallId id, RpcError err) {
  if (calls_.find(id) == calls_.end()) return false;
  finish_call(id, nullptr, err);
  return true;
}

void Channel::note_orphan() {
  if (config_.metrics && config_.metrics->orphans) {
    config_.metrics->orphans->inc();
  }
}

void Channel::note_decode_error() {
  if (config_.metrics && config_.metrics->decode_errors) {
    config_.metrics->decode_errors->inc();
  }
}

void Channel::note_unknown_tag() {
  if (config_.metrics && config_.metrics->unknown_tags) {
    config_.metrics->unknown_tags->inc();
  }
}

sim::Task<void> Channel::serve() {
  serving_ = true;
  for (;;) {
    std::optional<Message> m = co_await sock_->recv();
    // Hang injection point: a hung pilot stops examining frames but its
    // socket keeps buffering — same order the hand-written loop used
    // (gate check even on the EOF wakeup).
    if (hang_gate_) {
      if (sim::Gate* g = hang_gate_()) co_await g->wait();
    }
    if (!m) {
      peer_closed_ = true;
      break;
    }
    if (stopped_) break;
    if (on_message_) on_message_();
    TagEntry* e = find_tag(m->tag);
    if (!e) {
      note_unknown_tag();
    } else if (e->sync) {
      e->sync(*this, std::move(*m));
    } else if (auto t = e->async(*this, std::move(*m))) {
      co_await std::move(*t);
    }
    if (stopped_) break;
  }
  serving_ = false;
  if (!config_.manual_drain) fail_all(RpcError::kPeerClosed);
}

sim::Task<void> Channel::pump_until(WaitCore* st, CallId id,
                                    sim::Duration deadline) {
  // Self-driven mode: no serve() loop owns the socket, so the caller's
  // coroutine performs the recv/dispatch itself — the exact event shape of
  // the hand-written send-then-recv-loop clients (PMI). One sequential
  // caller per channel.
  const sim::Time deadline_at = deadline > 0 ? engine_->now() + deadline : -1;
  while (!st->done) {
    std::optional<Message> m;
    if (deadline_at >= 0) {
      const sim::Duration left = deadline_at - engine_->now();
      if (left <= 0) {
        cancel(id, RpcError::kTimeout);
        break;
      }
      m = co_await sock_->recv_for(left);
    } else {
      m = co_await sock_->recv();
    }
    if (st->done) break;  // the deadline timer settled it while we slept
    if (!m) {
      if (sock_->eof()) {
        peer_closed_ = true;
        fail_all(RpcError::kPeerClosed);
      }
      // recv_for timeout: loop; the deadline branch above resolves it.
      continue;
    }
    if (on_message_) on_message_();
    TagEntry* e = find_tag(m->tag);
    if (!e) {
      note_unknown_tag();
    } else if (e->sync) {
      e->sync(*this, std::move(*m));
    } else if (auto t = e->async(*this, std::move(*m))) {
      co_await std::move(*t);
    }
  }
}

}  // namespace jets::net::rpc
