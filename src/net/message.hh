// Wire message framing for middleware protocols.
//
// All JETS-internal protocols (worker registration, task dispatch, PMI,
// proxy control) exchange small tagged messages; bulk transfers (file
// staging, application stdout) are represented by `payload_bytes` rather
// than materialized data, so the simulator charges wire time without
// allocating gigabytes.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

namespace jets::net {

struct Message {
  /// Protocol verb, e.g. "register", "task", "pmi.put", "exit".
  std::string tag;
  /// Protocol fields (command lines, KVS pairs, status codes...).
  std::vector<std::string> args;
  /// Size of any bulk payload this message stands for (bytes).
  std::size_t payload_bytes = 0;

  Message() = default;
  explicit Message(std::string tag) : tag(std::move(tag)) {}
  Message(std::string tag, std::vector<std::string> args,
          std::size_t payload_bytes = 0)
      : tag(std::move(tag)), args(std::move(args)), payload_bytes(payload_bytes) {}

  /// Bytes this message occupies on the wire (framing + fields + payload).
  std::size_t wire_size() const {
    constexpr std::size_t kHeader = 16;  // length/type framing
    std::size_t fields = tag.size();
    for (const std::string& a : args) fields += a.size() + 1;
    return kHeader + fields + payload_bytes;
  }

  const std::string& arg(std::size_t i) const { return args.at(i); }
};

}  // namespace jets::net
