#include "net/fabric.hh"

#include <algorithm>

namespace jets::net {

namespace {
/// Distance along one ring dimension of length n.
std::uint32_t ring_distance(std::uint32_t a, std::uint32_t b, std::uint32_t n) {
  const std::uint32_t d = a > b ? a - b : b - a;
  return std::min(d, n - d);
}
}  // namespace

std::uint32_t TorusShape::hops(NodeId a, NodeId b) const {
  if (a == b) return 0;
  if (a >= size() || b >= size()) return service_hops;
  const std::uint32_t ax = a % x, ay = (a / x) % y, az = a / (x * y);
  const std::uint32_t bx = b % x, by = (b / x) % y, bz = b / (x * y);
  return ring_distance(ax, bx, x) + ring_distance(ay, by, y) +
         ring_distance(az, bz, z);
}

}  // namespace jets::net
