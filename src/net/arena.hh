// Arena allocator for in-flight net::Message payloads.
//
// Every buffered send used to move its Message into a per-send heap
// closure (tag string + args vector + connection ref blow past
// std::function's 16-byte inline buffer), so a launch burst at 10^5..10^6
// messages paid an allocation and a fat copy per delivery event. Instead,
// in-flight messages now live in this slab — the EventSlot idiom from
// sim/engine.hh: deque-backed slots, intrusive LIFO free list — threaded
// into per-pipe FIFO chains by slot index, and the delivery closure shrinks
// to one aliasing shared_ptr (16 bytes, no allocation).
//
// Delivery stays one engine event per send (so the event heap's (time,
// seq) reservations are byte-identical to the unbatched scheme), but each
// event *flushes the whole due prefix* of its pipe's chain: when a burst
// of sends lands at the same instant, the first event delivers the batch
// and the rest pop an empty chain. The coalesced() counter measures
// exactly those piggy-backed deliveries.
//
// Determinism: slot reuse is LIFO, chains are FIFO per pipe, due times are
// monotone per pipe (the wire clock only moves forward), and nothing here
// consults randomness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>

#include "net/message.hh"
#include "sim/time.hh"

namespace jets::net {

class MessageArena {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    Message msg;
    sim::Time due = 0;       // delivery instant on the receiving pipe
    std::uint32_t next = kNil;  // next in the pipe's FIFO chain / free list
  };

  /// Parks a message until `due`; returns its slot for chain threading.
  std::uint32_t acquire(Message m, sim::Time due) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = slots_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[idx];
    s.msg = std::move(m);
    s.due = due;
    s.next = kNil;
    ++in_flight_;
    high_water_ = std::max(high_water_, in_flight_);
    return idx;
  }

  /// Returns the slot to the free list. The payload is released now (not
  /// at reuse) so a drained arena holds no message bytes.
  void release(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.msg = Message{};
    s.next = free_head_;
    free_head_ = idx;
    --in_flight_;
  }

  Slot& slot(std::uint32_t idx) { return slots_[idx]; }
  const Slot& slot(std::uint32_t idx) const { return slots_[idx]; }

  // Observability (scale tests bound these; bench harnesses report them).
  /// Messages currently parked between send and delivery.
  std::size_t in_flight() const { return in_flight_; }
  /// Most messages ever parked at once (slab high-water mark).
  std::size_t high_water() const { return high_water_; }
  /// Slots ever allocated (slab footprint; >= high_water only transiently).
  std::size_t slab_size() const { return slots_.size(); }
  /// Flush events that found work to do.
  std::uint64_t flushes() const { return flushes_; }
  /// Messages delivered by a flush beyond its own triggering send — the
  /// same-tick batch the per-event scheme would have delivered one by one.
  std::uint64_t coalesced() const { return coalesced_; }

  /// Flush bookkeeping, called by the pipe drain loop.
  void note_flush(std::size_t delivered) {
    if (delivered == 0) return;
    ++flushes_;
    coalesced_ += delivered - 1;
  }

 private:
  std::deque<Slot> slots_;  // deque: slots stay put as the slab grows
  std::uint32_t free_head_ = kNil;
  std::size_t in_flight_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace jets::net
