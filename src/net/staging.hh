// Staging transfer planning and the "stagein" digest wire header.
//
// The service's replication planner asks one question per (blob, node)
// pair: what is the cheapest way to get these bytes there? Either the
// service pushes them over the worker's socket (service -> node, paying
// the full fabric path — on BG/P the service node is TorusShape::
// service_hops away), or a peer node that already holds the digest copies
// them across the torus (peer -> node, usually a handful of hops for the
// min-span windows claim_workers builds). plan_transfer() prices both
// with the machine's Fabric and picks the cheaper, deterministically.
//
// The wire header extends the legacy single-arg "stagein" [path] message
// (which stays byte-identical for the Coasters broadcast channel) with a
// digest, a byte count, and a source directive:
//
//   args: [path, "d=<16 lowercase hex>", "b=<bytes>", source]
//   source: "s=push"         payload carried by this message
//           "s=peer:<node>"  fetch from <node>'s cache (zero payload)
//           "s=warm"         cache probe: already resident (zero payload)
//
// Acks mirror it: "staged" [path, "d=<hex>", "e=<hex>"...] where each
// "e=" names a digest the worker's cache evicted to make room, so the
// service's residency table tracks the node's real contents.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/fabric.hh"
#include "sim/time.hh"

namespace jets::net {

struct StageHeader {
  enum class Source : std::uint8_t {
    kPush,  // bytes ride this message's payload
    kPeer,  // copy from `peer`'s node-local cache
    kWarm,  // residency probe: expect a cache hit, zero bytes moved
  };

  std::string path;
  std::uint64_t digest = 0;
  std::uint64_t bytes = 0;
  Source source = Source::kPush;
  NodeId peer = 0;  // only meaningful for kPeer
};

/// Renders the header as "stagein" message args (see format above).
std::vector<std::string> encode_stage_args(const StageHeader& h);

/// Parses "stagein" args. A legacy single-arg message (or anything not
/// matching the header grammar) returns nullopt — callers fall back to the
/// pre-CAS broadcast semantics.
std::optional<StageHeader> parse_stage_args(
    const std::vector<std::string>& args);

/// One planned transfer for a (blob, target-node) pair.
struct StagePlan {
  bool use_peer = false;
  NodeId peer = 0;         // source node when use_peer
  sim::Duration cost = 0;  // fabric time of the chosen transfer
};

/// Prices a service push (`source` -> `target`) against a copy from each
/// digest holder and returns the cheapest. Peers win ties (an intra-group
/// copy spares the service's uplink even at equal fabric cost); among
/// equally cheap peers the lowest node id wins, so plans are a pure
/// function of their inputs.
StagePlan plan_transfer(const Fabric& fabric, NodeId source, NodeId target,
                        std::span<const NodeId> holders, std::uint64_t bytes);

}  // namespace jets::net
