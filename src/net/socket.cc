#include "net/socket.hh"

#include <algorithm>
#include <utility>

namespace jets::net {

// --- Socket -----------------------------------------------------------------

Socket::Socket(Network& net, std::shared_ptr<detail::Connection> conn, bool is_a)
    : net_(&net), conn_(std::move(conn)), is_a_(is_a) {}

detail::Pipe& Socket::out() { return is_a_ ? conn_->a_to_b : conn_->b_to_a; }
detail::Pipe& Socket::in() { return is_a_ ? conn_->b_to_a : conn_->a_to_b; }
const detail::Pipe& Socket::in() const {
  return is_a_ ? conn_->b_to_a : conn_->a_to_b;
}

NodeId Socket::local_node() const { return is_a_ ? conn_->node_a : conn_->node_b; }
NodeId Socket::remote_node() const { return is_a_ ? conn_->node_b : conn_->node_a; }

sim::Time Socket::queue_on_wire(const Message& m) {
  // Sender-side wire clock: serialization occupies the link back-to-back,
  // so a burst of sends is delivered FIFO at link bandwidth; each message
  // additionally ages by the one-way fabric latency in flight. A stalled
  // sender serializes only after its stall window; a stalled receiver has
  // delivery deferred to its window's end (both keep FIFO order because
  // the deferral point is monotone in the send time).
  sim::Engine& engine = net_->engine();
  const Fabric& fabric = net_->fabric();
  detail::Pipe& pipe = out();
  const sim::Time start = std::max({engine.now(), pipe.wire_free_at,
                                    net_->stall_until(local_node())});
  const sim::Time sent = start + fabric.serialization_time(m.wire_size());
  pipe.wire_free_at = sent;
  return std::max(sent + fabric.latency(local_node(), remote_node()),
                  net_->stall_until(remote_node()));
}

void Socket::send(Message m) {
  if (!open_ || out().closed) return;  // writes on a closed socket are dropped
  const sim::Time deliver_at = queue_on_wire(m);
  detail::Pipe& pipe = out();
  pipe.park(std::move(m), deliver_at);
  // Still one engine event per send — the event heap's (time, seq) layout
  // is byte-identical to the per-message scheme — but the payload lives in
  // the arena, and the closure is a single aliasing shared_ptr: 16 bytes,
  // inside std::function's inline buffer, so a send allocates nothing on
  // the delivery path. The earliest event of a same-instant burst drains
  // the whole due batch (Pipe::flush); its siblings find the chain empty.
  net_->engine().call_at(
      deliver_at,
      [p = std::shared_ptr<detail::Pipe>(conn_, &pipe)] { p->flush(); });
}

sim::Task<void> Socket::send_sync(Message m) {
  if (!open_ || out().closed) co_return;
  const sim::Time deliver_at = queue_on_wire(m);
  // queue_on_wire advanced the wire clock to the instant the payload has
  // fully left this endpoint (stalls included); that is what the sender
  // holds resources until.
  const sim::Time sent_at = out().wire_free_at;
  detail::Pipe& pipe = out();
  pipe.park(std::move(m), deliver_at);
  net_->engine().call_at(
      deliver_at,
      [p = std::shared_ptr<detail::Pipe>(conn_, &pipe)] { p->flush(); });
  const sim::Duration wait = sent_at - net_->engine().now();
  if (wait > 0) co_await sim::delay(wait);
}

sim::Task<std::optional<Message>> Socket::recv() {
  if (!open_) co_return std::nullopt;
  co_return co_await in().inbox.recv();
}

sim::Task<std::optional<Message>> Socket::recv_for(sim::Duration timeout) {
  if (!open_) co_return std::nullopt;
  co_return co_await in().inbox.recv_for(timeout);
}

bool Socket::eof() const { return in().inbox.closed() && in().inbox.empty(); }

void Socket::close() {
  if (!open_) return;
  open_ = false;
  detail::Pipe& outgoing = out();
  outgoing.closed = true;
  // Signal EOF to the peer after anything already on the wire arrives.
  auto conn = conn_;
  const bool to_b = is_a_;
  const sim::Time eof_at =
      std::max(net_->engine().now(),
               outgoing.wire_free_at +
                   net_->fabric().latency(local_node(), remote_node()));
  net_->engine().call_at(eof_at, [conn, to_b] {
    detail::Pipe& p = to_b ? conn->a_to_b : conn->b_to_a;
    p.inbox.close();
  });
}

// --- Listener ---------------------------------------------------------------

Listener::Listener(Network& net, Address addr)
    : net_(&net), addr_(addr), pending_(net.engine()) {}

Listener::~Listener() { close(); }

sim::Task<SocketPtr> Listener::accept() {
  auto s = co_await pending_.recv();
  co_return s ? *s : nullptr;
}

void Listener::close() {
  if (!open_) return;
  open_ = false;
  pending_.close();
  net_->unbind(addr_);
}

// --- Network ----------------------------------------------------------------

std::unique_ptr<Listener> Network::listen(Address addr) {
  if (listeners_.contains(addr)) {
    throw std::invalid_argument("port already bound: node " +
                                std::to_string(addr.node) + ":" +
                                std::to_string(addr.port));
  }
  auto l = std::make_unique<Listener>(*this, addr);
  listeners_[addr] = l.get();
  return l;
}

sim::Task<SocketPtr> Network::connect(NodeId from, Address to) {
  // SYN + SYN/ACK: one round trip before the connection is established.
  const sim::Duration rtt = fabric_->latency(from, to.node) * 2;
  co_await sim::delay(rtt);
  auto it = listeners_.find(to);
  if (it == listeners_.end() || !it->second->open_) throw ConnectError(to);
  auto conn =
      std::make_shared<detail::Connection>(*engine_, arena_, from, to.node);
  connections_.push_back(conn);
  auto client = std::make_shared<Socket>(*this, conn, /*is_a=*/true);
  auto server = std::make_shared<Socket>(*this, conn, /*is_a=*/false);
  it->second->pending_.push(std::move(server));
  co_return client;
}

// --- Fault hooks -------------------------------------------------------------

void Network::stall_node(NodeId node, sim::Duration d) {
  if (d <= 0) return;
  sim::Time& until = stalled_[node];
  until = std::max(until, engine_->now() + d);
}

sim::Time Network::stall_until(NodeId node) const {
  auto it = stalled_.find(node);
  return it == stalled_.end() ? 0 : it->second;
}

std::size_t Network::reset_node(NodeId node) {
  std::size_t reset = 0;
  std::vector<std::weak_ptr<detail::Connection>> live;
  live.reserve(connections_.size());
  for (auto& weak : connections_) {
    auto conn = weak.lock();
    if (!conn) continue;  // all endpoints gone: prune
    live.push_back(weak);
    if (conn->node_a != node && conn->node_b != node) continue;
    if (conn->a_to_b.closed && conn->b_to_a.closed) continue;  // already dead
    // RST semantics: both directions die *now* — in-flight bytes vanish
    // and both ends' pending/future receives complete with EOF.
    for (detail::Pipe* pipe : {&conn->a_to_b, &conn->b_to_a}) {
      pipe->closed = true;
      if (!pipe->inbox.closed()) pipe->inbox.close();
    }
    ++reset;
  }
  connections_ = std::move(live);
  return reset;
}

}  // namespace jets::net
