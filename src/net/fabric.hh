// Interconnect fabric models.
//
// A Fabric answers one question: how long does a message of B bytes take
// from node `a` to node `b`? The answer is latency + B/bandwidth, where both
// terms depend on the machine. Three concrete models reproduce the paper's
// environments:
//
//  * EthernetFabric   — commodity cluster GigE (Breadboard, Eureka).
//  * TorusTcpFabric   — ZeptoOS IP-over-torus on BG/P: TCP/IP stack overhead
//                       plus per-hop transit on the 3-D torus. This is the
//                       transport JETS-launched MPI jobs use (Fig 8,
//                       "MPICH/sockets").
//  * TorusNativeFabric — the vendor DCMF path on BG/P: microsecond-scale
//                       latency, near-line-rate bandwidth (Fig 8, "native").
//
// Constants are calibrated to the magnitudes reported in the paper's Fig 8
// discussion: sockets-over-ZeptoOS shows *much* higher small-message latency
// and slightly lower large-message bandwidth than native messaging.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "sim/time.hh"

namespace jets::net {

using NodeId = std::uint32_t;

/// Point-to-point message timing model.
class Fabric {
 public:
  virtual ~Fabric() = default;

  /// Time for `bytes` payload from `from` to `to` (one way, uncontended).
  sim::Duration transfer_time(NodeId from, NodeId to, std::size_t bytes) const {
    if (from == to) return loopback_time(bytes);
    return latency(from, to) + serialization_time(bytes);
  }

  /// Propagation + protocol-stack latency between two distinct nodes.
  virtual sim::Duration latency(NodeId from, NodeId to) const = 0;

  /// Payload serialization time at the fabric's point-to-point bandwidth.
  virtual sim::Duration serialization_time(std::size_t bytes) const = 0;

  /// Same-node (loopback) messaging time.
  virtual sim::Duration loopback_time(std::size_t bytes) const {
    return sim::microseconds(5) + serialization_time(bytes) / 8;
  }
};

/// Flat-topology commodity Ethernet: fixed latency, shared-nothing links.
class EthernetFabric final : public Fabric {
 public:
  /// Defaults: 60 us one-way latency, 1 Gb/s (= 125 MB/s) per link.
  explicit EthernetFabric(sim::Duration latency = sim::microseconds(60),
                          double bytes_per_second = 125e6)
      : latency_(latency), bps_(bytes_per_second) {}

  sim::Duration latency(NodeId, NodeId) const override { return latency_; }
  sim::Duration serialization_time(std::size_t bytes) const override {
    return sim::from_seconds(static_cast<double>(bytes) / bps_);
  }

 private:
  sim::Duration latency_;
  double bps_;
};

/// Geometry of a 3-D torus (BG/P midplane/rack shapes).
struct TorusShape {
  std::uint32_t x = 8, y = 8, z = 16;  // 1,024 nodes: one BG/P rack
  /// Node ids outside the torus (login/service nodes reached through the
  /// I/O-node network) are charged this fixed hop distance.
  std::uint32_t service_hops = 16;

  std::uint32_t size() const { return x * y * z; }

  /// Minimal hop count between two node ids laid out in x-major order.
  std::uint32_t hops(NodeId a, NodeId b) const;
};

/// ZeptoOS IP-over-torus: TCP stack cost dominates, plus a small per-hop
/// term. Reproduces the high small-message latency of Fig 8's
/// "MPICH/sockets" line.
class TorusTcpFabric final : public Fabric {
 public:
  explicit TorusTcpFabric(TorusShape shape = {},
                          sim::Duration stack_overhead = sim::microseconds(260),
                          sim::Duration per_hop = sim::microseconds(2),
                          double bytes_per_second = 220e6)
      : shape_(shape), stack_(stack_overhead), per_hop_(per_hop),
        bps_(bytes_per_second) {}

  sim::Duration latency(NodeId from, NodeId to) const override {
    return stack_ + per_hop_ * shape_.hops(from, to);
  }
  sim::Duration serialization_time(std::size_t bytes) const override {
    return sim::from_seconds(static_cast<double>(bytes) / bps_);
  }
  const TorusShape& shape() const { return shape_; }

 private:
  TorusShape shape_;
  sim::Duration stack_;
  sim::Duration per_hop_;
  double bps_;
};

/// Vendor messaging (DCMF) on the BG/P torus: ~3 us latency, 375 MB/s/link.
class TorusNativeFabric final : public Fabric {
 public:
  explicit TorusNativeFabric(TorusShape shape = {},
                             sim::Duration base = sim::microseconds(3),
                             sim::Duration per_hop = sim::nanoseconds(100),
                             double bytes_per_second = 375e6)
      : shape_(shape), base_(base), per_hop_(per_hop), bps_(bytes_per_second) {}

  sim::Duration latency(NodeId from, NodeId to) const override {
    return base_ + per_hop_ * shape_.hops(from, to);
  }
  sim::Duration serialization_time(std::size_t bytes) const override {
    return sim::from_seconds(static_cast<double>(bytes) / bps_);
  }

 private:
  TorusShape shape_;
  sim::Duration base_;
  sim::Duration per_hop_;
  double bps_;
};

}  // namespace jets::net
