// Typed asynchronous request/response RPC over net::Socket.
//
// The JETS wire protocol is a stream of small tagged net::Message frames;
// until now every endpoint hand-rolled its own tag dispatch, stoul-based
// field parsing, and ad-hoc "the peer died, forget the reply" bookkeeping.
// rpc::Channel packages that discipline once:
//
//  * every protocol verb is a typed struct with byte-exact encode() to the
//    existing wire form and a total decode() that returns a typed
//    DecodeError instead of throwing or crashing on malformed frames;
//  * call<Req>() / call_cb<Req>() issue a request and match the reply by
//    *correlation key* — the protocol's own identifying field (task id,
//    staged path, PMI key) — so the wire format does not change by a byte
//    and all 15 figure benches stay identical to the golden manifest;
//  * concurrent calls with the same (response tag, key) resolve FIFO, in
//    issue order, which is exactly the socket's FIFO delivery order;
//  * an optional bounded in-flight window provides backpressure: call()
//    co_awaits a credit, call_cb() fails fast with kWindowFull;
//  * per-call deadlines surface RpcError::kTimeout through the engine's
//    timer wheel; peer close drains every pending call with kPeerClosed
//    (in issue order) instead of silently dropping them.
//
// Determinism: constructing a Channel, issuing a call, and completing one
// schedule *zero* engine events beyond what the raw socket send/recv
// already scheduled. serve() performs the same co_await sock->recv() the
// hand-written loops performed, handlers run synchronously inside the same
// resumption, and completion callbacks are invoked inline at dispatch.
// The (time, seq) event reservations of the pre-RPC code are therefore
// preserved exactly — scheduler_equiv.sh is the proof.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "net/message.hh"
#include "net/socket.hh"
#include "net/staging.hh"
#include "obs/metrics.hh"
#include "obs/tracer.hh"
#include "sim/engine.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace jets::net::rpc {

// --- Expected -------------------------------------------------------------
// GCC 12's libstdc++ has no std::expected; this is the minimal subset the
// RPC layer needs (monostate-free, move-friendly, no monadic sugar).

template <typename E>
struct Unexpected {
  E error;
};
template <typename E>
Unexpected(E) -> Unexpected<E>;

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : rep_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u) : rep_(std::in_place_index<1>, std::move(u.error)) {}

  bool ok() const noexcept { return rep_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & { return std::get<0>(rep_); }
  const T& value() const& { return std::get<0>(rep_); }
  T&& value() && { return std::get<0>(std::move(rep_)); }
  const E& error() const { return std::get<1>(rep_); }

 private:
  std::variant<T, E> rep_;
};

template <typename E>
class Expected<void, E> {
 public:
  Expected() = default;
  Expected(Unexpected<E> u) : err_(std::move(u.error)) {}

  bool ok() const noexcept { return !err_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  const E& error() const { return *err_; }

 private:
  std::optional<E> err_;
};

// --- Error taxonomy -------------------------------------------------------

enum class RpcError : std::uint8_t {
  kTimeout,     // per-call deadline elapsed before the reply arrived
  kPeerClosed,  // connection gone (EOF) or already closed at issue time
  kCancelled,   // explicitly cancelled (eviction write-off, shutdown)
  kWindowFull,  // call_cb with no free pipeline credit
  kDecode,      // reply arrived but failed to decode (reserved)
};
const char* to_string(RpcError e);

/// Why a frame failed to decode. `field` names the offending arg.
struct DecodeError {
  enum class Kind : std::uint8_t {
    kBadTag,        // frame carries a different verb than the type
    kMissingArg,    // fewer args than the grammar requires
    kTrailingArgs,  // more args than the grammar allows
    kBadNumber,     // numeric field not a full, in-range number
    kBadEnum,       // enum token outside the closed set
    kBadDigest,     // digest field not 16 lowercase hex chars (or zero)
    kOversized,     // numeric field parses but exceeds its domain
  };
  Kind kind = Kind::kBadTag;
  const char* field = "";
};
std::string to_string(const DecodeError& e);

// --- Typed protocol -------------------------------------------------------
// One struct per wire verb. encode() must reproduce today's frames
// byte-for-byte (wire_size feeds the fabric clock); decode() is total.
// Correlated replies expose correlation_key(); request types name their
// reply via `using Resp`.
//
// Every message type carries a user-provided constructor ON PURPOSE: GCC 12
// miscompiles prvalue *aggregate* temporaries that live across a coroutine
// suspension (the frame keeps a bitwise duplicate whose destruction
// double-frees string storage — tests/rpc_test.cc exercises the shape).
// Keeping these types non-aggregates makes expressions like
// `co_await chan.call(PmiGet{key})` safe. Do not remove the constructors.

/// "reg" [node, inventory...] — pilot (re-)registration. One-way on the
/// wire: the service's historical protocol never acked registration, and
/// inventing an ack would change wire bytes, so there is no RegisterAck.
struct RegisterReq {
  static constexpr const char* kTag = "reg";
  NodeId node = 0;
  std::vector<std::string> inventory;  // task ids still running (redial)
  RegisterReq() = default;
  explicit RegisterReq(NodeId n, std::vector<std::string> inv = {})
      : node(n), inventory(std::move(inv)) {}
  Message encode() const;
  static Expected<RegisterReq, DecodeError> decode(const Message& m);
};

/// "ready" — worker advertises a free slot.
struct ReadyNote {
  static constexpr const char* kTag = "ready";
  ReadyNote() = default;
  Message encode() const { return Message(kTag); }
  static Expected<ReadyNote, DecodeError> decode(const Message& m);
};

/// "hb" — heartbeat.
struct PingNote {
  static constexpr const char* kTag = "hb";
  PingNote() = default;
  Message encode() const { return Message(kTag); }
  static Expected<PingNote, DecodeError> decode(const Message& m);
};

/// "done" [task, status, reason] — task completion. Reply to TaskRun,
/// correlated by task id.
struct TaskDone {
  enum class Reason : std::uint8_t { kApp, kWatchdog, kKilled };
  static constexpr const char* kTag = "done";
  std::string task_id;
  int status = 0;
  Reason reason = Reason::kApp;
  TaskDone() = default;
  TaskDone(std::string task, int st, Reason r)
      : task_id(std::move(task)), status(st), reason(r) {}
  std::string correlation_key() const { return task_id; }
  Message encode() const;
  static Expected<TaskDone, DecodeError> decode(const Message& m);
};

/// "run" [task, n, argv..., k=v...] — task dispatch.
struct TaskRun {
  static constexpr const char* kTag = "run";
  using Resp = TaskDone;
  std::string task_id;
  std::vector<std::string> argv;
  std::map<std::string, std::string> vars;  // sorted => stable encode
  TaskRun() = default;
  TaskRun(std::string task, std::vector<std::string> av,
          std::map<std::string, std::string> kv = {})
      : task_id(std::move(task)), argv(std::move(av)), vars(std::move(kv)) {}
  std::string correlation_key() const { return task_id; }
  Message encode() const;
  static Expected<TaskRun, DecodeError> decode(const Message& m);
};

/// "kill" [task] — one-way task kill (the worker answers with a "done").
struct KillReq {
  static constexpr const char* kTag = "kill";
  std::string task_id;
  KillReq() = default;
  explicit KillReq(std::string task) : task_id(std::move(task)) {}
  Message encode() const { return Message(kTag, {task_id}); }
  static Expected<KillReq, DecodeError> decode(const Message& m);
};

/// "staged" [path] or [path, d=<hex>, e=<hex>...] — stage-in ack. Reply to
/// StageReq, correlated by path. digest == 0 means the legacy form.
struct StageAck {
  static constexpr const char* kTag = "staged";
  std::string path;
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> evictions;
  StageAck() = default;
  explicit StageAck(std::string p, std::uint64_t d = 0,
                    std::vector<std::uint64_t> ev = {})
      : path(std::move(p)), digest(d), evictions(std::move(ev)) {}
  std::string correlation_key() const { return path; }
  Message encode() const;
  static Expected<StageAck, DecodeError> decode(const Message& m);
};

/// "stagein" — input staging. Digest form carries the CAS header; the
/// legacy broadcast form is [path] + payload. A frame whose args do not
/// match the digest grammar decodes as legacy (that fallback *is* the
/// protocol — see parse_stage_args), except the empty-args frame, which
/// is a decode error rather than the out_of_range throw it used to be.
struct StageReq {
  static constexpr const char* kTag = "stagein";
  using Resp = StageAck;
  StageHeader header;
  bool legacy = false;
  std::uint64_t payload = 0;  // message payload_bytes (kPush / legacy)
  StageReq() = default;
  explicit StageReq(StageHeader h, bool leg = false, std::uint64_t pay = 0)
      : header(std::move(h)), legacy(leg), payload(pay) {}
  std::string correlation_key() const { return header.path; }
  Message encode() const;
  static Expected<StageReq, DecodeError> decode(const Message& m);
};

// --- PMI (MPICH process-management interface over the proxy socket) ------

struct PmiInit {
  static constexpr const char* kTag = "pmi.init";
  int rank = 0;
  PmiInit() = default;
  explicit PmiInit(int r) : rank(r) {}
  Message encode() const { return Message(kTag, {std::to_string(rank)}); }
  static Expected<PmiInit, DecodeError> decode(const Message& m);
};

struct PmiPut {
  static constexpr const char* kTag = "pmi.put";
  std::string key;
  std::string value;
  PmiPut() = default;
  PmiPut(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Message encode() const { return Message(kTag, {key, value}); }
  static Expected<PmiPut, DecodeError> decode(const Message& m);
};

/// "pmi.value" [key, value] — KVS lookup reply, correlated by key.
struct PmiValue {
  static constexpr const char* kTag = "pmi.value";
  std::string key;
  std::string value;
  PmiValue() = default;
  PmiValue(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  std::string correlation_key() const { return key; }
  Message encode() const { return Message(kTag, {key, value}); }
  static Expected<PmiValue, DecodeError> decode(const Message& m);
};

struct PmiGet {
  static constexpr const char* kTag = "pmi.get";
  using Resp = PmiValue;
  std::string key;
  PmiGet() = default;
  explicit PmiGet(std::string k) : key(std::move(k)) {}
  std::string correlation_key() const { return key; }
  Message encode() const { return Message(kTag, {key}); }
  static Expected<PmiGet, DecodeError> decode(const Message& m);
};

/// "pmi.barrier_out" — barrier release broadcast. At most one barrier is
/// outstanding per rank, so the correlation key is constant.
struct PmiBarrierOut {
  static constexpr const char* kTag = "pmi.barrier_out";
  PmiBarrierOut() = default;
  std::string correlation_key() const { return std::string(); }
  Message encode() const { return Message(kTag); }
  static Expected<PmiBarrierOut, DecodeError> decode(const Message& m);
};

struct PmiBarrier {
  static constexpr const char* kTag = "pmi.barrier_in";
  using Resp = PmiBarrierOut;
  int rank = 0;
  PmiBarrier() = default;
  explicit PmiBarrier(int r) : rank(r) {}
  std::string correlation_key() const { return std::string(); }
  Message encode() const { return Message(kTag, {std::to_string(rank)}); }
  static Expected<PmiBarrier, DecodeError> decode(const Message& m);
};

struct PmiFinalize {
  static constexpr const char* kTag = "pmi.finalize";
  int rank = 0;
  PmiFinalize() = default;
  explicit PmiFinalize(int r) : rank(r) {}
  Message encode() const { return Message(kTag, {std::to_string(rank)}); }
  static Expected<PmiFinalize, DecodeError> decode(const Message& m);
};

/// Fire-and-forget typed send on a bare socket (no channel bookkeeping).
template <typename M>
void post(Socket& sock, const M& m) {
  sock.send(m.encode());
}

// --- Metrics --------------------------------------------------------------

/// Instrument block a Channel reports into. Shared across channels (the
/// service binds one block for all worker connections). Any pointer may be
/// left null; those events simply go uncounted.
struct ChannelMetrics {
  obs::Counter* calls = nullptr;          // requests issued
  obs::Counter* notifies = nullptr;       // one-way sends
  obs::Counter* completed = nullptr;      // calls resolved by a reply
  obs::Counter* timeouts = nullptr;       // calls resolved by deadline
  obs::Counter* peer_closed = nullptr;    // calls drained or refused, EOF
  obs::Counter* cancelled = nullptr;      // calls explicitly written off
  obs::Counter* orphans = nullptr;        // replies with no matching call
  obs::Counter* decode_errors = nullptr;  // frames a decoder rejected
  obs::Counter* unknown_tags = nullptr;   // frames with no installed route
  obs::Gauge* inflight = nullptr;         // calls currently pending
  std::int64_t inflight_now = 0;          // backing value for `inflight`

  /// Binds the full block to "jets.rpc.*" instruments in `m`.
  static ChannelMetrics bind(obs::MetricsRegistry& m);
};

// --- Channel --------------------------------------------------------------

class Channel {
 public:
  using CallId = std::uint64_t;

  struct Config {
    /// Max calls in flight; 0 = unbounded. call() co_awaits a free
    /// credit (FIFO), call_cb() fails fast with kWindowFull.
    std::size_t window = 0;
    /// Shared instrument block; nullptr = uncounted.
    ChannelMetrics* metrics = nullptr;
    /// When true, serve() does NOT drain pending calls at EOF — the owner
    /// calls fail_all() itself, at the point in its disconnect sequence
    /// where the pre-RPC code wrote the replies off. The service needs
    /// this to keep its EOF bookkeeping order (and thus the event
    /// schedule) exactly as before.
    bool manual_drain = false;
    /// Span per call ("rpc.call", attrs: method, err); nullptr = none.
    obs::Tracer* tracer = nullptr;
    std::uint64_t track = 0;
  };

  Channel(sim::Engine& engine, SocketPtr sock) : Channel(engine, std::move(sock), Config{}) {}
  Channel(sim::Engine& engine, SocketPtr sock, Config config);
  ~Channel();  // cancels deadline timers; never invokes completions
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  const SocketPtr& socket() const { return sock_; }
  /// True once this channel has observed EOF from the peer. Deliberately
  /// NOT sock->eof(): the socket can hit EOF before the channel's recv
  /// resumption runs, and surfacing that early would fail calls at a
  /// different simulated instant than the historical code.
  bool peer_closed() const { return peer_closed_; }
  std::size_t in_flight() const { return calls_.size(); }
  /// Free pipeline credits (meaningful only with a bounded window).
  std::size_t window_available() const {
    return window_ ? window_->available() : 0;
  }
  /// True if some pending call awaits (resp_tag, key).
  bool has_pending(std::string_view resp_tag, std::string_view key) const;

  /// Issues `req` and invokes `cb(Expected<Resp, RpcError>)` exactly once:
  /// inline at reply dispatch, at deadline expiry, or when the channel
  /// drains. Returns the call id, or kPeerClosed / kWindowFull without
  /// sending. deadline == 0 means no deadline.
  template <typename M, typename F>
  Expected<CallId, RpcError> call_cb(const M& req, F&& cb,
                                     sim::Duration deadline = 0) {
    return call_cb_impl<M>(req, std::forward<F>(cb), deadline,
                           /*pre_credited=*/false);
  }

  /// Coroutine form: awaits a window credit, issues the call, and resumes
  /// with the typed result. If no serve() loop is running the call pumps
  /// the socket itself (one sequential caller per channel — the PMI
  /// client's discipline); with serve() active it just parks.
  ///
  /// `req` is taken by value, and every M is a non-aggregate by design —
  /// see the GCC 12 note on the typed-protocol section above.
  template <typename M>
  sim::Task<Expected<typename M::Resp, RpcError>> call(
      M req, sim::Duration deadline = 0) {
    using Resp = typename M::Resp;
    if (window_) co_await window_->acquire();
    auto st = std::make_shared<Wait<Resp>>();
    st->engine = engine_;
    auto issued = call_cb_impl<M>(
        req,
        [st](Expected<Resp, RpcError> r) {
          st->result.emplace(std::move(r));
          st->done = true;
          st->wake();
        },
        deadline, /*pre_credited=*/true);
    if (!issued.ok()) {
      if (window_) window_->release();
      co_return Unexpected{issued.error()};
    }
    if (serving_) {
      co_await WaitAwaiter{st.get()};
    } else {
      co_await pump_until(st.get(), issued.value(), deadline);
    }
    if (!st->done) cancel(issued.value(), RpcError::kCancelled);
    co_return std::move(*st->result);
  }

  /// One-way typed send. Refused with kPeerClosed after EOF/stop.
  template <typename M>
  Expected<void, RpcError> notify(const M& m) {
    if (peer_closed_ || stopped_ || !sock_) {
      return Unexpected{RpcError::kPeerClosed};
    }
    if (config_.metrics && config_.metrics->notifies) {
      config_.metrics->notifies->inc();
    }
    sock_->send(m.encode());
    return {};
  }

  /// Installs the handler for unmatched frames of type M. A handler
  /// returning void runs synchronously inside the dispatch resumption
  /// (zero extra events); a coroutine handler returning sim::Task<void>
  /// is co_awaited by the dispatch loop (its awaits suspend the loop,
  /// exactly as the hand-written per-tag branches did).
  template <typename M, typename F>
  void on(F&& f) {
    if constexpr (std::is_invocable_r_v<sim::Task<void>, F&, M&&>) {
      // By value, not M&&: the handler coroutine's frame must own the
      // message — a reference parameter would dangle once the dispatch
      // scope's decoded temporary dies (the task starts lazily).
      install_async<M>(std::function<sim::Task<void>(M)>(std::forward<F>(f)));
    } else {
      install_sync<M>(std::function<void(M&&)>(std::forward<F>(f)));
    }
  }

  /// Runs on every inbound frame before dispatch (liveness refresh).
  void set_on_message(std::function<void()> fn) { on_message_ = std::move(fn); }
  /// Consulted after each recv; a non-null Gate is awaited before the
  /// frame is examined (worker hang injection point).
  void set_hang_gate(std::function<sim::Gate*()> fn) {
    hang_gate_ = std::move(fn);
  }

  /// Receive/dispatch loop: recv -> hang gate -> route until EOF or
  /// stop(). At EOF fails all pending calls with kPeerClosed unless
  /// Config::manual_drain.
  sim::Task<void> serve();

  /// Makes serve() (or a pumping call()) return after the current frame.
  void stop() { stopped_ = true; }

  /// Fails every pending call, oldest first (issue order).
  void fail_all(RpcError err);
  /// Fails every pending call awaiting `resp_tag`, oldest first.
  void fail_responses(std::string_view resp_tag, RpcError err);
  /// Fails one call; returns false if it already settled.
  bool cancel(CallId id, RpcError err = RpcError::kCancelled);

 private:
  struct PendingCall {
    CallId id = 0;
    const char* resp_tag = "";
    std::string key;
    std::function<void(void*, RpcError)> complete;
    sim::TimerHandle deadline;
    bool credited = false;
    obs::SpanId span = 0;
  };

  struct TagEntry {
    std::string_view tag;
    std::function<void(Channel&, Message&&)> sync;
    std::function<std::optional<sim::Task<void>>(Channel&, Message&&)> async;
  };

  struct WaitCore {
    bool done = false;
    sim::Engine* engine = nullptr;
    std::optional<sim::Resumption> resume;
    void wake() {
      if (resume && !resume->expired()) {
        engine->schedule(engine->now(), std::move(*resume));
      }
      resume.reset();
    }
  };
  template <typename Resp>
  struct Wait : WaitCore {
    std::optional<Expected<Resp, RpcError>> result;
  };
  struct WaitAwaiter {
    WaitCore* core;
    bool await_ready() const noexcept { return core->done; }
    template <typename Promise>
    void await_suspend(std::coroutine_handle<Promise> h) {
      core->resume = sim::Resumption::of(h, h.promise().context());
    }
    void await_resume() const noexcept {}
  };

  template <typename M, typename F>
  Expected<CallId, RpcError> call_cb_impl(const M& req, F&& cb,
                                          sim::Duration deadline,
                                          bool pre_credited) {
    using Resp = typename M::Resp;
    if (peer_closed_ || stopped_ || !sock_) {
      if (config_.metrics && config_.metrics->peer_closed) {
        config_.metrics->peer_closed->inc();
      }
      return Unexpected{RpcError::kPeerClosed};
    }
    if (window_ && !pre_credited && !window_->try_acquire()) {
      return Unexpected{RpcError::kWindowFull};
    }
    ensure_route<Resp>();
    const CallId id = next_id_++;
    PendingCall p;
    p.id = id;
    p.resp_tag = Resp::kTag;
    p.key = req.correlation_key();
    p.credited = window_ != nullptr;
    p.complete = [cb = std::function<void(Expected<Resp, RpcError>)>(
                      std::forward<F>(cb))](void* resp, RpcError err) {
      if (resp) {
        cb(Expected<Resp, RpcError>(std::move(*static_cast<Resp*>(resp))));
      } else {
        cb(Expected<Resp, RpcError>(Unexpected{err}));
      }
    };
    if (deadline > 0) {
      p.deadline = engine_->call_in(deadline, [this, id] { on_deadline(id); });
    }
    if (config_.tracer) {
      p.span = config_.tracer->begin("rpc.call", config_.track);
      config_.tracer->attr(p.span, "method", M::kTag);
    }
    index_[index_key(p.resp_tag, p.key)].push_back(id);
    calls_.emplace(id, std::move(p));
    if (ChannelMetrics* mm = config_.metrics) {
      if (mm->calls) mm->calls->inc();
      ++mm->inflight_now;
      if (mm->inflight) mm->inflight->set(mm->inflight_now);
    }
    sock_->send(req.encode());
    return id;
  }

  template <typename M>
  void install_sync(std::function<void(M&&)> h) {
    TagEntry* e = route(M::kTag);
    e->async = nullptr;
    e->sync = [h = std::move(h)](Channel& ch, Message&& m) {
      std::optional<M> v = ch.decode_and_route<M>(std::move(m));
      if (!v) return;
      if (h) {
        h(std::move(*v));
      } else {
        ch.note_orphan();
      }
    };
  }

  template <typename M>
  void install_async(std::function<sim::Task<void>(M)> h) {
    TagEntry* e = route(M::kTag);
    e->sync = nullptr;
    e->async = [h = std::move(h)](Channel& ch,
                                  Message&& m) -> std::optional<sim::Task<void>> {
      std::optional<M> v = ch.decode_and_route<M>(std::move(m));
      if (!v) return std::nullopt;
      return h(std::move(*v));
    };
  }

  /// Decodes, satisfies a matching pending call, or hands the value back
  /// for the unmatched-frame handler. nullopt = consumed (or rejected).
  template <typename M>
  std::optional<M> decode_and_route(Message&& m) {
    auto r = M::decode(m);
    if (!r.ok()) {
      note_decode_error();
      return std::nullopt;
    }
    if constexpr (requires(const M& x) { x.correlation_key(); }) {
      if (try_complete(M::kTag, r.value().correlation_key(), &r.value())) {
        return std::nullopt;
      }
    }
    return std::move(r).value();
  }

  /// Installs a route for M if none exists (so unhandled replies are
  /// counted as orphans rather than unknown tags).
  template <typename M>
  void ensure_route() {
    if (!find_tag(M::kTag)) install_sync<M>(nullptr);
  }

  static std::string index_key(std::string_view tag, std::string_view key);
  TagEntry* route(std::string_view tag);       // find-or-insert
  TagEntry* find_tag(std::string_view tag);    // nullptr if absent
  bool try_complete(const char* resp_tag, const std::string& key, void* resp);
  void finish_call(CallId id, void* resp, RpcError err);
  void unlink_index(const PendingCall& p);
  void on_deadline(CallId id);
  sim::Task<void> pump_until(WaitCore* st, CallId id, sim::Duration deadline);
  void note_orphan();
  void note_decode_error();
  void note_unknown_tag();

  sim::Engine* engine_;
  SocketPtr sock_;
  Config config_;
  std::unique_ptr<sim::Semaphore> window_;
  /// Ordered by id == issue order, so fail_all drains FIFO.
  std::map<CallId, PendingCall> calls_;
  /// (resp_tag NUL key) -> pending ids, FIFO per key.
  std::map<std::string, std::deque<CallId>, std::less<>> index_;
  /// Small linear table: a handful of verbs per endpoint, and a vector
  /// scan beats a node-based map at 10^5 channels (one per worker).
  std::vector<TagEntry> tags_;
  std::function<void()> on_message_;
  std::function<sim::Gate*()> hang_gate_;
  CallId next_id_ = 1;
  bool serving_ = false;
  bool stopped_ = false;
  bool peer_closed_ = false;
};

}  // namespace jets::net::rpc
