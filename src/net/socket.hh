// TCP-like stream sockets over a simulated fabric.
//
// Semantics mirror what the JETS middleware relies on from real TCP:
//  * connection setup costs one round trip and fails if nobody listens;
//  * per-direction FIFO delivery with bandwidth-limited serialization;
//  * peer death or close() is *visible*: pending and future receives
//    complete with std::nullopt (EOF). The paper leans on this ("the
//    reliability characteristics offered by TCP-based APIs") for fault
//    tolerance — worker-kill tests exercise exactly this path.
//
// Sockets are shared_ptr-owned; a killed process's coroutine frames drop
// their references during teardown and the destructor closes the
// connection, so the remote side's recv() wakes with EOF just as a real
// peer reset would.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/arena.hh"
#include "net/fabric.hh"
#include "net/message.hh"
#include "sim/engine.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace jets::net {

// 32-bit, not the TCP-real 16: ports are handed out by a machine-wide
// monotone counter (os::Machine::allocate_port), and a million-worker run
// makes far more than 2^16 dynamic binds — a 16-bit counter wraps back
// onto the service's well-known port. Values at paper scale are identical
// either way.
using Port = std::uint32_t;

struct Address {
  NodeId node = 0;
  Port port = 0;
  auto operator<=>(const Address&) const = default;
};

class Socket;
using SocketPtr = std::shared_ptr<Socket>;

/// Thrown by connect() when no listener is bound to the target address.
class ConnectError : public std::runtime_error {
 public:
  explicit ConnectError(Address to)
      : std::runtime_error("connection refused: node " +
                           std::to_string(to.node) + ":" +
                           std::to_string(to.port)) {}
};

namespace detail {

/// One direction of a connection: a delivery channel, the sender-side
/// wire clock that enforces FIFO bandwidth-limited delivery, and the FIFO
/// chain of in-flight messages parked in the network's arena.
struct Pipe {
  Pipe(sim::Engine& engine, MessageArena* arena)
      : inbox(engine), engine(&engine), arena(arena) {}
  ~Pipe() {
    // Frees messages whose delivery events never fired (simulation ended
    // or connection torn down mid-flight). The owning Connection keeps the
    // arena alive until after its pipes are gone.
    while (pending_head != MessageArena::kNil) {
      const std::uint32_t idx = pending_head;
      pending_head = arena->slot(idx).next;
      arena->release(idx);
    }
  }

  /// Parks a message for delivery at `due` (due times are monotone per
  /// pipe: the wire clock only moves forward and stalls only extend).
  void park(Message m, sim::Time due) {
    const std::uint32_t idx = arena->acquire(std::move(m), due);
    if (pending_tail == MessageArena::kNil) {
      pending_head = idx;
    } else {
      arena->slot(pending_tail).next = idx;
    }
    pending_tail = idx;
  }

  /// Delivers every parked message that is due. Each send schedules one
  /// engine event at its own delivery instant (preserving the event
  /// heap's (time, seq) layout exactly), but the earliest event of a
  /// same-instant burst drains the whole batch and the rest find an empty
  /// chain.
  void flush() {
    const sim::Time now = engine->now();
    std::size_t delivered = 0;
    while (pending_head != MessageArena::kNil &&
           arena->slot(pending_head).due <= now) {
      const std::uint32_t idx = pending_head;
      MessageArena::Slot& s = arena->slot(idx);
      pending_head = s.next;
      // If the reader already closed its end, the bytes vanish (RST-like).
      if (!inbox.closed()) inbox.push(std::move(s.msg));
      arena->release(idx);
      ++delivered;
    }
    if (pending_head == MessageArena::kNil) pending_tail = MessageArena::kNil;
    arena->note_flush(delivered);
  }

  sim::Channel<Message> inbox;
  sim::Engine* engine;
  MessageArena* arena;
  sim::Time wire_free_at = 0;  // sender clock: when the wire next idles
  bool closed = false;
  std::uint32_t pending_head = MessageArena::kNil;
  std::uint32_t pending_tail = MessageArena::kNil;
};

struct Connection {
  Connection(sim::Engine& engine, std::shared_ptr<MessageArena> arena,
             NodeId a, NodeId b)
      : arena_ref(std::move(arena)), a_to_b(engine, arena_ref.get()),
        b_to_a(engine, arena_ref.get()), node_a(a), node_b(b) {}
  /// Declared before the pipes so their destructors (which release parked
  /// messages back into the arena) run while the arena is still alive —
  /// even if the owning Network is long gone.
  std::shared_ptr<MessageArena> arena_ref;
  Pipe a_to_b;
  Pipe b_to_a;
  NodeId node_a, node_b;
};

}  // namespace detail

class Network;

/// One endpoint of an established connection.
class Socket {
 public:
  /// Use Network::connect / Listener::accept; this is internal.
  Socket(Network& net, std::shared_ptr<detail::Connection> conn, bool is_a);
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  NodeId local_node() const;
  NodeId remote_node() const;

  /// Queues a message for delivery; returns immediately (buffered send).
  /// Messages on one socket arrive in send order after wire time.
  void send(Message m);

  /// Like send(), but completes only when the payload has fully left this
  /// endpoint (used for bulk transfers whose sender must hold resources).
  sim::Task<void> send_sync(Message m);

  /// Receives the next message; std::nullopt = EOF (peer closed or died).
  sim::Task<std::optional<Message>> recv();

  /// recv with a timeout; std::nullopt = timeout *or* EOF. Callers that
  /// must distinguish check eof() afterwards.
  sim::Task<std::optional<Message>> recv_for(sim::Duration timeout);

  /// True once the peer has closed and the inbox has drained.
  bool eof() const;

  /// Half-closes our sending direction and refuses further receives.
  void close();

 private:
  detail::Pipe& out();
  detail::Pipe& in();
  const detail::Pipe& in() const;
  sim::Time queue_on_wire(const Message& m);

  Network* net_;
  std::shared_ptr<detail::Connection> conn_;
  bool is_a_;
  bool open_ = true;
};

/// A bound, listening port. accept() yields established server-side sockets.
class Listener {
 public:
  Listener(Network& net, Address addr);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  Address address() const { return addr_; }

  /// Waits for the next inbound connection; nullopt if the listener closed.
  sim::Task<SocketPtr> accept();

  void close();

 private:
  friend class Network;
  Network* net_;
  Address addr_;
  sim::Channel<SocketPtr> pending_;
  bool open_ = true;
};

/// The machine-wide socket namespace: binds listeners, establishes
/// connections, and owns the fabric timing model.
///
/// Fault hooks (driven by core::ChaosEngine): the network can stall a node
/// — every message *sent* from or *delivered to* it during the window is
/// held until the window closes, modelling a paused NIC/TCP stack — or
/// reset a node, RST-closing every established connection that touches it.
/// Both are deterministic: a stall only affects messages queued after the
/// injection, and resets fire at the current simulated time.
class Network {
 public:
  Network(sim::Engine& engine, std::shared_ptr<const Fabric> fabric)
      : engine_(&engine), fabric_(std::move(fabric)),
        arena_(std::make_shared<MessageArena>()) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Engine& engine() { return *engine_; }
  const Fabric& fabric() const { return *fabric_; }
  /// In-flight message arena (shared with every connection's pipes).
  const MessageArena& arena() const { return *arena_; }

  /// Binds a listener; throws std::invalid_argument if the port is taken.
  std::unique_ptr<Listener> listen(Address addr);

  /// Establishes a connection from `from` to the listener at `to`.
  /// Takes one fabric round trip; throws ConnectError if nothing listens.
  sim::Task<SocketPtr> connect(NodeId from, Address to);

  /// Number of live bound listeners (diagnostics).
  std::size_t listener_count() const { return listeners_.size(); }

  // --- Fault hooks ------------------------------------------------------

  /// Freezes `node`'s traffic for `d`: sends originating there serialize
  /// only after the window, and in-window deliveries to it are deferred to
  /// the window's end. Overlapping stalls extend to the latest deadline.
  void stall_node(NodeId node, sim::Duration d);

  /// Absolute time until which `node` is stalled (0 = not stalled).
  sim::Time stall_until(NodeId node) const;

  /// RST-closes every live connection with an endpoint on `node`: both
  /// directions see EOF immediately, exactly as if the peer vanished.
  /// Listeners stay bound (the node's OS is alive; only its connections
  /// are torn). Returns the number of connections reset.
  std::size_t reset_node(NodeId node);

 private:
  friend class Listener;
  friend class Socket;
  void unbind(Address addr) { listeners_.erase(addr); }

  sim::Engine* engine_;
  std::shared_ptr<const Fabric> fabric_;
  std::shared_ptr<MessageArena> arena_;
  std::map<Address, Listener*> listeners_;
  /// Live connections, for reset_node; pruned opportunistically.
  std::vector<std::weak_ptr<detail::Connection>> connections_;
  std::map<NodeId, sim::Time> stalled_;
};

}  // namespace jets::net
