#include "net/staging.hh"

#include <charconv>

namespace jets::net {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::string hex16(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHexDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_hex16(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace

std::vector<std::string> encode_stage_args(const StageHeader& h) {
  std::vector<std::string> args;
  args.reserve(4);
  args.push_back(h.path);
  args.push_back("d=" + hex16(h.digest));
  args.push_back("b=" + std::to_string(h.bytes));
  switch (h.source) {
    case StageHeader::Source::kPush:
      args.push_back("s=push");
      break;
    case StageHeader::Source::kPeer:
      args.push_back("s=peer:" + std::to_string(h.peer));
      break;
    case StageHeader::Source::kWarm:
      args.push_back("s=warm");
      break;
  }
  return args;
}

std::optional<StageHeader> parse_stage_args(
    const std::vector<std::string>& args) {
  if (args.size() != 4) return std::nullopt;
  std::string_view d(args[1]), b(args[2]), s(args[3]);
  if (!d.starts_with("d=") || !b.starts_with("b=") || !s.starts_with("s=")) {
    return std::nullopt;
  }
  StageHeader h;
  h.path = args[0];
  const auto digest = parse_hex16(d.substr(2));
  const auto bytes = parse_u64(b.substr(2));
  if (!digest || !bytes) return std::nullopt;
  h.digest = *digest;
  h.bytes = *bytes;
  s.remove_prefix(2);
  if (s == "push") {
    h.source = StageHeader::Source::kPush;
  } else if (s == "warm") {
    h.source = StageHeader::Source::kWarm;
  } else if (s.starts_with("peer:")) {
    const auto peer = parse_u64(s.substr(5));
    if (!peer) return std::nullopt;
    h.source = StageHeader::Source::kPeer;
    h.peer = static_cast<NodeId>(*peer);
  } else {
    return std::nullopt;
  }
  return h;
}

StagePlan plan_transfer(const Fabric& fabric, NodeId source, NodeId target,
                        std::span<const NodeId> holders, std::uint64_t bytes) {
  StagePlan plan;
  plan.cost = fabric.transfer_time(source, target,
                                   static_cast<std::size_t>(bytes));
  for (NodeId holder : holders) {
    const sim::Duration c =
        fabric.transfer_time(holder, target, static_cast<std::size_t>(bytes));
    // '<=' twice: a peer beats the push at equal cost, and among peers the
    // earlier (lower-id, since holders come in sorted) one keeps ties.
    if (c <= plan.cost && (!plan.use_peer || c < plan.cost)) {
      plan.use_peer = true;
      plan.peer = holder;
      plan.cost = c;
    }
  }
  return plan;
}

}  // namespace jets::net
