// Protocol conformance + fuzz battery for the typed RPC layer (ctest
// label: rpc).
//
// Four layers of coverage:
//
//   1. Round trips: every typed protocol struct encodes to the historical
//      wire form and decodes back to an identical value.
//   2. Decode rejection: a targeted malformed frame per DecodeError kind
//      per decoder — truncated args, bad enums, unknown tags, oversized
//      ids — each returns a typed error, never throws, never crashes.
//   3. Seeded fuzz: pseudo-random frames (junk tags, junk args, huge
//      numbers, half-valid digest grammar) fed to *every* decoder. The
//      sanitizer lane is the oracle for memory safety; accepted frames
//      must additionally be canonical (decode(encode(decode(m))) is
//      identity).
//   4. Channel conformance, in-simulator: correlation matching under
//      out-of-order completion, same-key FIFO resolution, bounded
//      pipeline windows, deadline expiry + late-reply orphans, peer-close
//      draining in issue order, post-EOF refusal, sync/async handler
//      dispatch, and the serve-less pump mode the PMI client uses —
//      including the GCC 12 aggregate-prvalue regression shape (see the
//      note in rpc.hh).
//
// Plus one service-level regression: a worker whose socket dies between
// task claim and flush must surface through RpcError::kPeerClosed — typed,
// counted in jets.rpc.peer_closed, and classified kWorkerLost.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "apps/synthetic.hh"
#include "core/chaos.hh"
#include "core/standalone.hh"
#include "net/fabric.hh"
#include "net/rpc.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"
#include "sim/sim.hh"
#include "testutil.hh"

// gtest's ASSERT_* macros `return;` on failure, which is ill-formed inside
// a coroutine body — these record the failure and co_return instead.
#define CO_ASSERT_TRUE(x) \
  do {                    \
    if (!(x)) {           \
      ADD_FAILURE() << #x; \
      co_return;          \
    }                     \
  } while (0)
#define CO_ASSERT_FALSE(x) CO_ASSERT_TRUE(!(x))

namespace jets::net::rpc {
namespace {

using sim::Engine;
using sim::Task;

// --- 1. Round trips --------------------------------------------------------

/// Byte-level equality of two wire frames.
bool same_frame(const Message& a, const Message& b) {
  return a.tag == b.tag && a.args == b.args &&
         a.payload_bytes == b.payload_bytes;
}

TEST(RpcRoundTrip, RegisterReq) {
  RegisterReq r(7, {"t-1", "t-2"});
  auto d = RegisterReq::decode(r.encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().node, 7u);
  EXPECT_EQ(d.value().inventory, (std::vector<std::string>{"t-1", "t-2"}));
  // Empty inventory (the common fresh-boot frame).
  auto d2 = RegisterReq::decode(RegisterReq(0).encode());
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(d2.value().inventory.empty());
}

TEST(RpcRoundTrip, Notes) {
  EXPECT_TRUE(ReadyNote::decode(ReadyNote{}.encode()).ok());
  EXPECT_TRUE(PingNote::decode(PingNote{}.encode()).ok());
  EXPECT_EQ(ReadyNote{}.encode().tag, "ready");
  EXPECT_EQ(PingNote{}.encode().tag, "hb");
}

TEST(RpcRoundTrip, TaskDoneAllReasons) {
  for (const auto reason : {TaskDone::Reason::kApp, TaskDone::Reason::kWatchdog,
                            TaskDone::Reason::kKilled}) {
    TaskDone d("task-9", -13, reason);
    auto r = TaskDone::decode(d.encode());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().task_id, "task-9");
    EXPECT_EQ(r.value().status, -13);
    EXPECT_EQ(r.value().reason, reason);
    EXPECT_EQ(r.value().correlation_key(), "task-9");
  }
}

TEST(RpcRoundTrip, TaskRunArgvAndVars) {
  TaskRun run("j0.3", {"namd2.sh", "in.pdb", "x=looks-like-a-var"},
              {{"OMP_NUM_THREADS", "4"}, {"JETS_RANK", "0"}});
  auto r = TaskRun::decode(run.encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().task_id, "j0.3");
  EXPECT_EQ(r.value().argv, run.argv);  // argc guard keeps '=' argv intact
  EXPECT_EQ(r.value().vars, run.vars);
  // Empty argv, empty vars.
  auto r2 = TaskRun::decode(TaskRun("j", {}).encode());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().argv.empty());
}

TEST(RpcRoundTrip, KillReq) {
  auto r = KillReq::decode(KillReq("t-3").encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().task_id, "t-3");
}

TEST(RpcRoundTrip, StageAckLegacyAndDigest) {
  auto legacy = StageAck::decode(StageAck("in.pdb").encode());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().digest, 0u);
  StageAck full("in.pdb", 0xdeadbeef01020304ull, {0x1ull, 0xffull});
  auto r = StageAck::decode(full.encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().digest, 0xdeadbeef01020304ull);
  EXPECT_EQ(r.value().evictions, full.evictions);
  EXPECT_EQ(r.value().correlation_key(), "in.pdb");
}

TEST(RpcRoundTrip, StageReqLegacyAndDigestForms) {
  StageHeader h;
  h.path = "inputs/a.bin";
  h.digest = 0xabcull;
  h.bytes = 4096;
  h.source = StageHeader::Source::kPeer;
  h.peer = 12;
  auto r = StageReq::decode(StageReq(h).encode());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().legacy);
  EXPECT_EQ(r.value().header.digest, 0xabcull);
  EXPECT_EQ(r.value().header.bytes, 4096u);
  EXPECT_EQ(r.value().header.peer, 12u);
  // Legacy broadcast form: [path] + payload, bytes taken from the payload.
  StageHeader lh;
  lh.path = "bcast.dat";
  auto lr = StageReq::decode(StageReq(lh, /*leg=*/true, /*pay=*/777).encode());
  ASSERT_TRUE(lr.ok());
  EXPECT_TRUE(lr.value().legacy);
  EXPECT_EQ(lr.value().header.path, "bcast.dat");
  EXPECT_EQ(lr.value().header.bytes, 777u);
}

TEST(RpcRoundTrip, PmiFamily) {
  EXPECT_EQ(PmiInit::decode(PmiInit(3).encode()).value().rank, 3);
  auto put = PmiPut::decode(PmiPut("k", "v").encode());
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.value().key, "k");
  EXPECT_EQ(put.value().value, "v");
  auto val = PmiValue::decode(PmiValue("k", "v").encode());
  ASSERT_TRUE(val.ok());
  EXPECT_EQ(val.value().correlation_key(), "k");
  EXPECT_EQ(PmiGet::decode(PmiGet("k").encode()).value().key, "k");
  EXPECT_TRUE(PmiBarrierOut::decode(PmiBarrierOut{}.encode()).ok());
  EXPECT_EQ(PmiBarrier::decode(PmiBarrier(5).encode()).value().rank, 5);
  EXPECT_EQ(PmiFinalize::decode(PmiFinalize(2).encode()).value().rank, 2);
}

// --- 2. Targeted decode rejection -----------------------------------------

using Kind = DecodeError::Kind;

/// Decodes expecting failure; returns the error kind (kBadTag on
/// unexpected success so the EXPECT_EQ at the call site still fires).
template <typename M>
Kind reject(const Message& m) {
  auto r = M::decode(m);
  EXPECT_FALSE(r.ok()) << "frame '" << m.tag << "' unexpectedly accepted";
  return r.ok() ? Kind::kBadTag : r.error().kind;
}

TEST(RpcDecode, WrongTagRejectedEverywhere) {
  const Message alien("no.such.verb", {"x"});
  EXPECT_EQ(reject<RegisterReq>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<ReadyNote>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PingNote>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<TaskDone>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<TaskRun>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<KillReq>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<StageAck>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<StageReq>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiInit>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiPut>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiValue>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiGet>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiBarrierOut>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiBarrier>(alien), Kind::kBadTag);
  EXPECT_EQ(reject<PmiFinalize>(alien), Kind::kBadTag);
}

TEST(RpcDecode, RegisterReq) {
  EXPECT_EQ(reject<RegisterReq>(Message("reg")), Kind::kMissingArg);
  EXPECT_EQ(reject<RegisterReq>(Message("reg", {"abc"})), Kind::kBadNumber);
  EXPECT_EQ(reject<RegisterReq>(Message("reg", {"-1"})), Kind::kBadNumber);
  EXPECT_EQ(reject<RegisterReq>(Message("reg", {"12 "})), Kind::kBadNumber);
  // NodeId is 32-bit; a parseable u64 past that is oversized, not bad.
  EXPECT_EQ(reject<RegisterReq>(Message("reg", {"4294967296"})),
            Kind::kOversized);
  EXPECT_EQ(reject<RegisterReq>(Message("reg", {"99999999999999999999"})),
            Kind::kBadNumber);  // overflows u64 entirely
}

TEST(RpcDecode, NotesRejectTrailingArgs) {
  EXPECT_EQ(reject<ReadyNote>(Message("ready", {"x"})), Kind::kTrailingArgs);
  EXPECT_EQ(reject<PingNote>(Message("hb", {"x"})), Kind::kTrailingArgs);
  EXPECT_EQ(reject<PmiBarrierOut>(Message("pmi.barrier_out", {"x"})),
            Kind::kTrailingArgs);
}

TEST(RpcDecode, TaskDone) {
  EXPECT_EQ(reject<TaskDone>(Message("done")), Kind::kMissingArg);
  EXPECT_EQ(reject<TaskDone>(Message("done", {"t", "0"})), Kind::kMissingArg);
  EXPECT_EQ(reject<TaskDone>(Message("done", {"t", "0", "app", "x"})),
            Kind::kTrailingArgs);
  EXPECT_EQ(reject<TaskDone>(Message("done", {"t", "zero", "app"})),
            Kind::kBadNumber);
  EXPECT_EQ(reject<TaskDone>(Message("done", {"t", "0", "segfault"})),
            Kind::kBadEnum);
}

TEST(RpcDecode, TaskRun) {
  EXPECT_EQ(reject<TaskRun>(Message("run", {"t"})), Kind::kMissingArg);
  EXPECT_EQ(reject<TaskRun>(Message("run", {"t", "x"})), Kind::kBadNumber);
  // argc says 3 but only 1 argv slot follows: truncated frame.
  EXPECT_EQ(reject<TaskRun>(Message("run", {"t", "3", "a"})), Kind::kMissingArg);
  // Trailing non-var token after the argv window.
  EXPECT_EQ(reject<TaskRun>(Message("run", {"t", "1", "a", "not-a-var"})),
            Kind::kTrailingArgs);
}

TEST(RpcDecode, KillReq) {
  EXPECT_EQ(reject<KillReq>(Message("kill")), Kind::kMissingArg);
  EXPECT_EQ(reject<KillReq>(Message("kill", {"t", "x"})), Kind::kTrailingArgs);
}

TEST(RpcDecode, StageAck) {
  EXPECT_EQ(reject<StageAck>(Message("staged")), Kind::kMissingArg);
  // Legacy form admits exactly one arg.
  EXPECT_EQ(reject<StageAck>(Message("staged", {"p", "q"})),
            Kind::kTrailingArgs);
  // Digest grammar: 16 lowercase hex, nonzero.
  EXPECT_EQ(reject<StageAck>(Message("staged", {"p", "d="})), Kind::kBadDigest);
  EXPECT_EQ(reject<StageAck>(Message("staged", {"p", "d=12345"})),
            Kind::kBadDigest);
  EXPECT_EQ(reject<StageAck>(Message("staged", {"p", "d=ABCDEF0123456789"})),
            Kind::kBadDigest);
  EXPECT_EQ(reject<StageAck>(Message("staged", {"p", "d=0000000000000000"})),
            Kind::kBadDigest);
  EXPECT_EQ(
      reject<StageAck>(Message("staged", {"p", "d=00000000000000ff", "junk"})),
      Kind::kTrailingArgs);
  EXPECT_EQ(
      reject<StageAck>(Message("staged", {"p", "d=00000000000000ff", "e=xyz"})),
      Kind::kBadDigest);
}

TEST(RpcDecode, StageReqEmptyFrameIsErrorNotThrow) {
  // The pre-RPC worker indexed args[0] unchecked; an empty "stagein" threw
  // std::out_of_range. Now it is a typed decode error.
  EXPECT_EQ(reject<StageReq>(Message("stagein")), Kind::kMissingArg);
  // But the legacy fallback is NOT an error: a frame outside the digest
  // grammar is the old broadcast protocol.
  auto r = StageReq::decode(Message("stagein", {"p", "d=zz", "b=1", "s=push"}));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().legacy);
}

TEST(RpcDecode, PmiNumericFields) {
  EXPECT_EQ(reject<PmiInit>(Message("pmi.init")), Kind::kMissingArg);
  EXPECT_EQ(reject<PmiInit>(Message("pmi.init", {"r0"})), Kind::kBadNumber);
  EXPECT_EQ(reject<PmiInit>(Message("pmi.init", {"0", "x"})),
            Kind::kTrailingArgs);
  EXPECT_EQ(reject<PmiPut>(Message("pmi.put", {"k"})), Kind::kMissingArg);
  EXPECT_EQ(reject<PmiPut>(Message("pmi.put", {"k", "v", "w"})),
            Kind::kTrailingArgs);
  EXPECT_EQ(reject<PmiValue>(Message("pmi.value", {"k"})), Kind::kMissingArg);
  EXPECT_EQ(reject<PmiGet>(Message("pmi.get")), Kind::kMissingArg);
  EXPECT_EQ(reject<PmiGet>(Message("pmi.get", {"k", "x"})),
            Kind::kTrailingArgs);
  EXPECT_EQ(reject<PmiBarrier>(Message("pmi.barrier_in", {"1e3"})),
            Kind::kBadNumber);
  EXPECT_EQ(reject<PmiFinalize>(Message("pmi.finalize", {""})),
            Kind::kBadNumber);
}

// --- 3. Seeded fuzz --------------------------------------------------------

/// Feeds `m` to every decoder; any accepted value must re-encode to a
/// canonical frame that decodes back to the same bytes. The sanitizer
/// build is the crash oracle.
template <typename M>
void fuzz_one(const Message& m) {
  auto r = M::decode(m);
  if (!r.ok()) {
    // A rejected frame still renders a diagnosable error string.
    EXPECT_FALSE(to_string(r.error()).empty());
    return;
  }
  const Message canon = r.value().encode();
  auto r2 = M::decode(canon);
  ASSERT_TRUE(r2.ok()) << "canonical re-encode of accepted '" << m.tag
                       << "' frame no longer decodes";
  EXPECT_TRUE(same_frame(canon, r2.value().encode()));
}

void fuzz_all_decoders(const Message& m) {
  fuzz_one<RegisterReq>(m);
  fuzz_one<ReadyNote>(m);
  fuzz_one<PingNote>(m);
  fuzz_one<TaskDone>(m);
  fuzz_one<TaskRun>(m);
  fuzz_one<KillReq>(m);
  fuzz_one<StageAck>(m);
  fuzz_one<StageReq>(m);
  fuzz_one<PmiInit>(m);
  fuzz_one<PmiPut>(m);
  fuzz_one<PmiValue>(m);
  fuzz_one<PmiGet>(m);
  fuzz_one<PmiBarrierOut>(m);
  fuzz_one<PmiBarrier>(m);
  fuzz_one<PmiFinalize>(m);
}

TEST(RpcFuzz, RandomFramesNeverCrashAnyDecoder) {
  std::mt19937 rng(0x4a455453u);  // fixed seed: failures must reproduce
  const std::vector<std::string> tags = {
      "reg",     "ready",          "hb",           "done",
      "run",     "kill",           "staged",       "stagein",
      "pmi.init", "pmi.put",       "pmi.value",    "pmi.get",
      "pmi.barrier_in", "pmi.barrier_out", "pmi.finalize",
      "bogus",   "",               "REG",          "done\n"};
  const std::vector<std::string> pool = {
      "",       "0",         "1",      "-1",       "42",
      "abc",    "4294967295", "4294967296", "18446744073709551615",
      "18446744073709551616", "99999999999999999999999999",
      "0x10",   " 7",        "7 ",     "+3",       "3.14",
      "app",    "watchdog",  "killed", "appp",     "APP",
      "d=",     "d=00000000000000ff", "d=ffffffffffffffff",
      "d=FFFFFFFFFFFFFFFF", "d=00000000000000",  "d=0000000000000000",
      "e=",     "e=00000000000000ff", "e=nope",
      "b=4096", "b=abc",     "b=",     "s=push",   "s=warm",
      "s=peer:3", "s=peer:x", "s=bogus", "k=v",    "=v",
      "k=",     "path/with=equals", std::string(300, 'A'),
      std::string("\0embedded", 9)};
  std::uniform_int_distribution<std::size_t> tag_pick(0, tags.size() - 1);
  std::uniform_int_distribution<std::size_t> arg_pick(0, pool.size() - 1);
  std::uniform_int_distribution<int> argc_pick(0, 6);
  std::uniform_int_distribution<int> payload_pick(0, 1);
  for (int i = 0; i < 4000; ++i) {
    Message m(tags[tag_pick(rng)]);
    const int argc = argc_pick(rng);
    for (int a = 0; a < argc; ++a) m.args.push_back(pool[arg_pick(rng)]);
    if (payload_pick(rng)) m.payload_bytes = 1 + (rng() % (1u << 20));
    fuzz_all_decoders(m);
  }
}

TEST(RpcFuzz, ValidFramesSurviveSingleFieldMutation) {
  // Start from every canonical frame, clobber one arg at a time with junk:
  // the decoder must reject or re-canonicalize, never crash.
  std::vector<Message> seeds = {
      RegisterReq(3, {"t-1"}).encode(),
      TaskDone("t", 1, TaskDone::Reason::kWatchdog).encode(),
      TaskRun("t", {"a", "b"}, {{"K", "V"}}).encode(),
      KillReq("t").encode(),
      StageAck("p", 0xffull, {0x2ull}).encode(),
      PmiInit(1).encode(),
      PmiPut("k", "v").encode(),
      PmiValue("k", "v").encode(),
      PmiGet("k").encode(),
      PmiBarrier(0).encode(),
      PmiFinalize(0).encode(),
  };
  StageHeader h;
  h.path = "p";
  h.digest = 0x5ull;
  h.bytes = 10;
  seeds.push_back(StageReq(h).encode());
  std::mt19937 rng(0x57495245u);
  const std::vector<std::string> junk = {"", "zz", "-", "1x", "d=5",
                                         std::string(64, 'f')};
  std::uniform_int_distribution<std::size_t> junk_pick(0, junk.size() - 1);
  for (const Message& seed : seeds) {
    for (std::size_t at = 0; at < seed.args.size(); ++at) {
      for (int trial = 0; trial < 8; ++trial) {
        Message mutant = seed;
        mutant.args[at] = junk[junk_pick(rng)];
        fuzz_all_decoders(mutant);
      }
      Message truncated = seed;
      truncated.args.resize(at);
      fuzz_all_decoders(truncated);
    }
  }
}

// --- 4. Channel conformance ------------------------------------------------

class RpcChannelTest : public ::testing::Test {
 protected:
  Engine engine;
  Network net{engine, std::make_shared<EthernetFabric>()};
  std::unique_ptr<Listener> listener = net.listen({1, 7000});
  SocketPtr server;  // accept side (test scripts the peer on this socket)
  SocketPtr client;  // connect side (the channel under test lives here)
  obs::MetricsRegistry reg;
  ChannelMetrics metrics = ChannelMetrics::bind(reg);

  /// Phase 1: establish the connection so tests can build a Channel on the
  /// stack (its lifetime must cover the serve() actor spawned in phase 2).
  void establish() {
    engine.spawn("accept", [](RpcChannelTest& t) -> Task<void> {
      t.server = co_await t.listener->accept();
    }(*this));
    engine.spawn("connect", [](RpcChannelTest& t) -> Task<void> {
      t.client = co_await t.net.connect(0, {1, 7000});
    }(*this));
    engine.run();
    ASSERT_NE(server, nullptr);
    ASSERT_NE(client, nullptr);
  }

  Channel::Config cfg(std::size_t window = 0) {
    Channel::Config c;
    c.window = window;
    c.metrics = &metrics;
    return c;
  }

  std::uint64_t count(const char* name) const {
    return reg.counter_value(name);
  }
};

TEST_F(RpcChannelTest, OutOfOrderRepliesMatchByCorrelationKey) {
  establish();
  Channel chan(engine, client, cfg());
  engine.spawn("serve", chan.serve());
  // Server gathers all three requests, then answers them newest-first.
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    std::vector<std::string> ids;
    while (ids.size() < 3) {
      auto m = co_await s->recv();
      CO_ASSERT_TRUE(m.has_value());
      auto run = TaskRun::decode(*m);
      CO_ASSERT_TRUE(run.ok());
      ids.push_back(run.value().task_id);
    }
    for (int i = 2; i >= 0; --i) {
      s->send(TaskDone(ids[static_cast<std::size_t>(i)], 100 + i,
                       TaskDone::Reason::kApp)
                  .encode());
    }
    s->close();
  }(server));
  std::vector<std::string> done_order;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("caller", [](Channel& ch, int i,
                              std::vector<std::string>& order) -> Task<void> {
      // Named, not a braced literal in the co_await expression: GCC 12
      // also mishandles initializer-list arrays living across suspension.
      std::vector<std::string> argv = {"app"};
      auto r = co_await ch.call(TaskRun("t" + std::to_string(i), argv));
      CO_ASSERT_TRUE(r.ok());
      // Each caller receives *its* reply, not whichever arrived first.
      EXPECT_EQ(r.value().task_id, "t" + std::to_string(i));
      EXPECT_EQ(r.value().status, 100 + i);
      order.push_back(r.value().task_id);
    }(chan, i, done_order));
  }
  engine.run();
  EXPECT_EQ(done_order, (std::vector<std::string>{"t2", "t1", "t0"}));
  EXPECT_EQ(count("jets.rpc.calls"), 3u);
  EXPECT_EQ(count("jets.rpc.completed"), 3u);
  EXPECT_EQ(count("jets.rpc.orphans"), 0u);
  EXPECT_EQ(chan.in_flight(), 0u);
}

TEST_F(RpcChannelTest, SameKeyCallsResolveFifo) {
  establish();
  Channel chan(engine, client, cfg());
  engine.spawn("serve", chan.serve());
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    for (int i = 0; i < 2; ++i) (void)co_await s->recv();
    // Two identical correlation keys: replies must land in issue order.
    s->send(TaskDone("dup", 7, TaskDone::Reason::kApp).encode());
    s->send(TaskDone("dup", 8, TaskDone::Reason::kApp).encode());
    s->close();
  }(server));
  std::vector<int> statuses;
  for (int i = 0; i < 2; ++i) {
    engine.spawn("caller", [](Channel& ch, std::vector<int>& out) -> Task<void> {
      std::vector<std::string> argv = {"app"};
      auto r = co_await ch.call(TaskRun("dup", argv));
      CO_ASSERT_TRUE(r.ok());
      out.push_back(r.value().status);
    }(chan, statuses));
  }
  engine.run();
  EXPECT_EQ(statuses, (std::vector<int>{7, 8}));
}

TEST_F(RpcChannelTest, CallCbFailsFastWhenWindowFull) {
  establish();
  Channel chan(engine, client, cfg(/*window=*/2));
  int completions = 0;
  auto sink = [&completions](Expected<TaskDone, RpcError>) { ++completions; };
  EXPECT_TRUE(chan.call_cb(TaskRun("a", {}), sink).ok());
  EXPECT_TRUE(chan.call_cb(TaskRun("b", {}), sink).ok());
  EXPECT_EQ(chan.window_available(), 0u);
  auto third = chan.call_cb(TaskRun("c", {}), sink);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error(), RpcError::kWindowFull);
  EXPECT_EQ(chan.in_flight(), 2u);  // the refused call was never issued
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(count("jets.rpc.calls"), 2u);
}

TEST_F(RpcChannelTest, CallAwaitsWindowCreditFifo) {
  establish();
  Channel chan(engine, client, cfg(/*window=*/1));
  engine.spawn("serve", chan.serve());
  // Echo peer: every request is answered immediately, so the single
  // credit recycles and both calls eventually run.
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      auto m = co_await s->recv();
      CO_ASSERT_TRUE(m.has_value());
      auto run = TaskRun::decode(*m);
      CO_ASSERT_TRUE(run.ok());
      s->send(
          TaskDone(run.value().task_id, 0, TaskDone::Reason::kApp).encode());
    }
    s->close();
  }(server));
  std::vector<std::string> done_order;
  for (int i = 0; i < 2; ++i) {
    engine.spawn("caller", [](Channel& ch, int i,
                              std::vector<std::string>& order) -> Task<void> {
      auto r = co_await ch.call(TaskRun("w" + std::to_string(i), {}));
      CO_ASSERT_TRUE(r.ok());
      order.push_back(r.value().task_id);
    }(chan, i, done_order));
  }
  engine.run();
  // The second call could only issue after the first completed (window=1),
  // so completion order is issue order.
  EXPECT_EQ(done_order, (std::vector<std::string>{"w0", "w1"}));
  EXPECT_EQ(chan.window_available(), 1u);
  EXPECT_EQ(count("jets.rpc.completed"), 2u);
}

TEST_F(RpcChannelTest, DeadlineExpiresAndLateReplyBecomesOrphan) {
  establish();
  Channel chan(engine, client, cfg());
  engine.spawn("serve", chan.serve());
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    auto m = co_await s->recv();
    CO_ASSERT_TRUE(m.has_value());
    co_await sim::delay(sim::seconds(10));  // well past the caller deadline
    s->send(TaskDone("slow", 0, TaskDone::Reason::kApp).encode());
    s->close();
  }(server));
  sim::Time issued = -1;
  sim::Time failed_at = -1;
  engine.spawn("caller", [](Engine& e, Channel& ch, sim::Time& t0,
                            sim::Time& at) -> Task<void> {
    t0 = e.now();
    auto r = co_await ch.call(TaskRun("slow", {}), sim::seconds(5));
    CO_ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), RpcError::kTimeout);
    at = e.now();
  }(engine, chan, issued, failed_at));
  engine.run();
  // Fails exactly one deadline after issue (issue time itself is a few
  // simulated microseconds in, once connection setup has settled).
  EXPECT_EQ(failed_at, issued + sim::seconds(5));
  EXPECT_EQ(count("jets.rpc.timeouts"), 1u);
  // The reply that eventually arrived found no pending call.
  EXPECT_EQ(count("jets.rpc.orphans"), 1u);
  EXPECT_EQ(count("jets.rpc.completed"), 0u);
}

TEST_F(RpcChannelTest, PeerCloseDrainsPendingCallsInIssueOrder) {
  establish();
  Channel chan(engine, client, cfg());
  engine.spawn("serve", chan.serve());
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    for (int i = 0; i < 3; ++i) (void)co_await s->recv();
    s->close();  // vanish with all three calls outstanding
  }(server));
  std::vector<std::string> drain_order;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("caller", [](Channel& ch, int i,
                              std::vector<std::string>& order) -> Task<void> {
      auto r = co_await ch.call(TaskRun("d" + std::to_string(i), {}));
      CO_ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.error(), RpcError::kPeerClosed);
      order.push_back("d" + std::to_string(i));
    }(chan, i, drain_order));
  }
  engine.run();
  EXPECT_EQ(drain_order, (std::vector<std::string>{"d0", "d1", "d2"}));
  EXPECT_TRUE(chan.peer_closed());
  EXPECT_EQ(count("jets.rpc.peer_closed"), 3u);
  EXPECT_EQ(chan.in_flight(), 0u);
}

TEST_F(RpcChannelTest, IssueAndNotifyRefusedAfterEof) {
  establish();
  Channel chan(engine, client, cfg());
  engine.spawn("serve", chan.serve());
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    (void)co_await s->recv();
    s->close();
  }(server));
  bool checked = false;
  engine.spawn("caller", [](Channel& ch, bool& checked) -> Task<void> {
    auto r = co_await ch.call(TaskRun("x", {}));
    CO_ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), RpcError::kPeerClosed);
    // Post-EOF: both forms refuse without touching the socket.
    auto again = ch.call_cb(TaskRun("y", {}),
                            [](Expected<TaskDone, RpcError>) { FAIL(); });
    CO_ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.error(), RpcError::kPeerClosed);
    EXPECT_FALSE(ch.notify(ReadyNote{}).ok());
    checked = true;
  }(chan, checked));
  engine.run();
  EXPECT_TRUE(checked);
  // Drained call + refused call; the refused notify is not a call.
  EXPECT_EQ(count("jets.rpc.peer_closed"), 2u);
  EXPECT_EQ(count("jets.rpc.calls"), 1u);
}

TEST_F(RpcChannelTest, OrphanUnknownTagAndDecodeErrorAreCounted) {
  establish();
  Channel chan(engine, client, cfg());
  engine.spawn("serve", chan.serve());
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    (void)co_await s->recv();
    s->send(TaskDone("t", 0, TaskDone::Reason::kApp).encode());
    // Duplicate reply: same correlation id, no pending call -> orphan.
    s->send(TaskDone("t", 0, TaskDone::Reason::kApp).encode());
    // No route installed for this verb at all -> unknown tag.
    s->send(Message("no.such.verb", {"x"}));
    // Routed verb, malformed frame -> typed decode error, not a crash.
    s->send(Message("done", {"only-one-arg"}));
    s->close();
  }(server));
  engine.spawn("caller", [](Channel& ch) -> Task<void> {
    auto r = co_await ch.call(TaskRun("t", {}));
    EXPECT_TRUE(r.ok());
  }(chan));
  engine.run();
  EXPECT_EQ(count("jets.rpc.completed"), 1u);
  EXPECT_EQ(count("jets.rpc.orphans"), 1u);
  EXPECT_EQ(count("jets.rpc.unknown_tags"), 1u);
  EXPECT_EQ(count("jets.rpc.decode_errors"), 1u);
}

TEST_F(RpcChannelTest, SyncAndAsyncHandlersDispatchUnmatchedFrames) {
  establish();
  // This channel serves the *accept* side: handlers, not calls.
  Channel chan(engine, server, cfg());
  std::vector<std::string> runs;
  int pings = 0;
  // Async handler: takes the message by value — it must stay alive across
  // the handler's own suspension even though the dispatch scope's decoded
  // temporary is long gone.
  chan.on<TaskRun>([&runs](TaskRun run) -> Task<void> {
    co_await sim::delay(sim::milliseconds(5));
    runs.push_back(run.task_id + "/" + run.argv.at(0));
  });
  chan.on<PingNote>([&pings](PingNote&&) { ++pings; });
  engine.spawn("serve", chan.serve());
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    post(*s, PingNote{});
    post(*s, TaskRun("j1", {"namd2.sh"}));
    post(*s, PingNote{});
    s->close();
    co_return;
  }(client));
  engine.run();
  EXPECT_EQ(runs, (std::vector<std::string>{"j1/namd2.sh"}));
  EXPECT_EQ(pings, 2);
}

// Pump mode: no serve() actor; each call() drains the socket itself. This
// is the PMI client's discipline — and the exact coroutine shape that
// tickled the GCC 12 aggregate-prvalue miscompile (a brace-init temporary
// argument living across co_await got a bitwise duplicate in the frame,
// whose destruction double-freed the string). The protocol structs carry
// user-provided constructors to stay non-aggregates; this test pins that.
// Run it under the sanitizer lane to keep the regression caught.
TEST_F(RpcChannelTest, PumpModeSequentialCallsWithPrvalueArguments) {
  establish();
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    for (;;) {
      auto m = co_await s->recv();
      if (!m) break;
      if (m->tag == "pmi.get") {
        s->send(PmiValue(m->args[0], "v-" + m->args[0]).encode());
      } else if (m->tag == "pmi.barrier_in") {
        s->send(PmiBarrierOut{}.encode());
      }
    }
  }(server));
  bool done = false;
  engine.spawn("ranks", [](Engine& e, SocketPtr s, bool& done) -> Task<void> {
    Channel chan(e, s);  // channel owned by this coroutine frame, no serve
    for (int i = 0; i < 4; ++i) {
      // The prvalue temporaries below are the regression shape: they are
      // materialized in this frame and must survive the suspension.
      auto r = co_await chan.call(PmiGet{"card." + std::to_string(i)});
      CO_ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value().value, "v-card." + std::to_string(i));
      auto b = co_await chan.call(PmiBarrier{i});
      CO_ASSERT_TRUE(b.ok());
    }
    s->close();
    done = true;
  }(engine, client, done));
  engine.run();
  EXPECT_TRUE(done);
}

TEST_F(RpcChannelTest, PumpModePeerCloseFailsCall) {
  establish();
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    auto m = co_await s->recv();
    CO_ASSERT_TRUE(m.has_value());
    s->send(PmiValue(m->args[0], "v").encode());
    (void)co_await s->recv();  // second request arrives...
    s->close();                // ...and dies unanswered
  }(server));
  bool done = false;
  engine.spawn("rank", [](Engine& e, SocketPtr s, bool& done) -> Task<void> {
    Channel chan(e, s);
    auto ok = co_await chan.call(PmiGet{"k1"});
    CO_ASSERT_TRUE(ok.ok());
    auto dead = co_await chan.call(PmiGet{"k2"});
    CO_ASSERT_FALSE(dead.ok());
    EXPECT_EQ(dead.error(), RpcError::kPeerClosed);
    EXPECT_TRUE(chan.peer_closed());
    done = true;
  }(engine, client, done));
  engine.run();
  EXPECT_TRUE(done);
}

TEST_F(RpcChannelTest, PumpModeDeadlineTimesOut) {
  establish();
  engine.spawn("peer", [](SocketPtr s) -> Task<void> {
    (void)co_await s->recv();
    co_await sim::delay(sim::seconds(30));  // never answer in time
    s->close();
  }(server));
  sim::Time issued = -1;
  sim::Time failed_at = -1;
  engine.spawn("rank", [](Engine& e, SocketPtr s, sim::Time& t0,
                          sim::Time& at) -> Task<void> {
    Channel chan(e, s);
    t0 = e.now();
    auto r = co_await chan.call(PmiGet{"k"}, sim::seconds(2));
    CO_ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), RpcError::kTimeout);
    at = e.now();
  }(engine, client, issued, failed_at));
  engine.run();
  EXPECT_EQ(failed_at, issued + sim::seconds(2));
}

TEST_F(RpcChannelTest, NotifyReachesPeerAndCounts) {
  establish();
  Channel chan(engine, client, cfg());
  std::vector<std::string> got;
  engine.spawn("peer", [](SocketPtr s, std::vector<std::string>& got)
                   -> Task<void> {
    for (;;) {
      auto m = co_await s->recv();
      if (!m) break;
      got.push_back(m->tag);
    }
  }(server, got));
  EXPECT_TRUE(chan.notify(ReadyNote{}).ok());
  EXPECT_TRUE(chan.notify(TaskDone("t", 0, TaskDone::Reason::kApp)).ok());
  engine.spawn("closer", [](SocketPtr s) -> Task<void> {
    co_await sim::delay(sim::seconds(1));
    s->close();
  }(client));
  engine.run();
  EXPECT_EQ(got, (std::vector<std::string>{"ready", "done"}));
  EXPECT_EQ(count("jets.rpc.notifies"), 2u);
  EXPECT_EQ(count("jets.rpc.calls"), 0u);
}

}  // namespace
}  // namespace jets::net::rpc

// --- 5. Service-level regression -------------------------------------------

namespace jets::core {
namespace {

using test::seq_job;

// A worker that disconnects between task claim and flush: the "run"
// message's reply can never arrive, and the failure must surface through
// the typed RpcError::kPeerClosed path — counted in jets.rpc.peer_closed
// and classified kWorkerLost — not through an untyped dropped reply.
TEST(RpcService, RunToDisconnectedWorkerSurfacesAsPeerClosed) {
  test::ServiceBed bed(os::Machine::breadboard(2), {{"sleep", 16'384}});
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(test::ServiceBed::nodes(2));

  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.add({.at = sim::seconds(2), .kind = FaultKind::kSocketClose, .node = 0});

  BatchReport report = bed.run_chaos(
      jets, &chaos, std::vector<JobSpec>(2, seq_job({"sleep", "10"})));

  EXPECT_EQ(report.completed, 2u);
  const JobRecord* retried = nullptr;
  for (const JobRecord& rec : report.records) {
    if (rec.attempts > 1) retried = &rec;
  }
  ASSERT_NE(retried, nullptr);
  ASSERT_GE(retried->history.size(), 2u);
  EXPECT_EQ(retried->history[0].reason, FailureReason::kWorkerLost);
  EXPECT_EQ(jets.service().failures_by_reason(FailureReason::kWorkerLost), 1u);
  // The typed layer saw the disconnect: the in-flight "done" reply was
  // drained (or a post-EOF send refused) with kPeerClosed.
  EXPECT_GE(jets.service().metrics().counter_value("jets.rpc.peer_closed"), 1u);
  EXPECT_GT(jets.service().metrics().counter_value("jets.rpc.calls"), 0u);
}

}  // namespace
}  // namespace jets::core
