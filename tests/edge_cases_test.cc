// Cross-module edge cases: Hydra misuse, fabric corner geometry, stats
// boundaries, standalone lifecycle, and Swift/Coasters unusual sequences.
#include <gtest/gtest.h>

#include "apps/namd.hh"
#include "apps/synthetic.hh"
#include "core/standalone.hh"
#include "net/fabric.hh"
#include "pmi/hydra.hh"
#include "swift/coasters.hh"
#include "swift/engine.hh"
#include "testbed.hh"

namespace jets {
namespace {

using sim::Task;
using test::TestBed;

// --- Hydra misuse -----------------------------------------------------------

TEST(HydraEdge, ProxyCommandsBeforeStartThrows) {
  TestBed bed(os::Machine::breadboard(2));
  pmi::MpiexecSpec spec;
  spec.user_argv = {"noop"};
  pmi::Mpiexec mpx(bed.machine, bed.apps, 0, spec);
  EXPECT_THROW((void)mpx.proxy_commands(), std::logic_error);
}

TEST(HydraEdge, SshLaunchNeedsEnoughHosts) {
  TestBed bed(os::Machine::breadboard(2));
  pmi::MpiexecSpec spec;
  spec.user_argv = {"noop"};
  spec.nprocs = 4;
  pmi::Mpiexec mpx(bed.machine, bed.apps, bed.machine.login_node(), spec);
  mpx.start();
  EXPECT_THROW(mpx.launch_via_ssh({0, 1}, sim::milliseconds(1)),
               std::invalid_argument);
}

TEST(HydraEdge, AbortIsIdempotentAndReleasesWaiters) {
  TestBed bed(os::Machine::breadboard(2));
  bed.apps.install("noop", [](os::Env&) -> Task<void> { co_return; });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"noop"};
  pmi::Mpiexec mpx(bed.machine, bed.apps, bed.machine.login_node(), spec);
  mpx.start();
  int rc = -1;
  bed.engine.spawn("w", [](pmi::Mpiexec& mpx, int& rc) -> Task<void> {
    rc = co_await mpx.wait();
  }(mpx, rc));
  bed.engine.call_at(sim::seconds(1), [&] {
    mpx.abort("test");
    mpx.abort("again");  // idempotent
  });
  bed.engine.run();
  EXPECT_EQ(rc, 1);
  EXPECT_TRUE(mpx.done());
}

TEST(HydraEdge, StartIsIdempotent) {
  TestBed bed(os::Machine::breadboard(2));
  pmi::MpiexecSpec spec;
  spec.user_argv = {"noop"};
  pmi::Mpiexec mpx(bed.machine, bed.apps, bed.machine.login_node(), spec);
  mpx.start();
  const auto addr = mpx.control_address();
  mpx.start();  // no rebind, no new port
  EXPECT_EQ(mpx.control_address().port, addr.port);
}

// --- Fabric corners -----------------------------------------------------------

TEST(FabricEdge, LoopbackIsCheapestPath) {
  net::TorusTcpFabric f(net::TorusShape{4, 4, 4});
  EXPECT_LT(f.transfer_time(3, 3, 4096), f.transfer_time(3, 2, 4096));
}

TEST(FabricEdge, ServiceNodeChargedFixedHops) {
  net::TorusShape s{4, 4, 4};
  // Any out-of-torus id (login node) is service_hops away from anywhere.
  EXPECT_EQ(s.hops(0, 64), s.service_hops);
  EXPECT_EQ(s.hops(63, 200), s.service_hops);
}

TEST(FabricEdge, ZeroByteTransferStillPaysLatency) {
  net::EthernetFabric f(sim::microseconds(60), 125e6);
  EXPECT_EQ(f.transfer_time(0, 1, 0), sim::microseconds(60));
}

// --- Stats boundaries -----------------------------------------------------------

TEST(StatsEdge, EmptySummaryIsSafe) {
  sim::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatsEdge, HistogramRejectsDegenerateRanges) {
  EXPECT_THROW(sim::Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(sim::Histogram(0.0, 10.0, 0), std::invalid_argument);
}

TEST(StatsEdge, UtilizationZeroCapacityOrWindow) {
  sim::UtilizationMeter m(0);
  EXPECT_DOUBLE_EQ(m.utilization(0, sim::seconds(10)), 0.0);
  sim::UtilizationMeter m2(4);
  EXPECT_DOUBLE_EQ(m2.utilization(sim::seconds(5), sim::seconds(5)), 0.0);
}

TEST(StatsEdge, DownsampleDegenerateCases) {
  sim::TimeSeries ts;
  EXPECT_EQ(ts.downsample(10).size(), 0u);
  ts.add(sim::seconds(1), 1.0);
  EXPECT_EQ(ts.downsample(0).size(), 0u);
  EXPECT_EQ(ts.downsample(10).size(), 1u);
}

// --- Stand-alone lifecycle -------------------------------------------------------

TEST(StandaloneEdge, RunBatchBeforeStartThrows) {
  TestBed bed(os::Machine::breadboard(2));
  core::StandaloneJets jets(bed.machine, bed.apps, core::StandaloneOptions{});
  bool threw = false;
  bed.engine.spawn("t", [](core::StandaloneJets& jets, bool& threw) -> Task<void> {
    try {
      (void)co_await jets.run_batch({});
    } catch (const std::logic_error&) {
      threw = true;
    }
  }(jets, threw));
  bed.engine.run();
  EXPECT_TRUE(threw);
}

TEST(StandaloneEdge, EmptyBatchCompletesInstantly) {
  TestBed bed(os::Machine::breadboard(2));
  core::StandaloneJets jets(bed.machine, bed.apps, core::StandaloneOptions{});
  jets.start({0, 1});
  core::BatchReport report;
  report.completed = 99;  // must be overwritten
  bed.engine.spawn("t", [](core::StandaloneJets& jets,
                           core::BatchReport& out) -> Task<void> {
    out = co_await jets.run_batch({});
  }(jets, report));
  bed.engine.run();
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.records.size(), 0u);
}

TEST(StandaloneEdge, WaitWorkersSubsetReturnsEarly) {
  TestBed bed(os::Machine::surveyor(8));
  core::StandaloneOptions opts;
  core::StandaloneJets jets(bed.machine, bed.apps, opts);
  jets.start({0, 1, 2, 3, 4, 5, 6, 7});
  sim::Time two_at = -1, all_at = -1;
  bed.engine.spawn("t", [](sim::Engine& e, core::StandaloneJets& jets,
                           sim::Time& two, sim::Time& all) -> Task<void> {
    co_await jets.wait_workers(2);
    two = e.now();
    co_await jets.wait_workers();
    all = e.now();
  }(bed.engine, jets, two_at, all_at));
  bed.engine.run();
  EXPECT_GE(two_at, 0);
  EXPECT_LE(two_at, all_at);
}

TEST(StandaloneEdge, UtilizationMatchesHandComputation) {
  // One 4-worker MPI job of exactly 10 s on 8 slots over a known window.
  core::BatchReport r;
  r.batch_started = 0;
  r.batch_finished = sim::seconds(20);
  r.total_slots = 8;
  core::JobRecord rec;
  rec.status = core::JobStatus::kDone;
  rec.spec.kind = core::JobKind::kMpi;
  rec.spec.nprocs = 4;
  rec.started_at = sim::seconds(2);
  rec.finished_at = sim::seconds(12);
  r.records.push_back(rec);
  // busy = 10 s x 4 workers = 40; capacity = 8 x 20 = 160.
  EXPECT_DOUBLE_EQ(r.utilization(), 0.25);
}

// --- Swift / Coasters unusual sequences -----------------------------------------

TEST(SwiftEdge, RunToCompletionTwiceIsIdempotent) {
  TestBed bed(os::Machine::eureka(2));
  apps::install_synthetic_apps(bed.apps);
  bed.machine.shared_fs().put("noop", 16'384);
  swift::CoasterService::Config cfg;
  swift::CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_on({0, 1});
  swift::SwiftEngine swiftEngine(bed.machine, coasters);
  auto out = swiftEngine.file("/gpfs/x");
  swiftEngine.app({.argv = {"noop"}, .inputs = {}, .outputs = {out}});
  int runs = 0;
  bed.engine.spawn("t", [](swift::SwiftEngine& s, int& runs) -> Task<void> {
    co_await s.run_to_completion();
    ++runs;
    co_await s.run_to_completion();  // already complete: immediate
    ++runs;
  }(swiftEngine, runs));
  bed.engine.run();
  EXPECT_EQ(runs, 2);
}

TEST(SwiftEdge, EmptyWorkflowCompletesImmediately) {
  TestBed bed(os::Machine::eureka(2));
  swift::CoasterService::Config cfg;
  swift::CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_on({0, 1});
  swift::SwiftEngine swiftEngine(bed.machine, coasters);
  bool done = false;
  bed.engine.spawn("t", [](swift::SwiftEngine& s, bool& done) -> Task<void> {
    co_await s.run_to_completion();
    done = true;
  }(swiftEngine, done));
  bed.engine.run();
  EXPECT_TRUE(done);
  // The clock only advances for the idle workers' registration traffic.
  EXPECT_LT(bed.engine.now(), sim::seconds(1));
}

TEST(NamdModelEdge, SampleIsDeterministicPerTagAndAboveFloor) {
  apps::NamdModel m;
  const double a = apps::sample_segment_seconds(m, "case-1");
  const double b = apps::sample_segment_seconds(m, "case-1");
  const double c = apps::sample_segment_seconds(m, "case-2");
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(a, 0.9 * m.median_seconds);  // floor holds
}

}  // namespace
}  // namespace jets
