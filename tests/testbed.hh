// Shared fixture pieces for PMI/MPI/JETS integration tests: a machine with
// an app registry, the Hydra proxy installed, and binaries present on the
// shared filesystem.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "os/machine.hh"
#include "os/program.hh"
#include "pmi/hydra.hh"
#include "sim/sim.hh"

namespace jets::test {

struct TestBed {
  sim::Engine engine;
  os::Machine machine;
  os::AppRegistry apps;

  explicit TestBed(os::MachineSpec spec) : machine(engine, std::move(spec)) {
    apps.install(pmi::kProxyBinary, pmi::Mpiexec::proxy_program(apps));
    machine.shared_fs().put(pmi::kProxyBinary, 2'000'000);
  }

  /// Installs an app and registers its binary (size in bytes) on GPFS.
  void install_app(const std::string& name, os::Program program,
                   std::uint64_t binary_bytes = 5'000'000) {
    apps.install(name, std::move(program));
    machine.shared_fs().put(name, binary_bytes);
  }

  /// Runs one proxy command line on `node` as a worker would.
  void run_proxy(os::NodeId node, const std::vector<std::string>& cmd) {
    os::ExecOptions opts;
    opts.binary = pmi::kProxyBinary;
    os::run_command(machine, apps, node, cmd, {}, std::move(opts));
  }

  /// Starts an mpiexec (manual launcher) and plays scheduler: proxy k runs
  /// on hosts[k]. Returns the mpiexec for wait()/inspection.
  std::unique_ptr<pmi::Mpiexec> launch_manual(
      pmi::MpiexecSpec spec, const std::vector<os::NodeId>& hosts) {
    auto mpx = std::make_unique<pmi::Mpiexec>(machine, apps,
                                              machine.login_node(), spec);
    mpx->start();
    auto cmds = mpx->proxy_commands();
    for (std::size_t k = 0; k < cmds.size(); ++k) {
      run_proxy(hosts.at(k), cmds[k]);
    }
    return mpx;
  }

  /// Blocks the test until `mpx` finishes; returns its exit status.
  int run_to_completion(pmi::Mpiexec& mpx) {
    int rc = -1;
    engine.spawn("test-waiter", [](pmi::Mpiexec& mpx, int& rc) -> sim::Task<void> {
      rc = co_await mpx.wait();
    }(mpx, rc));
    engine.run();
    return rc;
  }
};

}  // namespace jets::test
