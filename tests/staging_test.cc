// Input-staging suite (ctest label "staging"): the CAS blob store
// (os/cas.hh), the stage-in wire codec and replication planner
// (net/staging.hh), the service-side staging tables (core/staging.hh), and
// the end-to-end dedup path through Service::stage_job_inputs. The
// invariants:
//
//   * digests and wire headers round-trip; malformed input degrades to the
//     legacy broadcast semantics rather than throwing;
//   * a bounded CasStore never evicts pinned or recently-used entries
//     before older unpinned ones, and reports every eviction;
//   * a batch of jobs sharing stage_files pushes each distinct blob to a
//     node once — later jobs ride warm cache (the ≥10x ablation claim);
//   * a worker lost mid-stage neither strands the stage gate (the batch
//     still settles) nor poisons the residency view;
//   * staging machinery off or unused is byte-invisible: identical record
//     digests with the knobs on or off when no job names stage_files, and
//     two identical warm runs are digest- and counter-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.hh"
#include "core/staging.hh"
#include "core/standalone.hh"
#include "net/staging.hh"
#include "os/cas.hh"
#include "testutil.hh"

namespace jets::core {
namespace {

using test::mpi_job;
using test::seq_job;

// --- Digests and the wire codec ----------------------------------------------

TEST(CasDigest, DistinctIdentitiesDistinctDigests) {
  const auto a = os::cas_digest("input_a", 1'000);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, os::cas_digest("input_a", 1'000));
  EXPECT_NE(a, os::cas_digest("input_a", 1'001));
  EXPECT_NE(a, os::cas_digest("input_b", 1'000));
}

TEST(CasDigest, HexRoundTrip) {
  const auto d = os::cas_digest("some/path", 123'456);
  const std::string hex = os::cas_digest_hex(d);
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(os::cas_digest_from_hex(hex), d);
  // Malformed input parses to the never-valid digest 0.
  EXPECT_EQ(os::cas_digest_from_hex(""), 0u);
  EXPECT_EQ(os::cas_digest_from_hex("zz"), 0u);
  EXPECT_EQ(os::cas_digest_from_hex("123"), 0u);
  EXPECT_EQ(os::cas_digest_from_hex("0123456789abcdefff"), 0u);
}

TEST(StageCodec, HeaderRoundTripsAllSources) {
  for (auto src : {net::StageHeader::Source::kPush,
                   net::StageHeader::Source::kPeer,
                   net::StageHeader::Source::kWarm}) {
    net::StageHeader h;
    h.path = "ens_input_a";
    h.digest = os::cas_digest(h.path, 8'000'000);
    h.bytes = 8'000'000;
    h.source = src;
    h.peer = 37;
    const auto args = encode_stage_args(h);
    ASSERT_EQ(args.size(), 4u);
    EXPECT_EQ(args[0], h.path);
    const auto back = net::parse_stage_args(args);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->path, h.path);
    EXPECT_EQ(back->digest, h.digest);
    EXPECT_EQ(back->bytes, h.bytes);
    EXPECT_EQ(back->source, h.source);
    if (src == net::StageHeader::Source::kPeer) {
      EXPECT_EQ(back->peer, h.peer);
    }
  }
}

TEST(StageCodec, LegacyAndMalformedFallBack) {
  // The pre-CAS broadcast form: one arg, no header.
  EXPECT_FALSE(net::parse_stage_args({"some_file"}).has_value());
  EXPECT_FALSE(net::parse_stage_args({}).has_value());
  // Wrong prefixes / counts / numbers degrade to legacy, never throw.
  EXPECT_FALSE(
      net::parse_stage_args({"p", "x=0123456789abcdef", "b=5", "s=push"})
          .has_value());
  EXPECT_FALSE(net::parse_stage_args({"p", "d=0123456789abcdef", "b=five",
                                      "s=push"})
                   .has_value());
  EXPECT_FALSE(net::parse_stage_args({"p", "d=0123456789abcdef", "b=5",
                                      "s=teleport"})
                   .has_value());
  EXPECT_FALSE(net::parse_stage_args({"p", "d=0123456789abcdef", "b=5"})
                   .has_value());
}

// --- The replication planner -------------------------------------------------

TEST(StagePlan, PeerBeatsServicePushAcrossTheTorus) {
  // BG/P shape: the service sits service_hops away, peers one hop.
  net::TorusTcpFabric fabric;
  const net::NodeId service = fabric.shape().size();  // login node
  const std::vector<net::NodeId> holders = {4, 6};
  const auto plan = net::plan_transfer(fabric, service, 5, holders, 1'000'000);
  EXPECT_TRUE(plan.use_peer);
  EXPECT_EQ(plan.peer, 4u);  // equal-cost peers: lowest id wins
  EXPECT_EQ(plan.cost, fabric.transfer_time(4, 5, 1'000'000));
}

TEST(StagePlan, PeerWinsCostTies) {
  // Flat Ethernet: every pair costs the same, so peer-vs-push is a tie —
  // the peer still wins (spares the service's uplink).
  net::EthernetFabric fabric;
  const std::vector<net::NodeId> holders = {7};
  const auto plan = net::plan_transfer(fabric, 9, 5, holders, 4'096);
  EXPECT_TRUE(plan.use_peer);
  EXPECT_EQ(plan.peer, 7u);
}

TEST(StagePlan, NoHoldersMeansPush) {
  net::EthernetFabric fabric;
  const auto plan = net::plan_transfer(fabric, 9, 5, {}, 4'096);
  EXPECT_FALSE(plan.use_peer);
  EXPECT_EQ(plan.cost, fabric.transfer_time(9, 5, 4'096));
}

// --- CasStore: LRU bounds, pinning, stats ------------------------------------

TEST(CasStore, LruEvictionRespectsBoundsTouchesAndPins) {
  sim::Engine engine;
  os::LocalFs fs(engine, sim::microseconds(20), 1.5e9);
  os::CasStore cas(fs, /*capacity_bytes=*/3'000'000);
  constexpr std::uint64_t kMb = 1'000'000;

  engine.spawn("cas-driver", [](os::CasStore& cas) -> sim::Task<void> {
    const auto d = [](const char* p) { return os::cas_digest(p, kMb); };
    (void)co_await cas.put(d("a"), "a", kMb);
    (void)co_await cas.put(d("b"), "b", kMb);
    (void)co_await cas.put(d("c"), "c", kMb);
    EXPECT_EQ(cas.stored_bytes(), 3 * kMb);

    // Touch A so B is now least-recently-used; D's insertion evicts B.
    EXPECT_TRUE(cas.touch(d("a")));
    const auto evicted1 = co_await cas.put(d("d"), "d", kMb);
    EXPECT_EQ(evicted1, std::vector<os::CasDigest>{d("b")});
    EXPECT_TRUE(cas.contains(d("a")));
    EXPECT_FALSE(cas.contains(d("b")));
    EXPECT_LE(cas.stored_bytes(), cas.capacity());

    // Re-putting a resident digest is a pure hit: nothing evicted.
    const auto evicted2 = co_await cas.put(d("a"), "a", kMb);
    EXPECT_TRUE(evicted2.empty());

    // C is now the LRU entry but pinned, so E's insertion skips it and
    // takes D instead.
    cas.pin(d("c"));
    const auto evicted3 = co_await cas.put(d("e"), "e", kMb);
    EXPECT_EQ(evicted3, std::vector<os::CasDigest>{d("d")});
    EXPECT_TRUE(cas.contains(d("c")));
    cas.unpin(d("c"));

    EXPECT_FALSE(cas.touch(d("b")));  // miss counts, no side effects
    EXPECT_EQ(cas.entries(), 3u);     // a, c, e
    EXPECT_EQ(cas.stats().insertions, 5u);
    EXPECT_EQ(cas.stats().evictions, 2u);
    EXPECT_EQ(cas.stats().hits, 2u);    // touch(a) + put(a) hit
    EXPECT_EQ(cas.stats().misses, 1u);  // touch(b)
  }(cas));
  engine.run();
}

// --- The staging tables ------------------------------------------------------

TEST(StageTable, InternIsIdempotentPerDigest) {
  sim::Engine engine;
  StageTable t;
  const auto d1 = os::cas_digest("x", 10);
  const auto d2 = os::cas_digest("y", 10);
  const auto s1 = t.intern(d1, "x", engine);
  EXPECT_EQ(t.intern(d1, "x", engine), s1);
  const auto s2 = t.intern(d2, "y", engine);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(d1), s1);
  EXPECT_EQ(t.find(os::cas_digest("z", 10)), StageTable::kNone);
  EXPECT_EQ(t.digest(s2), d2);
  EXPECT_EQ(t.path(s2), "y");
  EXPECT_TRUE(t.gate(s1).is_open());  // nothing outstanding yet
}

TEST(ResidencyTable, PendingCommitRemoveAndHolders) {
  ResidencyTable r;
  const auto d = os::cas_digest("blob", 5'000);
  const std::vector<std::pair<StageDigest, std::uint64_t>> wanted = {
      {d, 5'000}};

  EXPECT_FALSE(r.contains(2, d));
  r.mark_pending(2, d);
  EXPECT_TRUE(r.pending(2, d));
  EXPECT_FALSE(r.contains(2, d));
  // In-flight data scores as resident — it will be there when the job runs.
  EXPECT_EQ(r.resident_bytes(2, wanted), 5'000u);
  EXPECT_EQ(r.resident_bytes(3, wanted), 0u);

  r.commit(2, d);
  EXPECT_TRUE(r.contains(2, d));
  EXPECT_FALSE(r.pending(2, d));
  r.commit(7, d);
  r.commit(5, d);
  const auto holders = r.holders(d);
  ASSERT_EQ(holders.size(), 3u);  // ascending: the planner's tie-break order
  EXPECT_EQ(holders[0], 2u);
  EXPECT_EQ(holders[1], 5u);
  EXPECT_EQ(holders[2], 7u);

  r.remove(5, d);
  EXPECT_FALSE(r.contains(5, d));
  EXPECT_EQ(r.holders(d).size(), 2u);
  r.remove(2, d);
  r.remove(7, d);
  EXPECT_TRUE(r.holders(d).empty());

  // Clearing a pending entry (worker lost mid-stage) never commits it.
  r.mark_pending(9, d);
  r.clear_pending(9, d);
  EXPECT_FALSE(r.pending(9, d));
  EXPECT_EQ(r.resident_bytes(9, wanted), 0u);
}

// --- End-to-end: dedup, peer copies, eviction reports, fault recovery --------

struct StagingBed : test::ServiceBed {
  explicit StagingBed(os::MachineSpec spec)
      : ServiceBed(std::move(spec),
                   {{"sleep", 16'384}, {"mpi_sleep", 1'500'000}}) {}
  explicit StagingBed(std::size_t nodes)
      : StagingBed(os::Machine::breadboard(nodes)) {}
};

std::uint64_t fold_records(const BatchReport& report) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& rec : report.records) {
    h = (h ^ record_digest(rec)) * 1099511628211ull;
  }
  return h;
}

TEST(StagingService, DedupAcrossJobsSharingInputs) {
  // Eight width-4 gangs, all naming the same two blobs: the first fan-out
  // pushes each blob to each node once; every later job is all warm hits.
  constexpr std::size_t kNodes = 4;
  StagingBed bed(kNodes);
  bed.machine.shared_fs().put("ens_a", 8'000'000);
  bed.machine.shared_fs().put("ens_b", 2'000'000);
  StandaloneJets jets(bed.machine, bed.apps, StagingBed::fast_options());
  StagingBed::enlist(jets, kNodes);

  JobSpec spec = mpi_job(4, {"mpi_sleep", "1"});
  spec.stage_files = {"ens_a", "ens_b"};
  std::vector<JobSpec> jobs(8, spec);
  const auto report = bed.run_chaos(jets, nullptr, std::move(jobs));

  EXPECT_EQ(report.completed, 8u);
  const Service& svc = jets.service();
  EXPECT_EQ(svc.stage_requests(), 8u * kNodes * 2);
  EXPECT_EQ(svc.stage_pushes(), kNodes * 2);  // cold fan-out only
  EXPECT_EQ(svc.stage_warm_hits(), 7u * kNodes * 2);
  EXPECT_EQ(svc.stage_bytes_pushed(), kNodes * 10'000'000u);
  EXPECT_EQ(svc.stage_bytes_saved(), 7u * kNodes * 10'000'000u);
  EXPECT_EQ(svc.stage_acks_lost(), 0u);
}

TEST(StagingService, PeerCopyServesNodesTheServiceAlreadyFed) {
  // Job 1 (width 2) warms nodes {0,1}; job 2 (width 4) needs the blob on
  // {2,3} too — those come from peers, not the service (flat Ethernet:
  // peer wins the cost tie).
  constexpr std::size_t kNodes = 4;
  StagingBed bed(kNodes);
  bed.machine.shared_fs().put("ens_a", 8'000'000);
  StandaloneJets jets(bed.machine, bed.apps, StagingBed::fast_options());
  StagingBed::enlist(jets, kNodes);

  JobSpec narrow = mpi_job(2, {"mpi_sleep", "1"});
  narrow.stage_files = {"ens_a"};
  JobSpec wide = mpi_job(4, {"mpi_sleep", "1"});
  wide.stage_files = {"ens_a"};

  auto r1 = bed.run_chaos(jets, nullptr, {narrow});
  EXPECT_EQ(r1.completed, 1u);
  auto r2 = bed.run_chaos(jets, nullptr, {wide});
  EXPECT_EQ(r2.completed, 1u);

  const Service& svc = jets.service();
  EXPECT_EQ(svc.stage_pushes(), 2u);       // job 1: nodes 0 and 1
  EXPECT_EQ(svc.stage_warm_hits(), 2u);    // job 2: nodes 0 and 1
  EXPECT_EQ(svc.stage_peer_copies(), 2u);  // job 2: nodes 2 and 3
  EXPECT_EQ(svc.stage_bytes_pushed(), 2u * 8'000'000);
}

TEST(StagingService, EvictionReportsKeepResidencyHonest) {
  // A 5 MB node cache and alternating 4 MB blobs: every stage-in evicts
  // the previous blob, the acks report it, and the service re-pushes
  // rather than trusting a stale residency entry.
  os::MachineSpec spec = os::Machine::breadboard(1);
  spec.node.cas_capacity = 5'000'000;
  StagingBed bed(std::move(spec));
  bed.machine.shared_fs().put("blob_a", 4'000'000);
  bed.machine.shared_fs().put("blob_b", 4'000'000);
  StandaloneJets jets(bed.machine, bed.apps, StagingBed::fast_options());
  StagingBed::enlist(jets, 1);

  JobSpec a = seq_job({"sleep", "1"});
  a.stage_files = {"blob_a"};
  JobSpec b = seq_job({"sleep", "1"});
  b.stage_files = {"blob_b"};
  const auto report = bed.run_chaos(jets, nullptr, {a, b, a});

  EXPECT_EQ(report.completed, 3u);
  const Service& svc = jets.service();
  EXPECT_EQ(svc.stage_pushes(), 3u);  // a, b, a again after b evicted it
  EXPECT_EQ(svc.stage_warm_hits(), 0u);
  EXPECT_EQ(svc.stage_evictions(), 2u);  // b evicts a, then a evicts b
}

TEST(StagingService, WorkerLostMidStageDoesNotStrandTheBatch) {
  // The S1 regression: a pilot dies while a push is on the wire. The
  // service must decrement the stage gate for the dead worker (not wait
  // forever), fail the attempt, and retry on the surviving pilot.
  constexpr std::size_t kNodes = 2;
  StagingBed bed(kNodes);
  bed.machine.shared_fs().put("big_input", 200'000'000);  // ~1.6 s push
  StandaloneJets jets(bed.machine, bed.apps, StagingBed::fast_options());
  StagingBed::enlist(jets, kNodes);

  JobSpec spec = seq_job({"sleep", "1"});
  spec.stage_files = {"big_input"};

  BatchReport report;
  bed.engine.spawn(
      "driver",
      [](StandaloneJets& jets, os::Machine& machine, JobSpec spec,
         BatchReport& out) -> sim::Task<void> {
        co_await jets.wait_workers();
        // Kill the assigned pilot once the stage-in is in flight.
        machine.engine().spawn(
            "killer", [](StandaloneJets& jets,
                         os::Machine& machine) -> sim::Task<void> {
              co_await sim::delay(sim::milliseconds(500));
              const JobRecord& rec = jets.service().record(1);
              EXPECT_EQ(rec.nodes.size(), 1u) << "job not dispatched yet";
              if (!rec.nodes.empty()) {
                machine.kill(jets.worker_pids()[rec.nodes[0]]);
              }
            }(jets, machine));
        std::vector<JobSpec> batch;
        batch.push_back(std::move(spec));
        out = co_await jets.run_batch(std::move(batch));
      }(jets, bed.machine, std::move(spec), report));
  bed.engine.run_until(sim::seconds(600));
  ASSERT_LT(bed.engine.now(), sim::seconds(600)) << "batch did not settle";

  EXPECT_EQ(report.completed, 1u);
  const Service& svc = jets.service();
  EXPECT_EQ(svc.stage_acks_lost(), 1u);
  EXPECT_EQ(svc.stage_pushes(), 2u);  // the retry re-stages from scratch
}

TEST(StagingService, DataAwareClaimPrefersTheWarmWindow) {
  // Two concurrent width-2 gangs warm different node pairs with different
  // blobs; a third job wanting the second blob must land on the second
  // pair even though the min-span rule alone would hand it the first.
  // (Data-aware picking refines the network-aware window scan, so that
  // knob must be on; FCFS claiming stays untouched either way.)
  constexpr std::size_t kNodes = 4;
  StagingBed bed(kNodes);
  bed.machine.shared_fs().put("in_x", 6'000'000);
  bed.machine.shared_fs().put("in_y", 6'000'000);
  StandaloneOptions options = StagingBed::fast_options();
  options.service.network_aware_grouping = true;
  StandaloneJets jets(bed.machine, bed.apps, options);
  StagingBed::enlist(jets, kNodes);

  JobSpec jx = mpi_job(2, {"mpi_sleep", "1"});
  jx.stage_files = {"in_x"};
  JobSpec jy = mpi_job(2, {"mpi_sleep", "1"});
  jy.stage_files = {"in_y"};
  auto r1 = bed.run_chaos(jets, nullptr, {jx, jy});
  ASSERT_EQ(r1.completed, 2u);
  ASSERT_EQ(r1.records[0].nodes, (std::vector<os::NodeId>{0, 1}));
  ASSERT_EQ(r1.records[1].nodes, (std::vector<os::NodeId>{2, 3}));

  const auto warm_before = jets.service().stage_warm_hits();
  auto r2 = bed.run_chaos(jets, nullptr, {jy});
  ASSERT_EQ(r2.completed, 1u);
  EXPECT_EQ(r2.records[0].nodes, (std::vector<os::NodeId>{2, 3}));
  EXPECT_EQ(jets.service().stage_warm_hits(), warm_before + 2);
}

// --- Determinism -------------------------------------------------------------

/// One mixed batch with no stage_files anywhere, run with the staging
/// machinery configured per `enabled`.
std::uint64_t cold_run_digest(bool enabled) {
  constexpr std::size_t kNodes = 4;
  StagingBed bed(kNodes);
  StandaloneOptions options = StagingBed::fast_options();
  options.service.staging_cache = enabled;
  options.service.data_aware_grouping = enabled;
  StandaloneJets jets(bed.machine, bed.apps, options);
  StagingBed::enlist(jets, kNodes);

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(seq_job({"sleep", "1"}));
  jobs.push_back(mpi_job(2, {"mpi_sleep", "1"}));
  jobs.push_back(mpi_job(4, {"mpi_sleep", "1"}));
  const auto report = bed.run_chaos(jets, nullptr, std::move(jobs));
  EXPECT_EQ(report.completed, 8u);
  EXPECT_EQ(jets.service().stage_requests(), 0u);
  return fold_records(report);
}

TEST(StagingDeterminism, ColdRunsAreByteIdenticalWithKnobsOnOrOff) {
  // The golden-manifest argument in miniature: jobs without stage_files
  // must execute identically whether the staging subsystem exists or not.
  EXPECT_EQ(cold_run_digest(true), cold_run_digest(false));
}

struct WarmRun {
  std::uint64_t digest = 0;
  std::size_t requests = 0;
  std::size_t pushes = 0;
  std::size_t warm_hits = 0;
  std::uint64_t bytes_pushed = 0;
};

WarmRun warm_run() {
  constexpr std::size_t kNodes = 4;
  StagingBed bed(kNodes);
  bed.machine.shared_fs().put("ens_a", 8'000'000);
  bed.machine.shared_fs().put("ens_b", 2'000'000);
  StandaloneJets jets(bed.machine, bed.apps, StagingBed::fast_options());
  StagingBed::enlist(jets, kNodes);
  JobSpec spec = mpi_job(4, {"mpi_sleep", "1"});
  spec.stage_files = {"ens_a", "ens_b"};
  std::vector<JobSpec> jobs(6, spec);
  const auto report = bed.run_chaos(jets, nullptr, std::move(jobs));
  EXPECT_EQ(report.completed, 6u);
  WarmRun out;
  out.digest = fold_records(report);
  out.requests = jets.service().stage_requests();
  out.pushes = jets.service().stage_pushes();
  out.warm_hits = jets.service().stage_warm_hits();
  out.bytes_pushed = jets.service().stage_bytes_pushed();
  return out;
}

TEST(StagingDeterminism, WarmRunsReplayIdentically) {
  const WarmRun a = warm_run();
  const WarmRun b = warm_run();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.pushes, b.pushes);
  EXPECT_EQ(a.warm_hits, b.warm_hits);
  EXPECT_EQ(a.bytes_pushed, b.bytes_pushed);
}

// --- Snapshot coverage -------------------------------------------------------

TEST(StagingSnapshot, CodecRoundTripsBlobsCachesAndStageFiles) {
  Snapshot s;
  s.taken_at = sim::seconds(7);
  s.addr = net::Address{2, 9'000};
  std::ostringstream rng_os;
  rng_os << std::mt19937_64(11);
  s.rng_state = rng_os.str();

  JobSnap j;
  j.rec.id = 1;
  j.rec.spec.argv = {"sleep", "1"};
  j.rec.spec.stage_files = {"ens_a", "ens_b"};
  s.jobs = {j};
  s.queue_order = {1};

  s.blobs = {{"ens_a", os::cas_digest("ens_a", 8'000'000), 8'000'000},
             {"ens_b", os::cas_digest("ens_b", 2'000'000), 2'000'000}};
  s.node_caches = {{0, {os::cas_digest("ens_a", 8'000'000)}},
                   {3,
                    {os::cas_digest("ens_a", 8'000'000),
                     os::cas_digest("ens_b", 2'000'000)}}};

  const auto bytes = s.serialize();
  const Snapshot back = Snapshot::parse(bytes);
  EXPECT_EQ(s, back);
  EXPECT_EQ(bytes, back.serialize());
}

TEST(StagingSnapshot, RestoreCarriesResidencyAcrossACrash) {
  // Warm a node cache, crash the service, restore from the checkpoint: the
  // next job over the same blob must be a warm hit, not a re-push.
  StagingBed bed(1);
  bed.machine.shared_fs().put("ens_a", 8'000'000);
  StandaloneOptions options = StagingBed::fast_options();
  options.worker.reconnect_backoff = sim::milliseconds(200);
  StandaloneJets jets(bed.machine, bed.apps, options);
  StagingBed::enlist(jets, 1);

  JobSpec spec = seq_job({"sleep", "1"});
  spec.stage_files = {"ens_a"};
  auto r1 = bed.run_chaos(jets, nullptr, {spec});
  ASSERT_EQ(r1.completed, 1u);
  ASSERT_EQ(jets.service().stage_pushes(), 1u);

  const Snapshot snap = jets.checkpoint();
  jets.crash_service();
  jets.restore_service(snap);

  BatchReport r2;
  bed.engine.spawn("driver",
                   [](StandaloneJets& jets, JobSpec spec,
                      BatchReport& out) -> sim::Task<void> {
                     // Give the pilot time to redial the restored service.
                     co_await sim::delay(sim::seconds(2));
                     std::vector<JobSpec> batch;
                     batch.push_back(std::move(spec));
                     out = co_await jets.run_batch(std::move(batch));
                   }(jets, spec, r2));
  bed.engine.run_until(sim::seconds(600));
  ASSERT_LT(bed.engine.now(), sim::seconds(600)) << "batch did not settle";
  EXPECT_EQ(r2.completed, 1u);
  EXPECT_EQ(jets.service().stage_pushes(), 1u);  // counters restored, no re-push
  EXPECT_EQ(jets.service().stage_warm_hits(), 1u);
}

}  // namespace
}  // namespace jets::core
