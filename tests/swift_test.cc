// Tests for the Swift dataflow engine, the CoasterService (incl. MPI jobs
// through the MPICH/Coasters path and block allocation), and the REM
// workflow builder.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/namd.hh"
#include "apps/rem.hh"
#include "apps/synthetic.hh"
#include "swift/coasters.hh"
#include "swift/dataflow.hh"
#include "swift/engine.hh"
#include "testbed.hh"

namespace jets::swift {
namespace {

using test::TestBed;

struct SwiftBed : TestBed {
  explicit SwiftBed(os::MachineSpec spec) : TestBed(std::move(spec)) {
    apps::install_synthetic_apps(apps);
    apps::NamdModel model;
    model.median_seconds = 2.0;  // keep simulated walltimes short in tests
    model.sigma = 0.1;
    apps::install_namd_app(apps, model);
    for (const char* n : {"noop", "sleep", "mpi_sleep", "mpi_sleep_write",
                          "namd_segment"}) {
      machine.shared_fs().put(n, 1'000'000);
    }
  }

  CoasterService::Config coasters_config(int workers_per_node = 1) {
    CoasterService::Config c;
    c.worker.task_overhead = sim::milliseconds(2);
    c.workers_per_node = workers_per_node;
    return c;
  }

  static std::vector<os::NodeId> nodes(std::size_t n) {
    std::vector<os::NodeId> v;
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<os::NodeId>(i));
    return v;
  }
};

TEST(DataVar, SingleAssignmentEnforced) {
  sim::Engine e;
  DataVar var(e, "/gpfs/x");
  EXPECT_FALSE(var.is_set());
  var.set();
  EXPECT_TRUE(var.is_set());
  EXPECT_THROW(var.set(), std::logic_error);
}

TEST(DataVar, WaitReleasesOnSet) {
  sim::Engine e;
  auto var = make_data(e, "/gpfs/x");
  sim::Time woke = -1;
  e.spawn("w", [](sim::Engine& e, DataPtr var, sim::Time& woke) -> sim::Task<void> {
    co_await var->wait();
    woke = e.now();
  }(e, var, woke));
  e.call_at(sim::seconds(4), [&] { var->set(); });
  e.run();
  EXPECT_EQ(woke, sim::seconds(4));
}

TEST(Coasters, RunsSequentialJob) {
  SwiftBed bed(os::Machine::eureka(4));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(4));
  core::JobRecord rec;
  bed.engine.spawn("t", [](CoasterService& c, core::JobRecord& rec) -> sim::Task<void> {
    core::JobSpec spec;
    spec.argv = {"sleep", "1"};
    rec = co_await c.run_job(std::move(spec));
  }(coasters, rec));
  bed.engine.run();
  EXPECT_EQ(rec.status, core::JobStatus::kDone);
  EXPECT_GE(rec.wall_seconds(), 1.0);
}

TEST(Coasters, RunsMpiJobThroughJetsPath) {
  SwiftBed bed(os::Machine::eureka(8));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(8));
  core::JobRecord rec;
  bed.engine.spawn("t", [](CoasterService& c, core::JobRecord& rec) -> sim::Task<void> {
    core::JobSpec spec;
    spec.kind = core::JobKind::kMpi;
    spec.nprocs = 4;
    spec.argv = {"mpi_sleep", "1"};
    rec = co_await c.run_job(std::move(spec));
  }(coasters, rec));
  bed.engine.run();
  EXPECT_EQ(rec.status, core::JobStatus::kDone);
}

TEST(Coasters, BlockAllocationProvisionsWorkers) {
  SwiftBed bed(os::Machine::eureka(32));
  os::BatchScheduler sched(bed.machine, {}, sim::Rng(3));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_with_blocks(sched, 16, sim::seconds(7200), /*spectrum=*/false);
  bed.engine.run_until(sim::seconds(600));
  EXPECT_EQ(coasters.worker_count(), 16u);
  EXPECT_EQ(coasters.service().connected_workers(), 16u);
}

TEST(Coasters, SpectrumBlocksArriveIncrementally) {
  // With the spectrum allocator, the first (small) block should connect
  // workers earlier than the single big block would.
  auto first_worker_time = [](bool spectrum) {
    SwiftBed bed(os::Machine::eureka(80));
    os::BatchScheduler::Policy policy;
    policy.boot_time = sim::seconds(60);
    policy.wait_per_node = sim::seconds(2);  // big requests queue long
    os::BatchScheduler sched(bed.machine, policy, sim::Rng(3));
    CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
    coasters.start_with_blocks(sched, 64, sim::seconds(7200), spectrum);
    sim::Time first = -1;
    // Poll once per second for the first connected worker.
    for (int t = 1; t <= 3600 && first < 0; ++t) {
      bed.engine.run_until(sim::seconds(t));
      if (coasters.service().connected_workers() > 0) first = bed.engine.now();
    }
    return sim::to_seconds(first);
  };
  const double single = first_worker_time(false);
  const double spectrum = first_worker_time(true);
  EXPECT_LT(spectrum, single);
}

TEST(SwiftEngine, StatementsFireOnDataAvailability) {
  SwiftBed bed(os::Machine::eureka(4));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(4));
  SwiftEngine swift(bed.machine, coasters);
  auto a = swift.file("/gpfs/a");
  auto b = swift.file("/gpfs/b");
  auto c = swift.file("/gpfs/c");
  // c depends on b depends on a: a chain, despite registration order.
  swift.app({.argv = {"sleep", "1"}, .inputs = {b}, .outputs = {c}});
  swift.app({.argv = {"sleep", "1"}, .inputs = {a}, .outputs = {b}});
  a->set();
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swift));
  bed.engine.run();
  EXPECT_EQ(swift.completed(), 2u);
  EXPECT_TRUE(c->is_set());
  // Serialized by dataflow: at least 2 s of app time.
  EXPECT_GE(bed.engine.now(), sim::seconds(2));
}

TEST(SwiftEngine, IndependentStatementsRunConcurrently) {
  SwiftBed bed(os::Machine::eureka(8));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(8));
  SwiftEngine swift(bed.machine, coasters);
  for (int i = 0; i < 8; ++i) {
    auto out = swift.file("/gpfs/out" + std::to_string(i));
    swift.app({.argv = {"sleep", "2"}, .inputs = {}, .outputs = {out}});
  }
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swift));
  bed.engine.run();
  EXPECT_EQ(swift.completed(), 8u);
  EXPECT_LT(sim::to_seconds(bed.engine.now()), 4.0);  // ran in parallel
}

TEST(SwiftEngine, LoginNodeAppsDoNotConsumeWorkers) {
  SwiftBed bed(os::Machine::eureka(2));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(2));
  SwiftEngine swift(bed.machine, coasters);
  auto tok = swift.file("/gpfs/token", 100);
  swift.app({.argv = {"exchange"},
             .inputs = {},
             .outputs = {tok},
             .run_on_login = true,
             .login_cost = sim::seconds(1)});
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swift));
  bed.engine.run();
  EXPECT_TRUE(tok->is_set());
  EXPECT_TRUE(bed.machine.shared_fs().exists("/gpfs/token"));
  // No Coasters job was involved.
  EXPECT_EQ(swift.job_records().size(), 0u);
}

TEST(SwiftEngine, FailedAppAbortsRun) {
  SwiftBed bed(os::Machine::eureka(2));
  bed.apps.install("boom", [](os::Env&) -> sim::Task<void> {
    throw std::runtime_error("app error");
  });
  CoasterService::Config cfg;
  cfg.service.retry.max_attempts = 1;
  cfg.worker.task_overhead = sim::milliseconds(2);
  CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_on(SwiftBed::nodes(2));
  SwiftEngine swift(bed.machine, coasters);
  auto out = swift.file("/gpfs/never");
  swift.app({.argv = {"boom"}, .inputs = {}, .outputs = {out}});
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swift));
  bed.engine.run();
  EXPECT_EQ(swift.failed(), 1u);
  EXPECT_FALSE(out->is_set());
}

TEST(RemWorkflow, SingleProcessDataflowCompletes) {
  SwiftBed bed(os::Machine::eureka(8));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(8));
  SwiftEngine swift(bed.machine, coasters);
  apps::RemWorkflowConfig cfg;
  cfg.replicas = 4;
  cfg.exchanges = 3;
  cfg.mpi = false;
  cfg.namd.median_seconds = 2.0;
  build_rem_workflow(swift, cfg);
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swift));
  bed.engine.run();
  EXPECT_EQ(swift.failed(), 0u);
  // 4x3 segments ran as Coasters jobs.
  EXPECT_EQ(swift.job_records().size(),
            static_cast<std::size_t>(apps::rem_segment_count(cfg)));
}

TEST(RemWorkflow, MpiSegmentsAndDependencyOrdering) {
  SwiftBed bed(os::Machine::eureka(8));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config(8));
  coasters.start_on(SwiftBed::nodes(8));
  SwiftEngine swift(bed.machine, coasters);
  apps::RemWorkflowConfig cfg;
  cfg.replicas = 4;
  cfg.exchanges = 2;
  cfg.mpi = true;
  cfg.nprocs = 16;
  cfg.ppn = 8;
  cfg.namd.median_seconds = 2.0;
  build_rem_workflow(swift, cfg);
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(swift));
  bed.engine.run();
  EXPECT_EQ(swift.failed(), 0u);
  // Column j=2 segments must start after their column-1 ancestors end:
  // with a 2 s median and exchange cost, the run spans > 4 s.
  EXPECT_GT(sim::to_seconds(bed.engine.now()), 4.0);
}

TEST(SwiftEngine, DotExportReflectsDataflowEdges) {
  SwiftBed bed(os::Machine::eureka(2));
  CoasterService coasters(bed.machine, bed.apps, bed.coasters_config());
  coasters.start_on(SwiftBed::nodes(2));
  SwiftEngine swift(bed.machine, coasters);
  auto a = swift.file("/gpfs/a");
  auto b = swift.file("/gpfs/b");
  swift.app({.argv = {"sleep", "1"}, .inputs = {a}, .outputs = {b}});
  const std::string dot = swift.to_dot();
  EXPECT_NE(dot.find("digraph workflow"), std::string::npos);
  EXPECT_NE(dot.find("\"/gpfs/a\" -> app0"), std::string::npos);
  EXPECT_NE(dot.find("app0 -> \"/gpfs/b\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"sleep\""), std::string::npos);
}

}  // namespace
}  // namespace jets::swift
