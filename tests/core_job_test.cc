// Unit tests for JETS job specs and the stand-alone input-file parser.
#include <gtest/gtest.h>

#include "core/job.hh"

namespace jets::core {
namespace {

TEST(ParseJobList, PaperExampleFormat) {
  // Verbatim from §5.1.
  const std::string input =
      "MPI: 4 namd2.sh input-1.pdb output-1.log\n"
      "MPI: 8 namd2.sh input-2.pdb output-2.log\n"
      "MPI: 6 namd2.sh input-3.pdb output-3.log\n";
  auto jobs = parse_job_list(input);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].kind, JobKind::kMpi);
  EXPECT_EQ(jobs[0].nprocs, 4);
  EXPECT_EQ(jobs[1].nprocs, 8);
  EXPECT_EQ(jobs[2].nprocs, 6);
  EXPECT_EQ(jobs[0].argv,
            (std::vector<std::string>{"namd2.sh", "input-1.pdb", "output-1.log"}));
}

TEST(ParseJobList, SequentialLines) {
  auto jobs = parse_job_list("my_tool --flag in.dat\nnoop\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].kind, JobKind::kSequential);
  EXPECT_EQ(jobs[0].nprocs, 1);
  EXPECT_EQ(jobs[0].workers_needed(), 1);
  EXPECT_EQ(jobs[1].argv, (std::vector<std::string>{"noop"}));
}

TEST(ParseJobList, CommentsAndBlanksSkipped) {
  auto jobs = parse_job_list("# a comment\n\nMPI: 2 app # trailing\n   \n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].argv, (std::vector<std::string>{"app"}));
}

TEST(ParseJobList, DefaultPpnAppliesToMpiOnly) {
  auto jobs = parse_job_list("MPI: 8 app\nseq_tool\n", /*default_ppn=*/4);
  EXPECT_EQ(jobs[0].ppn, 4);
  EXPECT_EQ(jobs[0].workers_needed(), 2);  // 8 ranks / 4 per worker
  EXPECT_EQ(jobs[1].ppn, 1);
}

TEST(ParseJobList, PerLinePpnOption) {
  auto jobs = parse_job_list("MPI[ppn=4]: 16 app x\nMPI: 8 app\n", 2);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].ppn, 4);           // per-line override
  EXPECT_EQ(jobs[0].nprocs, 16);
  EXPECT_EQ(jobs[0].workers_needed(), 4);
  EXPECT_EQ(jobs[1].ppn, 2);           // batch default
}

TEST(ParseJobList, BadPpnOptionsThrow) {
  EXPECT_THROW(parse_job_list("MPI[ppn=zero]: 4 app\n"), std::invalid_argument);
  EXPECT_THROW(parse_job_list("MPI[ppn=0]: 4 app\n"), std::invalid_argument);
  EXPECT_THROW(parse_job_list("MPI[nodes=2]: 4 app\n"), std::invalid_argument);
}

TEST(ParseJobList, MalformedLinesThrow) {
  EXPECT_THROW(parse_job_list("MPI: four app\n"), std::invalid_argument);
  EXPECT_THROW(parse_job_list("MPI: 4\n"), std::invalid_argument);
  EXPECT_THROW(parse_job_list("MPI: 0 app\n"), std::invalid_argument);
  EXPECT_THROW(parse_job_list("MPI: 2 app", 0), std::invalid_argument);
}

TEST(JobSpec, WorkersNeededRoundsUp) {
  JobSpec s;
  s.kind = JobKind::kMpi;
  s.nprocs = 7;
  s.ppn = 2;
  EXPECT_EQ(s.workers_needed(), 4);
  s.ppn = 7;
  EXPECT_EQ(s.workers_needed(), 1);
  s.kind = JobKind::kSequential;
  EXPECT_EQ(s.workers_needed(), 1);
}

TEST(JobSpec, ToLineRoundTrips) {
  auto jobs = parse_job_list("MPI: 4 namd2.sh a b\nplain x\n");
  EXPECT_EQ(to_line(jobs[0]), "MPI: 4 namd2.sh a b");
  EXPECT_EQ(to_line(jobs[1]), "plain x");
  auto again = parse_job_list(to_line(jobs[0]) + "\n" + to_line(jobs[1]));
  EXPECT_EQ(again[0].nprocs, 4);
  EXPECT_EQ(again[1].argv, jobs[1].argv);
}

TEST(JobRecord, WallSecondsGuardsUnset) {
  JobRecord r;
  EXPECT_DOUBLE_EQ(r.wall_seconds(), 0.0);
  r.started_at = sim::seconds(10);
  r.finished_at = sim::seconds(25);
  EXPECT_DOUBLE_EQ(r.wall_seconds(), 15.0);
}

}  // namespace
}  // namespace jets::core
