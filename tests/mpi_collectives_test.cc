// Parameterized tests for the MPI collectives (binomial bcast, reduce,
// allreduce) across job sizes, including non-power-of-two and rotated-root
// cases.
#include <gtest/gtest.h>

#include "mpi/comm.hh"
#include "testbed.hh"

namespace jets::mpi {
namespace {

using os::Env;
using sim::Task;
using test::TestBed;

std::vector<os::NodeId> hosts(int n) {
  std::vector<os::NodeId> h;
  for (int i = 0; i < n; ++i) h.push_back(static_cast<os::NodeId>(i));
  return h;
}

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, BcastReachesEveryRank) {
  const int n = GetParam();
  TestBed bed(os::Machine::breadboard(static_cast<std::size_t>(n)));
  std::vector<std::size_t> got;
  bed.install_app("bc", [&got](Env& env) -> Task<void> {
    auto comm = co_await Comm::init(env);
    const std::size_t mine = comm->rank() == 0 ? 123'456u : 0u;
    const std::size_t out = co_await comm->bcast(mine, /*root=*/0);
    got.push_back(out);
    co_await comm->finalize();
  });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"bc"};
  spec.nprocs = n;
  auto mpx = bed.launch_manual(spec, hosts(n));
  ASSERT_EQ(bed.run_to_completion(*mpx), 0);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
  for (std::size_t v : got) EXPECT_EQ(v, 123'456u);
}

TEST_P(CollectivesTest, BcastWithNonzeroRoot) {
  const int n = GetParam();
  // For n == 1 the "last rank" root degenerates to 0 — still a valid case.
  TestBed bed(os::Machine::breadboard(static_cast<std::size_t>(n)));
  const int root = n - 1;
  int correct = 0;
  bed.install_app("bc", [&correct, root](Env& env) -> Task<void> {
    auto comm = co_await Comm::init(env);
    const std::size_t mine = comm->rank() == root ? 777u : 0u;
    if (co_await comm->bcast(mine, root) == 777u) ++correct;
    co_await comm->finalize();
  });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"bc"};
  spec.nprocs = n;
  auto mpx = bed.launch_manual(spec, hosts(n));
  ASSERT_EQ(bed.run_to_completion(*mpx), 0);
  EXPECT_EQ(correct, n);
}

TEST(Collectives, InvalidRootThrows) {
  constexpr int n = 4;
  TestBed bed(os::Machine::breadboard(n));
  int caught = 0;
  bed.install_app("badroot", [&caught](Env& env) -> Task<void> {
    auto comm = co_await Comm::init(env);
    try {
      co_await comm->bcast(64, /*root=*/n);  // one past the last rank
    } catch (const std::invalid_argument&) {
      ++caught;
    }
    try {
      co_await comm->reduce_sum(1.0, /*root=*/-1);
    } catch (const std::invalid_argument&) {
      ++caught;
    }
    co_await comm->finalize();
  });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"badroot"};
  spec.nprocs = n;
  auto mpx = bed.launch_manual(spec, hosts(n));
  ASSERT_EQ(bed.run_to_completion(*mpx), 0);
  EXPECT_EQ(caught, 2 * n);  // every rank rejected both bad roots
}

TEST_P(CollectivesTest, ReduceSumsAllContributions) {
  const int n = GetParam();
  TestBed bed(os::Machine::breadboard(static_cast<std::size_t>(n)));
  double root_total = -1;
  bed.install_app("red", [&root_total](Env& env) -> Task<void> {
    auto comm = co_await Comm::init(env);
    const double mine = comm->rank() + 1;  // 1 + 2 + ... + n
    const double total = co_await comm->reduce_sum(mine, /*root=*/0);
    if (comm->rank() == 0) root_total = total;
    co_await comm->finalize();
  });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"red"};
  spec.nprocs = n;
  auto mpx = bed.launch_manual(spec, hosts(n));
  ASSERT_EQ(bed.run_to_completion(*mpx), 0);
  EXPECT_DOUBLE_EQ(root_total, n * (n + 1) / 2.0);
}

TEST_P(CollectivesTest, AllreduceGivesEveryoneTheSum) {
  const int n = GetParam();
  TestBed bed(os::Machine::breadboard(static_cast<std::size_t>(n)));
  std::vector<double> results;
  bed.install_app("ar", [&results](Env& env) -> Task<void> {
    auto comm = co_await Comm::init(env);
    const double total = co_await comm->allreduce_sum(comm->rank() + 1);
    results.push_back(total);
    co_await comm->finalize();
  });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"ar"};
  spec.nprocs = n;
  auto mpx = bed.launch_manual(spec, hosts(n));
  ASSERT_EQ(bed.run_to_completion(*mpx), 0);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(n));
  for (double v : results) EXPECT_DOUBLE_EQ(v, n * (n + 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 13, 16),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// Collectives compose: a tiny "global energy" computation like an MD code
// would do each step (allreduce of per-rank partials, then a bcast'd
// decision), repeated.
TEST(CollectivesComposition, RepeatedAllreducePlusBcast) {
  constexpr int n = 6;
  TestBed bed(os::Machine::breadboard(n));
  int converged = 0;
  bed.install_app("md_like", [&converged](Env& env) -> Task<void> {
    auto comm = co_await Comm::init(env);
    double local = 10.0 * (comm->rank() + 1);
    for (int step = 0; step < 5; ++step) {
      const double global = co_await comm->allreduce_sum(local);
      EXPECT_NEAR(global, 210.0 / (1 << step), 1e-9);
      local /= 2;  // everybody halves, so the sum halves per step
      co_await comm->barrier();
    }
    ++converged;
    co_await comm->finalize();
  });
  pmi::MpiexecSpec spec;
  spec.user_argv = {"md_like"};
  spec.nprocs = n;
  auto mpx = bed.launch_manual(spec, hosts(n));
  ASSERT_EQ(bed.run_to_completion(*mpx), 0);
  EXPECT_EQ(converged, n);
}

}  // namespace
}  // namespace jets::mpi
