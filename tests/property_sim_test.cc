// Property-based and parameterized tests for the simulation substrate:
// determinism, conservation laws, and invariants under randomized
// workloads and kills.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "os/fairshare.hh"
#include "sim/sim.hh"

namespace jets::sim {
namespace {

// --- Determinism ---------------------------------------------------------------

class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

struct RunTrace {
  Time end_time = 0;
  std::uint64_t events = 0;
  std::vector<int> order;
};

RunTrace random_workload(std::uint64_t seed) {
  RunTrace trace;
  Engine e;
  Rng rng(seed);
  Channel<int> ch(e);
  const int n = 20 + static_cast<int>(seed % 30);
  for (int i = 0; i < n; ++i) {
    const Duration d = rng.uniform_duration(0, seconds(3));
    e.spawn("p", [](Duration d, int i, Channel<int>& ch) -> Task<void> {
      co_await delay(d);
      ch.push(i);
    }(d, i, ch));
  }
  e.spawn("consumer", [](int n, Channel<int>& ch, RunTrace& t) -> Task<void> {
    for (int i = 0; i < n; ++i) {
      auto v = co_await ch.recv();
      if (v) t.order.push_back(*v);
    }
  }(n, ch, trace));
  trace.end_time = e.run();
  trace.events = e.events_executed();
  return trace;
}

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalTraces) {
  const RunTrace a = random_workload(GetParam());
  const RunTrace b = random_workload(GetParam());
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.order, b.order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// --- Channel conservation ---------------------------------------------------------

class ChannelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelPropertyTest, EveryPushIsReceivedExactlyOnceInOrder) {
  Engine e;
  Rng rng(GetParam());
  Channel<int> ch(e);
  const int pushes = 50 + static_cast<int>(GetParam() % 100);
  const int consumers = 1 + static_cast<int>(GetParam() % 5);
  // Single producer: FIFO order must be globally preserved across any
  // number of consumers (delivery order == push order).
  std::vector<Time> push_times;
  for (int i = 0; i < pushes; ++i) {
    push_times.push_back(rng.uniform_duration(0, seconds(10)));
  }
  std::sort(push_times.begin(), push_times.end());
  for (int i = 0; i < pushes; ++i) {
    e.call_at(push_times[static_cast<std::size_t>(i)], [&ch, i] { ch.push(i); });
  }
  std::vector<int> got;
  for (int c = 0; c < consumers; ++c) {
    e.spawn("consumer", [](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
      for (;;) {
        auto v = co_await ch.recv();
        if (!v) co_return;
        got.push_back(*v);
      }
    }(ch, got));
  }
  e.call_at(seconds(11), [&ch] { ch.close(); });
  e.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(pushes));
  for (int i = 0; i < pushes; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPropertyTest,
                         ::testing::Values(3u, 17u, 256u, 4096u));

// --- Semaphore invariants ------------------------------------------------------------

class SemaphorePropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SemaphorePropertyTest, PermitsConservedUnderRandomKills) {
  const auto [permits, actors] = GetParam();
  Engine e;
  Rng rng(permits * 31 + static_cast<std::uint64_t>(actors));
  Semaphore sem(e, permits);
  std::vector<ActorId> ids;
  int completed = 0;
  std::size_t peak_in_use = 0;
  for (int i = 0; i < actors; ++i) {
    ids.push_back(e.spawn(
        "w", [](Semaphore& sem, std::size_t permits, Duration hold,
                int& completed, std::size_t& peak) -> Task<void> {
          Permit p = co_await Permit::acquire(sem);
          // Concurrency observed through the semaphore itself, so kills
          // cannot skew the bookkeeping.
          peak = std::max(peak, permits - sem.available());
          co_await delay(hold);
          ++completed;
        }(sem, permits, rng.uniform_duration(milliseconds(100), seconds(1)),
          completed, peak_in_use)));
  }
  // Kill a third of them at random times (waiters and holders alike).
  for (int i = 0; i < actors / 3; ++i) {
    const auto victim =
        ids[static_cast<std::size_t>(rng.uniform_int(0, actors - 1))];
    e.call_at(rng.uniform_duration(milliseconds(1), seconds(1)),
              [&e, victim] { e.kill(victim); });
  }
  e.run();
  // Whatever happened, all permits must be back and nobody left waiting.
  EXPECT_EQ(sem.available(), permits);
  EXPECT_EQ(sem.waiting(), 0u);
  EXPECT_LE(peak_in_use, permits);
  EXPECT_GT(completed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SemaphorePropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 8),
                       ::testing::Values(6, 20, 50)));

// --- Fair-share conservation -------------------------------------------------------

class FairSharePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FairSharePropertyTest, WorkIsConservedAndNobodyFinishesEarly) {
  const auto [streams, seed] = GetParam();
  constexpr double kBw = 1e6;
  Engine e;
  Rng rng(seed);
  os::FairShareServer srv(e, kBw);
  std::uint64_t total_bytes = 0;
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < streams; ++i) {
    const auto bytes = static_cast<std::uint64_t>(
        rng.uniform_int(10'000, 2'000'000));
    sizes.push_back(bytes);
    total_bytes += bytes;
  }
  std::vector<double> finish(static_cast<std::size_t>(streams), -1);
  for (int i = 0; i < streams; ++i) {
    const Duration start = rng.uniform_duration(0, seconds(1));
    e.spawn("t", [](Engine& e, os::FairShareServer& srv, Duration start,
                    std::uint64_t bytes, double& fin) -> Task<void> {
      co_await delay(start);
      co_await srv.transfer(bytes);
      fin = to_seconds(e.now());
    }(e, srv, start, sizes[static_cast<std::size_t>(i)],
      finish[static_cast<std::size_t>(i)]));
  }
  const double end = to_seconds(e.run());
  // Conservation: the server cannot move total_bytes faster than kBw.
  EXPECT_GE(end + 1e-9, static_cast<double>(total_bytes) / kBw);
  // And no single transfer beats its own solo time.
  for (int i = 0; i < streams; ++i) {
    EXPECT_GE(finish[static_cast<std::size_t>(i)] + 1e-9,
              static_cast<double>(sizes[static_cast<std::size_t>(i)]) / kBw);
  }
  EXPECT_EQ(srv.active_transfers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairSharePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 25),
                       ::testing::Values<std::uint64_t>(5, 77)));

// --- Gauge integral vs brute force ----------------------------------------------------

class GaugePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GaugePropertyTest, AverageMatchesBruteForceIntegral) {
  Rng rng(GetParam());
  TimeWeightedGauge g;
  std::map<Time, double> steps;  // time -> value after change
  double value = 0;
  Time t = 0;
  steps[0] = 0;
  for (int i = 0; i < 40; ++i) {
    t += rng.uniform_duration(milliseconds(10), seconds(2));
    value = static_cast<double>(rng.uniform_int(0, 100));
    g.set(t, value);
    steps[t] = value;
  }
  const Time horizon = t + seconds(1);
  auto brute_average = [&](Time from, Time to) {
    double integral = 0;
    double v = 0;
    Time prev = 0;
    for (const auto& [at, nv] : steps) {
      const Time lo = std::max(prev, from);
      const Time hi = std::min(at, to);
      if (hi > lo) integral += v * to_seconds(hi - lo);
      prev = at;
      v = nv;
    }
    if (to > prev) integral += v * to_seconds(to - std::max(prev, from));
    return integral / to_seconds(to - from);
  };
  Rng qrng(GetParam() + 1);
  for (int q = 0; q < 20; ++q) {
    const Time a = qrng.uniform_duration(0, horizon - 1);
    const Time b = a + qrng.uniform_duration(1, horizon - a);
    EXPECT_NEAR(g.average(a, b), brute_average(a, b), 1e-6)
        << "window [" << a << ", " << b << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaugePropertyTest,
                         ::testing::Values(11u, 222u, 3333u));

}  // namespace
}  // namespace jets::sim
