// Randomized stress tests for the whole JETS stack: mixed workloads,
// random faults, and the paper's §3 requirement scenario. The invariants:
// every submitted job settles, bookkeeping balances, nothing deadlocks.
#include <gtest/gtest.h>

#include "apps/synthetic.hh"
#include "core/faults.hh"
#include "core/standalone.hh"
#include "testbed.hh"

namespace jets::core {
namespace {

using test::TestBed;

struct StressBed : TestBed {
  explicit StressBed(os::MachineSpec spec) : TestBed(std::move(spec)) {
    apps::install_synthetic_apps(apps);
    machine.shared_fs().put("sleep", 16'384);
    machine.shared_fs().put("mpi_sleep", 1'500'000);
  }
};

class JetsStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JetsStressTest, RandomMixedWorkloadAlwaysSettles) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  constexpr std::size_t kNodes = 24;
  StressBed bed(os::Machine::breadboard(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(3);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.max_attempts = 4;
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) alloc.push_back(static_cast<os::NodeId>(i));
  jets.start(alloc);

  std::vector<JobSpec> jobs;
  const int njobs = 40 + static_cast<int>(seed % 60);
  for (int i = 0; i < njobs; ++i) {
    JobSpec s;
    const double dur = rng.uniform(0.2, 5.0);
    if (rng.bernoulli(0.5)) {
      s.kind = JobKind::kMpi;
      s.nprocs = static_cast<int>(rng.uniform_int(2, 12));
      s.argv = {"mpi_sleep", std::to_string(dur)};
    } else {
      s.argv = {"sleep", std::to_string(dur)};
    }
    // A sprinkle of deadlines, some of them tight.
    if (rng.bernoulli(0.2)) {
      s.timeout = rng.uniform_duration(sim::seconds(1), sim::seconds(120));
    }
    jobs.push_back(std::move(s));
  }

  // Random worker kills during the run.
  std::vector<os::Machine::Pid> victims;
  for (const auto pid : jets.worker_pids()) {
    if (rng.bernoulli(0.25)) victims.push_back(pid);
  }
  FaultInjector chaos(bed.machine, victims, sim::seconds(7), rng.fork("chaos"));

  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, FaultInjector& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run_until(sim::seconds(3600));

  // Invariant 1: the batch settled well before the horizon (no deadlock).
  ASSERT_LT(bed.engine.now(), sim::seconds(3600));
  // Invariant 2: every job is accounted for, exactly once.
  EXPECT_EQ(report.completed + report.failed, report.records.size());
  EXPECT_EQ(report.records.size(), static_cast<std::size_t>(njobs));
  for (const auto& rec : report.records) {
    EXPECT_TRUE(rec.status == JobStatus::kDone || rec.status == JobStatus::kFailed);
    EXPECT_GE(rec.attempts, rec.status == JobStatus::kDone ? 1 : 0);
    EXPECT_LE(rec.attempts, 4);
    if (rec.status == JobStatus::kDone) {
      EXPECT_GE(rec.finished_at, rec.started_at);
    }
  }
  // Invariant 3: no busy workers or queued jobs left behind.
  EXPECT_EQ(jets.service().running_jobs(), 0u);
  EXPECT_EQ(jets.service().pending_jobs(), 0u);
  // Invariant 4: utilization is a sane fraction.
  EXPECT_GE(report.utilization(), 0.0);
  EXPECT_LE(report.utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JetsStressTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 13, 77,
                                                          1001, 424242));

// The paper's §3 target, scaled to a quarter rack: "64 concurrent
// simulations ... launch 6.4 MPI executions per second" — here 16
// concurrent 16-proc jobs (ppn 4 on 64 nodes) over 3 rounds, checking the
// sustained MPI-execution launch rate JETS achieves.
TEST(PaperRequirement, SustainsRemLaunchRateAtQuarterScale) {
  constexpr std::size_t kNodes = 64;
  StressBed bed(os::Machine::surveyor(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(450);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.mpi_job_overhead = sim::milliseconds(48);
  options.workers_per_node = 1;
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) alloc.push_back(static_cast<os::NodeId>(i));
  jets.start(alloc);

  // 3 rounds x 16 concurrent 16-proc segments of ~10 s (short REM
  // segments, "smaller individual runs produce finer granularity
  // exchanges, which are desirable").
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 48; ++i) {
    JobSpec s;
    s.kind = JobKind::kMpi;
    s.nprocs = 16;
    s.ppn = 4;
    s.argv = {"mpi_sleep", "10"};
    jobs.push_back(std::move(s));
  }
  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, std::move(jobs), report));
  bed.engine.run();

  ASSERT_EQ(report.completed, 48u);
  const double launches_per_second =
      static_cast<double>(report.completed) / report.makespan_seconds();
  // The §3 requirement is 6.4 MPI executions/s machine-wide; at 1/16 the
  // core count the proportional target is 0.4/s. JETS should beat it.
  EXPECT_GT(launches_per_second, 0.4);
  // And the implied individual-process launch rate (16 procs per exec).
  EXPECT_GT(launches_per_second * 16, 6.4);
}

TEST(PaperRequirement, TwelveHourWorkloadBookkeeping) {
  // A long-haul run: sustained short sequential tasks for 2 simulated
  // hours (scaled from the paper's 12 h REM campaign) — checks that
  // counters, gauges, and the dispatcher stay healthy over long horizons.
  constexpr std::size_t kNodes = 16;
  StressBed bed(os::Machine::breadboard(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(5);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep"};
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) alloc.push_back(static_cast<os::NodeId>(i));
  jets.start(alloc);
  // 16 workers x 2 h / ~5 s per task ~ 23k tasks.
  std::vector<JobSpec> jobs(23'000, JobSpec{});
  for (auto& j : jobs) j.argv = {"sleep", "5"};
  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, std::move(jobs), report));
  bed.engine.run();
  EXPECT_EQ(report.completed, 23'000u);
  EXPECT_GT(report.utilization(), 0.95);
  EXPECT_GT(report.makespan_seconds(), 3600.0);  // genuinely long-haul
}

}  // namespace
}  // namespace jets::core
