// Randomized stress tests for the whole JETS stack: mixed workloads,
// random faults, and the paper's §3 requirement scenario. The invariants:
// every submitted job settles, bookkeeping balances, nothing deadlocks.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/synthetic.hh"
#include "core/chaos.hh"
#include "core/faults.hh"
#include "core/standalone.hh"
#include "testbed.hh"

namespace jets::core {
namespace {

using test::TestBed;

struct StressBed : TestBed {
  explicit StressBed(os::MachineSpec spec) : TestBed(std::move(spec)) {
    apps::install_synthetic_apps(apps);
    machine.shared_fs().put("sleep", 16'384);
    machine.shared_fs().put("mpi_sleep", 1'500'000);
  }
};

class JetsStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JetsStressTest, RandomMixedWorkloadAlwaysSettles) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  constexpr std::size_t kNodes = 24;
  StressBed bed(os::Machine::breadboard(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(3);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.retry.max_attempts = 4;
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) alloc.push_back(static_cast<os::NodeId>(i));
  jets.start(alloc);

  std::vector<JobSpec> jobs;
  const int njobs = 40 + static_cast<int>(seed % 60);
  for (int i = 0; i < njobs; ++i) {
    JobSpec s;
    const double dur = rng.uniform(0.2, 5.0);
    if (rng.bernoulli(0.5)) {
      s.kind = JobKind::kMpi;
      s.nprocs = static_cast<int>(rng.uniform_int(2, 12));
      s.argv = {"mpi_sleep", std::to_string(dur)};
    } else {
      s.argv = {"sleep", std::to_string(dur)};
    }
    // A sprinkle of deadlines, some of them tight.
    if (rng.bernoulli(0.2)) {
      s.timeout = rng.uniform_duration(sim::seconds(1), sim::seconds(120));
    }
    jobs.push_back(std::move(s));
  }

  // Random worker kills during the run.
  std::vector<os::Machine::Pid> victims;
  for (const auto pid : jets.worker_pids()) {
    if (rng.bernoulli(0.25)) victims.push_back(pid);
  }
  FaultInjector chaos(bed.machine, victims, sim::seconds(7), rng.fork("chaos"));

  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, FaultInjector& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run_until(sim::seconds(3600));

  // Invariant 1: the batch settled well before the horizon (no deadlock).
  ASSERT_LT(bed.engine.now(), sim::seconds(3600));
  // Invariant 2: every job is accounted for, exactly once.
  EXPECT_EQ(report.completed + report.failed, report.records.size());
  EXPECT_EQ(report.records.size(), static_cast<std::size_t>(njobs));
  for (const auto& rec : report.records) {
    EXPECT_TRUE(job_settled(rec.status));
    EXPECT_GE(rec.attempts, rec.status == JobStatus::kDone ? 1 : 0);
    EXPECT_LE(rec.attempts, 4);
    if (rec.status == JobStatus::kDone) {
      EXPECT_GE(rec.finished_at, rec.started_at);
    }
    // Attempt history mirrors the attempt counter, and every attempt but a
    // trailing in-flight one carries a settled end time.
    EXPECT_EQ(rec.history.size(), static_cast<std::size_t>(rec.attempts));
    for (const auto& att : rec.history) {
      EXPECT_GE(att.started_at, 0);
      EXPECT_GE(att.ended_at, att.started_at);
    }
  }
  // Invariant 3: no busy workers or queued jobs left behind.
  EXPECT_EQ(jets.service().running_jobs(), 0u);
  EXPECT_EQ(jets.service().pending_jobs(), 0u);
  // Invariant 4: utilization is a sane fraction.
  EXPECT_GE(report.utilization(), 0.0);
  EXPECT_LE(report.utilization(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JetsStressTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 13, 77,
                                                          1001, 424242));

// --- Chaos property test -----------------------------------------------------
//
// Like the stress test above, but the faults come from a random schedule
// over *all* chaos fault classes (kill, socket close, stall, hang, slow
// node), with the heartbeat/liveness machinery turned on. Each run is
// rebuilt from scratch from its seed, so running it twice must reproduce
// the exact same end state — the determinism half of the property.

/// Everything observable about one chaos run, serialized for comparison.
struct ChaosRunOutcome {
  BatchReport report;
  std::size_t njobs = 0;
  int max_attempts = 0;
  bool settled = false;
  bool ready_pool_ok = false;
  std::size_t running = 0;
  std::size_t pending = 0;
  std::string fingerprint;
};

ChaosRunOutcome run_chaos_stress(std::uint64_t seed) {
  sim::Rng rng(seed);
  constexpr std::size_t kNodes = 16;
  StressBed bed(os::Machine::breadboard(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(3);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.retry.max_attempts = 8;
  options.worker.heartbeat_interval = sim::milliseconds(500);
  options.service.worker_liveness_timeout = sim::seconds(3);
  auto registry = std::make_shared<WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) {
    alloc.push_back(static_cast<os::NodeId>(i));
  }
  jets.start(alloc);

  // Random job mix: sequential and small-MPI, some with deadlines.
  std::vector<JobSpec> jobs;
  const int njobs = 30 + static_cast<int>(seed % 40);
  for (int i = 0; i < njobs; ++i) {
    JobSpec s;
    const double dur = rng.uniform(0.2, 4.0);
    if (rng.bernoulli(0.4)) {
      s.kind = JobKind::kMpi;
      s.nprocs = static_cast<int>(rng.uniform_int(2, 8));
      s.argv = {"mpi_sleep", std::to_string(dur)};
    } else {
      s.argv = {"sleep", std::to_string(dur)};
    }
    if (rng.bernoulli(0.15)) {
      s.timeout = rng.uniform_duration(sim::seconds(2), sim::seconds(120));
    }
    jobs.push_back(std::move(s));
  }

  // Random fault schedule across every fault class. Hangs and stalls are
  // time-bounded and slow nodes heal, so the pool never shrinks below
  // what kills take — the batch must always settle.
  ChaosEngine chaos(bed.machine, rng.fork("chaos"));
  chaos.set_pilots(jets.worker_pids());
  chaos.set_hang_registry(registry);
  const int nfaults = 4 + static_cast<int>(seed % 5);
  int kills = 0;
  for (int i = 0; i < nfaults; ++i) {
    Fault f;
    f.at = rng.uniform_duration(sim::seconds(2), sim::seconds(40));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        // At most a quarter of the pool dies outright.
        if (kills >= static_cast<int>(kNodes) / 4) continue;
        ++kills;
        f.kind = FaultKind::kKillPilot;
        break;
      case 1:
        f.kind = FaultKind::kSocketClose;
        break;
      case 2:
        f.kind = FaultKind::kSocketStall;
        f.duration = rng.uniform_duration(sim::seconds(2), sim::seconds(10));
        break;
      case 3:
        f.kind = FaultKind::kHangWorker;
        f.duration = rng.uniform_duration(sim::seconds(2), sim::seconds(10));
        break;
      default:
        f.kind = FaultKind::kSlowNode;
        f.exec_scale = rng.uniform(1.5, 4.0);
        f.compute_scale = rng.uniform(1.5, 4.0);
        f.duration = rng.uniform_duration(sim::seconds(5), sim::seconds(30));
        break;
    }
    chaos.add(f);
  }

  ChaosRunOutcome out;
  out.njobs = static_cast<std::size_t>(njobs);
  out.max_attempts = options.service.retry.max_attempts;
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& report) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    report = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), out.report));
  bed.engine.run_until(sim::seconds(3600));

  out.settled = bed.engine.now() < sim::seconds(3600);
  out.ready_pool_ok = jets.service().ready_pool_consistent();
  out.running = jets.service().running_jobs();
  out.pending = jets.service().pending_jobs();
  for (const auto& rec : out.report.records) {
    out.fingerprint += std::to_string(static_cast<int>(rec.status)) + ":" +
                       std::to_string(rec.attempts) + ":" +
                       std::to_string(rec.finished_at) + ";";
  }
  out.fingerprint += "|evicted=" +
                     std::to_string(jets.service().evicted_workers()) +
                     "|reenlisted=" +
                     std::to_string(jets.service().reenlisted_workers()) +
                     "|hb=" + std::to_string(jets.service().heartbeats_received());
  return out;
}

class ChaosPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosPropertyTest, RandomFaultScheduleSettlesAndReproduces) {
  const ChaosRunOutcome a = run_chaos_stress(GetParam());

  // Invariant 1: the batch settled before the horizon (no deadlock, no
  // job stranded on a disregarded worker).
  ASSERT_TRUE(a.settled);
  // Invariant 2: no job lost or double-counted.
  EXPECT_EQ(a.report.completed + a.report.failed, a.njobs);
  EXPECT_EQ(a.report.records.size(), a.njobs);
  for (const auto& rec : a.report.records) {
    EXPECT_TRUE(job_settled(rec.status));
    EXPECT_LE(rec.attempts, a.max_attempts);
  }
  // Invariant 3: service bookkeeping is clean after the dust settles.
  EXPECT_EQ(a.running, 0u);
  EXPECT_EQ(a.pending, 0u);
  EXPECT_TRUE(a.ready_pool_ok);

  // Invariant 4: a second run from the same seed lands in the exact same
  // end state (per-job status/attempts/finish times and fault counters).
  const ChaosRunOutcome b = run_chaos_stress(GetParam());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPropertyTest,
                         ::testing::Values<std::uint64_t>(5, 8, 21, 99, 7777));

// The paper's §3 target, scaled to a quarter rack: "64 concurrent
// simulations ... launch 6.4 MPI executions per second" — here 16
// concurrent 16-proc jobs (ppn 4 on 64 nodes) over 3 rounds, checking the
// sustained MPI-execution launch rate JETS achieves.
TEST(PaperRequirement, SustainsRemLaunchRateAtQuarterScale) {
  constexpr std::size_t kNodes = 64;
  StressBed bed(os::Machine::surveyor(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(450);
  options.worker.stage_files = {pmi::kProxyBinary, "mpi_sleep"};
  options.service.mpi_job_overhead = sim::milliseconds(48);
  options.workers_per_node = 1;
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) alloc.push_back(static_cast<os::NodeId>(i));
  jets.start(alloc);

  // 3 rounds x 16 concurrent 16-proc segments of ~10 s (short REM
  // segments, "smaller individual runs produce finer granularity
  // exchanges, which are desirable").
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 48; ++i) {
    JobSpec s;
    s.kind = JobKind::kMpi;
    s.nprocs = 16;
    s.ppn = 4;
    s.argv = {"mpi_sleep", "10"};
    jobs.push_back(std::move(s));
  }
  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, std::move(jobs), report));
  bed.engine.run();

  ASSERT_EQ(report.completed, 48u);
  const double launches_per_second =
      static_cast<double>(report.completed) / report.makespan_seconds();
  // The §3 requirement is 6.4 MPI executions/s machine-wide; at 1/16 the
  // core count the proportional target is 0.4/s. JETS should beat it.
  EXPECT_GT(launches_per_second, 0.4);
  // And the implied individual-process launch rate (16 procs per exec).
  EXPECT_GT(launches_per_second * 16, 6.4);
}

TEST(PaperRequirement, TwelveHourWorkloadBookkeeping) {
  // A long-haul run: sustained short sequential tasks for 2 simulated
  // hours (scaled from the paper's 12 h REM campaign) — checks that
  // counters, gauges, and the dispatcher stay healthy over long horizons.
  constexpr std::size_t kNodes = 16;
  StressBed bed(os::Machine::breadboard(kNodes));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(5);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep"};
  StandaloneJets jets(bed.machine, bed.apps, options);
  std::vector<os::NodeId> alloc;
  for (std::size_t i = 0; i < kNodes; ++i) alloc.push_back(static_cast<os::NodeId>(i));
  jets.start(alloc);
  // 16 workers x 2 h / ~5 s per task ~ 23k tasks.
  std::vector<JobSpec> jobs(23'000, JobSpec{});
  for (auto& j : jobs) j.argv = {"sleep", "5"};
  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, std::move(jobs), report));
  bed.engine.run();
  EXPECT_EQ(report.completed, 23'000u);
  EXPECT_GT(report.utilization(), 0.95);
  EXPECT_GT(report.makespan_seconds(), 3600.0);  // genuinely long-haul
}

}  // namespace
}  // namespace jets::core
