// Metrics-registry tests (src/obs/metrics.hh) and the counter-migration
// regression suite: every former ad-hoc core::Service counter must read
// identically through the service accessor and through its registry
// successor's stable dotted name, across the fig10 fault spectrum
// (kill/hang/stall/launch). The chaos layer's mirrored counters are held
// to the same standard.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/synthetic.hh"
#include "core/chaos.hh"
#include "core/standalone.hh"
#include "obs/metrics.hh"
#include "testbed.hh"

namespace jets {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

// --- Instrument mechanics ----------------------------------------------------

TEST(Metrics, CounterAndGaugeSemantics) {
  Counter c;
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value, 5u);

  Gauge g;
  g.set(7);
  g.add(-3);
  EXPECT_EQ(g.value, 4);
  g.add(-10);
  EXPECT_EQ(g.value, -6);  // gauges may go negative; counters never decrement
}

TEST(Metrics, HistogramBucketEdges) {
  Histogram h;
  h.observe(0);     // bucket 0: exact zeros
  h.observe(1);     // bucket 1: [1, 2)
  h.observe(2);     // bucket 2: [2, 4)
  h.observe(3);     // bucket 2
  h.observe(4);     // bucket 3: [4, 8)
  h.observe(-5);    // clamped to 0 -> bucket 0
  h.observe(1024);  // bucket 11: [1024, 2048)

  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4 + 0 + 1024);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 1024);
  EXPECT_DOUBLE_EQ(h.mean(), 1034.0 / 7.0);
}

TEST(Metrics, HistogramQuantileUpperBound) {
  Histogram empty;
  EXPECT_EQ(empty.quantile_upper_bound(0.5), 0);

  Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  // Crossing semantics: the upper edge of the bucket where the cumulative
  // count reaches q * count. Monotone in q, pow-2 resolution.
  EXPECT_EQ(h.quantile_upper_bound(0.25), 0);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 1);
  EXPECT_EQ(h.quantile_upper_bound(0.75), 3);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 3);
  EXPECT_EQ(h.quantile_upper_bound(-1.0), h.quantile_upper_bound(0.0));
  EXPECT_EQ(h.quantile_upper_bound(2.0), 3);
}

TEST(Metrics, RegistryGetOrCreateKeepsStableAddresses) {
  MetricsRegistry reg;
  Counter* c = &reg.counter("a.counter");
  Gauge* g = &reg.gauge("a.gauge");
  Histogram* h = &reg.histogram("a.histogram");
  // Interleave enough registrations to force rebalancing in a non-node
  // container; std::map storage must keep the originals pinned.
  for (int i = 0; i < 64; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(c, &reg.counter("a.counter"));
  EXPECT_EQ(g, &reg.gauge("a.gauge"));
  EXPECT_EQ(h, &reg.histogram("a.histogram"));
  EXPECT_EQ(reg.instrument_count(), 64u + 3u);
}

TEST(Metrics, ReadOnlyLookupsNeverCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("missing"), 0u);
  EXPECT_EQ(reg.gauge_value("missing"), 0);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_EQ(reg.instrument_count(), 0u);

  reg.counter("present").inc(3);
  EXPECT_EQ(reg.counter_value("present"), 3u);
  EXPECT_EQ(reg.instrument_count(), 1u);
}

TEST(Metrics, SnapshotIsSortedAndStable) {
  MetricsRegistry reg;
  reg.counter("z.last").inc(2);
  reg.counter("a.first").inc(1);
  reg.gauge("m.level").set(-4);
  reg.histogram("h.dist").observe(5);
  reg.histogram("h.dist").observe(9);

  EXPECT_EQ(reg.snapshot(),
            "counter a.first 1\n"
            "counter z.last 2\n"
            "gauge m.level -4\n"
            "histogram h.dist count=2 sum=14 min=5 max=9\n");
}

// --- Service counter migration across the fault spectrum ---------------------

struct MetricsBed : test::TestBed {
  explicit MetricsBed(os::MachineSpec spec) : TestBed(std::move(spec)) {
    apps::install_synthetic_apps(apps);
    machine.shared_fs().put("sleep", 16'384);
    machine.shared_fs().put("mpi_sleep", 1'500'000);
  }

  static std::vector<os::NodeId> nodes(std::size_t n) {
    std::vector<os::NodeId> v;
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<os::NodeId>(i));
    return v;
  }
};

core::JobSpec seq_job(std::vector<std::string> argv) {
  core::JobSpec s;
  s.argv = std::move(argv);
  return s;
}

core::JobSpec mpi_job(int nprocs, std::vector<std::string> argv) {
  core::JobSpec s;
  s.kind = core::JobKind::kMpi;
  s.nprocs = nprocs;
  s.argv = std::move(argv);
  return s;
}

struct SpectrumScenario {
  const char* label;
  core::FaultKind kind;
  sim::Duration fault_duration = 0;
  bool heartbeats = false;
  bool mpi = false;
};

/// Asserts that every former Service counter reads identically through the
/// accessor and through its "jets.service.*" registry successor.
void expect_accessors_match_registry(const core::Service& s,
                                     const MetricsRegistry& reg) {
  EXPECT_EQ(s.completed_jobs(), reg.counter_value("jets.service.jobs.completed"));
  EXPECT_EQ(s.failed_jobs(), reg.counter_value("jets.service.jobs.failed"));
  EXPECT_EQ(s.quarantined_jobs(),
            reg.counter_value("jets.service.jobs.quarantined"));
  EXPECT_EQ(s.evicted_workers(),
            reg.counter_value("jets.service.workers.evicted"));
  EXPECT_EQ(s.reenlisted_workers(),
            reg.counter_value("jets.service.workers.reenlisted"));
  EXPECT_EQ(s.heartbeats_received(),
            reg.counter_value("jets.service.workers.heartbeats"));
  EXPECT_EQ(s.blacklist_rejections(),
            reg.counter_value("jets.service.blacklist.rejections"));
  EXPECT_EQ(s.blacklist_paroles(),
            reg.counter_value("jets.service.blacklist.paroles"));
  EXPECT_EQ(s.retries_scheduled(),
            reg.counter_value("jets.service.retry.scheduled"));
  for (std::size_t i = 0; i < core::kFailureReasonCount; ++i) {
    const auto reason = static_cast<core::FailureReason>(i);
    EXPECT_EQ(s.failures_by_reason(reason),
              reg.counter_value(std::string("jets.service.failures.") +
                                core::to_string(reason)))
        << core::to_string(reason);
  }
  // Live gauges mirror the sampled accessors.
  EXPECT_EQ(static_cast<std::int64_t>(s.connected_workers()),
            reg.gauge_value("jets.service.workers.connected"));
  EXPECT_EQ(static_cast<std::int64_t>(s.running_jobs()),
            reg.gauge_value("jets.service.jobs.running"));
}

/// Scaled-down fig10: 8 workers, a job stream, four periodic faults of one
/// kind, everything reporting into one external registry.
void run_spectrum(const SpectrumScenario& sc) {
  SCOPED_TRACE(sc.label);
  constexpr std::size_t kNodes = 8;
  MetricsBed bed(os::Machine::breadboard(kNodes));
  MetricsRegistry registry;

  core::StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep", "mpi_sleep"};
  options.service.retry.max_attempts = 10;
  options.service.metrics = &registry;
  auto hang_registry = std::make_shared<core::WorkerHangRegistry>();
  options.worker.hang_registry = hang_registry;
  if (sc.heartbeats) {
    options.worker.heartbeat_interval = sim::milliseconds(500);
    options.service.worker_liveness_timeout = sim::seconds(2);
  }
  if (sc.mpi) {
    options.service.mpi_launch_timeout = sim::seconds(3);
    options.service.retry.infra_exempt = true;
  }
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(MetricsBed::nodes(kNodes));

  std::vector<core::JobSpec> jobs;
  for (int i = 0; i < 24; ++i) {
    jobs.push_back(sc.mpi ? mpi_job(2, {"mpi_sleep", "1"})
                          : seq_job({"sleep", "1"}));
  }

  core::ChaosEngine chaos(bed.machine, sim::Rng(2011).fork(sc.label));
  chaos.attach_metrics(registry);
  chaos.set_pilots(jets.worker_pids());
  chaos.set_hang_registry(hang_registry);
  chaos.add_periodic(sc.kind, sim::seconds(2), sim::seconds(2), 4,
                     sc.fault_duration);

  bed.engine.spawn("driver",
                   [](core::StandaloneJets& jets, core::ChaosEngine& chaos,
                      std::vector<core::JobSpec> jobs) -> sim::Task<void> {
                     co_await jets.wait_workers();
                     chaos.start();
                     co_await jets.run_batch(std::move(jobs));
                   }(jets, chaos, std::move(jobs)));
  bed.engine.run_until(sim::seconds(600));
  ASSERT_LT(bed.engine.now(), sim::seconds(600)) << "batch did not settle";

  const core::Service& service = jets.service();
  // The service reports into the externally supplied registry.
  EXPECT_EQ(&service.metrics(), &registry);
  expect_accessors_match_registry(service, registry);

  // The batch settled completely, and settlement is visible in the registry.
  EXPECT_EQ(registry.counter_value("jets.service.jobs.completed") +
                registry.counter_value("jets.service.jobs.failed") +
                registry.counter_value("jets.service.jobs.quarantined"),
            24u);

  // Chaos mirrors every ChaosCounters field under "jets.chaos.*".
  const core::ChaosCounters& c = chaos.counters();
  EXPECT_EQ(c.pilots_killed, registry.counter_value("jets.chaos.pilots_killed"));
  EXPECT_EQ(c.connections_reset,
            registry.counter_value("jets.chaos.connections_reset"));
  EXPECT_EQ(c.nodes_stalled, registry.counter_value("jets.chaos.nodes_stalled"));
  EXPECT_EQ(c.workers_hung, registry.counter_value("jets.chaos.workers_hung"));
  EXPECT_EQ(c.workers_released,
            registry.counter_value("jets.chaos.workers_released"));
  EXPECT_EQ(c.nodes_degraded,
            registry.counter_value("jets.chaos.nodes_degraded"));

  // Latency histograms: one queue-wait sample per first placement, one
  // wall-time sample per settled job.
  const Histogram* queue_wait =
      registry.find_histogram("jets.service.queue_wait_ns");
  const Histogram* job_wall =
      registry.find_histogram("jets.service.job_wall_ns");
  ASSERT_NE(queue_wait, nullptr);
  ASSERT_NE(job_wall, nullptr);
  EXPECT_GT(queue_wait->count(), 0u);
  EXPECT_EQ(job_wall->count(), 24u);
  EXPECT_GE(job_wall->max(), job_wall->min());

  // The scenario actually exercised its fault class.
  switch (sc.kind) {
    case core::FaultKind::kKillPilot:
      EXPECT_GT(registry.counter_value("jets.chaos.pilots_killed"), 0u);
      break;
    case core::FaultKind::kHangWorker:
      EXPECT_GT(registry.counter_value("jets.chaos.workers_hung"), 0u);
      break;
    case core::FaultKind::kSocketStall:
      EXPECT_GT(registry.counter_value("jets.chaos.nodes_stalled"), 0u);
      break;
    default:
      break;
  }
}

TEST(MetricsMigration, KillSpectrum) {
  run_spectrum({"kill", core::FaultKind::kKillPilot});
}

TEST(MetricsMigration, HangSpectrum) {
  run_spectrum({"hang", core::FaultKind::kHangWorker, sim::seconds(4),
                /*heartbeats=*/true});
}

TEST(MetricsMigration, StallSpectrum) {
  run_spectrum({"stall", core::FaultKind::kSocketStall, sim::seconds(4),
                /*heartbeats=*/true});
}

TEST(MetricsMigration, LaunchSpectrum) {
  run_spectrum({"launch", core::FaultKind::kHangWorker, sim::seconds(4),
                /*heartbeats=*/true, /*mpi=*/true});
}

// --- Private-registry fallback and snapshot determinism ----------------------

TEST(MetricsMigration, ServiceOwnsARegistryWhenNoneIsSupplied) {
  MetricsBed bed(os::Machine::breadboard(2));
  core::StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(MetricsBed::nodes(2));

  std::vector<core::JobSpec> jobs(4, seq_job({"sleep", "1"}));
  bed.engine.spawn("driver",
                   [](core::StandaloneJets& jets,
                      std::vector<core::JobSpec> jobs) -> sim::Task<void> {
                     co_await jets.wait_workers();
                     co_await jets.run_batch(std::move(jobs));
                   }(jets, std::move(jobs)));
  bed.engine.run();

  const core::Service& service = jets.service();
  expect_accessors_match_registry(service, service.metrics());
  EXPECT_EQ(service.completed_jobs(), 4u);
  // Every instrument is pre-registered at construction, so the snapshot
  // names the full schema even for counters that never fired.
  const std::string snap = service.metrics().snapshot();
  EXPECT_NE(snap.find("counter jets.service.jobs.completed 4\n"),
            std::string::npos);
  EXPECT_NE(snap.find("counter jets.service.failures.launch-timeout 0\n"),
            std::string::npos);
  EXPECT_NE(snap.find("gauge jets.service.workers.connected 2\n"),
            std::string::npos);
  EXPECT_NE(snap.find("histogram jets.service.job_wall_ns count=4"),
            std::string::npos);
}

std::string spectrum_snapshot(std::uint64_t seed) {
  MetricsBed bed(os::Machine::breadboard(4));
  MetricsRegistry registry;
  core::StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.service.retry.max_attempts = 10;
  options.service.metrics = &registry;
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(MetricsBed::nodes(4));

  std::vector<core::JobSpec> jobs(12, seq_job({"sleep", "1"}));
  core::ChaosEngine chaos(bed.machine, sim::Rng(seed));
  chaos.attach_metrics(registry);
  chaos.set_pilots(jets.worker_pids());
  chaos.add_periodic(core::FaultKind::kKillPilot, sim::seconds(2),
                     sim::seconds(2), 2);
  bed.engine.spawn("driver",
                   [](core::StandaloneJets& jets, core::ChaosEngine& chaos,
                      std::vector<core::JobSpec> jobs) -> sim::Task<void> {
                     co_await jets.wait_workers();
                     chaos.start();
                     co_await jets.run_batch(std::move(jobs));
                   }(jets, chaos, std::move(jobs)));
  bed.engine.run_until(sim::seconds(600));
  return registry.snapshot();
}

TEST(MetricsMigration, SameSeedRunsSnapshotIdentically) {
  const std::string a = spectrum_snapshot(5);
  const std::string b = spectrum_snapshot(5);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace jets
