// Fault-matrix tests for the chaos layer (core/chaos.hh): every fault
// class crossed with sequential and MPI workloads, plus targeted tests for
// the heartbeat/liveness machinery. The invariants throughout:
//
//   * every submitted job settles (completed + failed == submitted);
//   * the service's worker bookkeeping stays consistent;
//   * actor churn balances — a chaos run must not leak task actors;
//   * the whole run is deterministic: same seed, same end state.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/synthetic.hh"
#include "core/chaos.hh"
#include "core/standalone.hh"
#include "sim/trace.hh"
#include "testutil.hh"

namespace jets::core {
namespace {

using test::mpi_job;
using test::seq_job;

struct ChaosBed : test::ServiceBed {
  explicit ChaosBed(os::MachineSpec spec)
      : ServiceBed(std::move(spec),
                   {{"sleep", 16'384}, {"mpi_sleep", 1'500'000}}) {}
};

// --- The fault matrix --------------------------------------------------------

struct MatrixOutcome {
  BatchReport report;
  std::size_t submitted = 0;
  std::size_t evicted = 0;
  std::size_t reenlisted = 0;
  bool ready_pool_ok = false;
  std::size_t task_spawned = 0;
  std::size_t task_ended = 0;
  std::size_t live_at_end = 0;
};

/// Runs a 12-job batch on 8 workers while two faults of `kind` fire, and
/// collects settlement + churn accounting.
MatrixOutcome run_matrix(FaultKind kind, bool mpi, std::uint64_t seed = 7) {
  constexpr std::size_t kNodes = 8;
  ChaosBed bed(os::Machine::breadboard(kNodes));
  sim::TraceLog log;
  sim::ScopedObserver attach(bed.engine, log);

  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.worker.stage_files = {pmi::kProxyBinary, "sleep", "mpi_sleep"};
  options.service.retry.max_attempts = 10;
  // Liveness: pings twice a second while busy; 2 s of silence evicts.
  options.worker.heartbeat_interval = sim::milliseconds(500);
  options.service.worker_liveness_timeout = sim::seconds(2);
  auto registry = std::make_shared<WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(kNodes));

  // Enough work to keep every worker busy well past both fault times, so
  // faults always land on workers with jobs in flight.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(mpi ? mpi_job(2, {"mpi_sleep", "2"})
                       : seq_job({"sleep", "2"}));
  }

  ChaosEngine chaos(bed.machine, sim::Rng(seed));
  chaos.set_pilots(jets.worker_pids());
  chaos.set_hang_registry(registry);
  // Two faults mid-batch. Hangs are released after 4 s (the permanent-hang
  // case has its own targeted test below); stalls last 4 s; slow nodes
  // run 4x slow until the end.
  Fault f;
  f.kind = kind;
  if (kind == FaultKind::kHangWorker || kind == FaultKind::kSocketStall) {
    f.duration = sim::seconds(4);
  }
  if (kind == FaultKind::kSlowNode) {
    f.exec_scale = 4.0;
    f.compute_scale = 4.0;
  }
  f.at = sim::seconds(3);
  chaos.add(f);
  f.at = sim::seconds(6);
  chaos.add(f);

  MatrixOutcome out;
  out.submitted = jobs.size();
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& report) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    report = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), out.report));
  bed.engine.run_until(sim::seconds(600));

  EXPECT_LT(bed.engine.now(), sim::seconds(600))
      << "batch did not settle under fault kind " << static_cast<int>(kind);

  out.evicted = jets.service().evicted_workers();
  out.reenlisted = jets.service().reenlisted_workers();
  out.ready_pool_ok = jets.service().ready_pool_consistent();
  for (const auto& ev : log.matching("task:")) {
    if (ev.kind == sim::TraceEvent::Kind::kSpawn) {
      ++out.task_spawned;
    } else {
      ++out.task_ended;
    }
  }
  out.live_at_end = log.live_at_end();
  return out;
}

void expect_settled(const MatrixOutcome& out) {
  EXPECT_EQ(out.report.completed + out.report.failed, out.submitted);
  EXPECT_EQ(out.report.records.size(), out.submitted);
  for (const auto& rec : out.report.records) {
    EXPECT_TRUE(rec.status == JobStatus::kDone ||
                rec.status == JobStatus::kFailed);
  }
  EXPECT_TRUE(out.ready_pool_ok);
  // Every task actor the workers spawned also ended (faults in this matrix
  // are transient, so no task can be frozen forever)...
  EXPECT_EQ(out.task_spawned, out.task_ended);
  // ...and only long-lived infrastructure remains: 8 pilots + their
  // heartbeats and per-connection handlers plus the service actors.
  EXPECT_LT(out.live_at_end, 64u);
}

TEST(ChaosMatrix, KillPilotSequential) {
  MatrixOutcome out = run_matrix(FaultKind::kKillPilot, /*mpi=*/false);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);  // retries absorb kills
}

TEST(ChaosMatrix, KillPilotMpi) {
  MatrixOutcome out = run_matrix(FaultKind::kKillPilot, /*mpi=*/true);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
}

TEST(ChaosMatrix, SocketCloseSequential) {
  MatrixOutcome out = run_matrix(FaultKind::kSocketClose, /*mpi=*/false);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
}

TEST(ChaosMatrix, SocketCloseMpi) {
  MatrixOutcome out = run_matrix(FaultKind::kSocketClose, /*mpi=*/true);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
}

TEST(ChaosMatrix, SocketStallSequential) {
  MatrixOutcome out = run_matrix(FaultKind::kSocketStall, /*mpi=*/false);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
}

TEST(ChaosMatrix, SocketStallMpi) {
  MatrixOutcome out = run_matrix(FaultKind::kSocketStall, /*mpi=*/true);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
}

TEST(ChaosMatrix, HangWorkerSequential) {
  MatrixOutcome out = run_matrix(FaultKind::kHangWorker, /*mpi=*/false);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
  EXPECT_GE(out.evicted, 1u);  // the liveness deadline caught the hang
}

TEST(ChaosMatrix, HangWorkerMpi) {
  MatrixOutcome out = run_matrix(FaultKind::kHangWorker, /*mpi=*/true);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
  EXPECT_GE(out.evicted, 1u);
}

TEST(ChaosMatrix, SlowNodeSequential) {
  MatrixOutcome out = run_matrix(FaultKind::kSlowNode, /*mpi=*/false);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
  EXPECT_EQ(out.evicted, 0u);  // slow is not dead: no evictions
}

TEST(ChaosMatrix, SlowNodeMpi) {
  MatrixOutcome out = run_matrix(FaultKind::kSlowNode, /*mpi=*/true);
  expect_settled(out);
  EXPECT_EQ(out.report.completed, out.submitted);
  EXPECT_EQ(out.evicted, 0u);
}

// --- Targeted behaviour ------------------------------------------------------

// The acceptance scenario: a worker hangs mid-task with its socket open.
// Only the heartbeat/liveness machinery can notice; the service must evict
// it and the job must complete on another worker via retry.
TEST(ChaosTargeted, HungWorkerIsEvictedAndJobRetries) {
  ChaosBed bed(os::Machine::breadboard(3));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.worker.heartbeat_interval = sim::milliseconds(500);
  options.service.worker_liveness_timeout = sim::seconds(2);
  auto registry = std::make_shared<WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(3));

  std::vector<JobSpec> jobs(3, seq_job({"sleep", "10"}));

  // Hang the node-0 pilot 2 s in — mid-task — forever.
  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.set_hang_registry(registry);
  chaos.add({.at = sim::seconds(2),
             .kind = FaultKind::kHangWorker,
             .node = 0});

  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run();

  EXPECT_EQ(report.completed, 3u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(chaos.counters().workers_hung, 1u);
  EXPECT_EQ(jets.service().evicted_workers(), 1u);
  EXPECT_EQ(jets.service().reenlisted_workers(), 0u);  // hung forever
  EXPECT_GT(jets.service().heartbeats_received(), 0u);
  // Exactly one job needed a second attempt, and the batch outlived the
  // liveness deadline + retry (10 s first wave + 10 s retried task).
  int retried = 0;
  for (const auto& rec : report.records) {
    retried += rec.attempts > 1 ? 1 : 0;
  }
  EXPECT_EQ(retried, 1);
  EXPECT_GE(sim::to_seconds(bed.engine.now()), 20.0);
}

// A silent worker is not dropped on the floor forever: when its network
// stall drains, its "ready" re-enlists it into the pool.
TEST(ChaosTargeted, StalledWorkerIsEvictedThenReenlisted) {
  ChaosBed bed(os::Machine::breadboard(2));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.worker.heartbeat_interval = sim::milliseconds(500);
  options.service.worker_liveness_timeout = sim::seconds(2);
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(2));

  std::vector<JobSpec> jobs(4, seq_job({"sleep", "5"}));

  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.add({.at = sim::seconds(1),
             .kind = FaultKind::kSocketStall,
             .node = 0,
             .duration = sim::seconds(8)});

  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run();

  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(jets.service().evicted_workers(), 1u);
  EXPECT_EQ(jets.service().reenlisted_workers(), 1u);
  EXPECT_TRUE(jets.service().ready_pool_consistent());
}

// Socket RST: the service sees EOF immediately and retries the job, long
// before any liveness deadline would fire.
TEST(ChaosTargeted, SocketCloseRetriesInFlightJob) {
  ChaosBed bed(os::Machine::breadboard(2));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(2));

  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.add({.at = sim::seconds(2),
             .kind = FaultKind::kSocketClose,
             .node = 0});

  // One long job; FIFO places it on the first-registered worker (node 0).
  std::vector<JobSpec> jobs(2, seq_job({"sleep", "10"}));
  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run();

  EXPECT_EQ(report.completed, 2u);
  EXPECT_GE(chaos.counters().connections_reset, 1u);
  int total_attempts = 0;
  for (const auto& rec : report.records) total_attempts += rec.attempts;
  EXPECT_EQ(total_attempts, 3);  // exactly the node-0 job retried
}

// Slow-node faults stretch wall time without breaking anything: a 4x
// compute multiplier makes a 2 s task take >= 8 s.
TEST(ChaosTargeted, SlowNodeStretchesTaskWallTime) {
  ChaosBed bed(os::Machine::breadboard(1));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(1));

  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.add({.at = 0,
             .kind = FaultKind::kSlowNode,
             .node = 0,
             .exec_scale = 4.0,
             .compute_scale = 4.0});

  BatchReport report;
  std::vector<JobSpec> jobs(1, seq_job({"sleep", "2"}));
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run();

  ASSERT_EQ(report.completed, 1u);
  EXPECT_GE(report.records[0].wall_seconds(), 8.0);
}

// A worker hung while *idle* cannot ping (there is nothing to report) and
// will not answer a run message; the per-assignment liveness deadline must
// still catch it once work is placed on it.
TEST(ChaosTargeted, IdleHangCaughtAfterAssignment) {
  ChaosBed bed(os::Machine::breadboard(2));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.worker.heartbeat_interval = sim::milliseconds(500);
  options.service.worker_liveness_timeout = sim::seconds(2);
  auto registry = std::make_shared<WorkerHangRegistry>();
  options.worker.hang_registry = registry;
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(2));

  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.set_hang_registry(registry);
  chaos.add({.at = sim::seconds(1),
             .kind = FaultKind::kHangWorker,
             .node = 0});

  BatchReport report;
  std::vector<JobSpec> jobs(2, seq_job({"sleep", "3"}));
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    // Submit *after* the hang lands: the worker is frozen while idle and
    // still sitting in the ready pool.
    co_await sim::delay(sim::seconds(2));
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run();

  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(jets.service().evicted_workers(), 1u);
}

// Blacklisting: after `blacklist_after` evictions from one node, the
// service refuses that node's workers for good.
TEST(ChaosTargeted, BlacklistedNodeIsNotReenlisted) {
  ChaosBed bed(os::Machine::breadboard(2));
  StandaloneOptions options;
  options.worker.task_overhead = sim::milliseconds(2);
  options.worker.heartbeat_interval = sim::milliseconds(500);
  options.service.worker_liveness_timeout = sim::seconds(2);
  options.service.blacklist_after = 1;
  StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ChaosBed::nodes(2));

  std::vector<JobSpec> jobs(4, seq_job({"sleep", "5"}));

  ChaosEngine chaos(bed.machine, sim::Rng(1));
  chaos.add({.at = sim::seconds(1),
             .kind = FaultKind::kSocketStall,
             .node = 0,
             .duration = sim::seconds(8)});

  BatchReport report;
  bed.engine.spawn("driver", [](StandaloneJets& jets, ChaosEngine& chaos,
                                std::vector<JobSpec> jobs,
                                BatchReport& out) -> sim::Task<void> {
    co_await jets.wait_workers();
    chaos.start();
    out = co_await jets.run_batch(std::move(jobs));
  }(jets, chaos, std::move(jobs), report));
  bed.engine.run();

  EXPECT_EQ(report.completed, 4u);  // the node-1 worker does all the work
  EXPECT_EQ(jets.service().evicted_workers(), 1u);
  EXPECT_EQ(jets.service().reenlisted_workers(), 0u);
  EXPECT_GE(jets.service().blacklist_rejections(), 1u);
  EXPECT_EQ(jets.service().connected_workers(), 1u);
}

// --- Determinism -------------------------------------------------------------

/// End-state fingerprint of a chaos run: per-job (status, attempts,
/// finished_at) plus service counters — byte-equal across same-seed runs.
std::string chaos_fingerprint(std::uint64_t seed) {
  MatrixOutcome out = run_matrix(FaultKind::kHangWorker, /*mpi=*/true, seed);
  std::string fp;
  for (const auto& rec : out.report.records) {
    fp += std::to_string(static_cast<int>(rec.status)) + ":" +
          std::to_string(rec.attempts) + ":" +
          std::to_string(rec.finished_at) + ";";
  }
  fp += "|evicted=" + std::to_string(out.evicted);
  fp += "|reenlisted=" + std::to_string(out.reenlisted);
  return fp;
}

TEST(ChaosDeterminism, SameSeedSameEndState) {
  EXPECT_EQ(chaos_fingerprint(11), chaos_fingerprint(11));
  EXPECT_EQ(chaos_fingerprint(23), chaos_fingerprint(23));
}

}  // namespace
}  // namespace jets::core
