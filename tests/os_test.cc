// Unit tests for the OS substrate: fair-share I/O, filesystems, machines,
// process management, and the batch scheduler.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "os/fairshare.hh"
#include "os/filesystem.hh"
#include "os/machine.hh"
#include "sim/sim.hh"

namespace jets::os {
namespace {

using sim::Engine;
using sim::Task;
using sim::Time;

TEST(FairShare, SingleTransferRunsAtFullBandwidth) {
  Engine e;
  FairShareServer srv(e, 100.0);  // 100 B/s
  Time done = -1;
  e.spawn("t", [](Engine& e, FairShareServer& srv, Time& done) -> Task<void> {
    co_await srv.transfer(200);
    done = e.now();
  }(e, srv, done));
  e.run();
  EXPECT_NEAR(sim::to_seconds(done), 2.0, 1e-6);
}

TEST(FairShare, TwoConcurrentTransfersHalveBandwidth) {
  Engine e;
  FairShareServer srv(e, 100.0);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    e.spawn("t", [](Engine& e, FairShareServer& srv, std::vector<double>& done) -> Task<void> {
      co_await srv.transfer(100);
      done.push_back(sim::to_seconds(e.now()));
    }(e, srv, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  // Both share 100 B/s, so 100 B each takes 2 s.
  EXPECT_NEAR(done[0], 2.0, 1e-6);
  EXPECT_NEAR(done[1], 2.0, 1e-6);
}

TEST(FairShare, LateArrivalSlowsEarlierTransfer) {
  Engine e;
  FairShareServer srv(e, 100.0);
  double first_done = -1, second_done = -1;
  e.spawn("first", [](Engine& e, FairShareServer& srv, double& done) -> Task<void> {
    co_await srv.transfer(100);  // alone: 1 s; with company after 0.5 s: longer
    done = sim::to_seconds(e.now());
  }(e, srv, first_done));
  e.spawn("second", [](Engine& e, FairShareServer& srv, double& done) -> Task<void> {
    co_await sim::delay(sim::milliseconds(500));
    co_await srv.transfer(100);
    done = sim::to_seconds(e.now());
  }(e, srv, second_done));
  e.run();
  // First: 50 B alone (0.5 s), remaining 50 B at half rate (1.0 s) => 1.5 s.
  EXPECT_NEAR(first_done, 1.5, 1e-6);
  // Second: 50 B at half rate (1.0 s), remaining 50 B alone (0.5 s) => 2.0 s.
  EXPECT_NEAR(second_done, 2.0, 1e-6);
}

TEST(FairShare, ManyTransfersConserveWork) {
  // N equal transfers admitted together must all complete at N*size/B.
  Engine e;
  FairShareServer srv(e, 1e6);
  int finished = 0;
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) {
    e.spawn("t", [](FairShareServer& srv, int& finished) -> Task<void> {
      co_await srv.transfer(1'000'000);
      ++finished;
    }(srv, finished));
  }
  Time end = e.run();
  EXPECT_EQ(finished, kN);
  EXPECT_NEAR(sim::to_seconds(end), kN * 1.0, 1e-3);
}

TEST(LocalFs, ReadChargesLatencyPlusBandwidth) {
  Engine e;
  LocalFs fs(e, sim::milliseconds(1), 1e6);
  fs.put("/bin/app", 1'000'000);
  Time done = -1;
  e.spawn("t", [](Engine& e, LocalFs& fs, Time& done) -> Task<void> {
    co_await fs.read("/bin/app");
    done = e.now();
  }(e, fs, done));
  e.run();
  EXPECT_EQ(done, sim::milliseconds(1) + sim::seconds(1));
}

TEST(LocalFs, MissingFileThrows) {
  Engine e;
  LocalFs fs(e, 0, 1e6);
  bool threw = false;
  e.spawn("t", [](LocalFs& fs, bool& threw) -> Task<void> {
    try {
      co_await fs.read("/no/such");
    } catch (const FileError&) {
      threw = true;
    }
  }(fs, threw));
  e.run();
  EXPECT_TRUE(threw);
}

TEST(SharedFs, ConcurrentReadersContend) {
  Engine e;
  SharedFs fs(e, 0, 1e6);
  fs.put("/data", 1'000'000);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    e.spawn("r", [](Engine& e, SharedFs& fs, std::vector<double>& done) -> Task<void> {
      co_await fs.read("/data");
      done.push_back(sim::to_seconds(e.now()));
    }(e, fs, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 4u);
  for (double d : done) EXPECT_NEAR(d, 4.0, 1e-3);  // 4 readers share 1 MB/s
}

TEST(SharedFs, WriteCreatesFile) {
  Engine e;
  SharedFs fs(e, 0, 1e9);
  e.spawn("w", [](SharedFs& fs) -> Task<void> {
    co_await fs.write("/out", 123);
  }(fs));
  e.run();
  EXPECT_TRUE(fs.exists("/out"));
  EXPECT_EQ(fs.size("/out"), std::optional<std::uint64_t>(123));
}

class MachineTest : public ::testing::Test {
 protected:
  Engine engine;
  Machine machine{engine, Machine::breadboard(4)};
};

TEST_F(MachineTest, PresetShapes) {
  EXPECT_EQ(machine.compute_node_count(), 4u);
  EXPECT_EQ(machine.login_node(), 4u);
  EXPECT_EQ(machine.node(0).spec().cores, 8u);

  Engine e2;
  Machine bgp(e2, Machine::surveyor(1024));
  EXPECT_EQ(bgp.node(0).spec().cores, 4u);
  EXPECT_GT(bgp.node(0).spec().fork_exec, machine.node(0).spec().fork_exec);
}

TEST_F(MachineTest, ExecChargesForkCost) {
  Time body_started = -1;
  machine.exec(0, "p", [](Engine& e, Time& started) -> Task<void> {
    started = e.now();
    co_return;
  }(engine, body_started));
  engine.run();
  EXPECT_EQ(body_started, machine.node(0).spec().fork_exec);
}

TEST_F(MachineTest, BinaryLoadsFromSharedFsWhenNotStaged) {
  machine.shared_fs().put("/gpfs/app", 100'000'000);  // big: noticeable time
  Time started_shared = -1;
  ExecOptions opts;
  opts.binary = "/gpfs/app";
  machine.exec(0, "p", [](Engine& e, Time& s) -> Task<void> {
    s = e.now();
    co_return;
  }(engine, started_shared), opts);
  engine.run();

  // Now stage to node-local storage: startup should be much faster.
  Engine e2;
  Machine m2(e2, Machine::breadboard(4));
  m2.shared_fs().put("/gpfs/app", 100'000'000);
  m2.node(0).local_fs().put("/gpfs/app", 100'000'000);
  Time started_local = -1;
  m2.exec(0, "p", [](Engine& e, Time& s) -> Task<void> {
    s = e.now();
    co_return;
  }(e2, started_local), opts);
  e2.run();

  EXPECT_LT(started_local, started_shared);
}

TEST_F(MachineTest, WaitBlocksUntilProcessExit) {
  auto pid = machine.exec(1, "sleeper", []() -> Task<void> {
    co_await sim::delay(sim::seconds(5));
  }());
  Time waited = -1;
  engine.spawn("waiter", [](Engine& e, Machine& m, Machine::Pid pid,
                            Time& waited) -> Task<void> {
    co_await m.wait(pid);
    waited = e.now();
  }(engine, machine, pid, waited));
  engine.run();
  EXPECT_GE(waited, sim::seconds(5));
  EXPECT_FALSE(machine.alive(pid));
}

TEST_F(MachineTest, KillTerminatesProcess) {
  bool completed = false;
  auto pid = machine.exec(1, "victim", [](bool& completed) -> Task<void> {
    co_await sim::delay(sim::seconds(100));
    completed = true;
  }(completed));
  engine.call_at(sim::seconds(1), [&] { machine.kill(pid); });
  engine.run();
  EXPECT_FALSE(completed);
  EXPECT_FALSE(machine.alive(pid));
  EXPECT_EQ(machine.process_count(), 0u);
}

TEST(BatchSchedulerTest, AllocationLifecycle) {
  Engine engine;
  Machine machine(engine, Machine::breadboard(16));
  BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(60);
  BatchScheduler sched(machine, policy, sim::Rng(1));
  std::vector<net::NodeId> got;
  engine.spawn("user", [](BatchScheduler& s, std::vector<net::NodeId>& got) -> Task<void> {
    auto alloc = co_await s.submit(8, sim::seconds(3600));
    got = alloc.nodes;
    s.release(alloc);
  }(sched, got));
  engine.run();
  EXPECT_EQ(got.size(), 8u);
  EXPECT_GE(engine.now(), sim::seconds(60));  // at least the boot time
  EXPECT_EQ(sched.free_nodes(), 16u);
}

TEST(BatchSchedulerTest, EnforcesSiteMinimum) {
  Engine engine;
  Machine machine(engine, Machine::breadboard(16));
  BatchScheduler::Policy policy;
  policy.min_nodes = 8;  // like Intrepid's 512-node minimum (§3)
  BatchScheduler sched(machine, policy, sim::Rng(1));
  bool threw = false;
  engine.spawn("user", [](BatchScheduler& s, bool& threw) -> Task<void> {
    try {
      (void)co_await s.submit(4, sim::seconds(60));
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  }(sched, threw));
  engine.run();
  EXPECT_TRUE(threw);
}

TEST(BatchSchedulerTest, WalltimeKillsPilotsAndReleasesNodes) {
  Engine engine;
  Machine machine(engine, Machine::breadboard(8));
  BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(10);
  policy.base_queue_wait = 0;
  policy.wait_per_node = 0;
  BatchScheduler sched(machine, policy, sim::Rng(4));
  bool pilot_survived_past_walltime = false;
  engine.spawn("user", [](Engine& engine, Machine& machine, BatchScheduler& s,
                          bool& survived) -> Task<void> {
    auto alloc = co_await s.submit(4, sim::seconds(60));
    std::vector<Machine::Pid> pilots;
    for (net::NodeId n : alloc.nodes) {
      pilots.push_back(machine.exec(n, "pilot", [](bool* flag) -> Task<void> {
        co_await sim::delay(sim::seconds(10'000));
        *flag = true;  // would only run if the walltime failed to kill us
      }(&survived)));
    }
    s.enforce_walltime(alloc, pilots);
  }(engine, machine, sched, pilot_survived_past_walltime));
  engine.run();
  EXPECT_FALSE(pilot_survived_past_walltime);
  EXPECT_EQ(sched.free_nodes(), 8u);  // nodes returned at expiry
  EXPECT_EQ(machine.process_count(), 0u);
  // Walltime fired at start + 60 s, not at the pilots' natural end.
  EXPECT_LT(engine.now(), sim::seconds(120));
}

TEST(BatchSchedulerTest, DisjointAllocations) {
  Engine engine;
  Machine machine(engine, Machine::breadboard(8));
  BatchScheduler sched(machine, {}, sim::Rng(2));
  std::vector<net::NodeId> a, b;
  engine.spawn("u1", [](BatchScheduler& s, std::vector<net::NodeId>& out) -> Task<void> {
    auto alloc = co_await s.submit(4, sim::seconds(600));
    out = alloc.nodes;
  }(sched, a));
  engine.spawn("u2", [](BatchScheduler& s, std::vector<net::NodeId>& out) -> Task<void> {
    auto alloc = co_await s.submit(4, sim::seconds(600));
    out = alloc.nodes;
  }(sched, b));
  engine.run();
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (auto n1 : a)
    for (auto n2 : b) EXPECT_NE(n1, n2);
}

}  // namespace
}  // namespace jets::os
