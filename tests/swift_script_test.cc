// Tests for the Swift-like script language: lexing/parsing errors, dataflow
// semantics, loops, conditionals (including Swift's %% operator from
// Fig 17), and end-to-end execution through Coasters/JETS.
#include <gtest/gtest.h>

#include "apps/synthetic.hh"
#include "swift/coasters.hh"
#include "swift/engine.hh"
#include "swift/script.hh"
#include "testbed.hh"

namespace jets::swift {
namespace {

struct ScriptBed : test::TestBed {
  CoasterService coasters;
  SwiftEngine swift;
  ScriptRunner runner;

  explicit ScriptBed(std::size_t nodes, int workers_per_node = 1)
      : TestBed(os::Machine::eureka(nodes)),
        coasters(machine, apps, config(workers_per_node)),
        swift(machine, coasters),
        runner(swift) {
    apps::install_synthetic_apps(apps);
    machine.shared_fs().put("mpi_sleep", 1'000'000);
    machine.shared_fs().put("mpi_sleep_write", 1'000'000);
    machine.shared_fs().put("sleep", 16'384);
    machine.shared_fs().put("noop", 16'384);
    std::vector<os::NodeId> alloc;
    for (std::size_t i = 0; i < nodes; ++i) {
      alloc.push_back(static_cast<os::NodeId>(i));
    }
    coasters.start_on(alloc);
  }

  static CoasterService::Config config(int wpn) {
    CoasterService::Config c;
    c.worker.task_overhead = sim::milliseconds(2);
    c.workers_per_node = wpn;
    return c;
  }

  void execute() {
    engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
      co_await s.run_to_completion();
    }(swift));
    engine.run();
  }
};

TEST(Script, SimpleAppRuns) {
  ScriptBed bed(2);
  bed.runner.run(R"(
    file out;
    app (out) = sleep(1);
  )");
  bed.execute();
  EXPECT_EQ(bed.swift.completed(), 1u);
  EXPECT_TRUE(bed.runner.variable("out")->is_set());
}

TEST(Script, ForeachUnrollsAndRunsConcurrently) {
  ScriptBed bed(8);
  bed.runner.run(R"(
    file out[];
    foreach i in 0..7 {
      app (out[i]) = sleep(2);
    }
  )");
  bed.execute();
  EXPECT_EQ(bed.runner.statements_registered(), 8u);
  EXPECT_EQ(bed.swift.completed(), 8u);
  EXPECT_LT(sim::to_seconds(bed.engine.now()), 4.0);  // parallel, not 16 s
}

TEST(Script, DataflowChainSerializes) {
  ScriptBed bed(4);
  bed.runner.run(R"(
    file a; file b; file c;
    app (c) = sleep(1, b);   # depends on b
    app (b) = sleep(1, a);   # depends on a
    set a;
  )");
  bed.execute();
  EXPECT_EQ(bed.swift.completed(), 2u);
  EXPECT_TRUE(bed.runner.variable("c")->is_set());
  EXPECT_GE(sim::to_seconds(bed.engine.now()), 2.0);  // chained
}

TEST(Script, Fig14SyntheticLoop) {
  // The Fig 14 script shape: a loop of MPI tasks through Coasters.
  ScriptBed bed(8, /*workers_per_node=*/1);
  bed.runner.run(R"(
    file out[];
    foreach i in 0..5 {
      app (out[i]) = mpi_sleep_write(2, "/gpfs/out") mpi nprocs=4 ppn=2;
    }
  )");
  bed.execute();
  EXPECT_EQ(bed.swift.completed(), 6u);
  EXPECT_EQ(bed.swift.failed(), 0u);
}

TEST(Script, ParityConditionalMatchesFig17Modulus) {
  ScriptBed bed(4);
  bed.runner.run(R"(
    file even[]; file odd[];
    foreach i in 0..5 {
      if (i %% 2 == 0) {
        app (even[i]) = noop();
      } else {
        app (odd[i]) = noop();
      }
    }
  )");
  bed.execute();
  for (int i = 0; i < 6; i += 2) {
    EXPECT_NE(bed.runner.variable("even", i), nullptr) << i;
    EXPECT_EQ(bed.runner.variable("odd", i), nullptr) << i;
  }
  for (int i = 1; i < 6; i += 2) {
    EXPECT_NE(bed.runner.variable("odd", i), nullptr) << i;
  }
}

TEST(Script, IndexArithmeticAndLoginApps) {
  // A miniature REM column: segments feed a login-node exchange.
  ScriptBed bed(4);
  bed.runner.run(R"(
    file o[]; file x[];
    foreach i in 0..1 {
      app (o[i*2]) = sleep(1);
    }
    app (x[0], x[2]) = exchange(o[0], o[2]) login cost=0.5;
  )");
  bed.execute();
  EXPECT_EQ(bed.swift.failed(), 0u);
  EXPECT_TRUE(bed.runner.variable("x", 0)->is_set());
  EXPECT_TRUE(bed.runner.variable("x", 2)->is_set());
  // exchange ran after both 1 s segments plus its own 0.5 s.
  EXPECT_GE(sim::to_seconds(bed.engine.now()), 1.5);
}

TEST(Script, LoopVariableAsArgv) {
  ScriptBed bed(2);
  bed.apps.install("want_int", [](os::Env& env) -> sim::Task<void> {
    EXPECT_EQ(env.argv.at(1), "3");
    EXPECT_EQ(env.argv.at(2), "4");  // (i+1) parenthesized expression
    co_return;
  });
  bed.runner.run(R"(
    file out[];
    foreach i in 3..3 {
      app (out[i]) = want_int(i, (i+1));
    }
  )");
  bed.execute();
  EXPECT_EQ(bed.swift.failed(), 0u);
}

TEST(Script, SyntaxErrorsReportLines) {
  ScriptBed bed(2);
  try {
    bed.runner.run("file x;\napp (x) = broken(;\n");
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Script, UndeclaredVariableRejected) {
  ScriptBed bed(2);
  EXPECT_THROW(bed.runner.run("app (nope) = noop();"), ScriptError);
}

TEST(Script, DoubleSetRejected) {
  ScriptBed bed(2);
  EXPECT_THROW(bed.runner.run("file a; set a; set a;"), std::logic_error);
}

TEST(Script, UnterminatedStringRejected) {
  ScriptBed bed(2);
  EXPECT_THROW(bed.runner.run("file a;\napp (a) = noop(\"oops);"), ScriptError);
}

TEST(Script, CommentsAndWhitespaceIgnored) {
  ScriptBed bed(2);
  bed.runner.run("# leading comment\n\n  file a;  # trailing\n app (a) = noop();");
  bed.execute();
  EXPECT_EQ(bed.swift.completed(), 1u);
}

TEST(Script, NegativeAndNestedExpressions) {
  ScriptBed bed(2);
  bed.runner.run(R"(
    file out[];
    foreach i in 0..0 {
      app (out[(i+2)*3-6]) = noop();   # index 0
    }
  )");
  bed.execute();
  EXPECT_TRUE(bed.runner.variable("out", 0)->is_set());
}

}  // namespace
}  // namespace jets::swift
