// Shared JETS-service fixture for the integration suites (core_service,
// chaos, retry, scale): a TestBed with the synthetic apps installed, the
// suites' common job-spec factories, and batch-driving helpers. Binary
// sizes stay a per-suite choice — staging cost is part of what several
// tests time — so each suite passes its own manifest to the constructor.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "apps/synthetic.hh"
#include "core/chaos.hh"
#include "core/standalone.hh"
#include "testbed.hh"

namespace jets::test {

/// GPFS binary manifest: {name, size in bytes}.
using BinaryList = std::vector<std::pair<std::string, std::uint64_t>>;

/// A bed with the synthetic apps installed and their binaries on GPFS.
struct ServiceBed : TestBed {
  apps::SyntheticResults results;

  explicit ServiceBed(os::MachineSpec spec, const BinaryList& binaries)
      : TestBed(std::move(spec)) {
    apps::install_synthetic_apps(apps, &results);
    for (const auto& [name, bytes] : binaries) {
      machine.shared_fs().put(name, bytes);
    }
  }

  /// Stand-alone options with a token worker overhead — fast tests.
  static core::StandaloneOptions fast_options() {
    core::StandaloneOptions o;
    o.worker.task_overhead = sim::milliseconds(2);
    return o;
  }

  /// The first `n` node ids — the usual enlistment set.
  static std::vector<os::NodeId> nodes(std::size_t n) {
    std::vector<os::NodeId> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<os::NodeId>(i));
    return v;
  }

  /// Enlists workers on the first `n` nodes.
  static void enlist(core::StandaloneJets& jets, std::size_t n) {
    jets.start(nodes(n));
  }

  /// Submits the batch immediately and drives the engine to quiescence.
  core::BatchReport run(core::StandaloneJets& jets,
                        std::vector<core::JobSpec> jobs) {
    core::BatchReport report;
    engine.spawn("batch",
                 [](core::StandaloneJets& jets, std::vector<core::JobSpec> jobs,
                    core::BatchReport& out) -> sim::Task<void> {
                   out = co_await jets.run_batch(std::move(jobs));
                 }(jets, std::move(jobs), report));
    engine.run();
    return report;
  }

  /// Waits for the workers, starts chaos (if given), optionally delays the
  /// submission, and runs the batch under a settlement deadline.
  core::BatchReport run_chaos(core::StandaloneJets& jets,
                              core::ChaosEngine* chaos,
                              std::vector<core::JobSpec> jobs,
                              sim::Duration submit_delay = 0,
                              sim::Duration settle_by = sim::seconds(600)) {
    core::BatchReport report;
    engine.spawn("driver",
                 [](core::StandaloneJets& jets, core::ChaosEngine* chaos,
                    std::vector<core::JobSpec> jobs, sim::Duration delay,
                    core::BatchReport& out) -> sim::Task<void> {
                   co_await jets.wait_workers();
                   if (chaos) chaos->start();
                   if (delay > 0) co_await sim::delay(delay);
                   out = co_await jets.run_batch(std::move(jobs));
                 }(jets, chaos, std::move(jobs), submit_delay, report));
    engine.run_until(settle_by);
    EXPECT_LT(engine.now(), settle_by) << "batch did not settle";
    return report;
  }
};

inline core::JobSpec seq_job(std::vector<std::string> argv) {
  core::JobSpec s;
  s.argv = std::move(argv);
  return s;
}

inline core::JobSpec mpi_job(int nprocs, std::vector<std::string> argv,
                             int ppn = 1) {
  core::JobSpec s;
  s.kind = core::JobKind::kMpi;
  s.nprocs = nprocs;
  s.ppn = ppn;
  s.argv = std::move(argv);
  return s;
}

}  // namespace jets::test
