// Property test for the Swift-subset language: randomly generated layered
// dataflow DAGs are rendered to script text, parsed, and executed; the run
// must complete with every declared output set and with observed app
// start order consistent with the dependency edges.
#include <gtest/gtest.h>

#include <sstream>

#include "swift/coasters.hh"
#include "swift/engine.hh"
#include "swift/script.hh"
#include "testbed.hh"

namespace jets::swift {
namespace {

using test::TestBed;

class ScriptDagTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScriptDagTest, GeneratedDagRunsToCompletionRespectingEdges) {
  sim::Rng rng(GetParam());
  constexpr int kLayers = 4;
  const int width = 2 + static_cast<int>(GetParam() % 4);

  // Generate a layered DAG: node (l, i) consumes 1..2 random outputs of
  // layer l-1; layer 0 nodes consume a pre-set source.
  struct NodeDep {
    int layer, index;
    std::vector<int> deps;  // indices in layer-1
  };
  std::vector<NodeDep> nodes;
  for (int l = 0; l < kLayers; ++l) {
    for (int i = 0; i < width; ++i) {
      NodeDep n{l, i, {}};
      if (l > 0) {
        const int ndeps = 1 + static_cast<int>(rng.uniform_int(0, 1));
        for (int d = 0; d < ndeps; ++d) {
          n.deps.push_back(static_cast<int>(rng.uniform_int(0, width - 1)));
        }
      }
      nodes.push_back(std::move(n));
    }
  }

  // Render as script text. out[l*width+i] is node (l, i)'s output.
  std::ostringstream script;
  script << "file src; file out[];\nset src;\n";
  for (const NodeDep& n : nodes) {
    script << "app (out[" << n.layer * width + n.index << "]) = probe(\""
           << n.layer << "." << n.index << "\"";
    if (n.layer == 0) {
      script << ", src";
    } else {
      for (int d : n.deps) {
        script << ", out[" << (n.layer - 1) * width + d << "]";
      }
    }
    script << ");\n";
  }

  // Execute on a small cluster; "probe" records start times by label.
  TestBed bed(os::Machine::eureka(8));
  std::map<std::string, sim::Time> started;
  bed.apps.install("probe", [&started, &bed](os::Env& env) -> sim::Task<void> {
    started[env.argv.at(1)] = bed.engine.now();
    co_await sim::delay(sim::milliseconds(200));
  });
  CoasterService::Config cfg;
  cfg.worker.task_overhead = sim::milliseconds(1);
  CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_on({0, 1, 2, 3, 4, 5, 6, 7});
  SwiftEngine engine(bed.machine, coasters);
  ScriptRunner runner(engine);
  runner.run(script.str());
  bed.engine.spawn("t", [](SwiftEngine& s) -> sim::Task<void> {
    co_await s.run_to_completion();
  }(engine));
  bed.engine.run();

  // Every node ran exactly once and all outputs are set.
  EXPECT_EQ(engine.failed(), 0u);
  ASSERT_EQ(started.size(), nodes.size());
  for (const NodeDep& n : nodes) {
    EXPECT_TRUE(runner.variable("out", n.layer * width + n.index)->is_set());
  }
  // Dependency order: a node starts strictly after each of its deps
  // started (deps also run 200 ms, so strictly later than start + work).
  for (const NodeDep& n : nodes) {
    if (n.layer == 0) continue;
    const std::string me = std::to_string(n.layer) + "." + std::to_string(n.index);
    for (int d : n.deps) {
      const std::string dep =
          std::to_string(n.layer - 1) + "." + std::to_string(d);
      EXPECT_GE(started.at(me), started.at(dep) + sim::milliseconds(200))
          << me << " must follow " << dep;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptDagTest,
                         ::testing::Values<std::uint64_t>(2, 5, 11, 31, 101));

}  // namespace
}  // namespace jets::swift
