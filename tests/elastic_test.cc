// Elastic-allocation suite (ctest label "elastic"): the BatchScheduler's
// allocation-id lifecycle and typed AllocationError taxonomy (os/machine),
// the service's walltime-aware placement gate and infra-exempt
// kWalltimeDrain requeue (core/service), the swift::BlockAllocator
// controller (scale-out under backlog, scale-in on idle, drain-ahead,
// preemption), the Coasters spectrum degraded-start path, and the elastic
// section of the checkpoint codec. The invariants:
//
//   * release is idempotent by allocation id: double release, or releasing
//     a stale copy after the nodes were re-granted, never frees nodes out
//     from under a later allocation, and a released allocation's walltime
//     timer is disarmed;
//   * submit failures carry a typed kind (denied / out-of-nodes /
//     queue-starvation) instead of a bare runtime_error;
//   * a job requeued at a drain deadline is charged to NO budget (app or
//     infra) and its node takes no blacklist strike — walltime expiry is
//     the machine's fault, not the job's and not the node's;
//   * the claim gate refuses to start work a block's walltime is
//     guaranteed to kill (now + expected_runtime > expires_at);
//   * under preemption chaos every job still completes, and the whole
//     elastic run is a pure function of its seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/chaos.hh"
#include "core/snapshot.hh"
#include "core/standalone.hh"
#include "swift/allocator.hh"
#include "swift/coasters.hh"
#include "testutil.hh"

namespace jets {
namespace {

using test::ServiceBed;
using test::seq_job;

// --- BatchScheduler allocation lifecycle -------------------------------------

TEST(ElasticBatch, ReleaseIsIdempotentById) {
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::breadboard(8));
  os::BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(1);
  policy.base_queue_wait = sim::seconds(1);
  os::BatchScheduler sched(machine, policy, sim::Rng(1));
  engine.spawn("user", [](os::BatchScheduler& s) -> sim::Task<void> {
    auto first = co_await s.submit(4, sim::seconds(600));
    s.release(first);
    EXPECT_EQ(s.free_nodes(), 8u);
    s.release(first);  // double release: no-op
    EXPECT_EQ(s.free_nodes(), 8u);
    // The nodes are re-granted; releasing the stale copy again must not
    // free them out from under the new allocation.
    auto second = co_await s.submit(4, sim::seconds(600));
    EXPECT_NE(second.id, first.id);
    s.release(first);
    EXPECT_EQ(s.free_nodes(), 4u);
    s.release(second);
    EXPECT_EQ(s.free_nodes(), 8u);
  }(sched));
  engine.run();
}

TEST(ElasticBatch, ReleaseDisarmsWalltime) {
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::breadboard(8));
  os::BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(1);
  policy.base_queue_wait = sim::seconds(1);
  policy.wait_per_node = 0;
  os::BatchScheduler sched(machine, policy, sim::Rng(2));
  bool survivor_killed = false;
  engine.spawn("user", [](os::Machine& machine, os::BatchScheduler& s,
                          bool& killed) -> sim::Task<void> {
    auto first = co_await s.submit(4, sim::seconds(30));
    s.enforce_walltime(first, {});
    s.release(first);  // before expiry: the walltime timer must disarm
    // Same nodes, re-granted with a longer horizon; a leaked timer from
    // `first` would kill this pilot at the old expiry.
    auto second = co_await s.submit(4, sim::seconds(600));
    std::vector<os::Machine::Pid> pilots;
    pilots.push_back(
        machine.exec(second.nodes[0], "pilot", [](bool* flag) -> sim::Task<void> {
          co_await sim::delay(sim::seconds(100));
          *flag = true;
        }(&killed)));
    s.enforce_walltime(second, pilots);
    co_await sim::delay(sim::seconds(120));
    s.release(second);
  }(machine, sched, survivor_killed));
  engine.run();
  // The pilot ran to its natural end (flag set), well past first's expiry.
  EXPECT_TRUE(survivor_killed);
  EXPECT_EQ(sched.free_nodes(), 8u);
}

TEST(ElasticBatch, ErrorTaxonomy) {
  sim::Engine engine;
  os::Machine machine(engine, os::Machine::breadboard(4));
  os::BatchScheduler::Policy policy;
  policy.boot_time = sim::seconds(1);
  policy.base_queue_wait = sim::seconds(1);
  policy.submit_timeout = sim::seconds(5);
  os::BatchScheduler sched(machine, policy, sim::Rng(3));
  std::vector<os::AllocationError::Kind> kinds;
  engine.spawn("user", [](os::BatchScheduler& s,
                          std::vector<os::AllocationError::Kind>& kinds)
                   -> sim::Task<void> {
    s.inject_denials(1);
    try {
      (void)co_await s.submit(2, sim::seconds(60));
    } catch (const os::AllocationError& e) {
      kinds.push_back(e.kind());
    }
    auto held = co_await s.submit(4, sim::seconds(600));
    try {
      (void)co_await s.submit(2, sim::seconds(60));  // machine is full
    } catch (const os::AllocationError& e) {
      kinds.push_back(e.kind());
    }
    s.release(held);
    s.inject_stall(sim::seconds(3600));  // way past submit_timeout
    try {
      (void)co_await s.submit(2, sim::seconds(60));
    } catch (const os::AllocationError& e) {
      kinds.push_back(e.kind());
    }
  }(sched, kinds));
  engine.run();
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], os::AllocationError::Kind::kDenied);
  EXPECT_EQ(kinds[1], os::AllocationError::Kind::kOutOfNodes);
  EXPECT_EQ(kinds[2], os::AllocationError::Kind::kQueueStarvation);
  EXPECT_STREQ(to_string(os::AllocationError::Kind::kDenied), "denied");
}

// --- Service drain + claim gate ----------------------------------------------

// The satellite's end-to-end scenario: a pilot block hits its drain
// deadline while a job runs on it. The job must come back as
// kWalltimeDrain — charged to neither budget, no blacklist strike — and
// complete on a surviving worker even with max_attempts = 1.
TEST(ElasticService, WalltimeDrainIsBlamelessAndRequeues) {
  ServiceBed bed(os::Machine::breadboard(4), {{"sleep", 16'384}});
  auto options = ServiceBed::fast_options();
  options.service.retry.max_attempts = 1;  // any charged failure is fatal
  options.service.blacklist_after = 1;     // any strike bans the node
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ServiceBed::nodes(2));
  core::BatchReport report;
  bed.engine.spawn(
      "driver",
      [](ServiceBed& bed, core::StandaloneJets& jets,
         core::BatchReport& report) -> sim::Task<void> {
        co_await jets.wait_workers();
        // Node 0 hosts the doomed block. FIFO claim places the job there
        // (its worker registered first).
        jets.service().set_node_expiry(
            0, bed.engine.now() + sim::seconds(5));
        bed.engine.call_in(sim::seconds(2), [&bed, &jets] {
          // The allocator's drain protocol: requeue synchronously, then
          // kill the pilot (requeue strictly first).
          jets.service().drain_nodes({0}, bed.engine.now());
          bed.machine.kill(jets.worker_pids()[0]);
        });
        std::vector<core::JobSpec> jobs(1, seq_job({"sleep", "10"}));
        report = co_await jets.run_batch(std::move(jobs));
      }(bed, jets, report));
  bed.engine.run();
  ASSERT_EQ(report.records.size(), 1u);
  const core::JobRecord& rec = report.records[0];
  EXPECT_EQ(rec.status, core::JobStatus::kDone);
  EXPECT_EQ(rec.attempts, 2);
  ASSERT_GE(rec.history.size(), 1u);
  EXPECT_EQ(rec.history[0].reason, core::FailureReason::kWalltimeDrain);
  // Blameless: neither budget charged, so max_attempts = 1 still allowed
  // the retry...
  EXPECT_EQ(rec.app_failures, 0);
  EXPECT_EQ(rec.infra_failures, 0);
  // ...and blacklist_after = 1 took no strike against the node (the
  // checkpoint exposes the blacklist table).
  for (const auto& nh : jets.checkpoint().node_health) {
    EXPECT_FALSE(nh.banned) << "node " << nh.node;
  }
  EXPECT_EQ(jets.service().drain_requeues(), 1u);
  // The retry ran on the surviving node.
  ASSERT_EQ(rec.nodes.size(), 1u);
  EXPECT_EQ(rec.nodes[0], 1u);
}

TEST(ElasticService, ClaimGateRefusesExpiringWorker) {
  ServiceBed bed(os::Machine::breadboard(4), {{"sleep", 16'384}});
  auto options = ServiceBed::fast_options();
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start(ServiceBed::nodes(1));
  auto worker = options.worker;
  worker.service = jets.service().address();
  core::BatchReport report;
  bed.engine.spawn(
      "driver",
      [](ServiceBed& bed, core::StandaloneJets& jets, core::WorkerConfig worker,
         core::BatchReport& report) -> sim::Task<void> {
        co_await jets.wait_workers();
        // Node 0's block expires in 3 s; the job needs 10 s — placement
        // would be guaranteed-dead work, so the gate must refuse it.
        jets.service().set_node_expiry(
            0, bed.engine.now() + sim::seconds(3));
        auto spec = seq_job({"sleep", "10"});
        spec.expected_runtime = sim::seconds(10);
        // A fresh (non-elastic) worker arrives later; its registration
        // re-triggers dispatch and the job runs there.
        bed.engine.call_in(sim::seconds(5), [&bed, worker] {
          core::start_worker(bed.machine, bed.apps, 1, worker);
        });
        std::vector<core::JobSpec> jobs(1, spec);
        report = co_await jets.run_batch(std::move(jobs));
      }(bed, jets, worker, report));
  bed.engine.run();
  ASSERT_EQ(report.records.size(), 1u);
  const core::JobRecord& rec = report.records[0];
  EXPECT_EQ(rec.status, core::JobStatus::kDone);
  EXPECT_EQ(rec.attempts, 1);  // never started on the expiring worker
  ASSERT_EQ(rec.nodes.size(), 1u);
  EXPECT_EQ(rec.nodes[0], 1u);
  EXPECT_GE(jets.service().gate_refusals(), 1u);
}

// --- BlockAllocator controller -----------------------------------------------

swift::ElasticPolicy fast_policy() {
  swift::ElasticPolicy ep;
  ep.min_nodes = 0;
  ep.max_nodes = 8;
  ep.block_size = 2;
  ep.backlog_high = 1;
  ep.poll_interval = sim::seconds(1);
  ep.idle_before_shrink = sim::seconds(3);
  ep.walltime = sim::seconds(600);  // no expiry drains in short tests
  ep.drain_lead = sim::seconds(30);
  ep.drain_grace = sim::seconds(5);
  ep.retry_backoff = sim::seconds(1);
  return ep;
}

os::BatchScheduler::Policy fast_batch() {
  os::BatchScheduler::Policy bp;
  bp.boot_time = sim::seconds(1);
  bp.base_queue_wait = sim::seconds(1);
  bp.wait_per_node = sim::milliseconds(50);
  return bp;
}

TEST(BlockAllocator, ScalesOutUnderBacklogAndInOnIdle) {
  ServiceBed bed(os::Machine::breadboard(16), {{"sleep", 16'384}});
  auto options = ServiceBed::fast_options();
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start({});  // service only; the allocator provisions the pool
  os::BatchScheduler sched(bed.machine, fast_batch(), sim::Rng(5));
  swift::BlockAllocator alloc(bed.machine, bed.apps, jets.service(), sched,
                              options.worker, fast_policy());
  core::BatchReport report;
  std::size_t pool_after_idle = 0;
  bed.engine.spawn(
      "driver",
      [](core::StandaloneJets& jets, swift::BlockAllocator& alloc,
         core::BatchReport& report, std::size_t& pool_after_idle)
          -> sim::Task<void> {
        alloc.start();
        std::vector<core::JobSpec> jobs(20, seq_job({"sleep", "1"}));
        report = co_await jets.run_batch(std::move(jobs));
        // Idle long past idle_before_shrink: the pool must shrink back.
        co_await sim::delay(sim::seconds(30));
        pool_after_idle = alloc.pool_nodes();
        alloc.stop();
      }(jets, alloc, report, pool_after_idle));
  bed.engine.run();
  EXPECT_EQ(report.completed, 20u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(alloc.counters().scale_outs, 1u);
  EXPECT_GE(alloc.peak_pool_nodes(), 2u);
  EXPECT_GE(alloc.counters().scale_ins, 1u);
  EXPECT_LT(pool_after_idle, alloc.peak_pool_nodes());
  EXPECT_EQ(alloc.pool_nodes(), 0u);  // stop() tore the pool down
  EXPECT_EQ(sched.free_nodes(), 16u);
  EXPECT_EQ(bed.machine.process_count(), 0u);
}

TEST(BlockAllocator, RetriesDeniedSubmits) {
  ServiceBed bed(os::Machine::breadboard(16), {{"sleep", 16'384}});
  auto options = ServiceBed::fast_options();
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start({});
  os::BatchScheduler sched(bed.machine, fast_batch(), sim::Rng(6));
  sched.inject_denials(2);  // first two submits bounce
  swift::BlockAllocator alloc(bed.machine, bed.apps, jets.service(), sched,
                              options.worker, fast_policy());
  core::BatchReport report;
  bed.engine.spawn(
      "driver",
      [](core::StandaloneJets& jets, swift::BlockAllocator& alloc,
         core::BatchReport& report) -> sim::Task<void> {
        alloc.start();
        std::vector<core::JobSpec> jobs(8, seq_job({"sleep", "1"}));
        report = co_await jets.run_batch(std::move(jobs));
        alloc.stop();
      }(jets, alloc, report));
  bed.engine.run();
  EXPECT_EQ(report.completed, 8u);
  EXPECT_GE(alloc.counters().submits_denied, 1u);
  EXPECT_GE(alloc.counters().submit_retries, 1u);
}

// One full allocator scenario under preemption chaos, reduced to its
// observable outcome. Run twice by the determinism test below.
struct PreemptOutcome {
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::size_t preempt_drains = 0;
  std::uint64_t digest = 0;  // folded per-job record digests

  friend bool operator==(const PreemptOutcome&, const PreemptOutcome&) = default;
};

PreemptOutcome run_preempt_scenario() {
  ServiceBed bed(os::Machine::breadboard(16), {{"sleep", 16'384}});
  auto options = ServiceBed::fast_options();
  core::StandaloneJets jets(bed.machine, bed.apps, options);
  jets.start({});
  os::BatchScheduler sched(bed.machine, fast_batch(), sim::Rng(7));
  auto ep = fast_policy();
  ep.max_nodes = 6;
  swift::BlockAllocator alloc(bed.machine, bed.apps, jets.service(), sched,
                              options.worker, ep);
  core::ChaosEngine chaos(bed.machine, sim::Rng(7).fork("chaos"));
  chaos.set_batch_scheduler(&sched);
  chaos.add({.at = sim::seconds(8), .kind = core::FaultKind::kPreemption});
  chaos.add({.at = sim::seconds(12), .kind = core::FaultKind::kPreemption});
  core::BatchReport report;
  bed.engine.spawn(
      "driver",
      [](core::StandaloneJets& jets, swift::BlockAllocator& alloc,
         core::ChaosEngine& chaos, core::BatchReport& report)
          -> sim::Task<void> {
        alloc.start();
        chaos.start();
        auto spec = seq_job({"sleep", "2"});
        spec.expected_runtime = sim::seconds(2);
        std::vector<core::JobSpec> jobs(30, spec);
        report = co_await jets.run_batch(std::move(jobs));
        alloc.stop();
      }(jets, alloc, chaos, report));
  bed.engine.run();
  PreemptOutcome out;
  out.completed = report.completed;
  out.failed = report.failed;
  out.preempt_drains = alloc.counters().preempt_drains;
  for (const auto& rec : report.records) {
    out.digest = out.digest * 1099511628211ull ^ core::record_digest(rec);
  }
  return out;
}

TEST(BlockAllocator, PreemptionLosesNoJobsAndIsDeterministic) {
  const PreemptOutcome a = run_preempt_scenario();
  EXPECT_EQ(a.completed, 30u);
  EXPECT_EQ(a.failed, 0u);
  EXPECT_GE(a.preempt_drains, 1u);
  // Same seeds, same workload => identical schedule, job for job.
  const PreemptOutcome b = run_preempt_scenario();
  EXPECT_EQ(a, b);
}

// --- Coasters spectrum degraded start ----------------------------------------

TEST(ElasticCoasters, SpectrumProceedsDegradedWhenABlockIsDenied) {
  test::TestBed bed(os::Machine::eureka(32));
  apps::install_synthetic_apps(bed.apps);
  bed.machine.shared_fs().put("sleep", 16'384);
  os::BatchScheduler::Policy bp;
  bp.boot_time = sim::seconds(1);
  bp.base_queue_wait = sim::seconds(1);
  os::BatchScheduler sched(bed.machine, bp, sim::Rng(9));
  // The first (largest) spectrum block is denied; the rest must still
  // arrive and the service must keep working with what it got.
  sched.inject_denials(1);
  swift::CoasterService::Config cfg;
  cfg.worker.task_overhead = sim::milliseconds(2);
  swift::CoasterService coasters(bed.machine, bed.apps, cfg);
  coasters.start_with_blocks(sched, 16, sim::seconds(7200), /*spectrum=*/true);
  core::JobRecord rec;
  bed.engine.spawn("job",
                   [](swift::CoasterService& c,
                      core::JobRecord& rec) -> sim::Task<void> {
                     core::JobSpec spec = seq_job({"sleep", "1"});
                     rec = co_await c.run_job(std::move(spec));
                   }(coasters, rec));
  bed.engine.run_until(sim::seconds(600));
  EXPECT_EQ(coasters.blocks_failed(), 1u);
  // Spectrum for 16 nodes: blocks 8+4+2+1+1; losing the 8 leaves 8.
  EXPECT_EQ(coasters.worker_count(), 8u);
  EXPECT_EQ(rec.status, core::JobStatus::kDone);
}

// --- Checkpoint round-trip ---------------------------------------------------

TEST(ElasticSnapshot, CodecRoundTripsElasticSection) {
  core::Snapshot snap;
  snap.taken_at = sim::seconds(42);
  snap.elastic_capacity = 64;
  snap.elastic.push_back({.node = 3,
                          .expires_at = sim::seconds(900),
                          .draining = false,
                          .drain_at = -1});
  snap.elastic.push_back({.node = 7,
                          .expires_at = sim::seconds(120),
                          .draining = true,
                          .drain_at = sim::seconds(110)});
  const auto bytes = snap.serialize();
  const core::Snapshot back = core::Snapshot::parse(bytes);
  EXPECT_EQ(back, snap);
}

TEST(ElasticSnapshot, CheckpointCapturesNodeState) {
  ServiceBed bed(os::Machine::breadboard(4), {{"sleep", 16'384}});
  core::StandaloneJets jets(bed.machine, bed.apps, ServiceBed::fast_options());
  jets.start(ServiceBed::nodes(2));
  core::Snapshot snap;
  bed.engine.spawn("driver",
                   [](ServiceBed& bed, core::StandaloneJets& jets,
                      core::Snapshot& snap) -> sim::Task<void> {
                     co_await jets.wait_workers();
                     jets.service().set_elastic_capacity(32);
                     jets.service().set_node_expiry(
                         0, bed.engine.now() + sim::seconds(300));
                     jets.service().drain_nodes(
                         {1}, bed.engine.now() + sim::seconds(60));
                     snap = jets.checkpoint();
                   }(bed, jets, snap));
  bed.engine.run();
  EXPECT_EQ(snap.elastic_capacity, 32u);
  ASSERT_EQ(snap.elastic.size(), 2u);
  EXPECT_EQ(snap.elastic[0].node, 0u);
  EXPECT_FALSE(snap.elastic[0].draining);
  EXPECT_GT(snap.elastic[0].expires_at, 0);
  EXPECT_EQ(snap.elastic[1].node, 1u);
  EXPECT_TRUE(snap.elastic[1].draining);
  EXPECT_GT(snap.elastic[1].drain_at, 0);
  // And the codec preserves it byte-for-byte.
  EXPECT_EQ(core::Snapshot::parse(snap.serialize()), snap);
}

}  // namespace
}  // namespace jets
